//! Emit `BENCH_planned.json`: wall-clock timings and the speedup of the
//! pair-orbit sweep planner on the symm-sweep workload — **all** `(u, v)`
//! ordered pairs × δ ∈ {0..4} on `oriented_torus(16, 16)` (327 680 STICs,
//! horizon 256) — versus the PR 2 batch path (`SweepEngine` merging every
//! pair).  Both sides run the full workload single-threaded-equivalent; the
//! planned side includes computing the orbit partition from scratch every
//! iteration, so the recorded ratio is the honest end-to-end planning win.
//!
//! A second, `million_node` section records the implicit orbit planner
//! streaming the same shape of workload over `oriented_torus(1024, 1024)`
//! — 2^40 ordered pairs per delay, answered through closed-form group
//! arithmetic with bounded memory and no materialised outcome table.
//!
//! Usage: `cargo run --release -p anonrv-bench --bin planned_timing
//! [output.json]` (default output: `BENCH_planned.json`).

use std::time::Instant;

use anonrv_bench::{sweep_batch_engine, sweep_planned_engine, SweepWalker};
use anonrv_graph::generators::oriented_torus;
use anonrv_plan::{PairOrbits, PlannedSweep, SweepPlan};
use anonrv_sim::{EngineConfig, Round};

const HORIZON: Round = 256;
const DELTAS: u32 = 5;
const GIANT_HORIZON: Round = 64;
const GIANT_DELTAS: u32 = 2;

/// Median wall time of `runs` executions, in seconds.
fn time_median<R>(runs: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_planned.json".to_string());

    let torus = oriented_torus(16, 16).unwrap();
    let n = torus.num_nodes();
    let program = SweepWalker { seed: 0x5EED };
    let orbits = PairOrbits::compute(&torus);

    // correctness guard: both paths must agree before anything is timed
    let met_planned = sweep_planned_engine(&torus, &program, DELTAS, HORIZON);
    let met_batch = sweep_batch_engine(&torus, &program, DELTAS, HORIZON);
    assert_eq!(met_planned, met_batch, "planned and batch paths disagree on the sweep workload");

    let planned_s = time_median(15, || sweep_planned_engine(&torus, &program, DELTAS, HORIZON));
    let planning_s = time_median(15, || PairOrbits::compute(&torus));
    let batch_s = time_median(5, || sweep_batch_engine(&torus, &program, DELTAS, HORIZON));
    let speedup = batch_s / planned_s;

    // the million-node row: the implicit orbit planner streams all-pairs
    // work on oriented_torus(1024, 1024) — 2^40 ordered pairs per delay —
    // without materialising a permutation, a pair table or the outcome table
    let giant = oriented_torus(1024, 1024).unwrap();
    let giant_deltas: Vec<Round> = (0..GIANT_DELTAS as Round).collect();
    let giant_planned = PlannedSweep::new(&giant, &program, EngineConfig::batch(GIANT_HORIZON));
    assert!(
        giant_planned.orbits().is_implicit(),
        "torus generators must stamp the closed-form group"
    );
    let giant_plan =
        SweepPlan::from_orbits(giant_planned.orbits().clone(), giant_deltas, GIANT_HORIZON);
    let mut giant_met = 0usize;
    let giant_s = time_median(3, || {
        let stats = giant_planned.run_streamed(&giant_plan, 4096, |_, _| {}).expect("streamed");
        giant_met = stats.met_total;
        stats
    });
    let giant_n = giant.num_nodes();
    let giant_stics = giant_n * giant_n * GIANT_DELTAS as usize;
    let giant_classes = giant_planned.orbits().num_pair_classes();

    let num_stics = n * n * DELTAS as usize;
    let classes = orbits.num_pair_classes();
    let compression = orbits.compression();
    let json = format!(
        "{{\n  \"instance\": \"oriented_torus(16, 16)\",\n  \
         \"workload\": \"all (u, v) pairs x delta in 0..{DELTAS}, horizon {HORIZON}\",\n  \
         \"stics\": {num_stics},\n  \
         \"meetings\": {met_planned},\n  \
         \"pair_classes\": {classes},\n  \
         \"orbit_compression\": {compression:.1},\n  \
         \"planned_sweep_seconds\": {planned_s:.6},\n  \
         \"planning_only_seconds\": {planning_s:.6},\n  \
         \"batch_sweep_seconds\": {batch_s:.6},\n  \
         \"planned_speedup\": {speedup:.1},\n  \
         \"million_node\": {{\n    \
         \"instance\": \"oriented_torus(1024, 1024)\",\n    \
         \"workload\": \"all (u, v) pairs x delta in 0..{GIANT_DELTAS}, horizon {GIANT_HORIZON}, streamed\",\n    \
         \"stics\": {giant_stics},\n    \
         \"meetings\": {giant_met},\n    \
         \"pair_classes\": {giant_classes},\n    \
         \"streamed_sweep_seconds\": {giant_s:.6}\n  }}\n}}\n"
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    print!("{json}");
    eprintln!("wrote {out_path}");
}
