//! The per-call two-agent simulation engines.
//!
//! Three execution strategies produce bit-identical [`SimOutcome`]s:
//!
//! * **Streaming** — each agent runs on its own thread and streams chunked
//!   [`Event`] batches over a bounded channel; the coordinator merges the two
//!   position timelines on the fly and stops everything as soon as a
//!   rendezvous (or the horizon) is reached.  Memory stays `O(chunk_size)`
//!   no matter how long the executed algorithms are, and waits of
//!   astronomical length (the padding of `UniversalRV`) cost a single event.
//! * **Lockstep** — single-threaded fast path for short horizons: the
//!   earlier agent's whole wait-compressed segment timeline is recorded
//!   up front (`O(#events)` memory, bounded by the horizon), then the later
//!   agent is streamed against it, stopping at the first overlap.  This
//!   eliminates the two-threads-plus-channels setup cost that dominates the
//!   millions of small `simulate` calls issued by the experiment sweeps.
//! * **Batch** ([`crate::batch`]) — records *both* agents' timelines in the
//!   lockstep engine's segment representation and merges them; on its own it
//!   buys nothing over lockstep, but the recorded timelines are exactly what
//!   [`crate::batch::TrajectoryCache`] memoizes per start node, turning an
//!   all-pairs sweep's `O(n²·Δ)` program executions into `O(n)`.
//!
//! [`EngineMode`] selects the strategy; the default [`EngineMode::Auto`]
//! uses lockstep whenever `horizon ≤ 2¹⁶` (so the recorded timeline stays
//! small) and streaming otherwise — and resolves to the batch path inside a
//! [`crate::batch::SweepEngine`], whose construction is the caller's signal
//! that timelines will be reused.  The paths are asserted equal by the
//! differential tests below and by `tests/property_engine_lockstep.rs` /
//! `tests/property_engine_batch.rs`.

use std::collections::VecDeque;
use std::thread;

use crossbeam_channel::{bounded, Receiver, Sender};

use anonrv_graph::{NodeId, PortGraph};

use crate::batch::{RecordSink, Seg};
use crate::navigator::{AgentProgram, Event, EventSink, GraphNavigator, Stop};
use crate::stic::{Round, Stic};

/// Which execution strategy [`simulate_with`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Lockstep when `horizon ≤ 2¹⁶` (bounding the recorded timeline),
    /// streaming otherwise.  Inside a [`crate::batch::SweepEngine`], `Auto`
    /// resolves to `Batch` instead: constructing a sweep engine signals that
    /// many STICs of one `(graph, program)` pair will be simulated.
    #[default]
    Auto,
    /// Always the threaded streaming engine.
    Streaming,
    /// Always the single-threaded lockstep engine.  The earlier agent's
    /// timeline is materialised in memory: one entry per event, at most
    /// `horizon + 1` of them — callers opting in explicitly should keep
    /// horizons moderate.
    Lockstep,
    /// Always the batch engine ([`crate::batch`]): both agents' timelines
    /// are recorded and merged.  Memory bounds match `Lockstep` (times two);
    /// per-call it exists for completeness and differential testing — the
    /// payoff is the timeline reuse of [`crate::batch::TrajectoryCache`].
    Batch,
}

/// Horizon up to which [`EngineMode::Auto`] picks the lockstep engine.
const LOCKSTEP_AUTO_HORIZON: Round = 1 << 16;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Global round horizon: the simulation gives up if no rendezvous happens
    /// at a global round `<= horizon`.
    pub horizon: Round,
    /// Number of events per channel batch (streaming engine only).
    pub chunk_size: usize,
    /// Number of batches that may be in flight per agent (streaming engine
    /// only).
    pub channel_capacity: usize,
    /// Execution strategy.
    pub mode: EngineMode,
}

impl EngineConfig {
    /// Configuration with the given horizon, default batching and automatic
    /// engine selection.
    pub fn with_horizon(horizon: Round) -> Self {
        EngineConfig { horizon, chunk_size: 4096, channel_capacity: 8, mode: EngineMode::Auto }
    }

    /// Configuration pinned to the threaded streaming engine.
    pub fn streaming(horizon: Round) -> Self {
        EngineConfig { mode: EngineMode::Streaming, ..Self::with_horizon(horizon) }
    }

    /// Configuration pinned to the single-threaded lockstep engine.
    pub fn lockstep(horizon: Round) -> Self {
        EngineConfig { mode: EngineMode::Lockstep, ..Self::with_horizon(horizon) }
    }

    /// Configuration pinned to the batch (trajectory-merging) engine.
    pub fn batch(horizon: Round) -> Self {
        EngineConfig { mode: EngineMode::Batch, ..Self::with_horizon(horizon) }
    }
}

/// A detected rendezvous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meeting {
    /// Global round of the meeting (the earlier agent's clock).
    pub global_round: Round,
    /// Rounds since the later agent's start — the paper's notion of
    /// rendezvous *time*.
    pub later_round: Round,
    /// The node where the agents met.
    pub node: NodeId,
}

/// Result of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutcome {
    /// The meeting, if one happened within the horizon.
    pub meeting: Option<Meeting>,
    /// Edge traversals of the earlier agent observed up to the meeting /
    /// horizon.  Closed-form symbolic merges can evaluate this at horizons
    /// past `2^64` moves; the counter then **saturates at `u64::MAX`**
    /// (see `SymbolicTimeline::totals_up_to`) — meeting rounds and horizons
    /// are [`Round`]-wide and never saturate.
    pub earlier_moves: u64,
    /// Edge traversals of the later agent observed up to the meeting /
    /// horizon (saturating at `u64::MAX`, like `earlier_moves`).
    pub later_moves: u64,
    /// Whether the earlier agent's program terminated by itself (only
    /// meaningful when no meeting interrupted it).
    pub earlier_terminated: bool,
    /// Whether the later agent's program terminated by itself.
    pub later_terminated: bool,
    /// The horizon used.
    pub horizon: Round,
}

impl SimOutcome {
    /// The outcome of a simulation in which the later agent never even
    /// appeared within the horizon (`delay > horizon`): no meeting, no
    /// observed work.  Shared by every engine — and by the plan layer's
    /// outcome-table truncation — so the convention cannot drift.
    pub fn no_show(horizon: Round) -> Self {
        SimOutcome {
            meeting: None,
            earlier_moves: 0,
            later_moves: 0,
            earlier_terminated: false,
            later_terminated: false,
            horizon,
        }
    }

    /// `true` iff rendezvous was achieved within the horizon.
    pub fn met(&self) -> bool {
        self.meeting.is_some()
    }

    /// Rendezvous time in the paper's sense (rounds after the later agent's
    /// start), if the agents met.
    pub fn rendezvous_time(&self) -> Option<Round> {
        self.meeting.map(|m| m.later_round)
    }
}

enum Msg {
    Events(Vec<Event>),
    Done { terminated: bool, moves: u64 },
}

/// Channel-backed event sink used by the agent threads.
struct ChannelSink {
    buffer: Vec<Event>,
    chunk_size: usize,
    tx: Sender<Msg>,
}

impl ChannelSink {
    fn new(chunk_size: usize, tx: Sender<Msg>) -> Self {
        ChannelSink { buffer: Vec::with_capacity(chunk_size), chunk_size, tx }
    }
}

impl EventSink for ChannelSink {
    fn emit(&mut self, event: Event) -> Result<(), Stop> {
        self.buffer.push(event);
        if self.buffer.len() >= self.chunk_size {
            let batch = std::mem::replace(&mut self.buffer, Vec::with_capacity(self.chunk_size));
            self.tx.send(Msg::Events(batch)).map_err(|_| Stop::Interrupted)?;
        }
        Ok(())
    }

    fn finish(&mut self) {
        if !self.buffer.is_empty() {
            let batch = std::mem::take(&mut self.buffer);
            let _ = self.tx.send(Msg::Events(batch));
        }
    }
}

const INFINITY: Round = Round::MAX;

/// Coordinator-side view of one agent's position timeline, reconstructed
/// lazily from its event stream.
struct Cursor {
    rx: Receiver<Msg>,
    pending: VecDeque<Event>,
    /// Current segment `[seg_start, seg_end)` at `node`, in *global* rounds.
    seg_start: Round,
    seg_end: Round,
    node: NodeId,
    /// No more events will arrive.
    stream_closed: bool,
    /// The program terminated by itself (final position lasts forever).
    terminated: bool,
    /// The infinite tail segment has been emitted.
    tail_emitted: bool,
    /// Authoritative move total reported by the agent's `Done` message.
    moves: u64,
    /// Move events consumed from the stream so far.  Every consumed move
    /// completed at a round `<= seg_start <=` the stopping round, so when the
    /// coordinator stops before the stream closes this is exactly "edge
    /// traversals observed up to the meeting / horizon".
    consumed_moves: u64,
}

impl Cursor {
    fn new(rx: Receiver<Msg>, start_node: NodeId, start_time: Round) -> Self {
        Cursor {
            rx,
            pending: VecDeque::new(),
            seg_start: start_time,
            seg_end: start_time + 1,
            node: start_node,
            stream_closed: false,
            terminated: false,
            tail_emitted: false,
            moves: 0,
            consumed_moves: 0,
        }
    }

    /// Ensure at least one pending event or learn that the stream is closed.
    fn fill(&mut self) {
        while self.pending.is_empty() && !self.stream_closed {
            match self.rx.recv() {
                Ok(Msg::Events(batch)) => self.pending.extend(batch),
                Ok(Msg::Done { terminated, moves }) => {
                    self.stream_closed = true;
                    self.terminated = terminated;
                    self.moves = moves;
                }
                Err(_) => {
                    self.stream_closed = true;
                }
            }
        }
    }

    /// Advance the timeline.  Either the current segment is extended by one or
    /// more wait events (same node, larger `seg_end`) or the cursor moves on
    /// to the next one-round segment of a move event.  In both cases the
    /// coordinator must re-check the overlap with the other agent before
    /// advancing again — a wait extension can create an overlap that did not
    /// exist before, and skipping past it would miss a rendezvous that happens
    /// while this agent is parked.  Returns `false` when the timeline is
    /// exhausted (no further position information exists).
    fn advance(&mut self) -> bool {
        self.fill();
        match self.pending.pop_front() {
            Some(Event::Wait { rounds }) => {
                self.seg_end += rounds;
                // absorb any further already-received waits (same node), but do
                // not block waiting for more: the extended segment must be
                // compared against the other agent first
                while let Some(&Event::Wait { rounds }) = self.pending.front() {
                    self.seg_end += rounds;
                    self.pending.pop_front();
                }
                true
            }
            Some(Event::Move { to, .. }) => {
                self.seg_start = self.seg_end;
                self.seg_end += 1;
                self.node = to;
                self.consumed_moves += 1;
                true
            }
            None => {
                // stream closed
                if self.terminated && !self.tail_emitted {
                    self.tail_emitted = true;
                    self.seg_start = self.seg_end;
                    self.seg_end = INFINITY;
                    return true;
                }
                false
            }
        }
    }

    /// Absorb any immediately available waits into the current segment so the
    /// first comparison sees a maximal run.  (Correctness does not depend on
    /// this; it only avoids degenerate 1-round segments at the start.)
    fn absorb_leading_waits(&mut self) {
        loop {
            self.fill();
            match self.pending.front() {
                Some(Event::Wait { rounds }) => {
                    self.seg_end += rounds;
                    self.pending.pop_front();
                }
                _ => break,
            }
        }
    }
}

/// Simulate the STIC with both agents running the same `program` (the
/// standard anonymous setting), up to the given global horizon.
pub fn simulate(
    g: &PortGraph,
    program: &dyn AgentProgram,
    stic: &Stic,
    horizon: Round,
) -> SimOutcome {
    simulate_with(g, program, program, stic, EngineConfig::with_horizon(horizon))
}

/// Simulate with possibly different programs for the two agents (used by the
/// leader-election reduction and by adversarial tests) and explicit engine
/// configuration.
pub fn simulate_with(
    g: &PortGraph,
    earlier_program: &dyn AgentProgram,
    later_program: &dyn AgentProgram,
    stic: &Stic,
    config: EngineConfig,
) -> SimOutcome {
    assert!(stic.earlier < g.num_nodes(), "earlier start node out of range");
    assert!(stic.later < g.num_nodes(), "later start node out of range");

    if stic.delay > config.horizon {
        return SimOutcome::no_show(config.horizon);
    }

    let use_lockstep = match config.mode {
        EngineMode::Lockstep => true,
        EngineMode::Streaming => false,
        EngineMode::Batch => {
            return crate::batch::simulate_batch_with(
                g,
                earlier_program,
                later_program,
                stic,
                config.horizon,
            );
        }
        EngineMode::Auto => config.horizon <= LOCKSTEP_AUTO_HORIZON,
    };
    if use_lockstep {
        return simulate_lockstep(g, earlier_program, later_program, stic, config.horizon);
    }

    assert!(
        config.channel_capacity > 0,
        "EngineConfig::channel_capacity must be at least 1 for the streaming engine: a capacity \
         of 0 would leave both agent threads blocked on their first send with the coordinator \
         unable to make progress"
    );

    thread::scope(|scope| {
        let (tx_a, rx_a) = bounded::<Msg>(config.channel_capacity);
        let (tx_b, rx_b) = bounded::<Msg>(config.channel_capacity);

        let earlier_horizon = config.horizon;
        let later_horizon = config.horizon - stic.delay;

        scope.spawn(move || {
            run_agent(g, earlier_program, stic.earlier, earlier_horizon, config.chunk_size, tx_a);
        });
        scope.spawn(move || {
            run_agent(g, later_program, stic.later, later_horizon, config.chunk_size, tx_b);
        });

        coordinate(rx_a, rx_b, stic, config.horizon)
    })
}

fn run_agent(
    g: &PortGraph,
    program: &dyn AgentProgram,
    start: NodeId,
    horizon: Round,
    chunk_size: usize,
    tx: Sender<Msg>,
) {
    let sink = ChannelSink::new(chunk_size, tx.clone());
    let mut nav = GraphNavigator::new(g, start, horizon, sink);
    let result = program.run(&mut nav);
    let moves = nav.moves();
    let _sink = nav.into_sink(); // flush
    let _ = tx.send(Msg::Done { terminated: result.is_ok(), moves });
}

fn coordinate(rx_a: Receiver<Msg>, rx_b: Receiver<Msg>, stic: &Stic, horizon: Round) -> SimOutcome {
    let mut a = Cursor::new(rx_a, stic.earlier, 0);
    let mut b = Cursor::new(rx_b, stic.later, stic.delay);
    a.absorb_leading_waits();
    b.absorb_leading_waits();

    loop {
        // overlap of the two current segments
        let lo = a.seg_start.max(b.seg_start);
        let hi = a.seg_end.min(b.seg_end);
        if lo < hi && a.node == b.node && lo <= horizon {
            // Counters are taken from the cursor state *at the meeting* —
            // not from the agents' final `Done` totals, which describe the
            // whole run and race ahead of the meeting round for programs
            // that finish quickly: every consumed move opened a segment at
            // or before this one, and an agent counts as terminated only
            // when the meeting lands on its parked-forever tail (exactly
            // the lockstep/batch convention, keeping the engines
            // bit-identical).  Dropping the cursors afterwards unblocks and
            // interrupts the agents if they are still running.
            return SimOutcome {
                meeting: Some(Meeting {
                    global_round: lo,
                    later_round: lo - stic.delay,
                    node: a.node,
                }),
                earlier_moves: a.consumed_moves,
                later_moves: b.consumed_moves,
                earlier_terminated: a.seg_end == INFINITY,
                later_terminated: b.seg_end == INFINITY,
                horizon,
            };
        }
        if lo > horizon {
            break;
        }
        if a.seg_end == INFINITY && b.seg_end == INFINITY {
            // both agents parked forever on different nodes
            break;
        }
        let advanced = if a.seg_end <= b.seg_end { a.advance() } else { b.advance() };
        if !advanced {
            break;
        }
    }

    // No meeting: settle the per-agent counters, then drop the receivers
    // (unblocking and interrupting the agents if they are still running).
    let (a_moves, a_term) = drain(a);
    let (b_moves, b_term) = drain(b);

    SimOutcome {
        meeting: None,
        earlier_moves: a_moves,
        later_moves: b_moves,
        earlier_terminated: a_term,
        later_terminated: b_term,
        horizon,
    }
}

/// Final `(moves, terminated)` for one cursor.
///
/// When the stream closed we have the agent's authoritative totals from its
/// `Done` message.  When the coordinator stopped first (meeting detected, or
/// the peer timeline ended), the deterministic count is the moves *consumed*
/// into the timeline — all of which completed at rounds `<=` the stopping
/// round, while every still-pending or unsent event lies beyond it.  (The
/// previous implementation returned only the count of *pending* events here,
/// dropping every move already merged into the timeline, and dead-stored the
/// pending count in the closed case.)
fn drain(cursor: Cursor) -> (u64, bool) {
    if cursor.stream_closed {
        (cursor.moves, cursor.terminated)
    } else {
        (cursor.consumed_moves, false)
    }
}

// ---------------------------------------------------------------------------
// lockstep engine
// ---------------------------------------------------------------------------
//
// The wait-compressed `Seg` timeline representation and the `RecordSink`
// recording it live in `crate::batch`, shared with the batch engine (which
// memoizes exactly the timelines this engine re-records per call).

/// Sink streaming the later agent against the recorded earlier timeline and
/// stopping (via [`Stop::Interrupted`]) at the first overlap.
///
/// `idx` is the first earlier segment that has not entirely passed before
/// the later agent's current segment; `j >= idx` is the scan position inside
/// the current segment (persisted across wait extensions so every earlier
/// segment is compared at most once per later segment it overlaps — the
/// whole merge is `O(#earlier + #later)`).
struct LockstepScan<'a> {
    earlier: &'a [Seg],
    horizon: Round,
    delay: Round,
    idx: usize,
    j: usize,
    node: NodeId,
    start: Round,
    end: Round,
    moves: u64,
    /// Set once: the meeting, the index of the earlier segment realising it,
    /// and the later move count at detection time.
    meeting: Option<(Meeting, usize, u64)>,
    /// The later agent is parked forever (its program terminated).
    on_tail: bool,
    /// A meeting was found while `on_tail` was set.
    met_on_tail: bool,
}

impl<'a> LockstepScan<'a> {
    fn new(earlier: &'a [Seg], start_node: NodeId, delay: Round, horizon: Round) -> Self {
        LockstepScan {
            earlier,
            horizon,
            delay,
            idx: 0,
            j: 0,
            node: start_node,
            start: delay,
            end: delay + 1,
            moves: 0,
            meeting: None,
            on_tail: false,
            met_on_tail: false,
        }
    }

    /// Scan the earlier segments overlapping the current later segment.
    /// Returns `true` when a meeting is recorded.
    fn check(&mut self) -> bool {
        while self.j < self.earlier.len() {
            let a = self.earlier[self.j];
            if a.start >= self.end {
                // strictly after the current segment: revisited (from `idx`)
                // if a future later segment reaches it
                break;
            }
            if a.end > self.start && a.node == self.node {
                let lo = a.start.max(self.start);
                if lo <= self.horizon {
                    self.meeting = Some((
                        Meeting { global_round: lo, later_round: lo - self.delay, node: a.node },
                        self.j,
                        self.moves,
                    ));
                    self.met_on_tail = self.on_tail;
                    return true;
                }
                // overlap entirely beyond the horizon can never become a
                // meeting (later overlaps only start later still): skip it
            }
            self.j += 1;
        }
        false
    }

    /// Begin a new later segment at `node` starting where the previous one
    /// ended.
    fn advance_segment(&mut self, node: NodeId, length: Round) {
        self.start = self.end;
        self.end += length;
        self.node = node;
        while self.idx < self.earlier.len() && self.earlier[self.idx].end <= self.start {
            self.idx += 1;
        }
        // restart the scan at `idx`: segments between `idx` and the previous
        // `j` may straddle the boundary and overlap this segment too
        self.j = self.idx;
    }
}

impl EventSink for LockstepScan<'_> {
    fn emit(&mut self, event: Event) -> Result<(), Stop> {
        match event {
            Event::Wait { rounds } => self.end += rounds,
            Event::Move { to, .. } => {
                self.moves += 1;
                self.advance_segment(to, 1);
            }
        }
        if self.check() {
            return Err(Stop::Interrupted);
        }
        Ok(())
    }

    fn finish(&mut self) {}
}

/// The single-threaded lockstep engine.  Produces outcomes identical to the
/// streaming coordinator:
///
/// * `meeting` — the earliest round at which the two position timelines
///   overlap on a node (both engines compute the unique earliest overlap);
/// * on a meeting, move counters report the edge traversals completed up to
///   the meeting round, and a `*_terminated` flag is set only when that
///   agent's program had already terminated by the meeting round;
/// * with no meeting, counters and flags are the agents' full-run totals.
fn simulate_lockstep(
    g: &PortGraph,
    earlier_program: &dyn AgentProgram,
    later_program: &dyn AgentProgram,
    stic: &Stic,
    horizon: Round,
) -> SimOutcome {
    // 1. record the earlier agent's full (horizon-capped) timeline
    let mut nav = GraphNavigator::new(g, stic.earlier, horizon, RecordSink::new(stic.earlier));
    let earlier_terminated = earlier_program.run(&mut nav).is_ok();
    let earlier_total_moves = nav.moves();
    let mut record = nav.into_sink();
    let mut tail_index = None;
    if earlier_terminated {
        // the program ended by itself: it stays at its final node forever
        let last = *record.segs.last().expect("timeline starts non-empty");
        tail_index = Some(record.segs.len());
        record.segs.push(Seg {
            node: last.node,
            start: last.end,
            end: INFINITY,
            moves_before: record.moves,
        });
    }
    let earlier_segs = record.segs;

    // 2. stream the later agent against it
    let mut scan = LockstepScan::new(&earlier_segs, stic.later, stic.delay, horizon);
    let (later_total_moves, later_terminated, scan) = if scan.check() {
        // the agents meet while the later one is still on its start segment
        (0, false, scan)
    } else {
        let later_horizon = horizon - stic.delay;
        let mut nav = GraphNavigator::new(g, stic.later, later_horizon, scan);
        let result = later_program.run(&mut nav);
        let moves = nav.moves();
        let mut scan = nav.into_sink();
        let terminated = result.is_ok();
        if terminated && scan.meeting.is_none() {
            // parked forever at the final node: one infinite tail segment
            scan.on_tail = true;
            scan.advance_segment(scan.node, INFINITY - scan.end);
            scan.check();
        }
        (moves, terminated, scan)
    };

    // 3. assemble the outcome
    match scan.meeting {
        Some((meeting, earlier_index, later_moves_at_meeting)) => SimOutcome {
            meeting: Some(meeting),
            earlier_moves: earlier_segs[earlier_index].moves_before,
            later_moves: later_moves_at_meeting,
            earlier_terminated: earlier_terminated && Some(earlier_index) == tail_index,
            later_terminated: later_terminated && scan.met_on_tail,
            horizon,
        },
        None => SimOutcome {
            meeting: None,
            earlier_moves: earlier_total_moves,
            later_moves: later_total_moves,
            earlier_terminated,
            later_terminated,
            horizon,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::navigator::Navigator;
    use anonrv_graph::generators::{oriented_ring, two_node_graph};

    /// "move every round through port 0" — the introduction's example
    /// algorithm on the two-node graph.
    fn mover() -> impl AgentProgram {
        |nav: &mut dyn Navigator| -> Result<(), Stop> {
            loop {
                nav.move_via(0)?;
            }
        }
    }

    /// Wait forever (a single maximal wait per iteration, so that waiting
    /// until an astronomically distant horizon stays O(1) events).
    fn waiter() -> impl AgentProgram {
        |nav: &mut dyn Navigator| -> Result<(), Stop> {
            loop {
                nav.wait(Round::MAX)?;
            }
        }
    }

    #[test]
    fn two_node_graph_with_odd_delay_meets_as_in_the_introduction() {
        // identical agents executing "move at each round" with delay 3 meet
        // 3 rounds after the start of the earlier agent
        let g = two_node_graph();
        let out = simulate(&g, &mover(), &Stic::new(0, 1, 3), 100);
        let m = out.meeting.expect("must meet");
        assert_eq!(m.global_round, 3);
        assert_eq!(m.later_round, 0);
    }

    #[test]
    fn two_node_graph_with_even_delay_never_meets_with_the_naive_mover() {
        let g = two_node_graph();
        let out = simulate(&g, &mover(), &Stic::new(0, 1, 2), 10_000);
        assert!(!out.met());
        // and simultaneous start can never meet regardless of the algorithm
        let out0 = simulate(&g, &mover(), &Stic::simultaneous(0, 1), 10_000);
        assert!(!out0.met());
    }

    #[test]
    fn waiting_for_mommy_meets_when_roles_differ() {
        let g = oriented_ring(6).unwrap();
        // earlier agent waits at node 0, later agent walks the ring
        let out = simulate_with(
            &g,
            &waiter(),
            &mover(),
            &Stic::new(0, 3, 2),
            EngineConfig::with_horizon(100),
        );
        let m = out.meeting.expect("walker reaches the waiter");
        assert_eq!(m.node, 0);
        assert_eq!(m.later_round, 3); // three ring steps from node 3 to node 0... via port 0: 3->4->5->0
    }

    #[test]
    fn meeting_can_happen_at_the_later_agents_start_round() {
        let g = oriented_ring(5).unwrap();
        // earlier walks; later appears right on the node the earlier agent
        // reaches at that very round
        let out = simulate(&g, &mover(), &Stic::new(0, 2, 2), 100);
        let m = out.meeting.expect("must meet immediately");
        assert_eq!(m.later_round, 0);
        assert_eq!(m.global_round, 2);
        assert_eq!(m.node, 2);
    }

    #[test]
    fn horizon_is_respected() {
        let g = oriented_ring(6).unwrap();
        // two waiters on different nodes never meet; simulation returns quickly
        let out = simulate(&g, &waiter(), &Stic::new(0, 3, 1), 1_000_000);
        assert!(!out.met());
        assert_eq!(out.horizon, 1_000_000);
    }

    #[test]
    fn both_programs_terminating_far_apart_ends_the_simulation() {
        let g = oriented_ring(8).unwrap();
        let two_steps = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            nav.move_via(0)?;
            nav.move_via(0)?;
            Ok(())
        };
        let out = simulate(&g, &two_steps, &Stic::new(0, 4, 0), Round::MAX - 1);
        assert!(!out.met());
        assert!(out.earlier_terminated);
        assert!(out.later_terminated);
    }

    #[test]
    fn terminated_programs_still_meet_later_arrivals() {
        let g = oriented_ring(6).unwrap();
        // earlier agent takes two steps to node 2 and stops forever;
        // later agent starts at node 5 much later and walks until it hits node 2.
        let two_steps = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            nav.move_via(0)?;
            nav.move_via(0)?;
            Ok(())
        };
        let out = simulate_with(
            &g,
            &two_steps,
            &mover(),
            &Stic::new(0, 5, 50),
            EngineConfig::with_horizon(10_000),
        );
        let m = out.meeting.expect("the mover reaches the parked agent");
        assert_eq!(m.node, 2);
        assert_eq!(m.later_round, 3); // 5 -> 0 -> 1 -> 2
    }

    #[test]
    fn delay_beyond_horizon_means_no_meeting() {
        let g = oriented_ring(4).unwrap();
        let out = simulate(&g, &mover(), &Stic::new(0, 2, 1_000), 10);
        assert!(!out.met());
    }

    #[test]
    fn huge_waits_do_not_hang_the_engine() {
        let g = oriented_ring(4).unwrap();
        let patient = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            nav.wait(1u128 << 90)?;
            nav.move_via(0)?;
            Ok(())
        };
        let out = simulate_with(
            &g,
            &patient,
            &waiter(),
            &Stic::new(0, 1, 0),
            EngineConfig::with_horizon(1u128 << 91),
        );
        // the earlier agent eventually steps onto node 1 where the later agent
        // has been waiting the whole time
        let m = out.meeting.expect("meet after the long wait");
        assert_eq!(m.node, 1);
        assert_eq!(m.global_round, (1u128 << 90) + 1);
    }

    #[test]
    fn same_start_node_meets_at_the_later_start() {
        let g = oriented_ring(5).unwrap();
        let out = simulate(&g, &waiter(), &Stic::new(3, 3, 7), 100);
        let m = out.meeting.unwrap();
        assert_eq!(m.global_round, 7);
        assert_eq!(m.later_round, 0);
        assert_eq!(m.node, 3);
    }

    #[test]
    fn meeting_before_a_quick_termination_reports_identical_flags_on_every_engine() {
        // the program waits 4 rounds then stops; with delay 3 the agents
        // meet at global round 3, *before* the earlier agent terminates at
        // round 4 — the streaming coordinator must not leak the agent's
        // final Done{terminated} into a meeting that precedes it
        let wait_then_stop = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            nav.wait(4)?;
            Ok(())
        };
        let g = oriented_ring(5).unwrap();
        let stic = Stic::new(0, 0, 3);
        let reference =
            simulate_with(&g, &wait_then_stop, &wait_then_stop, &stic, EngineConfig::lockstep(59));
        assert_eq!(reference.meeting.map(|m| m.global_round), Some(3));
        assert!(!reference.earlier_terminated, "the earlier agent is still mid-wait");
        assert!(!reference.later_terminated);
        for config in [EngineConfig::streaming(59), EngineConfig::batch(59)] {
            let out = simulate_with(&g, &wait_then_stop, &wait_then_stop, &stic, config);
            assert_eq!(out, reference, "{:?} diverged", config.mode);
        }
        // whereas a meeting ON the parked-forever tail keeps the flag set
        let stic = Stic::new(0, 0, 6);
        let reference =
            simulate_with(&g, &wait_then_stop, &wait_then_stop, &stic, EngineConfig::lockstep(59));
        assert_eq!(reference.meeting.map(|m| m.global_round), Some(6));
        assert!(reference.earlier_terminated, "the earlier agent parked at round 4");
        for config in [EngineConfig::streaming(59), EngineConfig::batch(59)] {
            let out = simulate_with(&g, &wait_then_stop, &wait_then_stop, &stic, config);
            assert_eq!(out, reference, "{:?} diverged", config.mode);
        }
    }

    /// Deterministic pseudo-random walker: each round takes port
    /// `hash(seed, round) % degree`, waits a couple of rounds every so often
    /// and optionally terminates after `lifetime` actions.
    struct ScriptedWalker {
        seed: u64,
        lifetime: Option<u64>,
    }

    impl AgentProgram for ScriptedWalker {
        fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
            let mut state = self.seed | 1;
            let mut actions = 0u64;
            loop {
                if let Some(lifetime) = self.lifetime {
                    if actions >= lifetime {
                        return Ok(());
                    }
                }
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let roll = state >> 33;
                if roll.is_multiple_of(5) {
                    nav.wait((roll % 7 + 1) as Round)?;
                } else {
                    nav.move_via(roll as usize % nav.degree())?;
                }
                actions += 1;
            }
        }
    }

    /// The lockstep and streaming engines must return bit-identical outcomes
    /// on a randomized sweep over STICs, delays, horizons and program
    /// behaviours (meeting and non-meeting, terminating and not).
    #[test]
    fn lockstep_and_streaming_engines_agree_on_a_randomized_stic_sweep() {
        use anonrv_graph::generators::{oriented_torus, random_connected};
        let graphs = [
            oriented_ring(6).unwrap(),
            oriented_torus(3, 4).unwrap(),
            random_connected(9, 4, 7).unwrap(),
        ];
        let mut compared = 0usize;
        let mut met = 0usize;
        for (gi, g) in graphs.iter().enumerate() {
            let n = g.num_nodes();
            for seed in 0..4u64 {
                for &delay in &[0 as Round, 1, 3, 10] {
                    for &horizon in &[25 as Round, 160] {
                        let stic = Stic::new(
                            (seed as usize * 3 + gi) % n,
                            (seed as usize * 5 + 2 * gi + 1) % n,
                            delay,
                        );
                        let lifetime = if seed % 2 == 0 { Some(12 + seed * 9) } else { None };
                        let program = ScriptedWalker { seed: seed * 77 + gi as u64, lifetime };
                        let fast = simulate_with(
                            g,
                            &program,
                            &program,
                            &stic,
                            EngineConfig::lockstep(horizon),
                        );
                        let reference = simulate_with(
                            g,
                            &program,
                            &program,
                            &stic,
                            EngineConfig::streaming(horizon),
                        );
                        assert_eq!(
                            fast, reference,
                            "engines disagree: graph {gi}, seed {seed}, {stic}, horizon {horizon}"
                        );
                        compared += 1;
                        if fast.met() {
                            met += 1;
                        }
                    }
                }
            }
        }
        // the sweep must exercise both meeting and non-meeting outcomes
        assert!(compared >= 96);
        assert!(met > 0 && met < compared, "sweep must mix outcomes, met {met}/{compared}");
    }

    /// The streaming engine must reject a zero channel capacity loudly: the
    /// vendored channel treats capacity 0 as a rendezvous channel, a regime
    /// the engine was never validated in (both agent threads could park on
    /// their first send), so it is a configuration error, not a hang.
    #[test]
    #[should_panic(expected = "channel_capacity must be at least 1")]
    fn streaming_with_zero_channel_capacity_is_rejected() {
        let g = two_node_graph();
        let config = EngineConfig { channel_capacity: 0, ..EngineConfig::streaming(1 << 20) };
        let _ = simulate_with(&g, &mover(), &mover(), &Stic::new(0, 1, 3), config);
    }

    /// Capacity 0 is only a streaming concern: the lockstep and batch paths
    /// never open a channel, so the same configuration must run fine there.
    #[test]
    fn non_streaming_modes_ignore_a_zero_channel_capacity() {
        let g = two_node_graph();
        for mode in [EngineMode::Lockstep, EngineMode::Batch] {
            let config =
                EngineConfig { channel_capacity: 0, mode, ..EngineConfig::with_horizon(100) };
            let out = simulate_with(&g, &mover(), &mover(), &Stic::new(0, 1, 3), config);
            assert_eq!(out.meeting.expect("must meet").global_round, 3);
        }
    }

    /// Minimal buffering (capacity 1, tiny chunks) must not change outcomes:
    /// streaming stays bit-identical to lockstep on meeting, non-meeting and
    /// terminating scenarios alike.
    #[test]
    fn capacity_one_streaming_matches_lockstep_outcomes() {
        use anonrv_graph::generators::oriented_torus;
        let graphs = [oriented_ring(6).unwrap(), oriented_torus(3, 4).unwrap()];
        for g in &graphs {
            let n = g.num_nodes();
            for seed in 0..3u64 {
                for &delay in &[0 as Round, 1, 4] {
                    for &horizon in &[30 as Round, 150] {
                        for &chunk_size in &[1usize, 2, 7] {
                            let stic = Stic::new(
                                (seed as usize * 2 + 1) % n,
                                (seed as usize * 5 + 3) % n,
                                delay,
                            );
                            let lifetime = (seed % 2 == 0).then_some(10 + seed * 7);
                            let program = ScriptedWalker { seed: seed * 31 + 5, lifetime };
                            let tight = EngineConfig {
                                chunk_size,
                                channel_capacity: 1,
                                ..EngineConfig::streaming(horizon)
                            };
                            let streamed = simulate_with(g, &program, &program, &stic, tight);
                            let reference = simulate_with(
                                g,
                                &program,
                                &program,
                                &stic,
                                EngineConfig::lockstep(horizon),
                            );
                            assert_eq!(
                                streamed, reference,
                                "capacity-1 streaming diverged: {stic}, horizon {horizon}, \
                                 chunk {chunk_size}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Different programs per agent (waiter vs walker) across both engines.
    #[test]
    fn lockstep_and_streaming_agree_with_asymmetric_programs() {
        let g = oriented_ring(8).unwrap();
        for delay in [0 as Round, 2, 5] {
            for horizon in [10 as Round, 200] {
                let stic = Stic::new(0, 4, delay);
                let fast =
                    simulate_with(&g, &waiter(), &mover(), &stic, EngineConfig::lockstep(horizon));
                let reference =
                    simulate_with(&g, &waiter(), &mover(), &stic, EngineConfig::streaming(horizon));
                assert_eq!(fast, reference, "delay {delay}, horizon {horizon}");
            }
        }
    }
}
