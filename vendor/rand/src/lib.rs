//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.8 API used by this workspace:
//! [`Rng::gen_range`], [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`seq::SliceRandom::shuffle`] and [`rngs::StdRng`].  The generators are
//! deterministic and of good statistical quality but are not bit-compatible
//! with upstream rand.

/// Low-level uniform 64-bit generator.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open integer ranges).
    fn gen_range<R: distributions::SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 — used to expand 64-bit seeds into full generator states.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform range sampling (the used subset of `rand::distributions`).
pub mod distributions {
    use crate::RngCore;

    /// A range that can produce uniform samples.
    pub trait SampleRange {
        /// Element type of the range.
        type Output;
        /// Draw one uniform sample.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
    }

    macro_rules! impl_sample_range {
        ($($t:ty),* $(,)?) => {$(
            impl SampleRange for core::ops::Range<$t> {
                type Output = $t;
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from an empty range");
                    let span = (self.end - self.start) as u64;
                    // Multiply-shift reduction (Lemire); bias is < 2^-64 per draw.
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start + hi as $t
                }
            }
        )*};
    }
    impl_sample_range!(u8, u16, u32, u64, usize);
}

/// Slice helpers (the used subset of `rand::seq`).
pub mod seq {
    use crate::Rng;

    /// In-place random shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = ((rng.next_u64() as u128 * (i as u128 + 1)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Standard generators (the used subset of `rand::rngs`).
pub mod rngs {
    use crate::{splitmix64, RngCore, SeedableRng};

    /// The workspace's default seeded generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_generators_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..64).all(|_| a.gen_range(0..1u64 << 40) == c.gen_range(0..1u64 << 40));
        assert!(!same);
    }

    #[test]
    fn gen_range_stays_in_range_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = rng.gen_range(0..10usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle is essentially never the identity");
    }
}
