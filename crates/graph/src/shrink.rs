//! The paper's `Shrink(u, v)` quantity (Definition 3.1).
//!
//! For a pair of nodes `u, v`, `Shrink(u, v)` is the smallest distance
//! between `α(u)` and `α(v)` over all port sequences `α` that are applicable
//! at both nodes.  Intuitively it is the closest the two agents can ever get
//! while blindly copying each other's moves — which is exactly what happens
//! when identical deterministic agents start at symmetric positions.
//!
//! Corollary 3.1 characterises feasibility through this quantity: a STIC
//! `[(u, v), δ]` with symmetric `u, v` is feasible iff `δ ≥ Shrink(u, v)`.
//!
//! The computation is a BFS over the *pair graph*: states are ordered pairs
//! `(a, b)` of nodes, the start state is `(u, v)`, and for every port `p`
//! applicable at both coordinates there is a transition to
//! `(succ(a, p), succ(b, p))`.  `Shrink` is the minimum graph distance
//! `dist(a, b)` over all reachable states.

use std::collections::{HashMap, VecDeque};

use crate::distance::bfs_distances;
use crate::graph::{NodeId, PortGraph};

/// Result of a [`shrink_detailed`] computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkResult {
    /// The value `Shrink(u, v)`.
    pub shrink: usize,
    /// A port sequence `α` witnessing the minimum, i.e.
    /// `dist(α(u), α(v)) == shrink`.  Empty when the initial distance is
    /// already minimal.
    pub witness: Vec<usize>,
    /// The pair of nodes `(α(u), α(v))` realising the minimum.
    pub closest_pair: (NodeId, NodeId),
    /// Number of pair states explored.
    pub explored_pairs: usize,
}

/// Compute `Shrink(u, v)`.
///
/// Defined for any pair; for `u == v` the result is `0`.  For symmetric
/// `u ≠ v` the result is at least `1` (a common port sequence can never merge
/// two symmetric nodes, because reversing the walk from the common endpoint
/// would have to reach both).
pub fn shrink(g: &PortGraph, u: NodeId, v: NodeId) -> Option<usize> {
    shrink_detailed(g, u, v, usize::MAX).map(|r| r.shrink)
}

/// Compute `Shrink(u, v)` but give up (returning `None`) after exploring more
/// than `max_pairs` pair states.  `shrink` uses `usize::MAX`.
pub fn shrink_bounded(g: &PortGraph, u: NodeId, v: NodeId, max_pairs: usize) -> Option<usize> {
    shrink_detailed(g, u, v, max_pairs).map(|r| r.shrink)
}

/// Full computation with a witness sequence.  Returns `None` only when the
/// `max_pairs` exploration budget is exhausted before the search completes
/// (and no distance-1 pair was found earlier).
pub fn shrink_detailed(
    g: &PortGraph,
    u: NodeId,
    v: NodeId,
    max_pairs: usize,
) -> Option<ShrinkResult> {
    if u == v {
        return Some(ShrinkResult { shrink: 0, witness: Vec::new(), closest_pair: (u, u), explored_pairs: 1 });
    }
    let n = g.num_nodes();
    // Distance oracle: full matrix for small graphs, per-source cache otherwise.
    let mut dist_cache: HashMap<NodeId, Vec<usize>> = HashMap::new();
    let dist = |a: NodeId, b: NodeId, cache: &mut HashMap<NodeId, Vec<usize>>| -> usize {
        cache.entry(a).or_insert_with(|| bfs_distances(g, a))[b]
    };

    let key = |a: NodeId, b: NodeId| a * n + b;
    let mut parent: HashMap<usize, (usize, usize)> = HashMap::new(); // pair -> (parent pair, port)
    let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
    let mut queue = VecDeque::new();
    let start = key(u, v);
    seen.insert(start);
    queue.push_back((u, v));

    let mut best = dist(u, v, &mut dist_cache);
    let mut best_pair = (u, v);
    let mut best_key = start;
    let mut explored = 0usize;

    while let Some((a, b)) = queue.pop_front() {
        explored += 1;
        if best == 1 {
            break; // cannot do better for distinct nodes
        }
        if explored > max_pairs {
            return None;
        }
        let common_ports = g.degree(a).min(g.degree(b));
        for p in 0..common_ports {
            let (a2, _) = g.succ(a, p);
            let (b2, _) = g.succ(b, p);
            let k2 = key(a2, b2);
            if seen.insert(k2) {
                parent.insert(k2, (key(a, b), p));
                let d = if a2 == b2 { 0 } else { dist(a2, b2, &mut dist_cache) };
                if d < best {
                    best = d;
                    best_pair = (a2, b2);
                    best_key = k2;
                }
                queue.push_back((a2, b2));
            }
        }
    }

    // reconstruct witness
    let mut witness = Vec::new();
    let mut cur = best_key;
    while cur != start {
        let (prev, port) = parent[&cur];
        witness.push(port);
        cur = prev;
    }
    witness.reverse();

    Some(ShrinkResult { shrink: best, witness, closest_pair: best_pair, explored_pairs: explored })
}

/// Brute-force reference: minimum of `dist(α(u), α(v))` over every applicable
/// sequence `α` of length at most `max_len`.  Exponential; used only to
/// cross-check [`shrink`] in tests.
pub fn shrink_brute_force(g: &PortGraph, u: NodeId, v: NodeId, max_len: usize) -> usize {
    use crate::traversal::apply_ports_end;
    let dist_from: Vec<Vec<usize>> = g.nodes().map(|x| bfs_distances(g, x)).collect();
    let mut best = dist_from[u][v];
    let mut stack: Vec<Vec<usize>> = vec![vec![]];
    while let Some(seq) = stack.pop() {
        let a = apply_ports_end(g, u, &seq);
        let b = apply_ports_end(g, v, &seq);
        if let (Some(a), Some(b)) = (a, b) {
            best = best.min(dist_from[a][b]);
            if seq.len() < max_len {
                let max_port = g.degree(a).min(g.degree(b));
                for p in 0..max_port {
                    let mut next = seq.clone();
                    next.push(p);
                    stack.push(next);
                }
            }
        }
    }
    best
}

/// `Shrink` for every symmetric pair of the graph, as
/// `((u, v), shrink)` entries ordered by pair.
pub fn shrink_all_symmetric_pairs(g: &PortGraph) -> Vec<((NodeId, NodeId), usize)> {
    let partition = crate::symmetry::OrbitPartition::compute(g);
    partition
        .symmetric_pairs()
        .into_iter()
        .map(|(u, v)| ((u, v), shrink(g, u, v).expect("unbounded search always completes")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance;
    use crate::generators::{
        hypercube, oriented_ring, oriented_torus, path, symmetric_double_tree,
    };

    #[test]
    fn shrink_of_a_node_with_itself_is_zero() {
        let g = oriented_ring(5).unwrap();
        assert_eq!(shrink(&g, 2, 2), Some(0));
    }

    #[test]
    fn oriented_ring_shrink_equals_distance() {
        let g = oriented_ring(8).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(shrink(&g, u, v), Some(distance(&g, u, v)));
            }
        }
    }

    #[test]
    fn oriented_torus_shrink_equals_distance() {
        // the paper's Section 3 example
        let g = oriented_torus(4, 4).unwrap();
        for u in [0usize, 3, 7] {
            for v in g.nodes() {
                assert_eq!(shrink(&g, u, v), Some(distance(&g, u, v)), "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn hypercube_shrink_equals_distance() {
        let g = hypercube(3).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(shrink(&g, u, v), Some(distance(&g, u, v)));
            }
        }
    }

    #[test]
    fn symmetric_double_tree_shrink_is_one_for_mirror_pairs() {
        // the paper's second Section 3 example: Shrink can really shrink
        let (g, mirror) = symmetric_double_tree(2, 3).unwrap();
        for v in g.nodes() {
            let m = mirror[v];
            if m != v {
                assert_eq!(shrink(&g, v, m), Some(1), "node {v} vs mirror {m}");
            }
        }
        // ... even though the distance between deep mirror pairs is large
        let far = g
            .nodes()
            .filter(|&v| mirror[v] != v)
            .max_by_key(|&v| distance(&g, v, mirror[v]))
            .unwrap();
        assert!(distance(&g, far, mirror[far]) > 1);
    }

    #[test]
    fn brute_force_agrees_on_small_graphs() {
        for g in [oriented_ring(5).unwrap(), path(5).unwrap(), hypercube(3).unwrap()] {
            for u in g.nodes() {
                for v in g.nodes() {
                    let fast = shrink(&g, u, v).unwrap();
                    let slow = shrink_brute_force(&g, u, v, 6);
                    assert_eq!(fast, slow, "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn witness_sequence_realises_the_reported_shrink() {
        use crate::traversal::apply_ports_end;
        let (g, mirror) = symmetric_double_tree(2, 2).unwrap();
        let v = g.nodes().find(|&v| mirror[v] != v && g.degree(v) == 1).unwrap();
        let r = shrink_detailed(&g, v, mirror[v], usize::MAX).unwrap();
        let a = apply_ports_end(&g, v, &r.witness).unwrap();
        let b = apply_ports_end(&g, mirror[v], &r.witness).unwrap();
        assert_eq!(distance(&g, a, b), r.shrink);
        assert_eq!((a, b), r.closest_pair);
    }

    #[test]
    fn bounded_search_gives_up_gracefully() {
        let g = oriented_torus(5, 5).unwrap();
        // a budget of a single pair cannot finish (best > 1 initially)
        assert_eq!(shrink_bounded(&g, 0, 12, 1), None);
        // a generous budget succeeds
        assert!(shrink_bounded(&g, 0, 12, 100_000).is_some());
    }

    #[test]
    fn all_symmetric_pairs_listing_is_consistent() {
        let g = oriented_ring(6).unwrap();
        let all = shrink_all_symmetric_pairs(&g);
        assert_eq!(all.len(), 6 * 5 / 2);
        for ((u, v), s) in all {
            assert_eq!(s, distance(&g, u, v));
        }
    }
}
