//! EXP-L31 — Lemma 3.1: a STIC with symmetric initial positions and delay
//! `δ < Shrink(u, v)` is infeasible.
//!
//! Infeasibility over *all* algorithms cannot be established by simulation
//! alone, so the experiment combines three pieces of evidence, mirroring the
//! proof:
//!
//! 1. **Trajectory argument** ([`anonrv_core::feasibility::symmetric_trajectories_never_meet`]):
//!    for symmetric starting nodes, any deterministic algorithm makes both
//!    agents follow the same port sequence; the checker verifies, for a
//!    battery of port sequences (including the ones our own algorithms
//!    produce), that the two trajectories never coincide when
//!    `δ < Shrink(u, v)` — the paper's contradiction.
//! 2. **Universal witness**: `UniversalRV` — which solves *every* feasible
//!    STIC — is simulated on the infeasible STIC up to the horizon at which it
//!    would have solved the feasible counterpart with the same parameters, and
//!    does not meet.
//! 3. **Classification**: the Corollary 3.1 decision procedure flags the STIC
//!    as infeasible.

use anonrv_core::feasibility::{symmetric_trajectories_never_meet, FeasibilityOracle, SticClass};
use anonrv_core::label::TrailSignature;
use anonrv_core::universal_rv::UniversalRv;
use anonrv_sim::{simulate, EngineConfig, Round, Stic};
use anonrv_store::SweepSession;
use anonrv_uxs::{LengthRule, PseudorandomUxs};

use crate::report::{compression_note, fmt_rounds, PlanCompression, Table};
use crate::runner::par_map;
use crate::suite::{all_symmetric_pairs, symmetric_pairs, symmetric_workloads, Scale};

/// Configuration of the infeasibility experiment.
#[derive(Debug, Clone)]
pub struct InfeasibleConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Maximum number of symmetric pairs per instance.
    pub max_pairs: usize,
    /// Maximum number of nodes of an instance included in the *simulation*
    /// part (the trajectory and classification checks run on everything).
    pub max_sim_nodes: usize,
    /// Maximum `UniversalRV` phase index the simulation part is willing to
    /// run: STICs whose feasible counterpart resolves in a later phase are
    /// checked analytically only.
    pub max_phase_budget: u64,
    /// UXS length rule for the simulated `UniversalRV`.
    pub uxs_rule: LengthRule,
    /// Gather evidence for **every** symmetric pair instead of capping at
    /// `max_pairs` (the analytic checks run on all of them; the
    /// size/phase-budget gates still restrict the simulated part).
    /// Exhaustive tables are what pins the infeasibility boundary exactly.
    pub exhaustive: bool,
}

impl Default for InfeasibleConfig {
    fn default() -> Self {
        InfeasibleConfig {
            scale: Scale::Quick,
            max_pairs: 4,
            max_sim_nodes: 9,
            max_phase_budget: 260,
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
            exhaustive: false,
        }
    }
}

impl InfeasibleConfig {
    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        InfeasibleConfig {
            scale: Scale::Full,
            max_pairs: 6,
            max_sim_nodes: 10,
            max_phase_budget: 700,
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
            exhaustive: false,
        }
    }
}

/// One infeasible STIC and the evidence gathered for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InfeasibleRecord {
    /// Instance label.
    pub label: String,
    /// Number of nodes.
    pub n: usize,
    /// Starting pair.
    pub pair: (usize, usize),
    /// `Shrink(u, v)`.
    pub shrink: usize,
    /// The (infeasible) delay.
    pub delta: Round,
    /// Corollary 3.1 classification says "infeasible".
    pub classified_infeasible: bool,
    /// The Lemma 3.1 trajectory argument holds on the tested port sequences.
    pub trajectories_never_meet: bool,
    /// Whether `UniversalRV` was simulated on this STIC.
    pub simulated: bool,
    /// `UniversalRV` did not meet within the horizon (only meaningful when
    /// `simulated`).
    pub universal_did_not_meet: bool,
    /// Simulation horizon used.
    pub horizon: Round,
}

impl InfeasibleRecord {
    /// All gathered evidence is consistent with Lemma 3.1.
    pub fn consistent(&self) -> bool {
        self.classified_infeasible
            && self.trajectories_never_meet
            && (!self.simulated || self.universal_did_not_meet)
    }
}

/// Port sequences exercised by the trajectory argument: constant sequences,
/// alternating sequences, and a pseudorandom one (all reduced modulo the
/// current degree during application, exactly as an agent would).
fn trajectory_probes(len: usize) -> Vec<Vec<usize>> {
    let mut probes = vec![vec![0; len], vec![1; len], vec![2; len]];
    probes.push((0..len).map(|i| i % 2).collect());
    probes.push((0..len).map(|i| (i * 7 + 3) % 5).collect());
    probes
}

/// Whether the simulation part of the evidence is gathered for a STIC of
/// `g` with the given `Shrink` (size and phase-budget gates).
fn simulation_gate(g: &anonrv_graph::PortGraph, shrink: usize, config: &InfeasibleConfig) -> bool {
    g.num_nodes() <= config.max_sim_nodes
        && anonrv_core::pairing::phase_of(g.num_nodes(), shrink.max(1), shrink.max(1) as u64)
            <= config.max_phase_budget
}

/// The simulation horizon for a gated STIC: where the *feasible*
/// counterpart (same `n`, `d`, delay = `d`) would have been solved at the
/// latest.
fn simulation_horizon(
    algo: &UniversalRv<'_, TrailSignature>,
    g: &anonrv_graph::PortGraph,
    shrink: usize,
) -> Round {
    algo.completion_horizon(g.num_nodes(), shrink, shrink as Round)
}

/// Assemble a record from the analytic checks plus the (optional)
/// simulation evidence.
#[allow(clippy::too_many_arguments)] // mirrors the fields of InfeasibleRecord
fn assemble_record(
    label: &str,
    g: &anonrv_graph::PortGraph,
    oracle: &FeasibilityOracle,
    u: usize,
    v: usize,
    shrink: usize,
    delta: Round,
    simulation: Option<(bool, Round)>,
) -> InfeasibleRecord {
    let class = oracle.classify(u, v, delta);
    let classified_infeasible = matches!(class, SticClass::SymmetricInfeasible { .. });

    let probes = trajectory_probes(3 * g.num_nodes());
    let trajectories_never_meet = probes
        .iter()
        .all(|ports| symmetric_trajectories_never_meet(g, u, v, delta as usize, ports));

    let (universal_did_not_meet, horizon) = simulation.unwrap_or((true, 0));
    InfeasibleRecord {
        label: label.to_string(),
        n: g.num_nodes(),
        pair: (u, v),
        shrink,
        delta,
        classified_infeasible,
        trajectories_never_meet,
        simulated: simulation.is_some(),
        universal_did_not_meet,
        horizon,
    }
}

/// Gather evidence for one STIC.  `oracle` must be the
/// [`FeasibilityOracle`] of `g` (built once per workload by [`collect`]).
/// One-off convenience: the sweep in [`collect`] shares one trajectory
/// cache per workload instead of simulating each STIC from scratch.
#[allow(clippy::too_many_arguments)] // mirrors the fields of InfeasibleRecord
pub fn check_stic(
    label: &str,
    g: &anonrv_graph::PortGraph,
    oracle: &FeasibilityOracle,
    u: usize,
    v: usize,
    shrink: usize,
    delta: Round,
    config: &InfeasibleConfig,
) -> InfeasibleRecord {
    let simulation = if simulation_gate(g, shrink, config) {
        let uxs = PseudorandomUxs::with_rule(config.uxs_rule);
        let scheme = TrailSignature::new(uxs);
        let algo = UniversalRv::new(&uxs, &scheme);
        let horizon = simulation_horizon(&algo, g, shrink);
        let outcome = simulate(g, &algo, &Stic::new(u, v, delta), horizon);
        Some((!outcome.met(), horizon))
    } else {
        None
    };
    assemble_record(label, g, oracle, u, v, shrink, delta, simulation)
}

/// Run the experiment and collect the records.
pub fn collect(config: &InfeasibleConfig) -> Vec<InfeasibleRecord> {
    collect_with_stats(config).0
}

/// Run the experiment and collect the records plus the per-instance
/// pair-orbit planning statistics of the simulated part.
///
/// The simulated part runs the *same* `UniversalRV` program on every gated
/// STIC of a workload, so one in-memory [`SweepSession`] per workload
/// (built at the largest gated horizon) collapses view-equivalent gated
/// STICs onto one representative each and records each canonical start
/// node's trajectory once; rayon fans out over the representative merges
/// and, separately, over the analytic checks.
pub fn collect_with_stats(
    config: &InfeasibleConfig,
) -> (Vec<InfeasibleRecord>, Vec<PlanCompression>) {
    let workloads = symmetric_workloads(config.scale);
    let uxs = PseudorandomUxs::with_rule(config.uxs_rule);
    let scheme = TrailSignature::new(uxs);
    let algo = UniversalRv::new(&uxs, &scheme);
    let mut records = Vec::new();
    let mut stats = Vec::new();
    for w in &workloads {
        let mut cases = Vec::new();
        let selected = if config.exhaustive {
            all_symmetric_pairs(&w.graph)
        } else {
            symmetric_pairs(&w.graph, config.max_pairs)
        };
        for p in selected {
            if p.shrink < 1 {
                continue;
            }
            // every delay strictly below Shrink is infeasible; probe the two
            // extremes (0 and Shrink − 1)
            let mut deltas = vec![0 as Round];
            if p.shrink >= 2 {
                deltas.push(p.shrink as Round - 1);
            }
            deltas.dedup();
            for delta in deltas {
                let horizon = simulation_gate(&w.graph, p.shrink, config)
                    .then(|| simulation_horizon(&algo, &w.graph, p.shrink));
                cases.push((p.u, p.v, p.shrink, delta, horizon));
            }
        }
        let oracle = FeasibilityOracle::new(&w.graph);
        // planned simulation of the gated STICs (one representative per
        // pair-orbit group), broadcast back to case order
        let gated: Vec<(usize, (Stic, Round))> = cases
            .iter()
            .enumerate()
            .filter_map(|(i, &(u, v, _, delta, horizon))| {
                horizon.map(|h| (i, (Stic::new(u, v, delta), h)))
            })
            .collect();
        let mut sims: Vec<Option<(bool, Round)>> = vec![None; cases.len()];
        if !gated.is_empty() {
            let max_horizon = gated.iter().map(|&(_, (_, h))| h).max().expect("gated is non-empty");
            let mut sweep =
                SweepSession::in_memory(&w.graph, &algo, EngineConfig::with_horizon(max_horizon));
            let queries: Vec<(Stic, Round)> = gated.iter().map(|&(_, q)| q).collect();
            let outcomes = sweep.simulate_cases(&queries);
            for (&(i, (_, h)), outcome) in gated.iter().zip(outcomes) {
                sims[i] = Some((!outcome.met(), h));
            }
            let mut instance = PlanCompression::new(
                w.label.clone(),
                w.n() * w.n(),
                sweep.orbits().num_pair_classes(),
            );
            instance.absorb(&sweep.stats());
            stats.push(instance);
        }
        let work: Vec<_> = cases.into_iter().zip(sims).collect();
        records.extend(par_map(work, |&((u, v, shrink, delta, _), simulation)| {
            assemble_record(&w.label, &w.graph, &oracle, u, v, shrink, delta, simulation)
        }));
    }
    (records, stats)
}

/// Run the experiment as a report table.
pub fn run(config: &InfeasibleConfig) -> Table {
    let (records, stats) = collect_with_stats(config);
    let mut table = Table::new(
        "EXP-L31",
        "Infeasibility below the Shrink threshold (Lemma 3.1)",
        &[
            "instance",
            "pair",
            "Shrink",
            "delta",
            "classified infeasible",
            "trajectory argument",
            "UniversalRV met",
            "horizon",
        ],
    );
    for r in records {
        table.push_row([
            r.label.clone(),
            format!("({}, {})", r.pair.0, r.pair.1),
            r.shrink.to_string(),
            r.delta.to_string(),
            r.classified_infeasible.to_string(),
            r.trajectories_never_meet.to_string(),
            if r.simulated {
                (!r.universal_did_not_meet).to_string()
            } else {
                "(not simulated)".to_string()
            },
            fmt_rounds(r.horizon),
        ]);
    }
    table.push_note(
        "Paper: every STIC with symmetric positions and delta < Shrink(u, v) is infeasible; \
         the expected outcome is 'classified infeasible = true', 'trajectory argument = true' and \
         'UniversalRV met = false' on every row.",
    );
    if !stats.is_empty() {
        table.push_note(compression_note(&stats));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::oriented_ring;

    #[test]
    fn every_record_of_the_quick_suite_is_consistent_with_lemma_3_1() {
        let records = collect(&InfeasibleConfig {
            // keep the unit test fast: only the smallest instances are simulated
            max_sim_nodes: 6,
            max_pairs: 2,
            ..InfeasibleConfig::default()
        });
        assert!(!records.is_empty());
        for r in &records {
            assert!(r.consistent(), "inconsistent record: {r:?}");
            assert!(r.delta < r.shrink as Round);
        }
        // at least one record must actually have been simulated
        assert!(records.iter().any(|r| r.simulated));
    }

    #[test]
    fn check_stic_flags_a_feasible_delay_as_not_infeasible() {
        // sanity: with delta == Shrink the classification flips, so the
        // experiment's precondition (delta < Shrink) matters
        let g = oriented_ring(6).unwrap();
        let oracle = FeasibilityOracle::new(&g);
        let r = check_stic("ring-6", &g, &oracle, 0, 2, 2, 2, &InfeasibleConfig::default());
        assert!(!r.classified_infeasible);
    }

    #[test]
    fn the_table_reports_every_record() {
        let config =
            InfeasibleConfig { max_sim_nodes: 0, max_pairs: 2, ..InfeasibleConfig::default() };
        let table = run(&config);
        assert_eq!(table.num_rows(), collect(&config).len());
        assert!(table.column_values("UniversalRV met").iter().all(|v| *v == "(not simulated)"));
    }
}
