//! Algorithm `UniversalRV` (Algorithm 3 of the paper): the universal
//! deterministic rendezvous algorithm that uses **no a priori knowledge** —
//! not the graph, not its size, not the initial positions, not the delay.
//!
//! The algorithm runs in phases `P = 1, 2, ...`.  Phase `P` decodes a
//! parameter triple `(n, d, δ) = g⁻¹(P)` and *assumes* that `n` is the size
//! of the graph, `d = Shrink(u, v)` (if the initial positions are symmetric)
//! and `δ` is the delay.  It then
//!
//! 1. runs the `AsymmRV` procedure for the assumed size (in the hope that the
//!    initial positions are nonsymmetric), realigns by waiting until exactly
//!    `2(P(n) + δ)` rounds have elapsed since the phase began, and
//! 2. if `δ ≥ d`, runs `SymmRV(n, d, δ)` (in the hope that the positions are
//!    symmetric with `Shrink = d`), padded to its Lemma 3.3 bound
//!    `T(n, d, δ)`.
//!
//! Every phase takes the same number of rounds for both agents and returns
//! them to their starting nodes, so the original delay is preserved from
//! phase to phase; rendezvous therefore happens at the latest in the first
//! phase whose assumed triple dominates the true one (Theorem 3.1).
//!
//! The algorithm never terminates on its own — it is interrupted by the
//! rendezvous (or, in simulation, by the horizon).

use anonrv_sim::{AgentProgram, Navigator, Round, Stop};
use anonrv_uxs::UxsProvider;

use crate::asymm_rv::AsymmRv;
use crate::bounds::{symm_rv_bound, universal_rv_completion_bound};
use crate::label::LabelScheme;
use crate::pairing::params_of_phase;
use crate::symm_rv::SymmRv;

/// `UniversalRV` as an agent program.
pub struct UniversalRv<'a, L: LabelScheme> {
    /// Source of the UXS `Y(n)` (shared by both agents by construction).
    pub uxs: &'a dyn UxsProvider,
    /// Label scheme used by the embedded `AsymmRV` substitute.
    pub scheme: &'a L,
    /// Optional safety cap on the number of phases (the program then
    /// terminates instead of looping forever); `None` reproduces the paper's
    /// "repeat forever".
    pub max_phases: Option<u64>,
}

impl<'a, L: LabelScheme> UniversalRv<'a, L> {
    /// Create the algorithm with no phase cap.
    pub fn new(uxs: &'a dyn UxsProvider, scheme: &'a L) -> Self {
        UniversalRv { uxs, scheme, max_phases: None }
    }

    /// Upper bound on the number of global rounds needed for the algorithm to
    /// finish the phase with parameters `(n, d, δ)`; adding the actual delay
    /// gives a safe simulation horizon for any STIC that this phase resolves.
    pub fn completion_horizon(&self, n: usize, d: usize, delta: Round) -> Round {
        let bound = universal_rv_completion_bound(
            n,
            d,
            delta,
            self.scheme.label_len(n),
            |n_p| self.uxs.length(n_p),
            |n_p| self.scheme.label_rounds(n_p),
        );
        bound.saturating_add(delta).saturating_add(1)
    }

    /// Execute one phase.  Returns `Err` only when the navigator stops the
    /// agent (horizon / rendezvous detected by the engine).
    fn run_phase(&self, nav: &mut dyn Navigator, phase: u64) -> Result<(), Stop> {
        let (n, d, delta) = params_of_phase(phase);
        let delta = delta as Round;
        if d >= n {
            // Shrink(u, v) is a distance in an n-node graph, hence < n:
            // the assumption of this phase is contradictory, skip it.
            return Ok(());
        }

        // --- AsymmRV part ---------------------------------------------------
        let phase_start = nav.local_time();
        let asymm = AsymmRv::new(n, delta, self.scheme, self.uxs);
        let p_bound = asymm.full_duration();
        asymm.execute(nav)?;
        // The substitute ends at the starting node, so the paper's backtrack
        // along the traversed path is a no-op here; realign exactly as the
        // paper does ("wait until 2(P(n) + δ) rounds from the start").
        let asymm_target =
            phase_start.saturating_add(2u128.saturating_mul(p_bound.saturating_add(delta)));
        let now = nav.local_time();
        if now < asymm_target {
            nav.wait(asymm_target - now)?;
        }

        // --- SymmRV part ----------------------------------------------------
        if delta >= d as Round {
            let symm_start = nav.local_time();
            let symm = SymmRv::padded(n, d, delta, self.uxs);
            symm.execute(nav)?;
            let symm_target =
                symm_start.saturating_add(symm_rv_bound(n, d, delta, self.uxs.length(n)));
            let now = nav.local_time();
            if now < symm_target {
                nav.wait(symm_target - now)?;
            }
        }
        Ok(())
    }
}

impl<L: LabelScheme> AgentProgram for UniversalRv<'_, L> {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let mut phase: u64 = 1;
        loop {
            self.run_phase(nav, phase)?;
            if let Some(cap) = self.max_phases {
                if phase >= cap {
                    return Ok(());
                }
            }
            phase += 1;
        }
    }

    fn name(&self) -> &str {
        "UniversalRV"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feasibility::{classify, SticClass};
    use crate::label::TrailSignature;
    use crate::pairing::phase_of;
    use anonrv_graph::generators::{
        lollipop, oriented_ring, symmetric_double_tree, two_node_graph,
    };
    use anonrv_graph::shrink::shrink;
    use anonrv_graph::PortGraph;
    use anonrv_sim::{record_trace, simulate, Stic};
    use anonrv_uxs::{LengthRule, PseudorandomUxs};

    /// A short UXS keeps the universal-algorithm tests fast; coverage on the
    /// tiny test graphs is guaranteed by the verifier (checked in the uxs
    /// crate and in the integration suite).
    fn short_uxs() -> PseudorandomUxs {
        PseudorandomUxs::with_rule(LengthRule::Quadratic { c: 1, min_len: 16 })
    }

    fn universal_meets(g: &PortGraph, stic: Stic, n: usize, d_hint: usize) -> Option<Round> {
        let uxs = short_uxs();
        let scheme = TrailSignature::new(uxs);
        let algo = UniversalRv::new(&uxs, &scheme);
        let horizon = algo.completion_horizon(n, d_hint.max(1), stic.delay.max(1));
        simulate(g, &algo, &stic, horizon).rendezvous_time()
    }

    #[test]
    fn universal_rv_meets_on_the_two_node_graph_with_odd_delay() {
        let g = two_node_graph();
        let t = universal_meets(&g, Stic::new(0, 1, 1), 2, 1);
        assert!(t.is_some());
    }

    #[test]
    fn universal_rv_meets_for_symmetric_positions_when_delay_at_least_shrink() {
        let g = oriented_ring(4).unwrap();
        let (u, v) = (0usize, 1usize);
        let d = shrink(&g, u, v).unwrap();
        assert_eq!(d, 1);
        let stic = Stic::new(u, v, 1);
        assert!(matches!(classify(&g, u, v, 1), SticClass::SymmetricFeasible { .. }));
        let t = universal_meets(&g, stic, 4, d);
        assert!(t.is_some(), "feasible symmetric STIC must be solved");
    }

    #[test]
    fn universal_rv_meets_for_nonsymmetric_positions_with_zero_delay() {
        let g = lollipop(3, 1).unwrap();
        let stic = Stic::new(0, 3, 0);
        assert!(matches!(classify(&g, 0, 3, 0), SticClass::Nonsymmetric));
        let t = universal_meets(&g, stic, g.num_nodes(), 1);
        assert!(t.is_some());
    }

    #[test]
    fn universal_rv_meets_on_the_double_tree_mirror_pair() {
        let (g, mirror) = symmetric_double_tree(2, 1).unwrap();
        let leaf = (0..g.num_nodes() / 2).find(|&v| g.degree(v) == 1).unwrap();
        let stic = Stic::new(leaf, mirror[leaf], 1);
        let t = universal_meets(&g, stic, g.num_nodes(), 1);
        assert!(t.is_some());
    }

    #[test]
    fn infeasible_symmetric_stic_is_not_solved_within_its_phase_bound() {
        // Lemma 3.1: symmetric with δ < Shrink is infeasible; UniversalRV (or
        // any algorithm) must not meet.  We check up to the horizon that the
        // corresponding feasible-by-parameters phase would have needed.
        let g = oriented_ring(6).unwrap();
        let (u, v) = (0usize, 3usize);
        let s = shrink(&g, u, v).unwrap();
        assert_eq!(s, 3);
        let delta = 1; // < Shrink
        assert!(matches!(classify(&g, u, v, delta as u128), SticClass::SymmetricInfeasible { .. }));
        let uxs = short_uxs();
        let scheme = TrailSignature::new(uxs);
        let algo = UniversalRv::new(&uxs, &scheme);
        let horizon = algo.completion_horizon(6, s, delta as u128);
        let out = simulate(&g, &algo, &Stic::new(u, v, delta as u128), horizon);
        assert!(!out.met(), "infeasible STIC must not be solved");
    }

    #[test]
    fn phases_have_identical_durations_for_both_agents() {
        // run the algorithm with a fixed phase cap from two different
        // starting nodes of a graph bigger than some of the phase guesses and
        // check the total durations agree — the lockstep property Theorem 3.1
        // relies on.
        let g = lollipop(4, 2).unwrap();
        let uxs = short_uxs();
        let scheme = TrailSignature::new(uxs);
        let cap = phase_of(4, 2, 2); // includes phases with several n', d', δ' combinations
        let algo = UniversalRv { uxs: &uxs, scheme: &scheme, max_phases: Some(cap) };
        let (ta, sa) = record_trace(&g, &algo, 0, Round::MAX, 1 << 24);
        let (tb, sb) = record_trace(&g, &algo, 5, Round::MAX, 1 << 24);
        assert!(ta.terminated && tb.terminated);
        assert_eq!(sa.rounds, sb.rounds);
        assert_eq!(ta.final_position(), 0);
        assert_eq!(tb.final_position(), 5);
    }

    #[test]
    fn completion_horizon_is_monotone() {
        let uxs = short_uxs();
        let scheme = TrailSignature::new(uxs);
        let algo = UniversalRv::new(&uxs, &scheme);
        assert!(algo.completion_horizon(4, 1, 1) < algo.completion_horizon(5, 1, 1));
        assert!(algo.completion_horizon(4, 1, 1) < algo.completion_horizon(4, 2, 2));
    }
}
