//! EXP-FIG1: regenerate Figure 1 (the graphs `Q_h` / `Q̂_h`) and verify the
//! construction.  Pass `--full` for the EXPERIMENTS.md configuration.

use anonrv_experiments::fig1;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full { fig1::Fig1Config::full() } else { fig1::Fig1Config::default() };
    println!("{}", fig1::run(&config));
    println!("--- Figure 1 (ASCII rendering of Q̂_2) ---");
    println!("{}", fig1::figure1_ascii());
    if std::env::args().any(|a| a == "--dot") {
        println!("--- Figure 1 (DOT rendering of Q̂_2) ---");
        println!("{}", fig1::figure1_dot());
    }
}
