//! The batch (trajectory-memoized) simulation engine for sweep workloads.
//!
//! In the paper's model an agent's walk is a *deterministic function of its
//! start node alone*: the program sees only local observations (degree,
//! entry port, its own clock), so two agents started on the same node always
//! trace the same position timeline, and the delay `δ` merely shifts when
//! the later agent's copy begins.  Sweeps that evaluate many STICs of one
//! graph therefore re-execute the same `n` trajectories over and over —
//! `O(n²·Δ)` full program runs for an all-pairs × delays sweep.
//!
//! This module computes each start node's wait-compressed timeline **once**
//! ([`Timeline::record`], the same segment representation the lockstep
//! engine materialises per call) and answers any `(u, v, δ)` STIC by merging
//! two cached timelines:
//!
//! * [`TrajectoryCache`] — per `(graph, program, horizon)` store of lazily
//!   recorded [`Timeline`]s, one per start node, thread-safe (`OnceLock`
//!   slots) so rayon sweeps can fan out over merges directly;
//! * [`merge_timelines`] — meeting detection over two cached timelines as a
//!   branch-light **two-cursor sort-merge** over the flat `starts`/`nodes`
//!   arrays: the intersection windows of the two segment sequences are
//!   visited in increasing time order, so the first equal-node window *is*
//!   the earliest meeting and a query costs `O(segments(earlier) +
//!   segments(later))` with no binary probes;
//! * [`merge_timelines_deltas`] / [`merge_timelines_deltas_with`] — a whole
//!   δ-sweep of one pair in one pass over the later timeline, probing the
//!   earlier timeline's per-node *occupancy-interval index* (CSR over
//!   struct-of-arrays interval bounds, built once at record time) through
//!   monotone per-node cursors held in a reusable [`MergeScratch`];
//! * [`merge_timelines_extend`] — the incremental mode: extend an exact
//!   horizon-`h` outcome to `H >= h` by resuming the sort-merge at the
//!   segments still open at `h` instead of restarting, which is what serves
//!   a stored outcome table recorded at a smaller horizon;
//! * `merge_timelines_reference` / `merge_timelines_deltas_reference` —
//!   the retained pre-kernel merges (binary occupancy probes), compiled only
//!   under `cfg(test)` or the `ref-oracle` feature as the oracle the
//!   differential suites pin the kernels against;
//! * [`SweepEngine`] — the sweep-facing façade: an [`EngineConfig`] plus a
//!   cache; [`EngineMode::Auto`] and [`EngineMode::Batch`] answer from the
//!   cache (constructing a `SweepEngine` *is* the caller's signal that
//!   timelines will be reused), while pinning `Streaming`/`Lockstep` falls
//!   back to per-call simulation (the differential-testing escape hatch);
//! * [`simulate_batch`] — one-shot convenience for a single STIC through
//!   the batch path.
//!
//! Outcomes are **bit-identical** to the streaming and lockstep engines
//! (asserted by `tests/property_engine_batch.rs` and the differential tests
//! below), with one contract the other engines share implicitly: agent
//! programs must propagate [`Stop`] errors outward
//! (every program in this repository does, via `?`).  That is what makes a
//! horizon-`h` run an exact prefix of a horizon-`H ≥ h` run, which in turn
//! lets one cached timeline at the cache horizon answer
//! [`TrajectoryCache::simulate_capped`] queries at any smaller horizon and
//! stand in for the later agent's `horizon − δ`-truncated execution.

use std::sync::OnceLock;

use anonrv_graph::{NodeId, PortGraph};

use crate::engine::{simulate_with, EngineConfig, EngineMode, Meeting, SimOutcome};
use crate::navigator::{AgentProgram, Event, EventSink, GraphNavigator, Stop};
use crate::stic::{Round, Stic};
use crate::symbolic::{detect_symbolic, merge_symbolic, SymbolicTimeline};

const INFINITY: Round = Round::MAX;

/// One stop of an agent's wait-compressed position timeline: the agent sits
/// at `node` during the local rounds `[start, end)`.  Consecutive segments
/// are contiguous (`end == next.start`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Seg {
    /// Node occupied throughout the segment.
    pub(crate) node: NodeId,
    /// First round of the stop (inclusive).
    pub(crate) start: Round,
    /// One past the last round of the stop.
    pub(crate) end: Round,
    /// Edge traversals completed at rounds `<= start` (the move that opened
    /// this segment included).  Constant across the segment because the
    /// agent is parked for its whole duration.
    pub(crate) moves_before: u64,
}

/// Sink recording a full wait-compressed timeline (consecutive waits merge
/// into their segment, so memory is one entry per *event*, not per round).
/// Shared with the lockstep engine, which records the earlier agent through
/// it on every call — exactly the work this module memoizes.
pub(crate) struct RecordSink {
    pub(crate) segs: Vec<Seg>,
    pub(crate) moves: u64,
}

impl RecordSink {
    pub(crate) fn new(start_node: NodeId) -> Self {
        RecordSink {
            segs: vec![Seg { node: start_node, start: 0, end: 1, moves_before: 0 }],
            moves: 0,
        }
    }
}

impl EventSink for RecordSink {
    fn emit(&mut self, event: Event) -> Result<(), Stop> {
        let last = self.segs.last_mut().expect("timeline starts non-empty");
        match event {
            Event::Wait { rounds } => last.end += rounds,
            Event::Move { to, .. } => {
                let at = last.end;
                self.moves += 1;
                self.segs.push(Seg { node: to, start: at, end: at + 1, moves_before: self.moves });
            }
        }
        Ok(())
    }

    fn finish(&mut self) {}
}

/// One stop of a timeline in its public, serialisable form: the agent sits
/// at `node` during the local rounds `[start, end)`.  This is the exact
/// information [`Timeline::from_segments`] needs to rebuild a timeline —
/// move counts are derivable (every segment after the first is opened by
/// exactly one edge traversal), so they are not part of the exchange format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSeg {
    /// Node occupied throughout the segment.
    pub node: NodeId,
    /// First local round of the stop (inclusive).
    pub start: Round,
    /// One past the last local round of the stop ([`Round::MAX`] marks the
    /// parked-forever tail of a self-terminated program).
    pub end: Round,
}

/// A start node's full position timeline under one `(graph, program,
/// horizon)` triple, in the agent's *local* rounds (round 0 = its start),
/// stored as **flat struct-of-arrays** plus the per-node occupancy-interval
/// index used by the merge kernels.
///
/// Everything else a merge needs is *positional* and derived on the fly:
/// segment `i` occupies `nodes[i]` during `[starts[i], starts[i + 1])`
/// (contiguity makes every end its successor's start, so one dense array
/// with a trailing sentinel carries both bounds); a terminated run is
/// recognisable by its `INFINITY` sentinel; and because every segment after
/// the first (tail excepted) is opened by exactly one edge traversal, move
/// counts are `min(i, total_moves)`.  These six arrays are also the exact
/// v3 on-disk payload ([`Timeline::from_parts`] rebuilds a timeline from
/// them without re-running the counting sort).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// The local horizon the run was recorded (or reconstructed) at; queries
    /// through this timeline are exact for any horizon `<=` this.
    recorded_horizon: Round,
    /// Segment starts plus one sentinel (the last segment's end; `INFINITY`
    /// when the program terminated and parks forever), length `nsegs + 1`.
    starts: Vec<Round>,
    /// Per-segment nodes, length `nsegs`.
    nodes: Vec<u32>,
    /// CSR offsets into the occupancy arrays, one slice per node (length
    /// `n + 1`).
    occ_starts: Vec<u32>,
    /// Occupancy-interval starts, grouped by node; each group is sorted by
    /// start (and, intervals being disjoint, by end).
    occ_start: Vec<Round>,
    /// Occupancy-interval ends, same indexing as `occ_start`.
    occ_end: Vec<Round>,
    /// Index of the segment realising each occupancy interval.
    occ_seg: Vec<u32>,
}

/// Owned flat arrays to rebuild a [`Timeline`] from without re-indexing —
/// the exact decoded form of the v3 on-disk timeline payload (see
/// [`Timeline::from_parts`]; the borrowed counterparts are the
/// [`Timeline::starts`]-family accessors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineParts {
    /// Segment starts plus the trailing sentinel (length `nsegs + 1`).
    pub starts: Vec<Round>,
    /// Per-segment nodes (length `nsegs`).
    pub nodes: Vec<u32>,
    /// CSR offsets of the per-node occupancy index (length `n + 1`).
    pub occ_starts: Vec<u32>,
    /// Occupancy-interval starts, grouped by node (length `nsegs`).
    pub occ_start: Vec<Round>,
    /// Occupancy-interval ends (length `nsegs`).
    pub occ_end: Vec<Round>,
    /// Segment index realising each occupancy interval (length `nsegs`).
    pub occ_seg: Vec<u32>,
}

impl Timeline {
    /// Execute `program` from `start` once, up to the local `horizon`, and
    /// record its wait-compressed timeline.
    pub fn record(
        g: &PortGraph,
        program: &dyn AgentProgram,
        start: NodeId,
        horizon: Round,
    ) -> Self {
        assert!(start < g.num_nodes(), "start node out of range");
        let mut nav = GraphNavigator::new(g, start, horizon, RecordSink::new(start));
        let terminated = program.run(&mut nav).is_ok();
        let total_moves = nav.moves();
        let record = nav.into_sink();
        let segs = record.segs;
        let finite_end = segs.last().expect("timeline starts non-empty").end;
        let mut starts: Vec<Round> = Vec::with_capacity(segs.len() + 2);
        starts.extend(segs.iter().map(|s| s.start));
        let mut nodes: Vec<u32> = segs.iter().map(|s| s.node as u32).collect();
        starts.push(finite_end);
        if terminated {
            // the program ended by itself: it stays at its final node forever
            nodes.push(*nodes.last().expect("timeline starts non-empty"));
            starts.push(INFINITY);
        }
        debug_assert_eq!(
            total_moves,
            (nodes.len() - 1 - usize::from(terminated)) as u64,
            "move counts are positional: every segment after the first (tail excepted) \
             is opened by exactly one traversal"
        );
        if anonrv_obs::enabled() {
            anonrv_obs::counter_add("record.timelines", 1);
            anonrv_obs::counter_add("record.segments", nodes.len() as u64);
            anonrv_obs::counter_add("record.moves", total_moves);
        }
        Self::assemble(g.num_nodes(), horizon, starts, nodes)
    }

    /// Rebuild a timeline from its serialisable segment list, validating
    /// every structural invariant [`Timeline::record`] guarantees: the exact
    /// inverse of [`Timeline::segments`], used by the persistent trajectory
    /// cache to restore recorded runs from disk without re-executing the
    /// program.
    ///
    /// `n` is the node count of the graph the run was recorded on (it sizes
    /// the per-node occupancy index) and `horizon` the local horizon of the
    /// recording.  Errors describe the first violated invariant; a cache
    /// treats any error as a miss and falls back to re-recording.
    pub fn from_segments(n: usize, horizon: Round, segs: Vec<TimelineSeg>) -> Result<Self, String> {
        if segs.is_empty() {
            return Err("a timeline has at least its initial segment".into());
        }
        if segs.len() > u32::MAX as usize {
            return Err("timeline exceeds the index width".into());
        }
        if segs[0].start != 0 {
            return Err("the first segment must start at local round 0".into());
        }
        for (i, s) in segs.iter().enumerate() {
            if s.node >= n {
                return Err(format!("segment {i}: node {} out of range (n = {n})", s.node));
            }
            if s.start >= s.end {
                return Err(format!("segment {i}: empty or inverted interval"));
            }
            if s.end == INFINITY && i + 1 != segs.len() {
                return Err(format!("segment {i}: infinite tail not in final position"));
            }
            if i > 0 && segs[i - 1].end != s.start {
                return Err(format!("segment {i}: not contiguous with its predecessor"));
            }
        }
        let terminated = segs.last().expect("checked non-empty").end == INFINITY;
        if terminated {
            let len = segs.len();
            if len < 2 {
                return Err("a terminated run records a finite segment before its tail".into());
            }
            if segs[len - 1].node != segs[len - 2].node {
                return Err("the parked-forever tail must stay on the final node".into());
            }
        }
        let finite_count = segs.len() - usize::from(terminated);
        let finite_end = segs[finite_count - 1].end;
        if finite_end > horizon.saturating_add(1) {
            return Err(format!(
                "finite timeline end {finite_end} exceeds the recorded horizon {horizon}"
            ));
        }
        let mut starts: Vec<Round> = Vec::with_capacity(segs.len() + 1);
        starts.extend(segs.iter().map(|s| s.start));
        starts.push(segs.last().expect("checked non-empty").end);
        let nodes: Vec<u32> = segs.iter().map(|s| s.node as u32).collect();
        Ok(Self::assemble(n, horizon, starts, nodes))
    }

    /// The serialisable segment list (the exact input
    /// [`Timeline::from_segments`] rebuilds this timeline from).
    pub fn segments(&self) -> impl Iterator<Item = TimelineSeg> + '_ {
        (0..self.nodes.len()).map(move |i| TimelineSeg {
            node: self.nodes[i] as usize,
            start: self.starts[i],
            end: self.starts[i + 1],
        })
    }

    /// The local horizon this timeline was recorded (or reconstructed) at.
    pub fn recorded_horizon(&self) -> Round {
        self.recorded_horizon
    }

    /// The exact prefix of this timeline up to a smaller local `horizon`:
    /// **bit-identical** — segments included — to recording the same program
    /// fresh at `horizon`, because programs propagate [`Stop`] and a
    /// truncated run is therefore a prefix of the longer one (see the module
    /// docs).  This is what lets a persistent store record timelines once at
    /// the largest horizon ever requested and serve every smaller one.
    ///
    /// # Panics
    /// Panics if `horizon` exceeds the recorded horizon (a longer run cannot
    /// be synthesised from a shorter recording).
    pub fn truncate(&self, horizon: Round) -> Timeline {
        assert!(
            horizon <= self.recorded_horizon,
            "cannot extend a horizon-{} recording to {horizon}",
            self.recorded_horizon
        );
        if horizon == self.recorded_horizon {
            return self.clone();
        }
        if self.terminated() && self.finite_end() <= horizon + 1 {
            // the program ended by itself within the smaller horizon: the
            // truncated run is the whole run (tail included)
            let mut t = self.clone();
            t.recorded_horizon = horizon;
            return t;
        }
        // the run is cut at `horizon`: a segment opened by a move at local
        // round `horizon` (start = horizon + 1) never happens, and the
        // segment covering `horizon` ends at horizon + 1 exactly as a
        // horizon-cut wait records it
        let keep = self.starts[..self.nodes.len()].partition_point(|&s| s <= horizon);
        let mut starts: Vec<Round> = self.starts[..keep + 1].to_vec();
        starts[keep] = starts[keep].min(horizon + 1);
        let nodes: Vec<u32> = self.nodes[..keep].to_vec();
        Self::assemble(self.num_graph_nodes(), horizon, starts, nodes)
    }

    /// Node count of the graph the timeline was recorded on.
    pub fn num_graph_nodes(&self) -> usize {
        self.occ_starts.len() - 1
    }

    /// Build the per-node occupancy index from validated `starts`/`nodes`
    /// arrays (shared by [`Timeline::record`], [`Timeline::from_segments`]
    /// and [`Timeline::truncate`]).
    fn assemble(n: usize, recorded_horizon: Round, starts: Vec<Round>, nodes: Vec<u32>) -> Self {
        let nsegs = nodes.len();
        assert!(nsegs <= u32::MAX as usize, "timeline exceeds the index width");
        debug_assert_eq!(starts.len(), nsegs + 1);

        // per-node occupancy index (counting sort into CSR layout)
        let mut occ_starts = vec![0u32; n + 1];
        for &u in &nodes {
            occ_starts[u as usize + 1] += 1;
        }
        for i in 0..n {
            occ_starts[i + 1] += occ_starts[i];
        }
        let mut cursor = occ_starts.clone();
        let mut occ_start = vec![0 as Round; nsegs];
        let mut occ_end = vec![0 as Round; nsegs];
        let mut occ_seg = vec![0u32; nsegs];
        for (i, &u) in nodes.iter().enumerate() {
            let c = cursor[u as usize] as usize;
            occ_start[c] = starts[i];
            occ_end[c] = starts[i + 1];
            occ_seg[c] = i as u32;
            cursor[u as usize] += 1;
        }

        Timeline { recorded_horizon, starts, nodes, occ_starts, occ_start, occ_end, occ_seg }
    }

    /// Rebuild a timeline from its flat v3 arrays **without re-indexing**:
    /// the arrays are installed as-is after a cheap `O(n + nsegs)` structural
    /// validation, so a warm load skips both the per-segment decode and the
    /// counting sort [`Timeline::from_segments`] pays.  The occupancy index
    /// is accepted only in the exact canonical form the counting sort
    /// produces (per-node groups in segment order with matching interval
    /// bounds), which makes the result bit-identical to
    /// `from_segments(n, horizon, self.segments())`.
    ///
    /// Errors describe the first violated invariant; a cache treats any
    /// error as a miss and falls back to re-recording.  (Byte-level
    /// corruption is the store frame checksum's job — this validation only
    /// guards the structural invariants the merge kernels rely on.)
    pub fn from_parts(n: usize, horizon: Round, parts: TimelineParts) -> Result<Self, String> {
        let TimelineParts { starts, nodes, occ_starts, occ_start, occ_end, occ_seg } = parts;
        let nsegs = nodes.len();
        if nsegs == 0 {
            return Err("a timeline has at least its initial segment".into());
        }
        if nsegs > u32::MAX as usize {
            return Err("timeline exceeds the index width".into());
        }
        if starts.len() != nsegs + 1 {
            return Err("the start array carries one sentinel past the segments".into());
        }
        if starts[0] != 0 {
            return Err("the first segment must start at local round 0".into());
        }
        for i in 0..nsegs {
            if starts[i] >= starts[i + 1] {
                return Err(format!("segment {i}: empty or inverted interval"));
            }
            if (nodes[i] as usize) >= n {
                return Err(format!("segment {i}: node {} out of range (n = {n})", nodes[i]));
            }
        }
        let terminated = starts[nsegs] == INFINITY;
        if terminated {
            if nsegs < 2 {
                return Err("a terminated run records a finite segment before its tail".into());
            }
            if nodes[nsegs - 1] != nodes[nsegs - 2] {
                return Err("the parked-forever tail must stay on the final node".into());
            }
        }
        let finite_end = if terminated { starts[nsegs - 1] } else { starts[nsegs] };
        if finite_end > horizon.saturating_add(1) {
            return Err(format!(
                "finite timeline end {finite_end} exceeds the recorded horizon {horizon}"
            ));
        }
        // the occupancy index must be exactly the counting-sort CSR
        // `assemble` builds: group sizes sum to nsegs and entries within a
        // group are distinct segments of that node in increasing order, so
        // together the groups cover every segment exactly once
        if occ_starts.len() != n + 1 || occ_starts[0] != 0 || occ_starts[n] as usize != nsegs {
            return Err("occupancy index shape does not match the segments".into());
        }
        if occ_start.len() != nsegs || occ_end.len() != nsegs || occ_seg.len() != nsegs {
            return Err("occupancy arrays must have one entry per segment".into());
        }
        for u in 0..n {
            let (s, e) = (occ_starts[u] as usize, occ_starts[u + 1] as usize);
            if s > e || e > nsegs {
                return Err("occupancy offsets must be nondecreasing".into());
            }
            let mut prev: Option<u32> = None;
            for k in s..e {
                let seg = occ_seg[k] as usize;
                if seg >= nsegs || nodes[seg] as usize != u {
                    return Err(format!(
                        "occupancy entry {k}: segment {seg} is not a visit to node {u}"
                    ));
                }
                if prev.is_some_and(|p| p >= occ_seg[k]) {
                    return Err(format!("occupancy entries of node {u} must be in segment order"));
                }
                if occ_start[k] != starts[seg] || occ_end[k] != starts[seg + 1] {
                    return Err(format!(
                        "occupancy entry {k}: interval does not match segment {seg}"
                    ));
                }
                prev = Some(occ_seg[k]);
            }
        }
        Ok(Timeline {
            recorded_horizon: horizon,
            starts,
            nodes,
            occ_starts,
            occ_start,
            occ_end,
            occ_seg,
        })
    }

    /// Number of recorded segments (including the infinite tail, if any).
    pub fn num_segments(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the program terminated by itself within the horizon
    /// (recognisable by the `INFINITY` sentinel of the parked-forever tail).
    pub fn terminated(&self) -> bool {
        *self.starts.last().expect("timeline starts non-empty") == INFINITY
    }

    /// Full-run edge-traversal total: every segment after the first (tail
    /// excepted) is opened by exactly one traversal, so the count is
    /// positional.
    pub fn total_moves(&self) -> u64 {
        (self.nodes.len() - 1 - usize::from(self.terminated())) as u64
    }

    /// End of the last *finite* segment — one past the last local round the
    /// recorded run actually executed.
    fn finite_end(&self) -> Round {
        let nsegs = self.nodes.len();
        if self.terminated() {
            self.starts[nsegs - 1]
        } else {
            self.starts[nsegs]
        }
    }

    /// Index of the infinite tail segment, if any.
    #[inline]
    fn tail_index(&self) -> Option<usize> {
        self.terminated().then(|| self.nodes.len() - 1)
    }

    /// Edge traversals completed at rounds `<= starts[i]` (the move that
    /// opened segment `i` included) — positional, see [`Self::total_moves`].
    #[inline]
    fn moves_before(&self, i: usize) -> u64 {
        (i as u64).min(self.total_moves())
    }

    /// Segment starts plus the trailing sentinel (v3 payload array).
    pub fn starts(&self) -> &[Round] {
        &self.starts
    }

    /// Per-segment nodes (v3 payload array).
    pub fn seg_nodes(&self) -> &[u32] {
        &self.nodes
    }

    /// CSR offsets of the per-node occupancy index (v3 payload array).
    pub fn occ_starts(&self) -> &[u32] {
        &self.occ_starts
    }

    /// Occupancy-interval starts, grouped by node (v3 payload array).
    pub fn occ_interval_starts(&self) -> &[Round] {
        &self.occ_start
    }

    /// Occupancy-interval ends, grouped by node (v3 payload array).
    pub fn occ_interval_ends(&self) -> &[Round] {
        &self.occ_end
    }

    /// Segment index realising each occupancy interval (v3 payload array).
    pub fn occ_segs(&self) -> &[u32] {
        &self.occ_seg
    }

    /// Index of the segment occupying `local` (which must be covered: below
    /// [`Self::finite_end`], or anywhere when the timeline has a tail).
    fn seg_at(&self, local: Round) -> usize {
        let nsegs = self.nodes.len();
        let idx = self.starts[1..=nsegs].partition_point(|&end| end <= local);
        debug_assert!(idx < nsegs, "round {local} beyond the recorded timeline");
        idx
    }

    /// `(moves, terminated)` of the same program run truncated at local
    /// horizon `cap <=` the recorded horizon — exact because programs
    /// propagate `Stop`, making the truncated run a prefix of this one.
    fn totals_up_to(&self, cap: Round) -> (u64, bool) {
        if cap >= self.finite_end() - 1 {
            (self.total_moves(), self.terminated())
        } else {
            (self.moves_before(self.seg_at(cap)), false)
        }
    }

    /// Earliest visit to `node` within the local window `[lo, hi)`: the
    /// occupancy-interval index finds the first interval at `node` ending
    /// after `lo` in one binary search (intervals per node are disjoint, so
    /// sorted by `start` *and* by `end`).  Returns the segment index and the
    /// first shared round.  (The sort-merge kernels track this implicitly
    /// with monotone cursors; the binary probe survives for the reference
    /// oracle.)
    #[cfg(any(test, feature = "ref-oracle"))]
    #[inline]
    fn first_visit(&self, node: NodeId, lo: Round, hi: Round) -> Option<(usize, Round)> {
        let s = self.occ_starts[node] as usize;
        let e = self.occ_starts[node + 1] as usize;
        let k = s + self.occ_end[s..e].partition_point(|&end| end <= lo);
        if k == e {
            return None;
        }
        (self.occ_start[k] < hi).then(|| (self.occ_seg[k] as usize, self.occ_start[k].max(lo)))
    }
}

/// Merge two cached timelines into the [`SimOutcome`] of the STIC that
/// starts the `earlier` timeline's program at global round 0 and the
/// `later` one's at `stic.delay`, up to the global `horizon` — bit-identical
/// to running the streaming or lockstep engine on the same STIC.
///
/// Both timelines must have been recorded with a local horizon of at least
/// `horizon` (the cache horizon); the merge clips them down to the query,
/// which is exact because truncated runs are prefixes (see the module docs).
///
/// The kernel is a branch-light two-cursor sort-merge over the flat
/// `starts`/`nodes` arrays (see `merge_forward`): `O(segments(earlier) +
/// segments(later))` with no binary probes, and the first equal-node window
/// it finds **is** the earliest meeting because the intersection windows are
/// visited in increasing time order.
pub fn merge_timelines(
    earlier: &Timeline,
    later: &Timeline,
    stic: &Stic,
    horizon: Round,
) -> SimOutcome {
    if anonrv_obs::enabled() {
        anonrv_obs::counter_add("merge.calls", 1);
        // upper bound: the two-cursor sweep visits at most every segment
        anonrv_obs::counter_add("merge.segments", (earlier.nodes.len() + later.nodes.len()) as u64);
    }
    if stic.delay > horizon {
        // the later agent never even appears within the horizon
        return SimOutcome::no_show(horizon);
    }
    merge_forward(earlier, later, stic.delay, 0, 0, horizon)
}

/// The two-cursor sweep behind [`merge_timelines`] and
/// [`merge_timelines_extend`]: advance cursors `i` (earlier) and `j`
/// (later) through the segment arrays, comparing the earlier segment's
/// global interval `[sa[i], sa[i+1])` against the later segment's
/// delay-shifted, horizon-clipped interval; the nonempty intersections are
/// visited in strictly increasing time order, so the first one whose nodes
/// agree yields the earliest meeting.  The per-step cursor advance is a
/// pair of flag additions — no data-dependent branch beyond the meeting
/// test itself.
fn merge_forward(
    earlier: &Timeline,
    later: &Timeline,
    delay: Round,
    mut i: usize,
    mut j: usize,
    horizon: Round,
) -> SimOutcome {
    // the later agent's run is truncated at this local round
    let later_cap = horizon - delay;
    let cap1 = later_cap.saturating_add(1);
    let na = earlier.nodes.len();
    let nb = later.nodes.len();
    let sa = earlier.starts.as_slice();
    let sb = later.starts.as_slice();
    while i < na && j < nb {
        let b_start = sb[j];
        if b_start > later_cap {
            break;
        }
        let a_hi = sa[i + 1];
        // clip the later window at the cap *before* shifting: b_start <=
        // later_cap keeps the shift overflow-free and bounds meetings by
        // the horizon (hi <= horizon + 1)
        let b_hi = sb[j + 1].min(cap1).saturating_add(delay);
        let lo = sa[i].max(b_start + delay);
        let hi = a_hi.min(b_hi);
        if lo < hi && earlier.nodes[i] == later.nodes[j] {
            return SimOutcome {
                meeting: Some(Meeting {
                    global_round: lo,
                    later_round: lo - delay,
                    node: earlier.nodes[i] as usize,
                }),
                earlier_moves: earlier.moves_before(i),
                later_moves: later.moves_before(j),
                earlier_terminated: earlier.tail_index() == Some(i),
                later_terminated: later.tail_index() == Some(j),
                horizon,
            };
        }
        i += usize::from(a_hi <= b_hi);
        j += usize::from(b_hi <= a_hi);
    }
    let (earlier_moves, earlier_terminated) = earlier.totals_up_to(horizon);
    let (later_moves, later_terminated) = later.totals_up_to(later_cap);
    SimOutcome {
        meeting: None,
        earlier_moves,
        later_moves,
        earlier_terminated,
        later_terminated,
        horizon,
    }
}

/// Extend a horizon-`prior.horizon` merge result of the same
/// `(earlier, later, stic)` triple to a larger `horizon` **without
/// restarting**: a met outcome is final (only the reporting horizon
/// changes), and an unmet one resumes the sort-merge at the segments still
/// open at the already-answered horizon — the prior outcome being exact
/// there guarantees no equal-node window opens at or before it.
/// Bit-identical to `merge_timelines(earlier, later, stic, horizon)`.
pub fn merge_timelines_extend(
    earlier: &Timeline,
    later: &Timeline,
    stic: &Stic,
    prior: &SimOutcome,
    horizon: Round,
) -> SimOutcome {
    assert!(
        prior.horizon <= horizon,
        "cannot extend a horizon-{} outcome down to {horizon}",
        prior.horizon
    );
    if anonrv_obs::enabled() {
        anonrv_obs::counter_add("merge.extend.calls", 1);
    }
    if prior.meeting.is_some() {
        return SimOutcome { horizon, ..*prior };
    }
    if stic.delay > horizon {
        return SimOutcome::no_show(horizon);
    }
    if stic.delay > prior.horizon {
        // the prior run never placed the later agent: nothing to resume from
        return merge_timelines(earlier, later, stic, horizon);
    }
    let h = prior.horizon;
    let na = earlier.nodes.len();
    let nb = later.nodes.len();
    // resume at the segments still open at `h`: every skipped pair's
    // intersection closes at or before `h`, where the (exact) prior outcome
    // already ruled out a meeting
    let i = earlier.starts[1..=na].partition_point(|&end| end <= h);
    let j = later.starts[1..=nb].partition_point(|&end| end <= h - stic.delay);
    let out = merge_forward(earlier, later, stic.delay, i, j, horizon);
    debug_assert!(
        out.meeting.is_none_or(|m| m.global_round > h),
        "a meeting at or before the prior horizon contradicts the prior outcome"
    );
    out
}

/// Reusable scratch space for [`merge_timelines_deltas_with`]: the per-node
/// occupancy cursors that replace the old per-segment binary probes.  One
/// scratch serves any number of consecutive merges (sweeps keep one per
/// pair group, so a pair's whole δ-grid shares it); after the first few
/// calls it never allocates again.
///
/// The scratch also **batches kernel telemetry**: per-merge counter
/// increments accumulate in plain local fields and reach the metrics
/// registry as one `counter_add` per metric when the scratch is dropped (or
/// via [`MergeScratch::flush_metrics`]), so enabling metrics costs the hot
/// merge loop a handful of register additions instead of a registry
/// transaction per STIC.
#[derive(Debug, Default)]
pub struct MergeScratch {
    /// Per-node cursor into the earlier timeline's occupancy arrays,
    /// re-seeded from its CSR offsets at the start of every merge.
    cursors: Vec<u32>,
    /// Locally accumulated kernel counters, flushed in batch.
    pending: PendingMergeCounters,
}

/// Locally accumulated values of the `merge.*` counters (same metric names
/// and semantics as before; only the flush granularity changed).
#[derive(Debug, Default)]
struct PendingMergeCounters {
    delta_passes: u64,
    deltas: u64,
    segments: u64,
    scratch_reuse: u64,
}

impl MergeScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MergeScratch::default()
    }

    /// Push the locally accumulated `merge.*` counters to the metrics
    /// registry and reset them — one batched add per metric per pass
    /// instead of several per merged STIC.  Called automatically on drop.
    pub fn flush_metrics(&mut self) {
        let pending = std::mem::take(&mut self.pending);
        if !anonrv_obs::enabled() {
            return;
        }
        if pending.delta_passes > 0 {
            anonrv_obs::counter_add("merge.delta_passes", pending.delta_passes);
        }
        if pending.deltas > 0 {
            anonrv_obs::counter_add("merge.deltas", pending.deltas);
        }
        if pending.segments > 0 {
            anonrv_obs::counter_add("merge.segments", pending.segments);
        }
        if pending.scratch_reuse > 0 {
            anonrv_obs::counter_add("merge.scratch_reuse", pending.scratch_reuse);
        }
    }
}

impl Drop for MergeScratch {
    fn drop(&mut self) {
        self.flush_metrics();
    }
}

/// Merge two cached timelines for a whole **delay sweep** of one `(u, v)`
/// pair: one pass over the later timeline resolves every `δ` in `deltas` at
/// once, returning outcomes in input order, each bit-identical to
/// [`merge_timelines`] at that delay.  Allocates its scratch internally;
/// sweeps that merge many pairs should hold a [`MergeScratch`] and call
/// [`merge_timelines_deltas_with`].
pub fn merge_timelines_deltas(
    earlier: &Timeline,
    later: &Timeline,
    deltas: &[Round],
    horizon: Round,
) -> Vec<SimOutcome> {
    merge_timelines_deltas_with(&mut MergeScratch::new(), earlier, later, deltas, horizon)
}

/// [`merge_timelines_deltas`] with caller-owned scratch space.
///
/// This is the sweep workloads' inner loop: all of a pair's delays share
/// the occupancy lookups and the later-timeline sweep, so `k` delays cost
/// about one merge instead of `k`.  The earlier timeline is probed through
/// **monotone per-node cursors** (seeded from its CSR offsets, advanced
/// only forward as the later sweep's lower bound grows), so the whole
/// sweep is `O(segments(later) + occupancy entries touched)` with no
/// per-segment binary search.
pub fn merge_timelines_deltas_with(
    scratch: &mut MergeScratch,
    earlier: &Timeline,
    later: &Timeline,
    deltas: &[Round],
    horizon: Round,
) -> Vec<SimOutcome> {
    // the fast path needs ascending delays; reorder through a sorted copy
    // otherwise (sweeps pass ascending delay lists, so this never triggers
    // on the hot path)
    if !deltas.windows(2).all(|w| w[0] <= w[1]) {
        let mut order: Vec<usize> = (0..deltas.len()).collect();
        order.sort_by_key(|&i| deltas[i]);
        let sorted: Vec<Round> = order.iter().map(|&i| deltas[i]).collect();
        let outcomes = merge_timelines_deltas_with(scratch, earlier, later, &sorted, horizon);
        let mut out = vec![outcomes[0]; deltas.len()];
        for (k, &i) in order.iter().enumerate() {
            out[i] = outcomes[k];
        }
        return out;
    }

    // accumulate locally; the scratch flushes in batch (see `MergeScratch`)
    if anonrv_obs::enabled() {
        scratch.pending.delta_passes += 1;
        scratch.pending.deltas += deltas.len() as u64;
        scratch.pending.segments += (earlier.nodes.len() + later.nodes.len()) as u64;
        if scratch.cursors.capacity() > 0 {
            scratch.pending.scratch_reuse += 1;
        }
    }

    let horizon1 = horizon.saturating_add(1);
    // delays beyond the horizon sit at the tail and are never swept
    let active = deltas.partition_point(|&d| d <= horizon);

    // per-active-delay best meeting: (meeting round, earlier seg, later seg)
    let mut best: Vec<(Round, usize, usize)> = vec![(INFINITY, 0, 0); active];
    if active > 0 {
        let delta_min = deltas[0];
        let delta_max = deltas[active - 1];
        let n = earlier.num_graph_nodes();
        // seed the per-node cursors at each occupancy group's start; the
        // probe threshold `b_start + delta_min` only grows over the sweep,
        // so every cursor advances monotonically (amortised linear)
        scratch.cursors.clear();
        scratch.cursors.extend_from_slice(&earlier.occ_starts[..n]);
        // the later sweep may stop once every delay's window is closed:
        // segment j is useful for delay δ only while start + δ < min(best_lo,
        // horizon + 1)
        let stop_at = |best: &[(Round, usize, usize)]| -> Round {
            deltas[..active]
                .iter()
                .zip(best)
                .map(|(&d, &(lo, ..))| lo.min(horizon1).saturating_sub(d))
                .max()
                .expect("active is non-zero")
        };
        let mut stop = stop_at(&best);
        for jb in 0..later.nodes.len() {
            let b_start = later.starts[jb];
            if b_start >= stop {
                break;
            }
            let node = later.nodes[jb] as usize;
            let e = earlier.occ_starts[node + 1] as usize;
            let mut c = scratch.cursors[node] as usize;
            let threshold = b_start + delta_min;
            while c < e && earlier.occ_end[c] <= threshold {
                c += 1;
            }
            scratch.cursors[node] = c as u32;
            if c == e {
                continue; // the earlier agent never gets here again
            }
            let b_end = later.starts[jb + 1];
            // An earlier visit `[occ_start, occ_end)` overlaps this (parked)
            // later segment under delay δ iff
            //   occ_end > b_start + δ  and  occ_start < b_end + δ,
            // i.e. for δ in [(occ_start+1) − b_end, occ_end − b_start);
            // the horizon additionally caps δ ≤ horizon − b_start.  Each
            // entry is charged once for the whole delay range instead of
            // being re-probed per delay.
            // delta_cap > 0: b_start <= horizon here
            let delta_cap = horizon1 - b_start;
            // a useful entry must satisfy occ_start < b_end + δ for some
            // valid δ *and* occ_start <= horizon (a meeting round never
            // exceeds the horizon); entries are sorted by start, so the
            // first one beyond either bound ends the scan
            let entry_stop = b_end.saturating_add(delta_max.min(delta_cap - 1)).min(horizon1);
            let mut updated = false;
            for k in c..e {
                let e_start = earlier.occ_start[k];
                if e_start >= entry_stop {
                    break;
                }
                let d_lo = (e_start + 1).saturating_sub(b_end).max(delta_min);
                // d_hi is exclusive
                let d_hi = (earlier.occ_end[k] - b_start).min(delta_cap);
                // the active delays inside [d_lo, d_hi) — a handful, so a
                // linear scan beats binary search
                for (slot, &delta) in deltas[..active].iter().enumerate() {
                    if delta >= d_hi {
                        break;
                    }
                    if delta < d_lo {
                        continue;
                    }
                    let at = e_start.max(b_start + delta);
                    if at < best[slot].0 {
                        best[slot] = (at, earlier.occ_seg[k] as usize, jb);
                        updated = true;
                    }
                }
            }
            if updated {
                stop = stop_at(&best);
            }
        }
    }

    // assemble outcomes in input order
    deltas
        .iter()
        .enumerate()
        .map(|(slot, &delta)| {
            if slot >= active {
                // the later agent never even appears within the horizon
                return SimOutcome::no_show(horizon);
            }
            let (at, si, jb) = best[slot];
            if at < INFINITY {
                SimOutcome {
                    meeting: Some(Meeting {
                        global_round: at,
                        later_round: at - delta,
                        node: earlier.nodes[si] as usize,
                    }),
                    earlier_moves: earlier.moves_before(si),
                    later_moves: later.moves_before(jb),
                    earlier_terminated: earlier.tail_index() == Some(si),
                    later_terminated: later.tail_index() == Some(jb),
                    horizon,
                }
            } else {
                let (earlier_moves, earlier_terminated) = earlier.totals_up_to(horizon);
                let (later_moves, later_terminated) = later.totals_up_to(horizon - delta);
                SimOutcome {
                    meeting: None,
                    earlier_moves,
                    later_moves,
                    earlier_terminated,
                    later_terminated,
                    horizon,
                }
            }
        })
        .collect()
}

/// [`merge_timelines_deltas`] against a **node-relabelled** later timeline,
/// without materialising it: outcomes are bit-identical to merging
/// `earlier` with a copy of `later` whose `nodes` array was rewritten
/// through `map` (same `starts`, same segment structure).
///
/// This is the inner loop of **streaming all-pairs planning** on
/// vertex-transitive graphs: there, the walk from node `φ(0)` is the
/// `φ`-image of the walk from node `0` (the program observes only degrees,
/// entry ports and its clock — all `φ`-invariant), so the later agent's
/// timeline for class `c` is exactly `timeline(0)` with nodes mapped
/// through the group element `c`.  One recorded timeline serves *all* `n`
/// classes, and a million class merges share it immutably with **zero
/// per-merge setup**: the kernel is deliberately scratch-free (a binary
/// probe into the earlier occupancy index per later segment, exactly the
/// retained reference kernel's strategy) because re-seeding per-node
/// cursors would cost `O(n)` per class — fatal at `n = 2^20` classes.
///
/// Meeting nodes come from `earlier`'s segments and are therefore already
/// true graph nodes; only the later side is viewed through `map`.  The
/// kernel emits no per-call telemetry — streaming drivers report per-pass
/// aggregates instead.
pub fn merge_timelines_deltas_mapped(
    earlier: &Timeline,
    later: &Timeline,
    map: impl Fn(usize) -> usize,
    deltas: &[Round],
    horizon: Round,
) -> Vec<SimOutcome> {
    if !deltas.windows(2).all(|w| w[0] <= w[1]) {
        let mut order: Vec<usize> = (0..deltas.len()).collect();
        order.sort_by_key(|&i| deltas[i]);
        let sorted: Vec<Round> = order.iter().map(|&i| deltas[i]).collect();
        let outcomes = merge_deltas_mapped_sorted(earlier, later, &map, &sorted, horizon);
        let mut out = vec![outcomes[0]; deltas.len()];
        for (k, &i) in order.iter().enumerate() {
            out[i] = outcomes[k];
        }
        return out;
    }
    merge_deltas_mapped_sorted(earlier, later, &map, deltas, horizon)
}

/// The sorted-deltas body of [`merge_timelines_deltas_mapped`].
fn merge_deltas_mapped_sorted<F: Fn(usize) -> usize>(
    earlier: &Timeline,
    later: &Timeline,
    map: &F,
    deltas: &[Round],
    horizon: Round,
) -> Vec<SimOutcome> {
    let horizon1 = horizon.saturating_add(1);
    let active = deltas.partition_point(|&d| d <= horizon);
    let mut best: Vec<(Round, usize, usize)> = vec![(INFINITY, 0, 0); active];
    if active > 0 {
        let delta_min = deltas[0];
        let delta_max = deltas[active - 1];
        let stop_at = |best: &[(Round, usize, usize)]| -> Round {
            deltas[..active]
                .iter()
                .zip(best)
                .map(|(&d, &(lo, ..))| lo.min(horizon1).saturating_sub(d))
                .max()
                .expect("active is non-zero")
        };
        let mut stop = stop_at(&best);
        for jb in 0..later.nodes.len() {
            let b_start = later.starts[jb];
            if b_start >= stop {
                break;
            }
            // the only divergence from the unmapped kernels: the later
            // agent parks on the *image* of its recorded node
            let node = map(later.nodes[jb] as usize);
            let s = earlier.occ_starts[node] as usize;
            let e = earlier.occ_starts[node + 1] as usize;
            if s == e {
                continue; // the earlier agent never visits this node at all
            }
            let b_end = later.starts[jb + 1];
            let delta_cap = horizon1 - b_start;
            let k = s + earlier.occ_end[s..e].partition_point(|&end| end <= b_start + delta_min);
            let entry_stop = b_end.saturating_add(delta_max.min(delta_cap - 1)).min(horizon1);
            let mut updated = false;
            for kk in k..e {
                let e_start = earlier.occ_start[kk];
                if e_start >= entry_stop {
                    break;
                }
                let d_lo = (e_start + 1).saturating_sub(b_end).max(delta_min);
                let d_hi = (earlier.occ_end[kk] - b_start).min(delta_cap);
                for (slot, &delta) in deltas[..active].iter().enumerate() {
                    if delta >= d_hi {
                        break;
                    }
                    if delta < d_lo {
                        continue;
                    }
                    let at = e_start.max(b_start + delta);
                    if at < best[slot].0 {
                        best[slot] = (at, earlier.occ_seg[kk] as usize, jb);
                        updated = true;
                    }
                }
            }
            if updated {
                stop = stop_at(&best);
            }
        }
    }

    deltas
        .iter()
        .enumerate()
        .map(|(slot, &delta)| {
            if slot >= active {
                return SimOutcome::no_show(horizon);
            }
            let (at, si, jb) = best[slot];
            if at < INFINITY {
                SimOutcome {
                    meeting: Some(Meeting {
                        global_round: at,
                        later_round: at - delta,
                        node: earlier.nodes[si] as usize,
                    }),
                    earlier_moves: earlier.moves_before(si),
                    later_moves: later.moves_before(jb),
                    earlier_terminated: earlier.tail_index() == Some(si),
                    later_terminated: later.tail_index() == Some(jb),
                    horizon,
                }
            } else {
                let (earlier_moves, earlier_terminated) = earlier.totals_up_to(horizon);
                let (later_moves, later_terminated) = later.totals_up_to(horizon - delta);
                SimOutcome {
                    meeting: None,
                    earlier_moves,
                    later_moves,
                    earlier_terminated,
                    later_terminated,
                    horizon,
                }
            }
        })
        .collect()
}

/// The retained pre-kernel [`merge_timelines`]: sweeps the later agent's
/// segments and resolves each against the earlier timeline's occupancy
/// index with a **binary probe** per segment.  Kept solely as the reference
/// oracle the differential suites pin the sort-merge kernel against
/// (`ref-oracle` feature, always on under `cfg(test)`).
#[cfg(any(test, feature = "ref-oracle"))]
pub fn merge_timelines_reference(
    earlier: &Timeline,
    later: &Timeline,
    stic: &Stic,
    horizon: Round,
) -> SimOutcome {
    if stic.delay > horizon {
        // the later agent never even appears within the horizon
        return SimOutcome::no_show(horizon);
    }
    let delay = stic.delay;
    // the later agent's run is truncated at this local round
    let later_cap = horizon - delay;

    // Sweep the later agent's segments in time order; every segment is a
    // parked interval, so the earliest meeting inside it is the earlier
    // agent's first visit to that node within the (global) window.  Stop as
    // soon as the next window opens at or after the best meeting so far.
    let mut best_lo = INFINITY;
    let mut best: Option<(usize, usize)> = None;
    let cap1 = later_cap.saturating_add(1);
    for jb in 0..later.nodes.len() {
        let b_start = later.starts[jb];
        if b_start > later_cap {
            break;
        }
        let lo = b_start + delay; // <= horizon, exact
        if lo >= best_lo {
            break;
        }
        let hi = later.starts[jb + 1].min(cap1).saturating_add(delay);
        if let Some((si, at)) = earlier.first_visit(later.nodes[jb] as usize, lo, hi) {
            if at < best_lo {
                best_lo = at;
                best = Some((si, jb));
            }
        }
    }

    match best.map(|(si, jb)| (best_lo, si, jb)) {
        Some((at, si, jb)) => SimOutcome {
            meeting: Some(Meeting {
                global_round: at,
                later_round: at - delay,
                node: earlier.nodes[si] as usize,
            }),
            earlier_moves: earlier.moves_before(si),
            later_moves: later.moves_before(jb),
            earlier_terminated: earlier.tail_index() == Some(si),
            later_terminated: later.tail_index() == Some(jb),
            horizon,
        },
        None => {
            let (earlier_moves, earlier_terminated) = earlier.totals_up_to(horizon);
            let (later_moves, later_terminated) = later.totals_up_to(later_cap);
            SimOutcome {
                meeting: None,
                earlier_moves,
                later_moves,
                earlier_terminated,
                later_terminated,
                horizon,
            }
        }
    }
}

/// The retained pre-kernel [`merge_timelines_deltas`]: identical δ-interval
/// arithmetic, but every later segment re-probes the occupancy index with a
/// binary search instead of the monotone cursors.  Reference oracle for the
/// differential suites (`ref-oracle` feature, always on under `cfg(test)`).
#[cfg(any(test, feature = "ref-oracle"))]
pub fn merge_timelines_deltas_reference(
    earlier: &Timeline,
    later: &Timeline,
    deltas: &[Round],
    horizon: Round,
) -> Vec<SimOutcome> {
    if !deltas.windows(2).all(|w| w[0] <= w[1]) {
        let mut order: Vec<usize> = (0..deltas.len()).collect();
        order.sort_by_key(|&i| deltas[i]);
        let sorted: Vec<Round> = order.iter().map(|&i| deltas[i]).collect();
        let outcomes = merge_timelines_deltas_reference(earlier, later, &sorted, horizon);
        let mut out = vec![outcomes[0]; deltas.len()];
        for (k, &i) in order.iter().enumerate() {
            out[i] = outcomes[k];
        }
        return out;
    }

    let horizon1 = horizon.saturating_add(1);
    let active = deltas.partition_point(|&d| d <= horizon);
    let mut best: Vec<(Round, usize, usize)> = vec![(INFINITY, 0, 0); active];
    if active > 0 {
        let delta_min = deltas[0];
        let delta_max = deltas[active - 1];
        let stop_at = |best: &[(Round, usize, usize)]| -> Round {
            deltas[..active]
                .iter()
                .zip(best)
                .map(|(&d, &(lo, ..))| lo.min(horizon1).saturating_sub(d))
                .max()
                .expect("active is non-zero")
        };
        let mut stop = stop_at(&best);
        for jb in 0..later.nodes.len() {
            let b_start = later.starts[jb];
            if b_start >= stop {
                break;
            }
            let node = later.nodes[jb] as usize;
            let s = earlier.occ_starts[node] as usize;
            let e = earlier.occ_starts[node + 1] as usize;
            if s == e {
                continue; // the earlier agent never visits this node at all
            }
            let b_end = later.starts[jb + 1];
            let delta_cap = horizon1 - b_start;
            let k = s + earlier.occ_end[s..e].partition_point(|&end| end <= b_start + delta_min);
            let entry_stop = b_end.saturating_add(delta_max.min(delta_cap - 1)).min(horizon1);
            let mut updated = false;
            for kk in k..e {
                let e_start = earlier.occ_start[kk];
                if e_start >= entry_stop {
                    break;
                }
                let d_lo = (e_start + 1).saturating_sub(b_end).max(delta_min);
                let d_hi = (earlier.occ_end[kk] - b_start).min(delta_cap);
                for (slot, &delta) in deltas[..active].iter().enumerate() {
                    if delta >= d_hi {
                        break;
                    }
                    if delta < d_lo {
                        continue;
                    }
                    let at = e_start.max(b_start + delta);
                    if at < best[slot].0 {
                        best[slot] = (at, earlier.occ_seg[kk] as usize, jb);
                        updated = true;
                    }
                }
            }
            if updated {
                stop = stop_at(&best);
            }
        }
    }

    deltas
        .iter()
        .enumerate()
        .map(|(slot, &delta)| {
            if slot >= active {
                return SimOutcome::no_show(horizon);
            }
            let (at, si, jb) = best[slot];
            if at < INFINITY {
                SimOutcome {
                    meeting: Some(Meeting {
                        global_round: at,
                        later_round: at - delta,
                        node: earlier.nodes[si] as usize,
                    }),
                    earlier_moves: earlier.moves_before(si),
                    later_moves: later.moves_before(jb),
                    earlier_terminated: earlier.tail_index() == Some(si),
                    later_terminated: later.tail_index() == Some(jb),
                    horizon,
                }
            } else {
                let (earlier_moves, earlier_terminated) = earlier.totals_up_to(horizon);
                let (later_moves, later_terminated) = later.totals_up_to(horizon - delta);
                SimOutcome {
                    meeting: None,
                    earlier_moves,
                    later_moves,
                    earlier_terminated,
                    later_terminated,
                    horizon,
                }
            }
        })
        .collect()
}

/// Per-`(graph, program, horizon)` store of start-node timelines, computed
/// lazily (at most once per node) and shared across threads: `timeline`
/// takes `&self`, so a rayon sweep can fan out over
/// [`TrajectoryCache::simulate`] calls directly.
pub struct TrajectoryCache<'a> {
    graph: &'a PortGraph,
    program: &'a dyn AgentProgram,
    horizon: Round,
    slots: Vec<OnceLock<Timeline>>,
    /// Per-start symbolic (prefix + cycle) timelines, detected lazily for
    /// finite-state programs; `Some(None)` caches a failed detection so the
    /// budgeted search runs at most once per start.
    symbolic: Vec<OnceLock<Option<SymbolicTimeline>>>,
}

/// Largest horizon the batch engine resolves by explicit unrolling.  Queries
/// beyond this cap route through the symbolic (prefix + cycle) path when the
/// program exposes a [`FiniteStateProgram`](crate::navigator::FiniteStateProgram)
/// view — closed-form cycle merges whose cost is independent of the horizon —
/// and only fall back to explicit recording when no symbolic form exists.
/// Everything at or below the cap takes the explicit path unchanged.
pub const UNROLL_CAP: Round = 1 << 22;

impl<'a> TrajectoryCache<'a> {
    /// Create an empty cache; no trajectory is computed until queried.
    pub fn new(graph: &'a PortGraph, program: &'a dyn AgentProgram, horizon: Round) -> Self {
        let slots = (0..graph.num_nodes()).map(|_| OnceLock::new()).collect();
        let symbolic = (0..graph.num_nodes()).map(|_| OnceLock::new()).collect();
        TrajectoryCache { graph, program, horizon, slots, symbolic }
    }

    /// The cache horizon: every query must use a horizon `<=` this.
    pub fn horizon(&self) -> Round {
        self.horizon
    }

    /// The graph the cache simulates on.
    pub fn graph(&self) -> &'a PortGraph {
        self.graph
    }

    /// The program both agents run.
    pub fn program(&self) -> &'a dyn AgentProgram {
        self.program
    }

    /// The timeline of the agent started at `start`, produced on first use:
    /// materialised from the node's symbolic (prefix + cycle) timeline when
    /// one is already held (warm-loaded or previously detected) —
    /// bit-identical to a fresh recording and free of program execution —
    /// and recorded by running the program otherwise.  Laziness is the
    /// point: a store warming thousands of symbolic entries pays nothing
    /// here until a node's explicit path is actually queried.
    pub fn timeline(&self, start: NodeId) -> &Timeline {
        self.slots[start].get_or_init(|| match self.get_symbolic(start) {
            Some(s) => s.materialize(self.horizon),
            None => Timeline::record(self.graph, self.program, start, self.horizon),
        })
    }

    /// Number of start nodes whose timeline has been recorded so far.
    pub fn computed(&self) -> usize {
        self.slots.iter().filter(|s| s.get().is_some()).count()
    }

    /// The already-recorded timeline of `start`, without recording one.
    pub fn get(&self, start: NodeId) -> Option<&Timeline> {
        self.slots[start].get()
    }

    /// Every recorded `(start node, timeline)` pair, in node order — what a
    /// persistent store serialises after a sweep.
    pub fn computed_timelines(&self) -> impl Iterator<Item = (NodeId, &Timeline)> + '_ {
        self.slots.iter().enumerate().filter_map(|(u, slot)| slot.get().map(|t| (u, t)))
    }

    /// `true` when `start` already holds an explicit timeline (recorded or
    /// preloaded), without recording one.
    pub fn has_timeline(&self, start: NodeId) -> bool {
        self.slots[start].get().is_some()
    }

    /// Install a previously recorded timeline for `start` (a warm persistent
    /// cache restoring trajectories from disk), so later queries skip the
    /// program execution entirely.
    ///
    /// Returns `false` — leaving the cache untouched — when the timeline
    /// cannot stand in for a fresh recording: wrong graph size, a recorded
    /// horizon below this cache's, or a slot that is already populated.
    /// Rejection is not an error; the affected node simply falls back to
    /// recording on first use.
    pub fn preload(&self, start: NodeId, timeline: Timeline) -> bool {
        if start >= self.graph.num_nodes()
            || timeline.num_graph_nodes() != self.graph.num_nodes()
            || timeline.recorded_horizon() < self.horizon
        {
            return false;
        }
        self.slots[start].set(timeline).is_ok()
    }

    /// Record every start node's timeline (sequentially; parallel callers
    /// can equivalently fan `timeline` calls out over their own thread
    /// pool).
    pub fn warm_all(&self) {
        for u in 0..self.graph.num_nodes() {
            self.timeline(u);
        }
    }

    /// The symbolic (prefix + cycle) timeline of `start`, detecting it on
    /// first use.  `None` when the program has no finite-state view or the
    /// budgeted cycle detection did not converge; the failure is cached, so
    /// the search runs at most once per start.
    pub fn symbolic_timeline(&self, start: NodeId) -> Option<&SymbolicTimeline> {
        assert!(start < self.graph.num_nodes(), "start node out of range");
        let fs = self.program.finite_state()?;
        self.symbolic[start].get_or_init(|| detect_symbolic(self.graph, fs, start)).as_ref()
    }

    /// The already-detected symbolic timeline of `start`, without running a
    /// detection.
    pub fn get_symbolic(&self, start: NodeId) -> Option<&SymbolicTimeline> {
        self.symbolic[start].get().and_then(|s| s.as_ref())
    }

    /// Number of start nodes holding a symbolic timeline (detected or
    /// preloaded) so far.
    pub fn computed_symbolic(&self) -> usize {
        self.symbolic.iter().filter(|s| s.get().is_some_and(|o| o.is_some())).count()
    }

    /// Every held `(start node, symbolic timeline)` pair, in node order —
    /// what a persistent store serialises after a symbolic sweep.
    pub fn computed_symbolic_timelines(
        &self,
    ) -> impl Iterator<Item = (NodeId, &SymbolicTimeline)> + '_ {
        self.symbolic
            .iter()
            .enumerate()
            .filter_map(|(u, slot)| slot.get().and_then(|o| o.as_ref()).map(|s| (u, s)))
    }

    /// Install a previously detected symbolic timeline for `start` (a warm
    /// persistent cache restoring cycle structure from disk), so later
    /// symbolic queries skip the detection entirely.  Returns `false` —
    /// leaving the cache untouched — on a graph-size mismatch or an already
    /// populated slot; rejection is not an error, the node simply falls back
    /// to detection on first use.
    pub fn preload_symbolic(&self, start: NodeId, symbolic: SymbolicTimeline) -> bool {
        if start >= self.graph.num_nodes() || symbolic.num_graph_nodes() != self.graph.num_nodes() {
            return false;
        }
        self.symbolic[start].set(Some(symbolic)).is_ok()
    }

    /// Resolve one STIC through the symbolic path at an arbitrary `horizon`
    /// (no cache-horizon cap: the closed-form cycle merge never unrolls
    /// past its bounded alignment window).  `None` when either start lacks
    /// a symbolic timeline, or when the merge declines because resolving
    /// exactly would exceed [`crate::symbolic::MERGE_SEG_CAP`] segments per
    /// side (the caller falls back to the explicit path); a returned
    /// outcome is bit-identical to the explicit `simulate_capped` at the
    /// same horizon.
    pub fn simulate_symbolic(&self, stic: &Stic, horizon: Round) -> Option<SimOutcome> {
        if stic.delay > horizon {
            return Some(SimOutcome::no_show(horizon));
        }
        let earlier = self.symbolic_timeline(stic.earlier)?;
        let later = self.symbolic_timeline(stic.later)?;
        merge_symbolic(earlier, later, stic, horizon)
    }

    /// Simulate one STIC at the cache horizon.
    pub fn simulate(&self, stic: &Stic) -> SimOutcome {
        self.simulate_capped(stic, self.horizon)
    }

    /// Simulate one STIC at `horizon <= self.horizon()` (exact for any
    /// smaller horizon because truncated runs are prefixes; see the module
    /// docs).
    pub fn simulate_capped(&self, stic: &Stic, horizon: Round) -> SimOutcome {
        assert!(
            horizon <= self.horizon,
            "query horizon {horizon} exceeds the cache horizon {}",
            self.horizon
        );
        assert!(stic.earlier < self.graph.num_nodes(), "earlier start node out of range");
        assert!(stic.later < self.graph.num_nodes(), "later start node out of range");
        if stic.delay > horizon {
            // answered without touching (or recording) any timeline,
            // mirroring the other engines' early return
            return SimOutcome::no_show(horizon);
        }
        if horizon > UNROLL_CAP {
            if let Some(outcome) = self.simulate_symbolic(stic, horizon) {
                return outcome;
            }
        }
        merge_timelines(self.timeline(stic.earlier), self.timeline(stic.later), stic, horizon)
    }

    /// Extend a previously computed outcome of `stic` (exact at
    /// `prior.horizon`) to a larger `horizon <= self.horizon()` without
    /// restarting the merge (see [`merge_timelines_extend`]); bit-identical
    /// to `simulate_capped(stic, horizon)`.  A met prior outcome is served
    /// without touching (or recording) any timeline.
    pub fn simulate_extend(&self, stic: &Stic, prior: &SimOutcome, horizon: Round) -> SimOutcome {
        assert!(
            horizon <= self.horizon,
            "query horizon {horizon} exceeds the cache horizon {}",
            self.horizon
        );
        assert!(
            prior.horizon <= horizon,
            "cannot extend a horizon-{} outcome down to {horizon}",
            prior.horizon
        );
        assert!(stic.earlier < self.graph.num_nodes(), "earlier start node out of range");
        assert!(stic.later < self.graph.num_nodes(), "later start node out of range");
        if prior.meeting.is_some() {
            // a meeting is final: only the reporting horizon changes
            return SimOutcome { horizon, ..*prior };
        }
        if stic.delay > horizon {
            return SimOutcome::no_show(horizon);
        }
        if horizon > UNROLL_CAP {
            // extending an unmet outcome is bit-identical to a full merge,
            // so the closed-form path can serve it without any timeline
            if let Some(outcome) = self.simulate_symbolic(stic, horizon) {
                return outcome;
            }
        }
        merge_timelines_extend(
            self.timeline(stic.earlier),
            self.timeline(stic.later),
            stic,
            prior,
            horizon,
        )
    }

    /// Simulate one `(u, v)` pair under **every** delay in `deltas` in a
    /// single pass over the cached timelines (see
    /// [`merge_timelines_deltas`]); outcome `i` is bit-identical to
    /// `simulate(&Stic::new(u, v, deltas[i]))`.
    pub fn simulate_deltas(&self, u: NodeId, v: NodeId, deltas: &[Round]) -> Vec<SimOutcome> {
        self.simulate_deltas_capped(u, v, deltas, self.horizon)
    }

    /// [`TrajectoryCache::simulate_deltas`] at `horizon <= self.horizon()`
    /// (exact for any smaller horizon because truncated runs are prefixes);
    /// outcome `i` is bit-identical to
    /// `simulate_capped(&Stic::new(u, v, deltas[i]), horizon)`.
    pub fn simulate_deltas_capped(
        &self,
        u: NodeId,
        v: NodeId,
        deltas: &[Round],
        horizon: Round,
    ) -> Vec<SimOutcome> {
        self.simulate_deltas_capped_with(&mut MergeScratch::new(), u, v, deltas, horizon)
    }

    /// [`TrajectoryCache::simulate_deltas_capped`] with caller-owned scratch
    /// space (rayon sweeps keep one [`MergeScratch`] per worker thread).
    pub fn simulate_deltas_capped_with(
        &self,
        scratch: &mut MergeScratch,
        u: NodeId,
        v: NodeId,
        deltas: &[Round],
        horizon: Round,
    ) -> Vec<SimOutcome> {
        assert!(
            horizon <= self.horizon,
            "query horizon {horizon} exceeds the cache horizon {}",
            self.horizon
        );
        assert!(u < self.graph.num_nodes(), "earlier start node out of range");
        assert!(v < self.graph.num_nodes(), "later start node out of range");
        if deltas.iter().all(|&d| d > horizon) {
            // answered without recording any timeline, like `simulate_capped`
            return deltas.iter().map(|_| SimOutcome::no_show(horizon)).collect();
        }
        if horizon > UNROLL_CAP && self.program.finite_state().is_some() {
            let symbolic: Option<Vec<SimOutcome>> = deltas
                .iter()
                .map(|&delta| self.simulate_symbolic(&Stic::new(u, v, delta), horizon))
                .collect();
            if let Some(outcomes) = symbolic {
                return outcomes;
            }
        }
        merge_timelines_deltas_with(scratch, self.timeline(u), self.timeline(v), deltas, horizon)
    }
}

/// Sweep-facing engine façade: a [`TrajectoryCache`] plus the
/// [`EngineConfig`] that selects how queries are answered.
///
/// Constructing a `SweepEngine` is the caller's signal that many STICs of
/// one `(graph, program)` pair will be simulated, so [`EngineMode::Auto`]
/// resolves to the batch path here (unlike in
/// [`simulate_with`], where a single call cannot amortise a cache).
/// Pinning [`EngineMode::Streaming`] or [`EngineMode::Lockstep`] makes every
/// query fall through to the per-call engines — the escape hatch the
/// differential tests flip.
pub struct SweepEngine<'a> {
    cache: TrajectoryCache<'a>,
    config: EngineConfig,
}

impl<'a> SweepEngine<'a> {
    /// Create an engine for sweeping STICs of `graph` under `program`.
    pub fn new(graph: &'a PortGraph, program: &'a dyn AgentProgram, config: EngineConfig) -> Self {
        SweepEngine { cache: TrajectoryCache::new(graph, program, config.horizon), config }
    }

    /// The underlying trajectory cache.
    pub fn cache(&self) -> &TrajectoryCache<'a> {
        &self.cache
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// The program both agents run.
    pub fn program(&self) -> &'a dyn AgentProgram {
        self.cache.program()
    }

    /// Simulate one STIC at the configured horizon.
    pub fn simulate(&self, stic: &Stic) -> SimOutcome {
        self.simulate_capped(stic, self.config.horizon)
    }

    /// Simulate one STIC at `horizon <= config.horizon` (sweeps whose cases
    /// use heterogeneous horizons build one engine at the maximum and cap
    /// every query).
    pub fn simulate_capped(&self, stic: &Stic, horizon: Round) -> SimOutcome {
        match self.config.mode {
            EngineMode::Auto | EngineMode::Batch => self.cache.simulate_capped(stic, horizon),
            EngineMode::Streaming | EngineMode::Lockstep => {
                let program = self.cache.program();
                let config = EngineConfig { horizon, ..self.config };
                simulate_with(self.cache.graph(), program, program, stic, config)
            }
        }
    }

    /// Simulate one `(u, v)` pair under every delay in `deltas`: on the
    /// batch path a single pass over the cached timelines resolves the whole
    /// delay sweep ([`TrajectoryCache::simulate_deltas`]); pinned per-call
    /// modes simulate each delay separately.  Outcome `i` is bit-identical
    /// to `simulate(&Stic::new(u, v, deltas[i]))`.
    pub fn simulate_deltas(&self, u: NodeId, v: NodeId, deltas: &[Round]) -> Vec<SimOutcome> {
        self.simulate_deltas_capped(u, v, deltas, self.config.horizon)
    }

    /// [`SweepEngine::simulate_deltas`] at `horizon <= config.horizon`;
    /// outcome `i` is bit-identical to
    /// `simulate_capped(&Stic::new(u, v, deltas[i]), horizon)`.
    pub fn simulate_deltas_capped(
        &self,
        u: NodeId,
        v: NodeId,
        deltas: &[Round],
        horizon: Round,
    ) -> Vec<SimOutcome> {
        self.simulate_deltas_capped_with(&mut MergeScratch::new(), u, v, deltas, horizon)
    }

    /// [`SweepEngine::simulate_deltas_capped`] with caller-owned scratch
    /// space (ignored by the pinned per-call modes).
    pub fn simulate_deltas_capped_with(
        &self,
        scratch: &mut MergeScratch,
        u: NodeId,
        v: NodeId,
        deltas: &[Round],
        horizon: Round,
    ) -> Vec<SimOutcome> {
        match self.config.mode {
            EngineMode::Auto | EngineMode::Batch => {
                self.cache.simulate_deltas_capped_with(scratch, u, v, deltas, horizon)
            }
            EngineMode::Streaming | EngineMode::Lockstep => deltas
                .iter()
                .map(|&delta| self.simulate_capped(&Stic::new(u, v, delta), horizon))
                .collect(),
        }
    }

    /// Extend a previously computed outcome of `stic` (exact at
    /// `prior.horizon`) to `horizon <= config.horizon` — bit-identical to
    /// `simulate_capped(stic, horizon)`.  The batch path resumes the merge
    /// where the prior horizon left off
    /// ([`TrajectoryCache::simulate_extend`]); pinned per-call modes
    /// recompute from scratch, as they have no merge to resume.
    pub fn simulate_extend(&self, stic: &Stic, prior: &SimOutcome, horizon: Round) -> SimOutcome {
        match self.config.mode {
            EngineMode::Auto | EngineMode::Batch => {
                self.cache.simulate_extend(stic, prior, horizon)
            }
            EngineMode::Streaming | EngineMode::Lockstep => self.simulate_capped(stic, horizon),
        }
    }
}

/// Simulate a single STIC through the batch engine (both agents run
/// `program`).  One-shot convenience over [`TrajectoryCache`]; sweeps should
/// hold on to a cache (or a [`SweepEngine`]) instead, which is where the
/// `O(n)`-executions-per-graph payoff comes from.
pub fn simulate_batch(
    g: &PortGraph,
    program: &dyn AgentProgram,
    stic: &Stic,
    horizon: Round,
) -> SimOutcome {
    TrajectoryCache::new(g, program, horizon).simulate(stic)
}

/// Batch path of [`simulate_with`] (`EngineMode::Batch` with possibly
/// different programs per agent): record the two timelines and merge.
pub(crate) fn simulate_batch_with(
    g: &PortGraph,
    earlier_program: &dyn AgentProgram,
    later_program: &dyn AgentProgram,
    stic: &Stic,
    horizon: Round,
) -> SimOutcome {
    let earlier = Timeline::record(g, earlier_program, stic.earlier, horizon);
    let later = Timeline::record(g, later_program, stic.later, horizon);
    merge_timelines(&earlier, &later, stic, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::navigator::Navigator;
    use anonrv_graph::generators::{oriented_ring, oriented_torus, two_node_graph};

    fn mover() -> impl AgentProgram {
        |nav: &mut dyn Navigator| -> Result<(), Stop> {
            loop {
                nav.move_via(0)?;
            }
        }
    }

    fn waiter() -> impl AgentProgram {
        |nav: &mut dyn Navigator| -> Result<(), Stop> {
            loop {
                nav.wait(Round::MAX)?;
            }
        }
    }

    #[test]
    fn timeline_records_waits_compressed_and_moves_counted() {
        let g = oriented_ring(5).unwrap();
        let program = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            nav.move_via(0)?;
            nav.wait(3)?;
            nav.wait(2)?;
            nav.move_via(0)?;
            Ok(())
        };
        let t = Timeline::record(&g, &program, 0, 100);
        // [0,1)@0, [1,7)@1 (move + merged waits), [7,8)@2, tail [8,inf)@2
        assert_eq!(t.num_segments(), 4);
        assert!(t.terminated());
        assert_eq!(t.total_moves(), 2);
        assert_eq!(t.finite_end(), 8);
        assert_eq!(t.first_visit(1, 0, 100), Some((1, 1)));
        assert_eq!(t.first_visit(2, 0, 8), Some((2, 7)));
        assert_eq!(t.first_visit(2, 8, 100), Some((3, 8))); // the tail
        assert_eq!(t.first_visit(3, 0, 100), None);
        assert_eq!(t.totals_up_to(0), (0, false));
        assert_eq!(t.totals_up_to(6), (1, false));
        assert_eq!(t.totals_up_to(7), (2, true));
        assert_eq!(t.totals_up_to(50), (2, true));
    }

    #[test]
    fn batch_agrees_with_the_engine_unit_scenarios() {
        // the same scenarios engine.rs pins for lockstep/streaming
        let two = two_node_graph();
        let ring = oriented_ring(6).unwrap();
        let cases: Vec<(&PortGraph, Stic, Round)> = vec![
            (&two, Stic::new(0, 1, 3), 100),
            (&two, Stic::new(0, 1, 2), 10_000),
            (&two, Stic::simultaneous(0, 1), 10_000),
            (&ring, Stic::new(0, 2, 2), 100),
            (&ring, Stic::new(0, 2, 1_000), 10),
        ];
        for (g, stic, horizon) in cases {
            let batch = simulate_batch(g, &mover(), &stic, horizon);
            let reference = simulate(g, &mover(), &stic, horizon);
            assert_eq!(batch, reference, "{stic} horizon {horizon}");
        }
    }

    #[test]
    fn asymmetric_programs_through_engine_mode_batch() {
        let g = oriented_ring(6).unwrap();
        for delay in [0 as Round, 2, 5] {
            for horizon in [10 as Round, 200] {
                let stic = Stic::new(0, 3, delay);
                let batch =
                    simulate_with(&g, &waiter(), &mover(), &stic, EngineConfig::batch(horizon));
                let reference =
                    simulate_with(&g, &waiter(), &mover(), &stic, EngineConfig::lockstep(horizon));
                assert_eq!(batch, reference, "delay {delay} horizon {horizon}");
            }
        }
    }

    #[test]
    fn cache_records_each_start_node_at_most_once() {
        let g = oriented_torus(3, 4).unwrap();
        let program = mover();
        let cache = TrajectoryCache::new(&g, &program, 64);
        assert_eq!(cache.computed(), 0);
        cache.simulate(&Stic::new(0, 5, 1));
        assert_eq!(cache.computed(), 2);
        cache.simulate(&Stic::new(0, 5, 3));
        cache.simulate(&Stic::new(5, 0, 2));
        assert_eq!(cache.computed(), 2);
        cache.warm_all();
        assert_eq!(cache.computed(), g.num_nodes());
    }

    #[test]
    fn capped_queries_match_rerecording_at_the_smaller_horizon() {
        let g = oriented_ring(7).unwrap();
        let program = mover();
        let cache = TrajectoryCache::new(&g, &program, 500);
        for horizon in [0 as Round, 1, 3, 17, 100, 500] {
            for delay in [0 as Round, 1, 5] {
                let stic = Stic::new(0, 3, delay);
                let capped = cache.simulate_capped(&stic, horizon);
                let fresh = simulate_batch(&g, &program, &stic, horizon);
                let lockstep =
                    simulate_with(&g, &program, &program, &stic, EngineConfig::lockstep(horizon));
                assert_eq!(capped, fresh, "{stic} horizon {horizon}");
                assert_eq!(capped, lockstep, "{stic} horizon {horizon}");
            }
        }
    }

    #[test]
    fn sweep_engine_auto_uses_the_cache_and_pinned_modes_bypass_it() {
        let g = oriented_ring(8).unwrap();
        let program = mover();
        let auto = SweepEngine::new(&g, &program, EngineConfig::with_horizon(100));
        let pinned = SweepEngine::new(&g, &program, EngineConfig::streaming(100));
        let stic = Stic::new(0, 4, 3);
        let a = auto.simulate(&stic);
        let b = pinned.simulate(&stic);
        assert_eq!(a, b);
        assert_eq!(auto.cache().computed(), 2);
        assert_eq!(pinned.cache().computed(), 0);
    }

    #[test]
    fn delay_beyond_horizon_is_answered_without_recording() {
        let g = oriented_ring(5).unwrap();
        let program = mover();
        let cache = TrajectoryCache::new(&g, &program, 10);
        let out = cache.simulate(&Stic::new(0, 2, 1_000));
        assert!(!out.met());
        assert_eq!(cache.computed(), 0);
    }

    #[test]
    fn delta_sweep_queries_match_per_delta_queries() {
        let g = oriented_torus(3, 4).unwrap();
        let n = g.num_nodes();
        for (lifetime, horizon) in [(None, 40 as Round), (Some(9), 25)] {
            let program = ScriptedStepper { lifetime };
            let cache = TrajectoryCache::new(&g, &program, horizon);
            // ascending, unsorted and beyond-horizon delay lists
            let delta_lists: Vec<Vec<Round>> = vec![
                vec![0, 1, 2, 3, 4],
                vec![3, 0, 7, 1, 1],
                vec![horizon, horizon + 1, 0],
                vec![5],
                vec![],
            ];
            for u in 0..n {
                for v in [0usize, 5, 11] {
                    for deltas in &delta_lists {
                        let swept = cache.simulate_deltas(u, v, deltas);
                        assert_eq!(swept.len(), deltas.len());
                        for (i, &delta) in deltas.iter().enumerate() {
                            let single = cache.simulate(&Stic::new(u, v, delta));
                            assert_eq!(
                                swept[i], single,
                                "delta sweep diverged: ({u}, {v}) delta {delta}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Deterministic mover/waiter mix used by the delta-sweep test (waits
    /// make segments longer than one round, exercising the δ-interval
    /// arithmetic).
    struct ScriptedStepper {
        lifetime: Option<u64>,
    }

    impl AgentProgram for ScriptedStepper {
        fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
            let mut state = 0xDEAD_BEEFu64;
            let mut actions = 0u64;
            loop {
                if let Some(lifetime) = self.lifetime {
                    if actions >= lifetime {
                        return Ok(());
                    }
                }
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let roll = state >> 33;
                if roll.is_multiple_of(3) {
                    nav.wait((roll % 5 + 1) as Round)?;
                } else {
                    nav.move_via(roll as usize % nav.degree())?;
                }
                actions += 1;
            }
        }
    }

    #[test]
    fn timeline_round_trips_through_its_segment_list() {
        let g = oriented_torus(3, 4).unwrap();
        for lifetime in [None, Some(9)] {
            let program = ScriptedStepper { lifetime };
            for start in [0usize, 5, 11] {
                let original = Timeline::record(&g, &program, start, 40);
                let segs: Vec<TimelineSeg> = original.segments().collect();
                let rebuilt = Timeline::from_segments(g.num_nodes(), 40, segs).unwrap();
                assert_eq!(rebuilt.num_segments(), original.num_segments());
                assert_eq!(rebuilt.terminated(), original.terminated());
                assert_eq!(rebuilt.total_moves(), original.total_moves());
                assert_eq!(rebuilt.recorded_horizon(), original.recorded_horizon());
                assert_eq!(rebuilt.num_graph_nodes(), g.num_nodes());
                // the rebuilt timeline must answer every merge bit-identically
                let other = Timeline::record(&g, &program, (start + 1) % g.num_nodes(), 40);
                for delta in [0 as Round, 1, 3, 7] {
                    let stic = Stic::new(start, (start + 1) % g.num_nodes(), delta);
                    assert_eq!(
                        merge_timelines(&rebuilt, &other, &stic, 40),
                        merge_timelines(&original, &other, &stic, 40),
                        "rebuilt timeline diverged on {stic}"
                    );
                }
            }
        }
    }

    /// The streaming kernel: merging `t0` against itself viewed through a
    /// group element is bit-identical to (a) merging against a materialised
    /// relabeling of `t0`, (b) merging against a *cold recording* from the
    /// image start node (vertex-transitivity), and (c) the plain per-STIC
    /// merge — for every class, every delay, met and unmet alike.
    #[test]
    fn mapped_delta_merge_is_bit_identical_to_materialised_relabeling() {
        let g = oriented_torus(3, 4).unwrap();
        let group = anonrv_graph::group::SymmetryGroup::of(&g);
        assert!(group.is_implicit());
        let horizon: Round = 48;
        let deltas: &[Round] = &[0, 1, 2, 5, 9, 50];
        for lifetime in [None, Some(9)] {
            let program = ScriptedStepper { lifetime };
            let t0 = Timeline::record(&g, &program, 0, horizon);
            let mut scratch = MergeScratch::new();
            for c in 0..g.num_nodes() {
                let streamed =
                    merge_timelines_deltas_mapped(&t0, &t0, |v| group.apply(c, v), deltas, horizon);
                // (a) materialised relabeling of the same timeline
                let segs: Vec<TimelineSeg> = t0
                    .segments()
                    .map(|mut s| {
                        s.node = group.apply(c, s.node);
                        s
                    })
                    .collect();
                let mapped = Timeline::from_segments(g.num_nodes(), horizon, segs).unwrap();
                assert_eq!(
                    streamed,
                    merge_timelines_deltas_with(&mut scratch, &t0, &mapped, deltas, horizon)
                );
                // (b) the walk actually recorded from node c
                let tc = Timeline::record(&g, &program, c, horizon);
                assert_eq!(
                    streamed,
                    merge_timelines_deltas_with(&mut scratch, &t0, &tc, deltas, horizon)
                );
                // (c) STIC by STIC against the single-delay kernel
                for (slot, &delta) in deltas.iter().enumerate() {
                    let stic = Stic::new(0, c, delta);
                    assert_eq!(streamed[slot], merge_timelines(&t0, &tc, &stic, horizon), "{stic}");
                }
                // the unsorted-deltas reorder path agrees too
                let shuffled: &[Round] = &[5, 0, 50, 2];
                let reordered = merge_timelines_deltas_mapped(
                    &t0,
                    &t0,
                    |v| group.apply(c, v),
                    shuffled,
                    horizon,
                );
                for (k, &d) in shuffled.iter().enumerate() {
                    let slot = deltas.iter().position(|&x| x == d).unwrap();
                    assert_eq!(reordered[k], streamed[slot]);
                }
            }
        }
    }

    #[test]
    fn truncate_is_bit_identical_to_a_cold_recording_at_the_smaller_horizon() {
        let g = oriented_torus(3, 4).unwrap();
        for lifetime in [None, Some(4), Some(9)] {
            let program = ScriptedStepper { lifetime };
            for start in [0usize, 5, 11] {
                let long = Timeline::record(&g, &program, start, 40);
                for horizon in [0 as Round, 1, 2, 7, 15, 39, 40] {
                    let truncated = long.truncate(horizon);
                    let cold = Timeline::record(&g, &program, start, horizon);
                    assert_eq!(
                        truncated.segments().collect::<Vec<_>>(),
                        cold.segments().collect::<Vec<_>>(),
                        "start {start} lifetime {lifetime:?} horizon {horizon}: segments diverged"
                    );
                    assert_eq!(truncated.recorded_horizon(), horizon);
                    assert_eq!(truncated.terminated(), cold.terminated());
                    assert_eq!(truncated.total_moves(), cold.total_moves());
                    // and the truncated timeline answers merges identically
                    let other = Timeline::record(&g, &program, (start + 3) % g.num_nodes(), 40);
                    for delta in [0 as Round, 1, 5] {
                        if delta > horizon {
                            continue;
                        }
                        let stic = Stic::new(start, (start + 3) % g.num_nodes(), delta);
                        assert_eq!(
                            merge_timelines(&truncated, &other, &stic, horizon),
                            merge_timelines(&cold, &other, &stic, horizon),
                            "merge diverged on {stic} at horizon {horizon}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot extend")]
    fn truncate_refuses_to_extend_a_recording() {
        let g = oriented_ring(5).unwrap();
        let t = Timeline::record(&g, &mover(), 0, 10);
        let _ = t.truncate(11);
    }

    #[test]
    fn from_segments_rejects_malformed_segment_lists() {
        let seg = |node: NodeId, start: Round, end: Round| TimelineSeg { node, start, end };
        // empty
        assert!(Timeline::from_segments(4, 10, vec![]).is_err());
        // first segment not at round 0
        assert!(Timeline::from_segments(4, 10, vec![seg(0, 1, 2)]).is_err());
        // node out of range
        assert!(Timeline::from_segments(4, 10, vec![seg(9, 0, 2)]).is_err());
        // inverted interval
        assert!(Timeline::from_segments(4, 10, vec![seg(0, 0, 0)]).is_err());
        // gap between segments
        assert!(Timeline::from_segments(4, 10, vec![seg(0, 0, 1), seg(1, 2, 3)]).is_err());
        // infinite tail not in final position
        assert!(Timeline::from_segments(
            4,
            10,
            vec![seg(0, 0, 1), seg(1, 1, INFINITY), seg(1, INFINITY, INFINITY)]
        )
        .is_err());
        // tail wandering off the final node
        assert!(Timeline::from_segments(4, 10, vec![seg(0, 0, 1), seg(1, 1, INFINITY)]).is_err());
        // finite end beyond the declared horizon
        assert!(Timeline::from_segments(4, 10, vec![seg(0, 0, 40)]).is_err());
        // a well-formed list passes
        assert!(Timeline::from_segments(
            4,
            10,
            vec![seg(0, 0, 3), seg(1, 3, 4), seg(1, 4, INFINITY)]
        )
        .is_ok());
    }

    #[test]
    fn preload_installs_compatible_timelines_and_rejects_the_rest() {
        let g = oriented_ring(6).unwrap();
        let program = mover();
        let cache = TrajectoryCache::new(&g, &program, 50);
        // a timeline recorded at a *larger* horizon is an exact superset
        let longer = Timeline::record(&g, &program, 2, 80);
        assert!(cache.preload(2, longer));
        assert_eq!(cache.computed(), 1);
        assert!(cache.get(2).is_some());
        assert!(cache.get(3).is_none());
        // occupied slot
        assert!(!cache.preload(2, Timeline::record(&g, &program, 2, 80)));
        // too-short recording
        assert!(!cache.preload(3, Timeline::record(&g, &program, 3, 10)));
        // wrong graph size
        let other = oriented_ring(5).unwrap();
        assert!(!cache.preload(4, Timeline::record(&other, &program, 4, 80)));
        // the preloaded slot answers queries bit-identically to a fresh cache
        let fresh = TrajectoryCache::new(&g, &program, 50);
        for delta in [0 as Round, 2, 5] {
            let stic = Stic::new(2, 4, delta);
            assert_eq!(cache.simulate(&stic), fresh.simulate(&stic));
        }
        assert_eq!(
            cache.computed_timelines().map(|(u, _)| u).collect::<Vec<_>>(),
            vec![2, 4],
            "computed_timelines reports recorded slots in node order"
        );
    }

    #[test]
    fn meeting_on_the_earlier_agents_terminated_tail_is_flagged() {
        let g = oriented_ring(6).unwrap();
        let two_steps = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            nav.move_via(0)?;
            nav.move_via(0)?;
            Ok(())
        };
        let stic = Stic::new(0, 5, 50);
        let batch = simulate_with(&g, &two_steps, &mover(), &stic, EngineConfig::batch(10_000));
        let reference =
            simulate_with(&g, &two_steps, &mover(), &stic, EngineConfig::lockstep(10_000));
        assert_eq!(batch, reference);
        assert!(batch.earlier_terminated);
        assert_eq!(batch.meeting.unwrap().node, 2);
    }

    #[test]
    fn sort_merge_kernel_matches_the_reference_oracle() {
        let g = oriented_torus(3, 4).unwrap();
        let n = g.num_nodes();
        for (lifetime, horizon) in [(None, 48 as Round), (Some(7), 30)] {
            let program = ScriptedStepper { lifetime };
            let timelines: Vec<Timeline> =
                (0..n).map(|u| Timeline::record(&g, &program, u, horizon)).collect();
            for u in 0..n {
                for v in [0usize, 5, 11] {
                    for delta in [0 as Round, 1, 3, 9, horizon, horizon + 1] {
                        let stic = Stic::new(u, v, delta);
                        for h in [0 as Round, 1, horizon / 2, horizon] {
                            assert_eq!(
                                merge_timelines(&timelines[u], &timelines[v], &stic, h),
                                merge_timelines_reference(&timelines[u], &timelines[v], &stic, h),
                                "kernel vs reference on {stic} at horizon {h}"
                            );
                        }
                    }
                    let deltas: Vec<Round> = vec![0, 2, 5, 11, horizon + 1];
                    let mut scratch = MergeScratch::new();
                    assert_eq!(
                        merge_timelines_deltas_with(
                            &mut scratch,
                            &timelines[u],
                            &timelines[v],
                            &deltas,
                            horizon
                        ),
                        merge_timelines_deltas_reference(
                            &timelines[u],
                            &timelines[v],
                            &deltas,
                            horizon
                        ),
                        "delta kernel vs reference on ({u}, {v})"
                    );
                }
            }
        }
    }

    #[test]
    fn extending_a_merge_matches_a_full_merge_at_the_larger_horizon() {
        let g = oriented_torus(3, 4).unwrap();
        let n = g.num_nodes();
        let full: Round = 60;
        for lifetime in [None, Some(6)] {
            let program = ScriptedStepper { lifetime };
            let timelines: Vec<Timeline> =
                (0..n).map(|u| Timeline::record(&g, &program, u, full)).collect();
            for u in 0..n {
                for v in [0usize, 4, 11] {
                    for delta in [0 as Round, 1, 5, 20] {
                        let stic = Stic::new(u, v, delta);
                        for h in [0 as Round, 1, 4, 15, 33, full] {
                            let prior = merge_timelines(&timelines[u], &timelines[v], &stic, h);
                            for target in [h, (h + full) / 2, full] {
                                let extended = merge_timelines_extend(
                                    &timelines[u],
                                    &timelines[v],
                                    &stic,
                                    &prior,
                                    target,
                                );
                                let direct =
                                    merge_timelines(&timelines[u], &timelines[v], &stic, target);
                                assert_eq!(
                                    extended, direct,
                                    "extend {h} -> {target} diverged on {stic}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cache_extend_reuses_met_outcomes_without_recording() {
        let g = oriented_ring(6).unwrap();
        let program = mover();
        let reference = TrajectoryCache::new(&g, &program, 100);
        let stic = Stic::new(0, 3, 3);
        let prior = reference.simulate_capped(&stic, 50);
        assert!(prior.met(), "the ring movers meet within 50 rounds");
        // a met prior is served without touching any timeline
        let cache = TrajectoryCache::new(&g, &program, 100);
        let extended = cache.simulate_extend(&stic, &prior, 100);
        assert_eq!(extended, reference.simulate_capped(&stic, 100));
        assert_eq!(cache.computed(), 0, "met outcomes must not record timelines");
        // an unmet prior resumes the merge (recording on demand)
        let unmet = reference.simulate_capped(&Stic::new(0, 0, 99), 99);
        assert!(!unmet.met());
        let resumed = cache.simulate_extend(&Stic::new(0, 0, 99), &unmet, 100);
        assert_eq!(resumed, reference.simulate_capped(&Stic::new(0, 0, 99), 100));
    }

    #[test]
    fn from_parts_round_trips_and_rejects_corrupt_indexes() {
        let g = oriented_torus(3, 4).unwrap();
        for lifetime in [None, Some(9)] {
            let program = ScriptedStepper { lifetime };
            for start in [0usize, 5, 11] {
                let original = Timeline::record(&g, &program, start, 40);
                let parts = || TimelineParts {
                    starts: original.starts().to_vec(),
                    nodes: original.seg_nodes().to_vec(),
                    occ_starts: original.occ_starts().to_vec(),
                    occ_start: original.occ_interval_starts().to_vec(),
                    occ_end: original.occ_interval_ends().to_vec(),
                    occ_seg: original.occ_segs().to_vec(),
                };
                let rebuilt = Timeline::from_parts(g.num_nodes(), 40, parts()).unwrap();
                assert_eq!(
                    rebuilt.segments().collect::<Vec<_>>(),
                    original.segments().collect::<Vec<_>>()
                );
                assert_eq!(rebuilt.total_moves(), original.total_moves());
                assert_eq!(rebuilt.terminated(), original.terminated());
                // ... and the occupancy index is installed bit-identically
                assert_eq!(rebuilt.occ_starts(), original.occ_starts());
                assert_eq!(rebuilt.occ_segs(), original.occ_segs());
                let other = Timeline::record(&g, &program, (start + 1) % g.num_nodes(), 40);
                for delta in [0 as Round, 2, 6] {
                    let stic = Stic::new(start, (start + 1) % g.num_nodes(), delta);
                    assert_eq!(
                        merge_timelines(&rebuilt, &other, &stic, 40),
                        merge_timelines(&original, &other, &stic, 40),
                        "rebuilt-from-parts timeline diverged on {stic}"
                    );
                }

                // a swapped occupancy pair is caught (order violated)
                if original.num_segments() >= 3 {
                    let mut bad = parts();
                    bad.occ_seg.swap(0, 1);
                    bad.occ_start.swap(0, 1);
                    bad.occ_end.swap(0, 1);
                    assert!(Timeline::from_parts(g.num_nodes(), 40, bad).is_err());
                }
                // an interval that disagrees with its segment is caught
                let mut bad = parts();
                bad.occ_end[0] += 1;
                assert!(Timeline::from_parts(g.num_nodes(), 40, bad).is_err());
                // truncated occupancy arrays are caught
                let mut bad = parts();
                bad.occ_seg.pop();
                assert!(Timeline::from_parts(g.num_nodes(), 40, bad).is_err());
                // a mis-shapen CSR is caught
                let mut bad = parts();
                *bad.occ_starts.last_mut().unwrap() += 1;
                assert!(Timeline::from_parts(g.num_nodes(), 40, bad).is_err());
                // a non-canonical start array is caught
                let mut bad = parts();
                bad.starts[0] += 1;
                assert!(Timeline::from_parts(g.num_nodes(), 40, bad).is_err());
            }
        }
    }
}
