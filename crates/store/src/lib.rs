//! # anonrv-store
//!
//! Persistence, sharding and **orchestration** for planned sweeps: the layer
//! that takes the in-process plan-then-execute pipeline of `anonrv-plan` /
//! `anonrv-sim` across runs, across processes — and behind one API.
//!
//! Repeated sweeps over one graph used to re-derive everything from
//! scratch — the automorphism group, the pair-orbit partition, every start
//! node's trajectory timeline, every representative merge.  All of those are
//! deterministic functions of `(graph, program, horizon)`, so they are
//! cacheable; the planner's representative work-list is embarrassingly
//! parallel, so it is shardable; and because programs propagate `Stop`, a
//! horizon-`h` run is an exact prefix of a horizon-`H >= h` run, so one
//! recording serves **every smaller horizon** bit-identically.  This crate
//! supplies all three:
//!
//! * [`Store`] — a content-addressed on-disk cache (directory of
//!   checksummed, versioned artifacts keyed by
//!   [`PortGraph::canonical_hash`](anonrv_graph::PortGraph::canonical_hash))
//!   holding serialized automorphism groups / [`PairOrbits`], recorded
//!   wait-compressed [`Timeline`](anonrv_sim::Timeline)s, detected
//!   [`SymbolicTimeline`](anonrv_sim::SymbolicTimeline)s (the
//!   `symbolic-*` v4 kind: per start node a prefix and a cycle in the
//!   same flat-array columns, shape-re-validated through
//!   [`SymbolicTimeline::from_raw`](anonrv_sim::SymbolicTimeline::from_raw)
//!   on load), and full representative-outcome tables.  Horizons live
//!   *inside* the frames, not
//!   in the keys: a lookup hits whenever `recorded >= needed` (longer
//!   recordings serve as-is — the merge kernels clip per query), a shorter
//!   table **extends** up instead of restarting, writes supersede shorter
//!   recordings in place, and [`Store::gc`] compacts what can no longer
//!   serve anything.  Symbolic artifacts take the longest-wins rule to
//!   its limit: they are **horizon-free** — one detection serves every
//!   horizon, superseding explicit frames for any horizon they cannot
//!   reach, and warming engines beyond the unroll cap where explicit
//!   recordings cannot exist at all.  Every load is integrity-checked
//!   (magic, format
//!   version, length, checksum, embedded identity) and falls back to
//!   recompute-and-overwrite on any mismatch — see [`cache`] for the trust
//!   model and `codec.rs` for the frame layout.
//!
//!   Format version 4 frames are **zero-copy-shaped**: a 32-byte header, a
//!   payload of 16-aligned little-endian flat arrays in the engines' own
//!   struct-of-arrays layout (timeline segment columns + occupancy CSR;
//!   one column per outcome field), and one trailing checksum amortised
//!   over the whole frame.  Loading is a single `fs::read` plus bulk
//!   column decodes straight into
//!   [`Timeline::from_parts`](anonrv_sim::Timeline::from_parts) — no
//!   per-entry re-indexing — and [`Store::stats`] / [`Store::gc`] survey a
//!   cache directory from a bounded 64 KiB prefix per file, never loading
//!   the arrays.  Version 4 only *adds* the symbolic kind; readers accept
//!   versions `3..=4`, so v3 frames keep loading verbatim while versions
//!   outside the range stay plain (non-quarantined) misses.
//! * [`SweepSession`] — the one orchestrator every front-end drives (the
//!   CLI `sweep`/`cache` commands, the experiment harness, the benchmark
//!   binaries): plan → cache-probe → execute-representatives → record →
//!   broadcast, with pluggable shard slicing and uniform [`SessionStats`]
//!   reporting — see [`session`].
//! * [`ShardSpec`] / [`Store::merge_shards`] — the shard persistence:
//!   `--shards K --shard-index i` slices of a [`SweepPlan`]'s `(class, δ)`
//!   work-list whose partial outcome files merge deterministically into one
//!   table **bit-identical** to the unsharded run — see [`shard`].
//!
//! On a warm cache an exhaustive all-pairs × δ-grid sweep skips planning
//! and trajectory recording entirely, and skips even the merges when a
//! table recorded at the same (or any larger) horizon exists — the `anonrv
//! sweep` CLI command and the `store_timing` benchmark drive precisely
//! these paths.
//!
//! ## Failure model & recovery
//!
//! The store assumes processes die without warning — `kill -9`, OOM, power
//! loss — at **any** instruction, and is engineered so that no such death
//! costs correctness; at worst it costs recomputation.  The machinery, and
//! how it is tested (see `ARCHITECTURE.md` for the operational view):
//!
//! * **Crash-consistent writes.**  Every artifact write is temp file →
//!   `sync_all` → rename, with the parent directory fsynced around the
//!   rename: after a crash the artifact name holds either the old frame or
//!   the new one, never a torn hybrid.  The only debris a death leaves is
//!   an orphaned temp (suffix `".tmp<pid>-<counter>"`, the counter guarding
//!   against PID recycling across container restarts) or a stale lock,
//!   both reclaimed by [`Store::gc`].
//! * **Quarantine.**  A frame that fails a **corruption-class** integrity
//!   gate on read (bad magic, wrong kind, truncation, checksum mismatch)
//!   is moved to the `quarantine/` subdirectory with a `.reason` sidecar
//!   and the load degrades to a miss → recompute-and-overwrite.  A
//!   version-stale frame is *not* quarantined — it is the expected
//!   after-image of a format bump, superseded in place.  `cache stats`
//!   surfaces the quarantined count, so recurring corruption (a failing
//!   disk) is visible instead of being silently recomputed around;
//!   [`Store::fsck`] (`anonrv cache <dir> fsck [--repair]`) finds deep
//!   damage eagerly, full-checksum, and optionally quarantines it.
//! * **Lock protocol.**  The advisory artifact lock is a `create_new` file
//!   stamped with its holder's PID + timestamp.  A lock older than 60 s is
//!   presumed dead and broken by **atomic rename takeover**: exactly one
//!   waiter wins the rename, removes the carcass, and every waiter
//!   re-races `create_new` — two waiters can never both admit themselves.
//! * **Shard supervision.**  [`SweepSession::run_sharded_supervised`]
//!   executes all `K` slices, re-probes [`Store::missing_shards`] (the
//!   artifacts on disk are the ground truth), and re-runs only the gaps
//!   with bounded retries and exponential backoff ([`SuperviseConfig`]) —
//!   safe because every slice is deterministic and bit-identical.  Panics
//!   in a slice are isolated; stragglers past the per-shard deadline are
//!   counted ([`SuperviseReport`]).
//! * **Deterministic fault injection.**  Every one of these paths is
//!   exercised by the [`fault`] failpoint registry
//!   (`ANONRV_FAILPOINTS="site=action[:count][@skip]"`): named sites at
//!   each I/O boundary, counter-scheduled io-error / torn-write / delay /
//!   abort actions, zero cost when disabled.  The `crash_recovery`
//!   integration harness re-execs itself with an abort armed at each write
//!   site in turn and asserts the survivors converge bit-identically.
//!
//! ## Session round-trip
//!
//! ```
//! use anonrv_graph::generators::oriented_torus;
//! use anonrv_plan::SweepPlan;
//! use anonrv_sim::{EngineConfig, SweepWalker};
//! use anonrv_store::{OutcomeProvenance, Store, SweepSession};
//!
//! let dir = std::env::temp_dir().join(format!("anonrv-store-doc-{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let store = Store::open(&dir).unwrap();
//! let g = oriented_torus(3, 4).unwrap();
//! let program = SweepWalker { seed: 0x5EED };
//! let key = program.program_key();
//!
//! // cold: plan, execute the representatives, persist everything
//! let mut session = SweepSession::new(Some(&store), &g, &program, &key, EngineConfig::batch(64));
//! let plan = SweepPlan::from_orbits(session.orbits().clone(), vec![0, 1, 2], 64);
//! let (outcomes, provenance) = session.run_plan(&plan).unwrap();
//! assert_eq!(provenance, OutcomeProvenance::Cold);
//!
//! // warm, smaller horizon: the recorded table serves by prefix truncation —
//! // bit-identical to a cold horizon-20 sweep, with zero program executions
//! let mut warm = SweepSession::new(Some(&store), &g, &program, &key, EngineConfig::batch(20));
//! let small = SweepPlan::from_orbits(warm.orbits().clone(), vec![0, 1, 2], 20);
//! let (served, provenance) = warm.run_plan(&small).unwrap();
//! assert!(matches!(provenance, OutcomeProvenance::WarmPrefix { recorded: 64, .. }));
//! assert_eq!(warm.stats().timeline_misses, 0);
//! let cold20 = SweepSession::in_memory(&g, &program, EngineConfig::batch(20))
//!     .run_plan(&small)
//!     .unwrap()
//!     .0;
//! assert_eq!(served.table(), cold20.table());
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! [`PairOrbits`]: anonrv_plan::PairOrbits
//! [`SweepPlan`]: anonrv_plan::SweepPlan

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod codec;
pub mod fault;
pub mod session;
pub mod shard;

pub use cache::{
    table_fingerprint, CacheStats, FsckEntry, FsckReport, FsckVerdict, GcReport, KindStats,
    Provenance, Store, TableFingerprinter, WarmedTimelines,
};
pub use session::{
    OutcomeProvenance, SessionStats, StreamedSweepSummary, SuperviseConfig, SuperviseReport,
    SweepSession,
};
pub use shard::{merge_shard_outcomes, ShardOutcomes, ShardSpec};

/// Shared fixtures for the unit tests of this crate.
#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// The shared deterministic sweep-workload agent — the same
    /// byte-for-byte program the benches and the CLI drive this store with.
    pub(crate) use anonrv_sim::SweepWalker as Walker;

    /// A unique, self-deleting scratch directory per test.
    pub(crate) struct TempDir(pub PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> Self {
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "anonrv-store-test-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }
}
