//! EXP-L31 bench: the Corollary 3.1 classification (orbit partition + Shrink)
//! and the Lemma 3.1 trajectory checker.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anonrv_core::feasibility::{classify, symmetric_trajectories_never_meet};
use anonrv_graph::generators::{oriented_torus, random_connected, symmetric_double_tree};

fn bench_infeasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("infeasibility_guard");
    let torus = oriented_torus(5, 5).unwrap();
    group.bench_function("classify torus-5x5 symmetric pair", |b| {
        b.iter(|| classify(black_box(&torus), 0, 12, 1))
    });
    let rnd = random_connected(16, 10, 3).unwrap();
    group.bench_function("classify random-16 nonsymmetric pair", |b| {
        b.iter(|| classify(black_box(&rnd), 0, 15, 0))
    });
    let (tree, mirror) = symmetric_double_tree(2, 4).unwrap();
    let leaf = (0..tree.num_nodes() / 2).find(|&v| tree.degree(v) == 1).unwrap();
    let ports: Vec<usize> = (0..200).map(|i| i % 3).collect();
    group.bench_function("Lemma 3.1 trajectory check, double-tree depth 4", |b| {
        b.iter(|| {
            symmetric_trajectories_never_meet(black_box(&tree), leaf, mirror[leaf], 0, &ports)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_infeasibility);
criterion_main!(benches);
