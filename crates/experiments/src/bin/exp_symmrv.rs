//! EXP-L32: SymmRV on symmetric STICs with delta >= Shrink (Lemmas 3.2 / 3.3).
//! Pass `--full` for the EXPERIMENTS.md configuration.

use anonrv_experiments::symm;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full { symm::SymmConfig::full() } else { symm::SymmConfig::default() };
    println!("{}", symm::run(&config));
}
