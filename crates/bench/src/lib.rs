//! # anonrv-bench
//!
//! Shared fixtures for the criterion benchmarks that time the kernels behind
//! every reproduced table/figure (see DESIGN.md §3 for the experiment index
//! and EXPERIMENTS.md for the recorded outcomes).  The benches themselves
//! live in `benches/`, one per experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use anonrv_core::label::TrailSignature;
use anonrv_core::universal_rv::UniversalRv;
use anonrv_graph::PortGraph;
use anonrv_sim::{simulate, Round, SimOutcome, Stic};
use anonrv_uxs::{LengthRule, PseudorandomUxs};

/// The short UXS rule shared by all benchmarks (coverage on the benchmark
/// instances is asserted by the integration suite).
pub fn bench_uxs() -> PseudorandomUxs {
    PseudorandomUxs::with_rule(LengthRule::Quadratic { c: 1, min_len: 16 })
}

/// Run `UniversalRV` on a STIC until rendezvous (or the completion horizon of
/// the phase with the given parameter hints) and return the outcome.
pub fn run_universal(g: &PortGraph, stic: Stic, d_hint: usize, delta_hint: Round) -> SimOutcome {
    let uxs = bench_uxs();
    let scheme = TrailSignature::new(uxs);
    let algo = UniversalRv::new(&uxs, &scheme);
    let horizon = algo.completion_horizon(g.num_nodes(), d_hint.max(1), delta_hint.max(1));
    simulate(g, &algo, &stic, horizon)
}

/// Assert that an outcome represents a rendezvous (used by benches so a
/// regression in the algorithm fails the bench loudly instead of silently
/// timing a non-meeting run).
pub fn expect_met(outcome: &SimOutcome) -> Round {
    outcome.rendezvous_time().expect("benchmark STIC must be solved")
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::oriented_ring;

    #[test]
    fn the_benchmark_fixture_solves_its_reference_stic() {
        let g = oriented_ring(4).unwrap();
        let outcome = run_universal(&g, Stic::new(0, 1, 1), 1, 1);
        // the meeting may happen as early as the later agent's start round
        let _time = expect_met(&outcome);
        assert!(outcome.met());
    }
}
