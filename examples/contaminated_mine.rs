//! Two mobile robots in the corridors of a contaminated mine (the paper's
//! opening motivation): they are dropped at different junctions, start with
//! an operator-induced delay, and must meet to exchange ground samples.
//!
//! The mine is modelled as a caterpillar graph (a main gallery with side
//! corridors); junctions are anonymous and corridor exits are only labelled
//! locally (ports), exactly the paper's model.
//!
//! ```sh
//! cargo run --example contaminated_mine
//! ```

use anonrv_core::prelude::*;
use anonrv_graph::generators::caterpillar;
use anonrv_graph::symmetry::OrbitPartition;
use anonrv_sim::{simulate, Stic};

fn main() {
    // main gallery of 5 junctions, 2 side corridors per junction
    let mine = caterpillar(5, 2).expect("mine layout");
    println!("mine layout: {} junctions, {} corridors", mine.num_nodes(), mine.num_edges());

    // The robots are dropped at a gallery junction and at the end of a side
    // corridor — structurally different places, so their views differ.
    let (robot_a, robot_b) = (0usize, mine.num_nodes() - 1);
    let orbits = OrbitPartition::compute(&mine);
    println!(
        "drop points {robot_a} and {robot_b} are {}",
        if orbits.are_symmetric(robot_a, robot_b) { "symmetric" } else { "nonsymmetric" }
    );

    // Nonsymmetric drop points: rendezvous is feasible for any delay
    // (Corollary 3.1), and the dedicated AsymmRV procedure is polynomial.
    let uxs = PseudorandomUxs::default();
    let scheme = TrailSignature::new(uxs);
    for delay in [0u128, 3, 11] {
        let stic = Stic::new(robot_a, robot_b, delay);
        assert!(is_feasible(&mine, robot_a, robot_b, delay));
        let program = AsymmRv::new(mine.num_nodes(), delay.max(1), &scheme, &uxs);
        let horizon = program.full_duration() + delay + 1;
        let outcome = simulate(&mine, &program, &stic, horizon);
        match outcome.meeting {
            Some(m) => println!(
                "delay {delay:>2}: robots meet at junction {} after {} rounds",
                m.node, m.later_round
            ),
            None => println!("delay {delay:>2}: no meeting within {horizon} rounds"),
        }
    }
}
