//! Graph family generators.
//!
//! Every family referenced by the paper or used by the reproduction
//! experiments is generated here, with explicit, documented port
//! assignments (port assignments matter: they decide which nodes are
//! symmetric and what `Shrink` is).
//!
//! | family | symmetry structure | role in the paper |
//! |--------|--------------------|-------------------|
//! | [`oriented_ring`], [`oriented_torus`], [`hypercube`], [`circulant`] | every pair symmetric, `Shrink = distance` | Section 3 example (torus) |
//! | [`symmetric_double_tree`] | mirror pairs symmetric, `Shrink = 1` | Section 3 example (tree with central edge) |
//! | [`qh_tree`], [`qh_hat`] | all views equal | Section 4 lower bound (Figure 1) |
//! | [`path`], [`star`], [`lollipop`], [`random_connected`] | mostly asymmetric | Proposition 3.1 workloads |

mod basic;
mod qh;
mod random;
mod torus;
mod trees;

pub use basic::{
    circulant, complete, complete_bipartite, cycle_with_chord, hypercube, lollipop, oriented_ring,
    path, ring_with_orientation, star, two_node_graph,
};
pub use qh::{qh_hat, qh_tree, z_set, Cardinal, QhGraph};
pub use random::{random_connected, random_regular};
pub use torus::{grid, oriented_torus};
pub use trees::{caterpillar, kary_tree, symmetric_double_graph, symmetric_double_tree};
