//! Deterministic fault injection for the store's I/O boundaries.
//!
//! Storage code earns trust by surviving failures, and the only honest way
//! to test failure handling is to *cause* the failures — deterministically,
//! so a reproduction is a command line, not a race.  This module is a
//! failpoint registry in the style of failpoint-instrumented storage
//! engines: every store I/O boundary passes through a **named site**, and a
//! site can be armed with an **action** that fires on an exact, counted
//! schedule.
//!
//! ## Sites
//!
//! | site | boundary |
//! |---|---|
//! | `store.write_tmp`   | writing the temp file inside [`crate::Store`]'s atomic write |
//! | `store.rename`      | the rename that publishes an artifact |
//! | `store.read_frame`  | reading an artifact's bytes off disk |
//! | `lock.acquire`      | acquiring the advisory artifact lock |
//! | `shard.execute`     | executing one shard slice of a sweep plan |
//! | `shard.persist`     | persisting one shard's partial outcome table |
//!
//! ## Actions
//!
//! * `io-error` — the operation fails with [`std::io::ErrorKind::Other`];
//! * `torn-write-<N>` — a write persists only its first `N` bytes, then
//!   fails (simulates a crash mid-write that made it to disk partially);
//! * `delay-<MS>` — the operation sleeps `MS` milliseconds first, then
//!   proceeds normally (straggler simulation for deadline tests);
//! * `abort` — the process calls [`std::process::abort`]: the `SIGABRT`
//!   equivalent of `kill -9` mid-operation, which is what the
//!   `crash_recovery` harness arms in its re-exec'd children.
//!
//! ## Configuration and determinism
//!
//! Sites are armed either from the `ANONRV_FAILPOINTS` environment variable
//! (read once, on first use — the process-boundary channel the crash
//! harness and the CI smoke job use) or programmatically through
//! [`scoped`] (the in-process channel unit tests use).  The syntax is
//!
//! ```text
//! site=action[:count][@skip] [; site=action...]
//! ```
//!
//! `count` bounds how many times the action fires (default: unbounded);
//! `skip` lets the first `skip` hits pass through unharmed before the
//! action starts firing, so a test can kill e.g. exactly the third write.
//! There is no randomness anywhere: schedules are plain per-site hit
//! counters, so the *n*-th hit of a site either always fires or never does
//! — a failing run replays exactly from its `ANONRV_FAILPOINTS` string.
//!
//! ## Cost when disabled
//!
//! The fast path — no failpoint ever configured — is one relaxed atomic
//! load per site hit.  No locks, no allocation, no branch beyond the one
//! comparison, so production code keeps its sites threaded permanently.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// What an armed failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Fail the operation with an [`io::ErrorKind::Other`] error.
    IoError,
    /// Persist only the first `N` bytes of the write, then fail.  At
    /// non-write sites this acts like [`Action::IoError`].
    TornWrite(usize),
    /// Sleep this many milliseconds, then proceed normally.
    Delay(u64),
    /// Abort the process mid-operation ([`std::process::abort`]).
    Abort,
}

/// One armed site: its action and its counted schedule.
#[derive(Debug, Clone)]
struct FaultPlan {
    action: Action,
    /// Hits that pass through unharmed before the action starts firing.
    skip: u64,
    /// Remaining firings, `None` = unbounded.
    remaining: Option<u64>,
}

/// Registry state machine for the zero-cost fast path: sites check one
/// relaxed atomic and return immediately unless some failpoint was ever
/// configured.
const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

fn registry() -> &'static Mutex<HashMap<String, FaultPlan>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FaultPlan>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Serialises tests that arm failpoints programmatically — two concurrent
/// [`scoped`] configurations would otherwise see each other's faults.
fn test_serial() -> &'static Mutex<()> {
    static SERIAL: Mutex<()> = Mutex::new(());
    &SERIAL
}

/// Parse one `site=action[:count][@skip]` entry.  Panics on malformed
/// input: a mistyped failpoint spec silently doing nothing would defeat the
/// entire point of deterministic injection.
fn parse_entry(entry: &str) -> (String, FaultPlan) {
    let (site, rest) = entry
        .split_once('=')
        .unwrap_or_else(|| panic!("malformed failpoint entry {entry:?}: expected site=action"));
    let (rest, skip) = match rest.split_once('@') {
        Some((head, skip)) => {
            let skip = skip
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("malformed failpoint skip in {entry:?}"));
            (head, skip)
        }
        None => (rest, 0),
    };
    let (action, count) = match rest.split_once(':') {
        Some((action, count)) => {
            let count = count
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("malformed failpoint count in {entry:?}"));
            (action, Some(count))
        }
        None => (rest, None),
    };
    let action = if action == "io-error" {
        Action::IoError
    } else if action == "abort" {
        Action::Abort
    } else if let Some(ms) = action.strip_prefix("delay-") {
        Action::Delay(
            ms.parse().unwrap_or_else(|_| panic!("malformed delay milliseconds in {entry:?}")),
        )
    } else if let Some(bytes) = action.strip_prefix("torn-write-") {
        Action::TornWrite(
            bytes.parse().unwrap_or_else(|_| panic!("malformed torn-write bytes in {entry:?}")),
        )
    } else {
        panic!(
            "unknown failpoint action {action:?} in {entry:?} \
             (expected io-error, abort, delay-<ms> or torn-write-<bytes>)"
        );
    };
    (site.trim().to_string(), FaultPlan { action, skip, remaining: count })
}

/// Parse a full `ANONRV_FAILPOINTS`-style configuration string
/// (`;`-separated entries; empty entries ignored).
fn parse_config(config: &str) -> HashMap<String, FaultPlan> {
    config.split(';').map(str::trim).filter(|e| !e.is_empty()).map(parse_entry).collect()
}

/// Lazily read `ANONRV_FAILPOINTS` exactly once; afterwards [`STATE`] is
/// `ON` or `OFF` and the fast path never comes back here.
fn init_from_env() {
    let plans = match std::env::var("ANONRV_FAILPOINTS") {
        Ok(s) if !s.trim().is_empty() => parse_config(&s),
        _ => HashMap::new(),
    };
    if plans.is_empty() {
        // racing initialisers agree on the outcome, so any ordering is fine
        let _ =
            STATE.compare_exchange(STATE_UNINIT, STATE_OFF, Ordering::AcqRel, Ordering::Acquire);
        return;
    }
    let mut reg = registry().lock().expect("failpoint registry poisoned");
    reg.extend(plans);
    STATE.store(STATE_ON, Ordering::Release);
}

/// Check a named site: `Some(action)` when an armed failpoint fires on this
/// hit, `None` otherwise.  Counters advance deterministically — the *n*-th
/// hit of a site gives the same answer in every run with the same
/// configuration.
pub fn check(site: &str) -> Option<Action> {
    match STATE.load(Ordering::Acquire) {
        STATE_OFF => return None,
        STATE_UNINIT => init_from_env(),
        _ => {}
    }
    if STATE.load(Ordering::Acquire) != STATE_ON {
        return None;
    }
    let mut reg = registry().lock().expect("failpoint registry poisoned");
    let plan = reg.get_mut(site)?;
    if plan.skip > 0 {
        plan.skip -= 1;
        return None;
    }
    let fired = match &mut plan.remaining {
        Some(0) => None,
        Some(n) => {
            *n -= 1;
            Some(plan.action)
        }
        None => Some(plan.action),
    };
    drop(reg);
    if let Some(action) = fired {
        note_trip(site, action);
    }
    fired
}

/// Surface a firing failpoint to telemetry, so fault-injection runs can
/// assert their trips against the armed schedule.
fn note_trip(site: &str, action: Action) {
    if anonrv_obs::enabled() {
        anonrv_obs::counter_add(&format!("fault.trip.{site}"), 1);
        anonrv_obs::event(
            "fault.trip",
            &[
                ("site", anonrv_obs::Field::from(site)),
                ("action", anonrv_obs::Field::from(format!("{action:?}"))),
            ],
        );
    }
}

/// Site check for plain (non-write) I/O boundaries: translate a firing
/// action into its `io::Result` effect.  [`Action::TornWrite`] degrades to
/// an error here — tearing is only meaningful where bytes are written, and
/// [`crate::Store`]'s atomic write handles it inline.
pub(crate) fn hit_io(site: &str) -> io::Result<()> {
    match check(site) {
        None => Ok(()),
        Some(Action::Delay(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            Ok(())
        }
        Some(Action::Abort) => std::process::abort(),
        Some(Action::IoError) | Some(Action::TornWrite(_)) => {
            Err(io::Error::other(format!("injected fault at {site}")))
        }
    }
}

/// Guard returned by [`scoped`]: holds the failpoint configuration active
/// until dropped, and serialises configured sections across threads.
pub struct FaultGuard {
    _serial: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        registry().lock().expect("failpoint registry poisoned").clear();
        STATE.store(STATE_OFF, Ordering::Release);
    }
}

/// Arm failpoints programmatically for the lifetime of the returned guard
/// (the in-process channel tests use; processes use `ANONRV_FAILPOINTS`).
/// Uses the same `site=action[:count][@skip]` syntax as the environment
/// variable and panics on malformed input.  Guarded sections are mutually
/// exclusive across threads, so concurrent tests cannot see each other's
/// faults.
pub fn scoped(config: &str) -> FaultGuard {
    let serial = match test_serial().lock() {
        Ok(g) => g,
        // a panicking previous holder already cleared nothing of ours
        Err(poisoned) => poisoned.into_inner(),
    };
    let plans = parse_config(config);
    {
        let mut reg = registry().lock().expect("failpoint registry poisoned");
        reg.clear();
        reg.extend(plans);
        let on = !reg.is_empty();
        STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Release);
    }
    FaultGuard { _serial: serial }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sites_fire_nothing() {
        let _guard = scoped("");
        assert_eq!(check("store.write_tmp"), None);
        assert!(hit_io("store.rename").is_ok());
    }

    #[test]
    fn counted_schedules_are_deterministic() {
        let _guard = scoped("a=io-error:2; b=delay-3; c=torn-write-16:1@2");
        // a: fires exactly twice
        assert_eq!(check("a"), Some(Action::IoError));
        assert_eq!(check("a"), Some(Action::IoError));
        assert_eq!(check("a"), None);
        assert_eq!(check("a"), None);
        // b: unbounded
        for _ in 0..5 {
            assert_eq!(check("b"), Some(Action::Delay(3)));
        }
        // c: skips two hits, fires once, then stays quiet
        assert_eq!(check("c"), None);
        assert_eq!(check("c"), None);
        assert_eq!(check("c"), Some(Action::TornWrite(16)));
        assert_eq!(check("c"), None);
        // unknown sites never fire
        assert_eq!(check("d"), None);
    }

    #[test]
    fn io_translation_matches_the_action() {
        let _guard = scoped("err=io-error:1; wait=delay-1:1");
        let e = hit_io("err").unwrap_err();
        assert!(e.to_string().contains("injected fault at err"), "{e}");
        assert!(hit_io("err").is_ok(), "count exhausted");
        assert!(hit_io("wait").is_ok(), "delay proceeds normally");
    }

    #[test]
    fn guards_clear_the_registry_on_drop() {
        {
            let _guard = scoped("x=io-error");
            assert_eq!(check("x"), Some(Action::IoError));
        }
        let _guard = scoped("");
        assert_eq!(check("x"), None);
    }

    #[test]
    fn config_strings_parse_every_shape() {
        let plans = parse_config("a=abort; b=io-error:3 ;c=delay-250@1;; d=torn-write-0:1@0");
        assert_eq!(plans.len(), 4);
        assert_eq!(plans["a"].action, Action::Abort);
        assert_eq!((plans["a"].skip, plans["a"].remaining), (0, None));
        assert_eq!(plans["b"].remaining, Some(3));
        assert_eq!((plans["c"].action, plans["c"].skip), (Action::Delay(250), 1));
        assert_eq!(plans["d"].action, Action::TornWrite(0));
    }

    #[test]
    #[should_panic(expected = "unknown failpoint action")]
    fn malformed_actions_panic_instead_of_silently_arming_nothing() {
        parse_config("a=explode");
    }
}
