//! EXP-L31: infeasibility of symmetric STICs with delay below the Shrink
//! threshold (Lemma 3.1).  Pass `--full` for the EXPERIMENTS.md configuration.

use anonrv_experiments::infeasible;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        infeasible::InfeasibleConfig::full()
    } else {
        infeasible::InfeasibleConfig::default()
    };
    println!("{}", infeasible::run(&config));
}
