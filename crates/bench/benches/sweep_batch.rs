//! Perf-tracking bench for the batch simulation engine: the symm-sweep
//! workload — **all** `(u, v)` ordered pairs × δ ∈ {0..4} on
//! `oriented_torus(16, 16)` (327 680 STICs) — answered by one
//! `SweepEngine` whose trajectory cache records each of the 256 start
//! nodes' walks exactly once, versus per-call lockstep simulation, which
//! re-executes both agents' programs on every STIC.
//!
//! The lockstep baseline is timed on a 4 096-STIC sample (the full
//! workload takes seconds per iteration — which is the point); the batch
//! engine is timed on the *full* workload.  `scripts/record_sweep_bench.sh`
//! measures both on the full workload and records the speedup in
//! `BENCH_sweep.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anonrv_bench::{sweep_batch_engine, sweep_per_call_lockstep, sweep_stics, SweepWalker};
use anonrv_graph::generators::oriented_torus;
use anonrv_sim::Round;

const HORIZON: Round = 256;
const DELTAS: u32 = 5;

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_batch");
    group.sample_size(10);
    let torus = oriented_torus(16, 16).unwrap();
    let n = torus.num_nodes();
    let program = SweepWalker { seed: 0x5EED };

    let stics = sweep_stics(n, DELTAS);
    group.bench_function("batch engine torus-16x16 (327680 STICs)", |b| {
        b.iter(|| sweep_batch_engine(black_box(&torus), &program, DELTAS, HORIZON))
    });

    // deterministic sample of the workload for the per-call baseline;
    // scale by 327680/4096 = 80 for the honest full-sweep comparison
    let sample: Vec<_> = stics.iter().step_by(80).copied().collect();
    group.bench_function("per-call lockstep torus-16x16 (4096-STIC sample)", |b| {
        b.iter(|| sweep_per_call_lockstep(black_box(&torus), &program, &sample, HORIZON))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
