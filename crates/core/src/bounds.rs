//! Closed-form round-count bounds from the paper, plus the exact durations of
//! our (substituted) procedures.  All arithmetic saturates in `u128`: the
//! bounds are astronomically large for moderate parameters — that is the
//! point of Section 4.

use anonrv_sim::Round;

use crate::pairing;

/// Saturating power `(base)^(exp)` in `u128`.
pub fn sat_pow(base: u128, exp: u32) -> u128 {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc = acc.saturating_mul(base);
    }
    acc
}

/// The paper's bound on the number of walks of length `d` in an `n`-node
/// graph: `(n − 1)^d`.
pub fn walk_count_bound(n: usize, d: usize) -> u128 {
    sat_pow(n.saturating_sub(1) as u128, d as u32)
}

/// Duration of one iteration of the `for` loop of Procedure `Explore(u,d,δ)`:
/// `d + δ` rounds (out, back, wait `δ − d`).
pub fn explore_iteration_rounds(d: usize, delta: Round) -> Round {
    (d as Round).saturating_add(delta)
}

/// Worst-case duration of one call to Procedure `Explore(u,d,δ)`:
/// `(d + δ) · (n − 1)^d` rounds.  With padding enabled (see
/// [`mod@crate::explore`]) this is also the *exact* duration.
pub fn explore_rounds(n: usize, d: usize, delta: Round) -> Round {
    explore_iteration_rounds(d, delta).saturating_mul(walk_count_bound(n, d))
}

/// Lemma 3.3: the maximum execution time of `SymmRV(n, d, δ)`,
/// `T(n, d, δ) = (d + δ)(n − 1)^d (M + 2) + 2(M + 1)`, where `M` is the
/// length of the UXS `Y(n)`.
pub fn symm_rv_bound(n: usize, d: usize, delta: Round, uxs_len: usize) -> Round {
    let m = uxs_len as Round;
    explore_rounds(n, d, delta).saturating_mul(m.saturating_add(2)).saturating_add(2 * (m + 1))
}

/// Duration of one exploration block of the `AsymmRV` substitute: the UXS
/// application followed by its backtrack, `2(M + 1)` moves.
pub fn asymm_block_rounds(uxs_len: usize) -> Round {
    2 * (uxs_len as Round + 1)
}

/// Duration of one sub-slot of the `AsymmRV` substitute's schedule:
/// `B + 2·δ̂` rounds where `B` is the block length.
pub fn asymm_subslot_rounds(uxs_len: usize, delay_budget: Round) -> Round {
    asymm_block_rounds(uxs_len).saturating_add(delay_budget.saturating_mul(2))
}

/// Total duration of the `AsymmRV(n, δ̂)` substitute when no rendezvous
/// interrupts it: label computation plus `2 · label_len` sub-slots.  This is
/// the quantity playing the role of the paper's `P(n)` (Proposition 3.1); see
/// DESIGN.md §4.2 for the deviation (our bound additionally depends on the
/// delay budget).
pub fn asymm_rv_duration(
    label_rounds: Round,
    label_len: usize,
    uxs_len: usize,
    delay_budget: Round,
) -> Round {
    label_rounds.saturating_add(
        (2 * label_len as Round).saturating_mul(asymm_subslot_rounds(uxs_len, delay_budget)),
    )
}

/// Duration of one full phase of `UniversalRV` with parameters `(n, d, δ)`:
/// `2 · (P + δ)` rounds for the `AsymmRV` part (its execution plus the
/// equalising wait) plus, when `δ ≥ d`, the `T(n, d, δ)` rounds of the
/// `SymmRV` part.  Phases with `d ≥ n` are skipped and cost nothing.
pub fn phase_rounds(
    n: usize,
    d: usize,
    delta: Round,
    uxs_len: usize,
    label_rounds: Round,
    label_len: usize,
) -> Round {
    if d >= n {
        return 0;
    }
    let p = asymm_rv_duration(label_rounds, label_len, uxs_len, delta);
    let asymm_part = 2u128.saturating_mul(p.saturating_add(delta));
    let symm_part = if delta >= d as Round { symm_rv_bound(n, d, delta, uxs_len) } else { 0 };
    asymm_part.saturating_add(symm_part)
}

/// Upper bound on the total number of rounds `UniversalRV` needs before (and
/// including) the phase with parameters `(n, d, δ)` — the sum of all phase
/// durations up to `g(n, d, δ)`.  Useful for choosing simulation horizons.
///
/// `uxs_len_of(n')` must return the UXS length the algorithm will use for the
/// assumed size `n'`, and `label_rounds_of(n')` the label-computation time of
/// the `AsymmRV` substitute.
pub fn universal_rv_completion_bound(
    n: usize,
    d: usize,
    delta: Round,
    label_len: usize,
    mut uxs_len_of: impl FnMut(usize) -> usize,
    mut label_rounds_of: impl FnMut(usize) -> Round,
) -> Round {
    let final_phase = pairing::phase_of(n, d, delta.min(u64::MAX as Round) as u64);
    let mut total: Round = 0;
    for p in 1..=final_phase {
        let (n_p, d_p, delta_p) = pairing::params_of_phase(p);
        let uxs_len = uxs_len_of(n_p);
        let label_rounds = label_rounds_of(n_p);
        total = total.saturating_add(phase_rounds(
            n_p,
            d_p,
            delta_p as Round,
            uxs_len,
            label_rounds,
            label_len,
        ));
    }
    total
}

/// The paper's Proposition 4.1 reference shape `O(n + δ)^O(n + δ)`, evaluated
/// as `(n + δ)^(n + δ)` (saturating).  Only used to compare measured growth
/// against the claimed asymptotic envelope.
pub fn proposition41_envelope(n: usize, delta: Round) -> Round {
    let base = (n as u128).saturating_add(delta);
    let exp = base.min(u32::MAX as u128) as u32;
    sat_pow(base, exp)
}

/// The paper's estimate of the number of phases executed before rendezvous:
/// `g(n, d, δ) = O(n⁴ + δ²)`.
pub fn phase_count(n: usize, d: usize, delta: u64) -> u64 {
    pairing::phase_of(n, d, delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_pow_basics_and_saturation() {
        assert_eq!(sat_pow(3, 4), 81);
        assert_eq!(sat_pow(10, 0), 1);
        assert_eq!(sat_pow(0, 5), 0);
        assert_eq!(sat_pow(u128::MAX, 3), u128::MAX);
        assert_eq!(sat_pow(2, 127), 1u128 << 127);
    }

    #[test]
    fn walk_count_bound_matches_the_paper() {
        assert_eq!(walk_count_bound(5, 3), 64);
        assert_eq!(walk_count_bound(1, 3), 0);
        // the n = 20, d = 19 case that motivates u128 rounds
        assert!(walk_count_bound(20, 19) > u64::MAX as u128);
    }

    #[test]
    fn symm_rv_bound_formula() {
        // hand-computed: n=4, d=1, δ=2, M=10: (1+2)*3^1*(12) + 2*11 = 108 + 22
        assert_eq!(symm_rv_bound(4, 1, 2, 10), 130);
        // monotone in every argument
        assert!(symm_rv_bound(5, 2, 2, 10) > symm_rv_bound(4, 2, 2, 10));
        assert!(symm_rv_bound(4, 2, 3, 10) > symm_rv_bound(4, 2, 2, 10));
        assert!(symm_rv_bound(4, 2, 2, 11) > symm_rv_bound(4, 2, 2, 10));
    }

    #[test]
    fn asymm_durations_compose() {
        let uxs_len = 10;
        assert_eq!(asymm_block_rounds(uxs_len), 22);
        assert_eq!(asymm_subslot_rounds(uxs_len, 3), 28);
        // label: 50 rounds, 4 bits: 50 + 8 * 28
        assert_eq!(asymm_rv_duration(50, 4, uxs_len, 3), 50 + 8 * 28);
    }

    #[test]
    fn phase_rounds_skips_impossible_parameters() {
        assert_eq!(phase_rounds(3, 3, 1, 10, 50, 4), 0);
        assert_eq!(phase_rounds(3, 5, 1, 10, 50, 4), 0);
        // with d <= δ both parts run
        let with_symm = phase_rounds(4, 1, 2, 10, 50, 4);
        let without_symm = phase_rounds(4, 3, 2, 10, 50, 4);
        assert!(with_symm > without_symm);
        assert_eq!(
            with_symm,
            2 * (asymm_rv_duration(50, 4, 10, 2) + 2) + symm_rv_bound(4, 1, 2, 10)
        );
    }

    #[test]
    fn completion_bound_is_monotone_in_the_target_phase() {
        let bound_small = universal_rv_completion_bound(3, 1, 1, 4, |_| 10, |_| 50);
        let bound_large = universal_rv_completion_bound(4, 1, 2, 4, |_| 10, |_| 50);
        assert!(bound_small > 0);
        assert!(bound_large > bound_small);
    }

    #[test]
    fn envelope_grows_super_exponentially() {
        assert_eq!(proposition41_envelope(2, 1), 27);
        assert!(proposition41_envelope(4, 2) > proposition41_envelope(3, 2));
        assert_eq!(proposition41_envelope(100, 1000), u128::MAX); // saturates
    }
}
