//! EXP-SHRINK: Shrink(u, v) versus distance on the symmetric families
//! (the Section 3 examples).  Pass `--full` for the EXPERIMENTS.md
//! configuration.

use anonrv_experiments::shrink_exp;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config =
        if full { shrink_exp::ShrinkConfig::full() } else { shrink_exp::ShrinkConfig::default() };
    println!("{}", shrink_exp::run(&config));
}
