//! Property tests of the **prefix property at the store boundary**: the
//! horizon-generic store records timelines and outcome tables once, at the
//! largest horizon ever requested, and serves every smaller horizon by
//! prefix truncation.  These tests pin the two claims that make that sound:
//!
//! 1. a horizon-`H` recorded timeline, persisted and served back at
//!    `h < H`, is installed **as-is** (the merge kernels clip per query),
//!    its `h`-truncation is **byte-identical** (segment list included) to a
//!    cold horizon-`h` recording, and a session served that way answers
//!    every query bit-identically to cold Batch, Lockstep *and* Streaming
//!    engines;
//! 2. a damaged superseding frame degrades to recompute — never to a stale
//!    shorter answer (which no longer exists: supersession is in-place).

use proptest::prelude::*;

use anonrv::graph::generators::{oriented_ring, random_connected};
use anonrv::plan::SweepPlan;
use anonrv::sim::{
    simulate_with, AgentProgram, EngineConfig, Navigator, Round, Stic, Stop, SweepEngine, Timeline,
};
use anonrv::store::{OutcomeProvenance, Store, SweepSession};

/// Deterministic scripted agent (same idiom as the engine property tests):
/// a seeded LCG decides each round between moving through a pseudo-random
/// port and short waits, optionally terminating after a bounded number of
/// actions.
struct ScriptedWalker {
    seed: u64,
    lifetime: Option<u64>,
}

impl AgentProgram for ScriptedWalker {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let mut state = self.seed | 1;
        let mut actions = 0u64;
        loop {
            if let Some(lifetime) = self.lifetime {
                if actions >= lifetime {
                    return Ok(());
                }
            }
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = state >> 33;
            if roll.is_multiple_of(4) {
                nav.wait((roll % 9 + 1) as Round)?;
            } else {
                nav.move_via(roll as usize % nav.degree())?;
            }
            actions += 1;
        }
    }
}

/// Unique, self-deleting scratch directory per test case.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "anonrv-prop-store-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Persist timelines at a long horizon, load them back, serve at a
    /// shorter one: byte-identical segments to a cold short recording, and
    /// bit-identical outcomes against all three cold engines.
    #[test]
    fn stored_long_recordings_serve_short_horizons_byte_identically(
        n in 2usize..10,
        extra in 0usize..5,
        graph_seed in 0u64..200,
        walker_seed in 0u64..1_000,
        lifetime_sel in 0u64..80,
        long_horizon in 2u64..160,
        short_frac in 0u64..100,
        delay in 0u64..12,
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, graph_seed).expect("valid generator parameters");
        // half the cases terminate by themselves, half run to the horizon
        let lifetime = (lifetime_sel < 40).then_some(lifetime_sel + 1);
        let program = ScriptedWalker { seed: walker_seed, lifetime };
        let key = format!("prop-walker-{walker_seed}-{lifetime:?}");
        let long_horizon = long_horizon as Round;
        let short = (short_frac as Round * long_horizon) / 100; // < long
        let dir = TempDir::new("prefix");
        let store = Store::open(&dir.0).unwrap();

        // record every start node at the long horizon and persist
        let long_engine = SweepEngine::new(&g, &program, EngineConfig::batch(long_horizon));
        long_engine.cache().warm_all();
        store.persist_engine(&long_engine, &key).unwrap();

        // serve at the shorter horizon: every preload is a prefix hit ...
        let served = SweepEngine::new(&g, &program, EngineConfig::batch(short));
        let warmed = store.warm_engine(&served, &key);
        prop_assert_eq!(warmed.installed, g.num_nodes());
        prop_assert_eq!(warmed.prefix, g.num_nodes());

        // ... installed as-is (no copy-down: the merge kernels clip per
        // query), and clipping each one to the short horizon is
        // byte-identical to a cold recording at that horizon (the segment
        // list IS the byte layout)
        for u in g.nodes() {
            let cold = Timeline::record(&g, &program, u, short);
            let warm = served.cache().get(u).expect("preloaded");
            prop_assert_eq!(warm.recorded_horizon(), long_horizon);
            prop_assert_eq!(
                warm.truncate(short).segments().collect::<Vec<_>>(),
                cold.segments().collect::<Vec<_>>(),
                "start {} at horizon {}: served segments diverged", u, short
            );
        }

        // outcome differential against all three cold engines
        let stic = Stic::new(0, (1 + graph_seed as usize) % n.max(1), delay as Round);
        let answered = served.simulate(&stic);
        for config in
            [EngineConfig::batch(short), EngineConfig::lockstep(short), EngineConfig::streaming(short)]
        {
            let direct = simulate_with(&g, &program, &program, &stic, config);
            prop_assert_eq!(answered, direct, "{} at horizon {} diverged", stic, short);
        }
        // no program execution happened on the served engine beyond preloads
        prop_assert_eq!(served.cache().computed(), g.num_nodes());
    }

    /// A full session round trip: populate at `H`, serve a plan at `h < H`
    /// as a prefix hit with zero recordings, bit-identical to a cold run —
    /// then damage the superseding frames and check the degradation is a
    /// recompute that *still* matches the cold run (never a stale answer).
    #[test]
    fn sessions_serve_prefix_hits_and_degrade_to_recompute_on_damage(
        ring in 3usize..9,
        walker_seed in 0u64..500,
        long_horizon in 8u64..120,
        short_frac in 0u64..100,
        corrupt_byte in 0u64..256,
    ) {
        let g = oriented_ring(ring).expect("valid ring");
        let program = ScriptedWalker { seed: walker_seed, lifetime: None };
        let key = format!("prop-session-{walker_seed}");
        let long_horizon = long_horizon as Round;
        let short = (short_frac as Round * long_horizon) / 100; // < long
        let deltas: Vec<Round> = vec![0, 1, 3];
        let dir = TempDir::new("session");
        let store = Store::open(&dir.0).unwrap();

        // populate at the long horizon
        let mut seeding =
            SweepSession::new(Some(&store), &g, &program, &key, EngineConfig::batch(long_horizon));
        let long_plan =
            SweepPlan::from_orbits(seeding.orbits().clone(), deltas.clone(), long_horizon);
        seeding.run_plan(&long_plan).unwrap();

        // the cold reference at the short horizon
        let short_plan = SweepPlan::from_orbits(seeding.orbits().clone(), deltas.clone(), short);
        let reference = SweepSession::in_memory(&g, &program, EngineConfig::batch(short))
            .run_plan(&short_plan)
            .unwrap()
            .0
            .table()
            .to_vec();

        // prefix hit: zero recordings, bit-identical
        let mut session =
            SweepSession::new(Some(&store), &g, &program, &key, EngineConfig::batch(short));
        let (served, provenance) = session.run_plan(&short_plan).unwrap();
        prop_assert!(
            matches!(provenance, OutcomeProvenance::WarmPrefix { recorded, .. } if recorded == long_horizon),
            "expected a prefix hit, got {:?}", provenance
        );
        prop_assert_eq!(session.stats().timeline_misses, 0);
        prop_assert_eq!(served.table(), reference.as_slice());

        // damage every superseding frame: outcome AND timeline artifacts
        for entry in std::fs::read_dir(&dir.0).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            if name.starts_with("outcomes-") || name.starts_with("timelines-") {
                let mut bytes = std::fs::read(&path).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= corrupt_byte as u8 | 1; // always flips at least one bit
                std::fs::write(&path, bytes).unwrap();
            }
        }
        let mut damaged =
            SweepSession::new(Some(&store), &g, &program, &key, EngineConfig::batch(short));
        let (recomputed, provenance) = damaged.run_plan(&short_plan).unwrap();
        prop_assert_eq!(provenance, OutcomeProvenance::Cold);
        prop_assert_eq!(damaged.stats().timeline_hits, 0);
        prop_assert_eq!(recomputed.table(), reference.as_slice());
    }
}
