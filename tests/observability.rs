//! Workspace-level telemetry tests: the metrics registry under concurrent
//! hammering from rayon and supervisor-style threads (exact counts, no
//! torn histograms), a JSONL trace round-trip through a real supervised
//! sweep (every line parses, schema-versioned, span nesting well-formed),
//! and a fault-injected supervised run whose retry events and failpoint
//! trips match the injected failures record for record.
//!
//! Every test installs its own pipeline via [`anonrv::obs::install`]; the
//! guard serializes installs, so the per-test metrics and sinks cannot
//! interleave even though the test harness runs threads in parallel.

use anonrv::graph::generators::oriented_torus;
use anonrv::obs::{self, MemorySink, ObsConfig};
use anonrv::plan::SweepPlan;
use anonrv::sim::{EngineConfig, Round, SweepWalker};
use anonrv::store::{fault, Store, SuperviseConfig, SweepSession};
use rayon::prelude::*;

const KEY: &str = "obs-walker-5eed";
const HORIZON: Round = 32;

/// Unique, self-deleting scratch directory per test.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("anonrv-observability-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

#[test]
fn registry_survives_concurrent_hammering_with_exact_counts() {
    let _g = obs::install(ObsConfig::metrics_only()).unwrap();

    const RAYON_TASKS: usize = 64;
    const THREADS: usize = 4;
    const PER: u64 = 1_000;

    // a rayon pool (the sweep executor's concurrency) and plain spawned
    // threads (the supervisor's) hammer the same names simultaneously
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for i in 0..PER {
                    obs::counter_add("hammer.count", 1);
                    obs::observe("hammer.hist", i);
                }
            });
        }
        let done: Vec<usize> = (0..RAYON_TASKS)
            .into_par_iter()
            .map(|task| {
                for i in 0..PER {
                    obs::counter_add("hammer.count", 1);
                    obs::observe("hammer.hist", i);
                }
                task
            })
            .collect();
        assert_eq!(done.len(), RAYON_TASKS);
    });

    let snap = obs::snapshot();
    let total = (RAYON_TASKS + THREADS) as u64 * PER;
    assert_eq!(snap.counter("hammer.count"), total, "counter lost increments");

    let h = snap.histogram("hammer.hist").expect("histogram recorded");
    assert_eq!(h.count, total, "histogram lost observations");
    assert_eq!(
        h.sum,
        (RAYON_TASKS + THREADS) as u64 * (PER * (PER - 1) / 2),
        "histogram sum drifted"
    );
    assert_eq!((h.min, h.max), (0, PER - 1));
    // not torn: the per-bucket counts account for every observation (this
    // is the same invariant `report_check` enforces on emitted snapshots)
    let bucket_total: u64 = h.buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, h.count);
}

#[test]
fn supervised_sweep_trace_round_trips_with_well_formed_nesting() {
    let dir = TempDir::new("trace");
    std::fs::create_dir_all(&dir.0).unwrap();
    let trace_path = dir.0.join("trace.jsonl");
    let store = Store::open(dir.0.join("cache")).unwrap();
    let g = oriented_torus(3, 3).unwrap();
    let program = SweepWalker { seed: 0x5EED };

    let report = {
        let _g = obs::install(ObsConfig::trace_file(&trace_path)).unwrap();
        let mut session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
        let plan = SweepPlan::from_orbits(session.orbits().clone(), vec![0, 1], HORIZON);
        let (_, report) =
            session.run_sharded_supervised(&plan, 2, SuperviseConfig::default()).unwrap();
        report
    }; // guard dropped: the sink is flushed before we read the file

    let content = std::fs::read_to_string(&trace_path).unwrap();
    // validate_trace parses every line, requires the header first, checks
    // the record version, span-id uniqueness, dangling parents and
    // parent/child interval containment
    let summary = obs::report::validate_trace(&content).expect("trace must validate");
    assert!(summary.spans > 0, "the sweep opened no spans");
    assert_eq!(
        summary.event_count("supervisor.attempt"),
        report.attempts_log.len() as u64,
        "one trace event per supervised attempt"
    );

    // spot-check the stream shape directly too: first line is the header,
    // every subsequent record is a span or event carrying v == 1
    let mut lines = content.lines();
    let header = obs::json::parse(lines.next().unwrap()).unwrap();
    assert_eq!(header.get("kind").unwrap().as_str(), Some("header"));
    assert_eq!(
        header.get("schema").unwrap().as_str(),
        Some(obs::report::TRACE_SCHEMA),
        "trace header must carry the schema version"
    );
    for line in lines {
        let v = obs::json::parse(line).unwrap();
        assert_eq!(v.get("v").unwrap().as_u64(), Some(1));
        assert!(matches!(v.get("kind").unwrap().as_str(), Some("span" | "event")));
    }
}

#[test]
fn injected_faults_surface_as_matching_retry_rows_trips_and_events() {
    let dir = TempDir::new("faults");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_torus(3, 3).unwrap();
    let program = SweepWalker { seed: 0x5EED };
    let sink = MemorySink::shared();

    // install the pipeline first, then arm the failpoint: both scopes
    // serialize on their own registries, and this order matches the CLI's
    // (telemetry outermost)
    let (report, snap) = {
        let _g = obs::install(ObsConfig::with_sink(sink.clone())).unwrap();
        let _fault = fault::scoped("shard.persist=io-error:1");
        let config = SuperviseConfig {
            base_backoff: std::time::Duration::from_millis(1),
            ..SuperviseConfig::default()
        };
        let mut session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
        let plan = SweepPlan::from_orbits(session.orbits().clone(), vec![0, 1], HORIZON);
        let (_, report) = session.run_sharded_supervised(&plan, 2, config).unwrap();
        (report, obs::snapshot())
    };

    // the structured rows record the injected failure exactly: shard 0
    // fails its first persist, backs off, succeeds on the second try
    assert_eq!(report.retried, vec![0]);
    let shard0: Vec<_> = report.attempts_log.iter().filter(|r| r.shard == 0).collect();
    assert_eq!(shard0.len(), 2);
    assert_eq!((shard0[0].attempt, shard0[0].outcome()), (1, "error"));
    assert_eq!((shard0[1].attempt, shard0[1].outcome()), (2, "ok"));

    // the armed failpoint tripped exactly once, and the counters agree
    // with the report
    assert_eq!(snap.counter("fault.trip.shard.persist"), 1, "one injected trip");
    assert_eq!(snap.counter("supervisor.attempts"), report.attempts as u64);
    assert_eq!(snap.counter("supervisor.retries"), 1);

    // every supervisor.attempt event in the trace matches its row field
    // for field (same single source, two renderings)
    let events: Vec<(u64, u64, String)> = sink
        .lines()
        .iter()
        .filter_map(|line| {
            let v = obs::json::parse(line).ok()?;
            if v.get("kind")?.as_str()? != "event"
                || v.get("name")?.as_str()? != "supervisor.attempt"
            {
                return None;
            }
            let fields = v.get("fields")?;
            Some((
                fields.get("shard")?.as_u64()?,
                fields.get("attempt")?.as_u64()?,
                fields.get("outcome")?.as_str()?.to_string(),
            ))
        })
        .collect();
    let rows: Vec<(u64, u64, String)> = report
        .attempts_log
        .iter()
        .map(|r| (r.shard as u64, r.attempt as u64, r.outcome().to_string()))
        .collect();
    assert_eq!(events, rows, "trace events and report rows diverged");
}
