//! EXP-ABL — ablations of the reproduction's own design choices
//! (DESIGN.md §4), so the effect of every substitution is measured rather
//! than assumed:
//!
//! * **UXS length rule** (DESIGN.md §4.1): the substitute pseudorandom
//!   sequence comes in cubic, quadratic and fixed-length flavours; the
//!   ablation measures coverage on the workload suites, the shortest covering
//!   prefix, and the effect of the length on `SymmRV`'s measured rendezvous
//!   time (the `M + 2` factor of Lemma 3.3).
//! * **Label scheme** (DESIGN.md §4.2): the polynomial-round trail signature
//!   versus the exact (exponential-round) truncated-view label — label
//!   computation cost and distinctness on nonsymmetric pairs.
//! * **Explore padding**: the phase-alignment padding `UniversalRV` adds on
//!   top of the paper's literal `SymmRV`; measured as the duration spread of
//!   the unpadded procedure across start nodes (the padded variant's spread
//!   is zero by construction).

use anonrv_core::bounds::symm_rv_bound;
use anonrv_core::label::{ExactViewLabel, LabelScheme, TrailSignature};
use anonrv_core::symm_rv::SymmRv;
use anonrv_graph::generators::lollipop;
use anonrv_graph::shrink::shrink;
use anonrv_sim::{record_trace, simulate, Round, Stic};
use anonrv_uxs::{
    covers_from_all, shortest_covering_prefix, LengthRule, PseudorandomUxs, UxsProvider,
};

use crate::report::{fmt_opt_rounds, fmt_rounds, Table};
use crate::suite::{nonsymmetric_pairs, nonsymmetric_workloads, symmetric_workloads, Scale};

/// Configuration of the ablation experiment.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// Workload scale (used for coverage / distinctness sweeps).
    pub scale: Scale,
    /// UXS length rules compared.
    pub uxs_rules: Vec<(&'static str, LengthRule)>,
    /// Ring size used for the `SymmRV`-time probe.
    pub probe_ring: usize,
    /// Sizes probed by the label-scheme ablation.
    pub label_sizes: Vec<usize>,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            scale: Scale::Quick,
            uxs_rules: vec![
                ("cubic", LengthRule::Cubic { c: 2, min_len: 32 }),
                ("quadratic", LengthRule::Quadratic { c: 1, min_len: 16 }),
                ("fixed-32", LengthRule::Fixed(32)),
            ],
            probe_ring: 6,
            label_sizes: vec![4, 5, 6],
        }
    }
}

impl AblationConfig {
    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        AblationConfig {
            scale: Scale::Full,
            uxs_rules: vec![
                ("cubic", LengthRule::Cubic { c: 2, min_len: 32 }),
                ("quadratic", LengthRule::Quadratic { c: 1, min_len: 16 }),
                ("fixed-64", LengthRule::Fixed(64)),
                ("fixed-32", LengthRule::Fixed(32)),
            ],
            probe_ring: 8,
            label_sizes: vec![4, 5, 6, 7, 8],
        }
    }
}

/// UXS-length ablation: one row per length rule.
pub fn uxs_table(config: &AblationConfig) -> Table {
    let mut table = Table::new(
        "EXP-ABL-UXS",
        "UXS length rule ablation (DESIGN.md §4.1)",
        &[
            "rule",
            "len at n=8",
            "covered instances",
            "instances",
            "max shortest covering prefix",
            "SymmRV time on probe ring",
            "T(n,d,delta) on probe ring",
        ],
    );
    let mut workloads = symmetric_workloads(config.scale);
    workloads.extend(nonsymmetric_workloads(config.scale));
    for (name, rule) in &config.uxs_rules {
        let uxs = PseudorandomUxs::with_rule(*rule);
        let mut covered = 0usize;
        let mut max_prefix: Option<usize> = None;
        for w in &workloads {
            let y = uxs.sequence(w.n());
            if covers_from_all(&w.graph, &y) {
                covered += 1;
                let p = shortest_covering_prefix(&w.graph, &y).unwrap_or(y.len());
                max_prefix = Some(max_prefix.map_or(p, |m| m.max(p)));
            }
        }
        // SymmRV-time probe: adjacent nodes of an oriented ring, delta = Shrink = 1
        let ring = anonrv_graph::generators::oriented_ring(config.probe_ring).unwrap();
        let (u, v) = (0usize, 1usize);
        let d = shrink(&ring, u, v).unwrap();
        let program = SymmRv::new(config.probe_ring, d, d as Round, &uxs);
        let bound = symm_rv_bound(config.probe_ring, d, d as Round, uxs.length(config.probe_ring));
        // a one-off probe (every rule is a different program, so a
        // trajectory cache would have nothing to reuse): per-call simulate
        let outcome = simulate(&ring, &program, &Stic::new(u, v, d as Round), bound + 2);
        table.push_row([
            name.to_string(),
            uxs.length(8).to_string(),
            covered.to_string(),
            workloads.len().to_string(),
            max_prefix.map(|p| p.to_string()).unwrap_or_else(|| "-".to_string()),
            fmt_opt_rounds(outcome.rendezvous_time()),
            fmt_rounds(bound),
        ]);
    }
    table.push_note(
        "Longer sequences cost proportionally more SymmRV rounds (the M + 2 factor of Lemma 3.3) \
         but cover more instances; the shipped default is the cubic rule, the short rules are \
         what the universal-algorithm experiments use after per-instance coverage verification.",
    );
    table
}

/// Label-scheme ablation: one row per (scheme, n).
pub fn label_table(config: &AblationConfig) -> Table {
    let mut table = Table::new(
        "EXP-ABL-LABEL",
        "AsymmRV label scheme ablation (DESIGN.md §4.2)",
        &["scheme", "n", "label rounds", "distinct pairs", "nonsymmetric pairs"],
    );
    let trail = TrailSignature::default();
    let exact = ExactViewLabel;
    let workloads = nonsymmetric_workloads(config.scale);
    for &n in &config.label_sizes {
        for (name, rounds, is_exact) in [
            ("trail-signature", trail.label_rounds(n), false),
            ("exact-view", exact.label_rounds(n), true),
        ] {
            let mut distinct = 0usize;
            let mut total = 0usize;
            for w in &workloads {
                if w.n() != n {
                    continue;
                }
                for (u, v) in nonsymmetric_pairs(&w.graph, 8) {
                    total += 1;
                    let d = if is_exact {
                        exact.labels_distinct(&w.graph, u, v, n)
                    } else {
                        trail.labels_distinct(&w.graph, u, v, n)
                    };
                    if d {
                        distinct += 1;
                    }
                }
            }
            table.push_row([
                name.to_string(),
                n.to_string(),
                fmt_rounds(rounds),
                distinct.to_string(),
                total.to_string(),
            ]);
        }
    }
    table.push_note(
        "The exact-view label distinguishes every nonsymmetric pair by construction but its \
         computation is exponential in n; the trail signature is polynomial and empirically \
         distinguishes every pair of the suites (the per-instance verification the substitution \
         requires).",
    );
    table
}

/// Padding ablation: the paper-literal `SymmRV` has start-node-dependent
/// duration on irregular graphs; the padded variant used inside `UniversalRV`
/// does not.
pub fn padding_table() -> Table {
    let mut table = Table::new(
        "EXP-ABL-PAD",
        "Explore padding ablation (phase alignment inside UniversalRV)",
        &["variant", "start node", "duration (rounds)", "bound T(n,d,delta)"],
    );
    let g = lollipop(4, 2).unwrap();
    let n = g.num_nodes();
    let uxs = PseudorandomUxs::with_rule(LengthRule::Quadratic { c: 1, min_len: 16 });
    let (d, delta) = (1usize, 2 as Round);
    let bound = symm_rv_bound(n, d, delta, uxs.length(n));
    for (variant, padded) in [("literal (Algorithm 1)", false), ("padded (UniversalRV)", true)] {
        for start in [0usize, n - 1] {
            let program = if padded {
                SymmRv::padded(n, d, delta, &uxs)
            } else {
                SymmRv::new(n, d, delta, &uxs)
            };
            let (trace, stats) = record_trace(&g, &program, start, Round::MAX, 1 << 22);
            assert!(trace.terminated);
            table.push_row([
                variant.to_string(),
                start.to_string(),
                fmt_rounds(stats.rounds),
                fmt_rounds(bound),
            ]);
        }
    }
    table.push_note(
        "On a degree-heterogeneous graph the literal procedure's duration depends on the start \
         node (different walk counts), which would break the lock-step argument of Theorem 3.1 \
         when a phase underestimates the graph; the padded variant always lasts exactly the \
         Lemma 3.3 bound.",
    );
    table
}

/// Run all three ablation tables.
pub fn run(config: &AblationConfig) -> Vec<Table> {
    vec![uxs_table(config), label_table(config), padding_table()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uxs_ablation_reports_every_rule_and_the_cubic_rule_covers_everything() {
        let config = AblationConfig::default();
        let table = uxs_table(&config);
        assert_eq!(table.num_rows(), config.uxs_rules.len());
        // the default (cubic) rule covers every instance of the quick suites
        let covered: usize = table.column_values("covered instances")[0].parse().unwrap();
        let total: usize = table.column_values("instances")[0].parse().unwrap();
        assert_eq!(covered, total);
    }

    #[test]
    fn label_ablation_shows_exact_view_is_costlier_but_complete() {
        let config = AblationConfig { label_sizes: vec![4, 5], ..AblationConfig::default() };
        let table = label_table(&config);
        assert_eq!(table.num_rows(), 2 * config.label_sizes.len());
        // exact-view distinguishes every pair it sees
        for row in &table.rows {
            if row[0] == "exact-view" {
                assert_eq!(row[3], row[4], "exact-view must distinguish all pairs: {row:?}");
            }
        }
    }

    #[test]
    fn padding_equalises_durations_across_start_nodes() {
        let table = padding_table();
        assert_eq!(table.num_rows(), 4);
        let durations: Vec<&str> = table.column_values("duration (rounds)");
        // rows 2 and 3 are the padded variant from two different start nodes
        assert_eq!(durations[2], durations[3]);
    }
}
