//! EXP-L32 bench: Procedure `SymmRV(n, d, δ)` run to rendezvous on symmetric
//! STICs with `δ = Shrink` (Lemmas 3.2 / 3.3).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anonrv_bench::{bench_uxs, expect_met};
use anonrv_core::bounds::symm_rv_bound;
use anonrv_core::symm_rv::SymmRv;
use anonrv_graph::generators::{oriented_ring, oriented_torus, symmetric_double_tree};
use anonrv_graph::PortGraph;
use anonrv_sim::{simulate, Round, Stic};
use anonrv_uxs::UxsProvider;

fn run(g: &PortGraph, u: usize, v: usize, d: usize, delta: Round) -> Round {
    let uxs = bench_uxs();
    let program = SymmRv::new(g.num_nodes(), d, delta, &uxs);
    let bound = symm_rv_bound(g.num_nodes(), d, delta, uxs.length(g.num_nodes()));
    let outcome = simulate(g, &program, &Stic::new(u, v, delta), bound + delta + 1);
    expect_met(&outcome)
}

fn bench_symm_rv(c: &mut Criterion) {
    let mut group = c.benchmark_group("symm_rv");
    group.sample_size(20);
    let ring = oriented_ring(8).unwrap();
    group.bench_function("ring-8 d=2 delta=2", |b| b.iter(|| run(black_box(&ring), 0, 2, 2, 2)));
    let torus = oriented_torus(3, 3).unwrap();
    group
        .bench_function("torus-3x3 d=2 delta=2", |b| b.iter(|| run(black_box(&torus), 0, 4, 2, 2)));
    let (tree, mirror) = symmetric_double_tree(2, 2).unwrap();
    let leaf = (0..tree.num_nodes() / 2).find(|&v| tree.degree(v) == 1).unwrap();
    group.bench_function("double-tree-2-2 d=1 delta=1", |b| {
        b.iter(|| run(black_box(&tree), leaf, mirror[leaf], 1, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_symm_rv);
criterion_main!(benches);
