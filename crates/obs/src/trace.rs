//! Timing spans, structured events and pluggable trace sinks.
//!
//! A **span** is an explicit timing scope: [`crate::span`] returns a guard,
//! and dropping the guard closes the scope — recording its duration into
//! the metrics registry (histogram `span.<name>.us`) and, when a trace
//! sink is installed, emitting one JSONL record.  Spans nest through a
//! thread-local stack: a span opened while another is live on the same
//! thread records that span as its parent, so a trace reconstructs the
//! phase tree (plan → probe → execute → record → persist) without any
//! global coordination.  Work handed to a thread pool starts a fresh stack
//! on each worker — cross-thread records simply carry no parent.
//!
//! An **event** is a point-in-time record with named fields (a supervisor
//! retry, a quarantined frame, a failpoint trip): no duration, same JSONL
//! stream, parented to the thread's innermost live span.
//!
//! ## Record shapes (`anonrv.trace/v1`)
//!
//! One JSON object per line.  The first line is a header; `span` records
//! are written when the scope **closes** (so a child's line precedes its
//! parent's), `event` records when they happen:
//!
//! ```text
//! {"v":1,"kind":"header","schema":"anonrv.trace/v1"}
//! {"v":1,"kind":"span","id":2,"parent":1,"name":"session.execute",
//!  "start_us":17,"dur_us":5210,"thread":"ThreadId(1)"}
//! {"v":1,"kind":"event","name":"supervisor.attempt","ts_us":9,"parent":1,
//!  "thread":"ThreadId(1)","fields":{"shard":0,"attempt":1,"outcome":"ok"}}
//! ```
//!
//! Timestamps are microseconds since the first [`crate::install`] of the
//! process (monotonic, not wall clock): subtractable, serializable and
//! free of clock-step artifacts.

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use crate::json::{self, Value};

/// Version tag carried by every trace record (`"v"` field).
pub const TRACE_VERSION: u64 = 1;

/// A value attached to an [`crate::event`] field.
#[derive(Debug, Clone, PartialEq)]
pub enum Field {
    /// Unsigned integer.
    U(u64),
    /// Signed integer.
    I(i64),
    /// Boolean.
    B(bool),
    /// String.
    S(String),
}

impl From<u64> for Field {
    fn from(v: u64) -> Self {
        Field::U(v)
    }
}
impl From<usize> for Field {
    fn from(v: usize) -> Self {
        Field::U(v as u64)
    }
}
impl From<u32> for Field {
    fn from(v: u32) -> Self {
        Field::U(u64::from(v))
    }
}
impl From<i64> for Field {
    fn from(v: i64) -> Self {
        Field::I(v)
    }
}
impl From<bool> for Field {
    fn from(v: bool) -> Self {
        Field::B(v)
    }
}
impl From<&str> for Field {
    fn from(v: &str) -> Self {
        Field::S(v.to_string())
    }
}
impl From<String> for Field {
    fn from(v: String) -> Self {
        Field::S(v)
    }
}

impl Field {
    fn to_json(&self) -> Value {
        match self {
            Field::U(v) => Value::Uint(*v),
            Field::I(v) => Value::from(*v),
            Field::B(v) => Value::Bool(*v),
            Field::S(v) => Value::Str(v.clone()),
        }
    }
}

/// Where trace records go.  Implementations must tolerate concurrent
/// `record` calls; `flush` is called once, when the pipeline uninstalls.
pub trait TraceSink: Send + Sync {
    /// Persist one complete JSONL record (no trailing newline).
    fn record(&self, line: &str);
    /// Flush any buffering; called on uninstall.
    fn flush(&self) {}
}

/// [`TraceSink`] writing JSON lines to a buffered file — the `--trace-out
/// FILE` sink.
pub struct JsonlWriter {
    file: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlWriter {
    /// Create (truncating) the trace file.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlWriter { file: Mutex::new(std::io::BufWriter::new(file)) })
    }
}

impl TraceSink for JsonlWriter {
    fn record(&self, line: &str) {
        let mut f = self.file.lock().expect("trace writer poisoned");
        let _ = writeln!(f, "{line}");
    }

    fn flush(&self) {
        let _ = self.file.lock().expect("trace writer poisoned").flush();
    }
}

/// [`TraceSink`] collecting records in memory — for tests and in-process
/// consumers.
#[derive(Default)]
pub struct MemorySink {
    lines: Mutex<Vec<String>>,
}

impl MemorySink {
    /// A fresh, shareable sink.
    pub fn shared() -> Arc<MemorySink> {
        Arc::new(MemorySink::default())
    }

    /// Every record seen so far, in emission order.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("memory sink poisoned").clone()
    }
}

impl TraceSink for MemorySink {
    fn record(&self, line: &str) {
        self.lines.lock().expect("memory sink poisoned").push(line.to_string());
    }
}

/// The installed sink, if any (behind its own lock so metrics-only
/// installs never touch it).
pub(crate) fn sink_slot() -> &'static RwLock<Option<Arc<dyn TraceSink>>> {
    static SINK: OnceLock<RwLock<Option<Arc<dyn TraceSink>>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(None))
}

/// Microseconds since the process's first install (the trace epoch).
pub(crate) fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn next_span_id() -> u64 {
    // span id 0 is reserved as "no span" for the thread-local stack
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Innermost-last stack of live span ids on this thread.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn current_parent() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

pub(crate) fn emit(record: &Value) {
    if let Some(sink) = sink_slot().read().expect("trace sink poisoned").as_ref() {
        sink.record(&record.to_string());
    }
}

pub(crate) fn emit_header() {
    emit(&json::obj([
        ("v", Value::Uint(TRACE_VERSION)),
        ("kind", Value::from("header")),
        ("schema", Value::from(crate::report::TRACE_SCHEMA)),
    ]));
}

/// An open timing scope; see the module docs.  Created by [`crate::span`],
/// closed (and recorded) on drop.
pub struct SpanGuard {
    /// `None` when telemetry was disabled at creation: drop does nothing.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_us: u64,
}

pub(crate) fn start_span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    let id = next_span_id();
    let parent = current_parent();
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        live: Some(LiveSpan { id, parent, name, start: Instant::now(), start_us: now_us() }),
    }
}

impl SpanGuard {
    /// This span's id (0 when telemetry was disabled at creation) — lets a
    /// caller correlate events it emits with the enclosing span.
    pub fn id(&self) -> u64 {
        self.live.as_ref().map(|l| l.id).unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // pop this span; tolerate disorder (a guard moved across scopes)
            if let Some(pos) = stack.iter().rposition(|&id| id == live.id) {
                stack.remove(pos);
            }
        });
        let dur_us = u64::try_from(live.start.elapsed().as_micros()).unwrap_or(u64::MAX);
        // the duration also lands in the metrics registry, so per-phase
        // latency is part of every snapshot without parsing the trace
        crate::metrics::registry().observe(&format!("span.{}.us", live.name), dur_us);
        if sink_slot().read().expect("trace sink poisoned").is_some() {
            emit(&json::obj([
                ("v", Value::Uint(TRACE_VERSION)),
                ("kind", Value::from("span")),
                ("id", Value::Uint(live.id)),
                ("parent", live.parent.map(Value::Uint).unwrap_or(Value::Null)),
                ("name", Value::from(live.name)),
                ("start_us", Value::Uint(live.start_us)),
                ("dur_us", Value::Uint(dur_us)),
                ("thread", Value::from(format!("{:?}", std::thread::current().id()))),
            ]));
        }
    }
}

pub(crate) fn emit_event(name: &'static str, fields: &[(&'static str, Field)]) {
    // point events also bump a counter, so event totals survive into the
    // metrics snapshot even without a trace sink
    crate::metrics::registry().counter_add(&format!("event.{name}"), 1);
    if sink_slot().read().expect("trace sink poisoned").is_none() {
        return;
    }
    let fields_json =
        Value::Obj(fields.iter().map(|(k, v)| (k.to_string(), v.to_json())).collect());
    emit(&json::obj([
        ("v", Value::Uint(TRACE_VERSION)),
        ("kind", Value::from("event")),
        ("name", Value::from(name)),
        ("ts_us", Value::Uint(now_us())),
        ("parent", current_parent().map(Value::Uint).unwrap_or(Value::Null)),
        ("thread", Value::from(format!("{:?}", std::thread::current().id()))),
        ("fields", fields_json),
    ]));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_serialize_each_variant() {
        assert_eq!(Field::from(3usize).to_json(), Value::Uint(3));
        assert_eq!(Field::from(-2i64).to_json(), Value::Int(-2));
        assert_eq!(Field::from(true).to_json(), Value::Bool(true));
        assert_eq!(Field::from("x").to_json(), Value::Str("x".into()));
    }

    #[test]
    fn memory_sink_collects_in_order() {
        let sink = MemorySink::default();
        sink.record("a");
        sink.record("b");
        assert_eq!(sink.lines(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn disabled_spans_are_inert() {
        // no install in this test binary: guards must not touch the stack
        let g = crate::span("unit.test");
        assert_eq!(g.id(), 0);
        drop(g);
        assert_eq!(current_parent(), None);
    }
}
