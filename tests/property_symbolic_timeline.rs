//! Differential property tests pinning the **symbolic** (prefix + cycle)
//! timeline path bit-identical to the explicit engines.
//!
//! A [`SymbolicTimeline`](anonrv_sim::SymbolicTimeline) claims to be the
//! whole infinite run in closed form; these tests hold it to that on every
//! horizon small enough to check explicitly:
//!
//! * `merge_symbolic` (through `TrajectoryCache::simulate_symbolic`) must
//!   return the **same** [`SimOutcome`] — meeting node, global and local
//!   meeting rounds, both move counters, both termination flags — as the
//!   explicit `merge_timelines` kernel and as the lockstep and streaming
//!   engines, on random connected graphs and random walker seeds;
//! * materialising a symbolic timeline at any horizon must equal a cold
//!   explicit recording at that horizon (the symbolic form of the
//!   prefix-truncation law `Timeline::truncate` is pinned against);
//! * an exhaustive sweep over **every** `(u, v, δ)` of ring-8 and
//!   torus-3×4 crosschecks the closed-form merge on a dense grid of
//!   horizons, including ones beyond each walker's cycle alignment window.

use proptest::prelude::*;

use anonrv_graph::generators::{oriented_ring, oriented_torus, random_connected};
use anonrv_sim::{
    detect_symbolic, merge_timelines, simulate_with, EngineConfig, Round, SimOutcome, Stic,
    SweepWalker, Timeline, TrajectoryCache,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Symbolic vs explicit-merge vs lockstep vs streaming, on random
    /// connected graphs: four independent computations of the same STIC
    /// must agree bit for bit.
    #[test]
    fn symbolic_merge_matches_explicit_merge_and_both_engines(
        n in 2usize..10,
        extra in 0usize..5,
        graph_seed in 0u64..200,
        pair_seed in 0usize..1_000,
        delay in 0u64..16,
        horizon in 1u64..4_000,
        walker_seed in 0u64..1_000,
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, graph_seed).unwrap();
        let program = SweepWalker { seed: walker_seed };
        let horizon = horizon as Round;
        let cache = TrajectoryCache::new(&g, &program, horizon);
        for k in 0..4usize {
            let stic = Stic::new(
                (pair_seed * 3 + k) % n,
                (pair_seed * 7 + 2 * k + 1) % n,
                (delay as Round + k as Round) % 16,
            );
            let symbolic = cache
                .simulate_symbolic(&stic, horizon)
                .expect("the sweep walker is finite-state; detection must converge");
            // explicit merge over cold recordings of the same two starts
            let earlier = Timeline::record(&g, &program, stic.earlier, horizon);
            let later = Timeline::record(&g, &program, stic.later, horizon);
            let explicit = if stic.delay > horizon {
                SimOutcome::no_show(horizon)
            } else {
                merge_timelines(&earlier, &later, &stic, horizon)
            };
            prop_assert_eq!(
                &symbolic, &explicit,
                "symbolic vs merge kernel on {} horizon {} walker {}",
                stic, horizon, walker_seed
            );
            let lockstep =
                simulate_with(&g, &program, &program, &stic, EngineConfig::lockstep(horizon));
            prop_assert_eq!(
                &symbolic, &lockstep,
                "symbolic vs lockstep on {} horizon {} walker {}",
                stic, horizon, walker_seed
            );
            let streaming =
                simulate_with(&g, &program, &program, &stic, EngineConfig::streaming(horizon));
            prop_assert_eq!(
                &symbolic, &streaming,
                "symbolic vs streaming on {} horizon {} walker {}",
                stic, horizon, walker_seed
            );
        }
    }

    /// One detection serves every horizon: materialising the symbolic
    /// timeline at h is bit-identical to recording the walker cold at h —
    /// for h below, at, and far beyond the cycle's alignment structure.
    #[test]
    fn materialized_symbolic_timelines_equal_cold_recordings_at_every_horizon(
        n in 2usize..10,
        extra in 0usize..5,
        graph_seed in 0u64..200,
        start_seed in 0usize..64,
        walker_seed in 0u64..1_000,
        horizon in 0u64..6_000,
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, graph_seed).unwrap();
        let program = SweepWalker { seed: walker_seed };
        let start = start_seed % n;
        let s = detect_symbolic(&g, &program, start)
            .expect("the sweep walker is finite-state; detection must converge");
        let h = horizon as Round;
        prop_assert_eq!(
            s.materialize(h),
            Timeline::record(&g, &program, start, h),
            "start {} horizon {} walker {} (preperiod {}, period {})",
            start, h, walker_seed, s.preperiod(), s.period()
        );
    }
}

/// Exhaustively crosscheck every ordered pair and a δ-grid on one graph:
/// closed-form merges against the explicit batch path at every horizon in
/// `horizons` (all within the unroll cap, so the explicit side never
/// routes symbolically).
fn exhaustive_crosscheck(g: &anonrv_graph::PortGraph, seed: u64, horizons: &[Round]) {
    let n = g.num_nodes();
    let program = SweepWalker { seed };
    let max = *horizons.iter().max().unwrap();
    let cache = TrajectoryCache::new(g, &program, max);
    for u in 0..n {
        for v in 0..n {
            for delta in 0..3 as Round {
                let stic = Stic::new(u, v, delta);
                for &h in horizons {
                    let symbolic = cache
                        .simulate_symbolic(&stic, h)
                        .expect("detection must converge on the sweep walker");
                    let earlier = Timeline::record(g, &program, u, h);
                    let later = Timeline::record(g, &program, v, h);
                    let explicit = if delta > h {
                        SimOutcome::no_show(h)
                    } else {
                        merge_timelines(&earlier, &later, &stic, h)
                    };
                    assert_eq!(symbolic, explicit, "({u}, {v}, {delta}) at horizon {h}");
                }
            }
        }
    }
}

#[test]
fn exhaustive_ring8_symbolic_equals_explicit() {
    let g = oriented_ring(8).unwrap();
    exhaustive_crosscheck(&g, 0x5EED, &[0, 1, 2, 17, 256, 9999, 60_000]);
}

#[test]
fn exhaustive_torus_3x4_symbolic_equals_explicit() {
    let g = oriented_torus(3, 4).unwrap();
    exhaustive_crosscheck(&g, 0x5EED, &[0, 1, 2, 17, 256, 9999, 60_000]);
}
