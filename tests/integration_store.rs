//! Integration tests of the persistent plan cache, the shard persistence
//! and the `SweepSession` orchestrator (`anonrv-store`) through the
//! umbrella crate: cache correctness under corruption, truncation and
//! format staleness; warm-vs-cold and prefix-vs-cold bit-identity; and the
//! exhaustive sharded-merge-vs-unsharded differential on the 3×4 torus.

use anonrv::graph::generators::{oriented_ring, oriented_torus};
use anonrv::plan::SweepPlan;
use anonrv::sim::{EngineConfig, Round, SimOutcome, Stic, SweepWalker};
use anonrv::store::{OutcomeProvenance, Provenance, ShardSpec, Store, SweepSession};

/// Unique, self-deleting scratch directory per test.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("anonrv-integration-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The shared deterministic sweep-workload agent (the exact program the
/// benches and the `anonrv sweep` CLI drive the store with).
fn walker() -> SweepWalker {
    SweepWalker { seed: 0x5EED }
}

const KEY: &str = "sweep-walker-v2-5eed";
const HORIZON: Round = 64;

fn deltas() -> Vec<Round> {
    vec![0, 1, 2, 3, 4]
}

#[test]
fn warm_and_cold_planned_sweeps_are_bit_identical_end_to_end() {
    let dir = TempDir::new("warm-cold");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_torus(3, 4).unwrap();
    let program = walker();

    // cold: everything computed, everything persisted
    let mut cold = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    assert_eq!(cold.stats().orbits, Provenance::Cold);
    let plan = SweepPlan::from_orbits(cold.orbits().clone(), deltas(), HORIZON);
    let (cold_outcomes, provenance) = cold.run_plan(&plan).unwrap();
    assert_eq!(provenance, OutcomeProvenance::Cold);
    assert!(cold.stats().timeline_misses > 0);

    // warm at the same horizon: the whole sweep is skipped ...
    let mut warm = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    assert_eq!(warm.stats().orbits, Provenance::Warm);
    let (warm_outcomes, provenance) = warm.run_plan(&plan).unwrap();
    assert_eq!(provenance, OutcomeProvenance::WarmExact);
    assert_eq!(warm.stats().timeline_misses, 0, "warm run must not re-record");
    assert_eq!(warm_outcomes.table(), cold_outcomes.table(), "warm/cold differential");

    // ... while remaining bit-identical to direct simulation of every
    // member STIC
    for u in g.nodes() {
        for v in g.nodes() {
            for (di, &delta) in plan.deltas().iter().enumerate() {
                let direct = warm.engine().simulate(&Stic::new(u, v, delta));
                assert_eq!(warm_outcomes.get(u, v, di), direct, "({u}, {v}) delta {delta}");
            }
        }
    }
}

#[test]
fn heterogeneous_horizons_are_served_by_one_recording_with_zero_simulations() {
    let dir = TempDir::new("prefix");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_torus(3, 4).unwrap();
    let program = walker();

    // populate once, at the largest horizon of the mixed workload
    let mut seed =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(4 * HORIZON));
    let big = SweepPlan::from_orbits(seed.orbits().clone(), deltas(), 4 * HORIZON);
    seed.run_plan(&big).unwrap();

    // every smaller horizon is served from that one recording: zero
    // program executions, bit-identical to a cold in-memory run
    for h in [0 as Round, 1, HORIZON / 2, HORIZON, 4 * HORIZON - 1] {
        let mut session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(h));
        let plan = SweepPlan::from_orbits(session.orbits().clone(), deltas(), h);
        let (served, provenance) = session.run_plan(&plan).unwrap();
        assert!(
            matches!(provenance, OutcomeProvenance::WarmPrefix { recorded, .. } if recorded == 4 * HORIZON),
            "horizon {h}: expected a prefix hit, got {provenance:?}"
        );
        let stats = session.stats();
        assert_eq!(stats.timeline_misses, 0, "horizon {h}: a prefix hit must not record");
        assert_eq!(
            stats.timeline_prefix_hits, stats.timeline_hits,
            "horizon {h}: every preload is a prefix hit"
        );
        let reference = SweepSession::in_memory(&g, &program, EngineConfig::batch(h))
            .run_plan(&plan)
            .unwrap()
            .0;
        assert_eq!(served.table(), reference.table(), "horizon {h}: prefix differential");
    }

    // and the exact horizon still short-circuits everything
    let mut exact =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(4 * HORIZON));
    let (_, provenance) = exact.run_plan(&big).unwrap();
    assert_eq!(provenance, OutcomeProvenance::WarmExact);
}

#[test]
fn corrupted_truncated_and_stale_timeline_artifacts_fall_back_to_recompute() {
    let dir = TempDir::new("fallback");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_ring(8).unwrap();
    let program = walker();

    let mut cold = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    let plan = SweepPlan::from_orbits(cold.orbits().clone(), deltas(), HORIZON);
    let reference = cold.run_plan(&plan).unwrap().0.table().to_vec();

    let timeline_artifact = || {
        let mut files: Vec<_> = std::fs::read_dir(&dir.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("timelines-"))
            .collect();
        assert_eq!(files.len(), 1, "exactly one timeline artifact expected");
        files.pop().unwrap()
    };
    let outcomes_artifact = || {
        std::fs::read_dir(&dir.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.file_name().unwrap().to_string_lossy().starts_with("outcomes-"))
            .expect("outcome artifact")
    };
    let path = timeline_artifact();
    let good = std::fs::read(&path).unwrap();

    let mutations: Vec<(&str, Vec<u8>)> = vec![
        ("payload corruption", {
            let mut bad = good.clone();
            let mid = bad.len() / 2;
            bad[mid] ^= 0x20;
            bad
        }),
        ("truncation", good[..good.len() * 2 / 3].to_vec()),
        ("format-version bump", {
            let mut stale = good.clone();
            stale[8] = stale[8].wrapping_add(1); // the version field
            stale
        }),
    ];
    for (what, bytes) in mutations {
        std::fs::write(&path, &bytes).unwrap();
        // the outcome table would mask the timeline probe: remove it so the
        // session has to go through the timelines
        std::fs::remove_file(outcomes_artifact()).unwrap();
        // the damaged artifact is a miss, never an error or wrong data
        let mut session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
        let (outcomes, provenance) = session.run_plan(&plan).unwrap();
        assert_eq!(provenance, OutcomeProvenance::Cold, "{what}: damaged artifact must miss");
        assert_eq!(session.stats().timeline_hits, 0, "{what}: damaged artifact must not preload");
        assert_eq!(outcomes.table(), reference, "{what}: outcomes must be unaffected");
        // recompute-and-overwrite restored a loadable artifact
        assert!(store.load_timelines(&g, KEY).is_some(), "{what}: artifact must be restored");
        std::fs::write(&path, &good).unwrap();
    }
}

#[test]
fn a_damaged_superseding_frame_degrades_to_recompute_never_a_stale_answer() {
    let dir = TempDir::new("superseded-damage");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_ring(8).unwrap();
    let program = walker();

    // a short recording lands first, then a longer one supersedes it in
    // place (same artifact files — nothing of the short run remains)
    let mut short = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(16));
    let short_plan = SweepPlan::from_orbits(short.orbits().clone(), deltas(), 16);
    let short_reference = short.run_plan(&short_plan).unwrap().0.table().to_vec();
    let mut long = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    let long_plan = SweepPlan::from_orbits(long.orbits().clone(), deltas(), HORIZON);
    long.run_plan(&long_plan).unwrap();

    // damage every superseding artifact (timelines + outcomes)
    for entry in std::fs::read_dir(&dir.0).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.starts_with("timelines-") || name.starts_with("outcomes-") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
        }
    }

    // a horizon-16 session must NOT be served the pre-supersession short
    // answer (it is gone) nor the damaged frame: it recomputes, and the
    // result is bit-identical to the original cold horizon-16 run
    let mut session = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(16));
    let (outcomes, provenance) = session.run_plan(&short_plan).unwrap();
    assert_eq!(provenance, OutcomeProvenance::Cold, "damage must degrade to recompute");
    assert_eq!(session.stats().timeline_hits, 0);
    assert_eq!(outcomes.table(), short_reference, "recompute differential");
}

#[test]
fn exhaustive_sharded_merge_equals_the_unsharded_sweep_on_torus_3x4() {
    let dir = TempDir::new("shard-differential");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_torus(3, 4).unwrap();
    let program = walker();

    // the unsharded reference: one process, no store
    let mut reference_session = SweepSession::in_memory(&g, &program, EngineConfig::batch(HORIZON));
    let plan = SweepPlan::from_orbits(reference_session.orbits().clone(), deltas(), HORIZON);
    let reference = reference_session.run_plan(&plan).unwrap().0;

    for shards in [2usize, 3, 5] {
        // each shard in its own session, as separate processes would run
        for index in 0..shards {
            let mut worker =
                SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
            let part = worker.run_shard(&plan, ShardSpec::new(shards, index).unwrap()).unwrap();
            assert_eq!(worker.stats().shard, Some((index, shards)));
            assert_eq!(part.table.len(), part.classes.len() * plan.deltas().len());
        }
        let mut merger =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
        let merged = merger.merge_shards(&plan, shards).unwrap();
        assert_eq!(merged.table(), reference.table(), "{shards}-shard merge differential");

        // ... and the merged table broadcasts to every member STIC
        // bit-identically to direct simulation (the exhaustive check)
        let mut met = 0usize;
        for u in g.nodes() {
            for v in g.nodes() {
                for (di, &delta) in plan.deltas().iter().enumerate() {
                    let direct: SimOutcome =
                        reference_session.engine().simulate(&Stic::new(u, v, delta));
                    assert_eq!(merged.get(u, v, di), direct);
                    met += usize::from(direct.met());
                }
            }
        }
        assert_eq!(merged.met_total(), met);
    }

    // a partial shard set refuses to merge
    let mut merger =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(HORIZON));
    assert!(merger.merge_shards(&plan, 4).is_err());
}
