//! EXP-T41 — Theorem 4.1: on `Q̂_h` (with `h = 2D`, `D = 2k`) any algorithm
//! that achieves rendezvous for every STIC `[(r, v), D]` with `v ∈ Z` needs at
//! least `2^(k−1)` rounds for some of them.
//!
//! The theorem is an adversary argument over *all* deterministic algorithms;
//! its executable content (see [`anonrv_core::lower_bound`]) is that on
//! `Q̂_h` every algorithm degenerates to an oblivious schedule — a fixed word
//! over `{stay, N, E, S, W}` — and that a schedule shorter than `2^(k−1)`
//! always leaves some `v ∈ Z` unmet.  For a range of `k` the experiment
//! measures both directions:
//!
//! * **lower bound**: truncations of the meeting schedule to length
//!   `2^(k−1) − 1`, and a battery of pseudorandom schedules of the same
//!   length, never meet the whole family;
//! * **upper bound witness**: the explicit *meeting sweep* (out-and-back
//!   along every doubled word `γ‖γ`) meets every family member, and its
//!   worst-case meeting time is at least the threshold `2^(k−1)` and at most
//!   `4k · 2^k` — i.e. the exponential growth the theorem forces is really
//!   there, and the bound is tight up to a `Θ(k)` factor;
//! * **cross-check**: the explicit `Q̂_h` checker and the scalable symbolic
//!   (universal-cover) checker agree wherever both run.

use anonrv_core::lower_bound::{
    check_schedule_explicit, check_schedule_symbolic, ObliviousSchedule,
};
use anonrv_graph::generators::qh_hat;
use anonrv_sim::Round;

use crate::report::Table;
use crate::runner::par_map;

/// Configuration of the lower-bound experiment.
#[derive(Debug, Clone)]
pub struct LowerBoundConfig {
    /// Values of `k` evaluated with the symbolic checker.
    pub ks: Vec<usize>,
    /// Largest `k` for which the explicit `Q̂_h` (with `h = 2D = 4k`) is also
    /// built and cross-checked.
    pub max_explicit_k: usize,
    /// Number of pseudorandom schedules (of length `2^(k−1) − 1`) tested per
    /// `k`.
    pub random_schedules: usize,
}

impl Default for LowerBoundConfig {
    fn default() -> Self {
        LowerBoundConfig { ks: vec![1, 2, 3, 4, 5], max_explicit_k: 2, random_schedules: 8 }
    }
}

impl LowerBoundConfig {
    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        LowerBoundConfig {
            ks: vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            max_explicit_k: 2,
            random_schedules: 32,
        }
    }
}

/// Measured facts for one value of `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerBoundRecord {
    /// The parameter `k` (`D = 2k`, `h = 4k`).
    pub k: usize,
    /// Size of the STIC family `Z` (`2^k`).
    pub family_size: usize,
    /// The theorem's threshold `2^(k−1)`.
    pub threshold: Round,
    /// Length of the meeting-sweep schedule (`4k · 2^k`).
    pub meeting_len: usize,
    /// Whether the meeting sweep met every family member.
    pub meeting_met_all: bool,
    /// Worst-case meeting time of the meeting sweep over the family.
    pub meeting_worst_time: Option<Round>,
    /// Whether the meeting sweep truncated to `2^(k−1) − 1` steps still meets
    /// the whole family (must be `false` — that is the lower bound).
    pub truncated_meets_all: bool,
    /// Number of tested sub-threshold pseudorandom schedules that met the
    /// whole family (must be 0).
    pub random_schedules_meeting_all: usize,
    /// Whether the explicit `Q̂_h` checker was run and agreed with the
    /// symbolic one.
    pub explicit_agrees: Option<bool>,
}

impl LowerBoundRecord {
    /// The record is consistent with Theorem 4.1 (both directions).
    pub fn consistent_with_theorem(&self) -> bool {
        self.meeting_met_all
            && self.meeting_worst_time.is_some_and(|t| t >= self.threshold)
            && !self.truncated_meets_all
            && self.random_schedules_meeting_all == 0
            && self.explicit_agrees.unwrap_or(true)
    }
}

/// Evaluate one value of `k`.
pub fn check_k(k: usize, config: &LowerBoundConfig) -> LowerBoundRecord {
    let meeting = ObliviousSchedule::meeting_sweep(k);
    let symbolic = check_schedule_symbolic(k, &meeting);
    let threshold: Round = 1u128 << (k.saturating_sub(1));

    // lower-bound direction: schedules shorter than the threshold fail
    let sub_len = (threshold as usize).saturating_sub(1);
    let truncated = ObliviousSchedule::new(meeting.steps[..sub_len.min(meeting.len())].to_vec());
    let truncated_meets_all = check_schedule_symbolic(k, &truncated).met_all();
    let random_schedules_meeting_all = (0..config.random_schedules)
        .filter(|&seed| {
            sub_len > 0
                && check_schedule_symbolic(
                    k,
                    &ObliviousSchedule::pseudorandom(sub_len, seed as u64 + 1),
                )
                .met_all()
        })
        .count();

    let explicit_agrees = if k <= config.max_explicit_k {
        let q = qh_hat(4 * k).expect("Q̂_h generation");
        let explicit = check_schedule_explicit(&q, k, &meeting);
        Some(explicit.times == symbolic.times)
    } else {
        None
    };

    LowerBoundRecord {
        k,
        family_size: symbolic.times.len(),
        threshold,
        meeting_len: meeting.len(),
        meeting_met_all: symbolic.met_all(),
        meeting_worst_time: symbolic.max_time(),
        truncated_meets_all,
        random_schedules_meeting_all,
        explicit_agrees,
    }
}

/// Run the experiment and return the records.
pub fn collect(config: &LowerBoundConfig) -> Vec<LowerBoundRecord> {
    par_map(config.ks.clone(), |&k| check_k(k, config))
}

/// Run the experiment as a report table.
pub fn run(config: &LowerBoundConfig) -> Table {
    let records = collect(config);
    let mut table = Table::new(
        "EXP-T41",
        "Exponential lower bound on Q̂_h (Theorem 4.1)",
        &[
            "k",
            "D = 2k",
            "|Z|",
            "threshold 2^(k-1)",
            "meeting schedule len",
            "meets all",
            "worst meeting time",
            "truncated (< threshold) meets all",
            "sub-threshold random schedules meeting all",
            "explicit = symbolic",
        ],
    );
    for r in &records {
        table.push_row([
            r.k.to_string(),
            (2 * r.k).to_string(),
            r.family_size.to_string(),
            r.threshold.to_string(),
            r.meeting_len.to_string(),
            r.meeting_met_all.to_string(),
            r.meeting_worst_time.map(|t| t.to_string()).unwrap_or_else(|| "-".to_string()),
            r.truncated_meets_all.to_string(),
            r.random_schedules_meeting_all.to_string(),
            r.explicit_agrees
                .map(|b| b.to_string())
                .unwrap_or_else(|| "(symbolic only)".to_string()),
        ]);
    }
    table.push_note(
        "Paper: any algorithm meeting every STIC [(r, v), D], v in Z, needs at least 2^(k-1) \
         rounds for some of them.  Expected outcome: the meeting sweep meets all with worst time \
         >= threshold (growing exponentially in k), while every schedule shorter than the \
         threshold leaves part of the family unmet.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_k_of_the_quick_configuration_is_consistent_with_theorem_4_1() {
        let config = LowerBoundConfig { ks: vec![1, 2, 3, 4], ..LowerBoundConfig::default() };
        for r in collect(&config) {
            assert!(r.consistent_with_theorem(), "inconsistent record {r:?}");
            assert_eq!(r.family_size, 1usize << r.k);
        }
    }

    #[test]
    fn worst_meeting_time_grows_exponentially_in_k() {
        let config = LowerBoundConfig { ks: vec![2, 4, 6], max_explicit_k: 0, random_schedules: 0 };
        let records = collect(&config);
        let t2 = records[0].meeting_worst_time.unwrap();
        let t4 = records[1].meeting_worst_time.unwrap();
        let t6 = records[2].meeting_worst_time.unwrap();
        assert!(t4 >= 3 * t2, "t2 = {t2}, t4 = {t4}");
        assert!(t6 >= 3 * t4, "t4 = {t4}, t6 = {t6}");
    }

    #[test]
    fn explicit_and_symbolic_agree_for_small_k() {
        let config = LowerBoundConfig { ks: vec![1, 2], max_explicit_k: 2, random_schedules: 2 };
        for r in collect(&config) {
            assert_eq!(r.explicit_agrees, Some(true));
        }
    }
}
