//! EXP-T31: UniversalRV on a mixed STIC suite with zero a-priori knowledge
//! (Theorem 3.1 / Corollary 3.1).  Pass `--full` for the EXPERIMENTS.md
//! configuration and `--exhaustive` to drop the `max_pairs` cap on the
//! symmetric families (the pair-orbit planner makes that affordable).

use anonrv_experiments::universal;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let mut config = if full {
        universal::UniversalConfig::full()
    } else {
        universal::UniversalConfig::default()
    };
    config.exhaustive = args.iter().any(|a| a == "--exhaustive");
    println!("{}", universal::run(&config));
}
