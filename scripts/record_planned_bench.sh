#!/usr/bin/env bash
# Record the pair-orbit sweep-planner perf numbers as BENCH_planned.json
# (repo root): the symm-sweep workload (all (u, v) pairs x delta in {0..4}
# on oriented_torus(16, 16)) through the PlannedSweep (256 orbit
# representatives) versus the PR 2 batch path (65536 pair merges), plus the
# million-node row — the implicit orbit planner streaming the all-pairs
# workload over oriented_torus(1024, 1024) (2^40 ordered pairs per delay)
# through closed-form group arithmetic with bounded memory.
#
# Usage: scripts/record_planned_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_planned.json}"
cargo run --release -p anonrv-bench --bin planned_timing -- "$OUT"
