//! Oriented tori and rectangular grids.

use crate::builder::PortGraphBuilder;
use crate::error::GraphError;
use crate::graph::{PortGraph, SymmetryHint};
use crate::Result;

/// Oriented torus with `rows × cols` nodes (`rows, cols ≥ 3`).
///
/// Node `(i, j)` has identifier `i * cols + j` and the globally consistent
/// port assignment
///
/// * port `0` = East  (to `(i, j+1)`), entered there by port `1`,
/// * port `1` = West,
/// * port `2` = South (to `(i+1, j)`), entered there by port `3`,
/// * port `3` = North.
///
/// Every pair of nodes is symmetric; `Shrink(u, v)` equals the torus distance
/// (the paper's first Section 3 example).
pub fn oriented_torus(rows: usize, cols: usize) -> Result<PortGraph> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::invalid("oriented_torus requires rows, cols >= 3"));
    }
    let id = |i: usize, j: usize| i * cols + j;
    let mut b = PortGraphBuilder::new(rows * cols);
    for i in 0..rows {
        for j in 0..cols {
            // East edge
            b.add_edge(id(i, j), 0, id(i, (j + 1) % cols), 1)?;
            // South edge
            b.add_edge(id(i, j), 2, id((i + 1) % rows, j), 3)?;
        }
    }
    Ok(b.build()?.with_symmetry_hint(SymmetryHint::Torus { rows, cols }))
}

/// Rectangular grid (no wrap-around) with `rows × cols ≥ 2` nodes.  Ports at
/// each node enumerate its existing neighbours in the fixed order East,
/// South, West, North (compressed to `0..deg`), so border and interior nodes
/// get different degrees and the grid is far from symmetric.
pub fn grid(rows: usize, cols: usize) -> Result<PortGraph> {
    if rows * cols < 2 {
        return Err(GraphError::invalid("grid requires at least 2 nodes"));
    }
    if rows == 0 || cols == 0 {
        return Err(GraphError::invalid("grid requires rows, cols >= 1"));
    }
    let id = |i: usize, j: usize| i * cols + j;
    let lists: Vec<Vec<usize>> = (0..rows * cols)
        .map(|v| {
            let (i, j) = (v / cols, v % cols);
            let mut nbrs = Vec::with_capacity(4);
            if j + 1 < cols {
                nbrs.push(id(i, j + 1)); // E
            }
            if i + 1 < rows {
                nbrs.push(id(i + 1, j)); // S
            }
            if j > 0 {
                nbrs.push(id(i, j - 1)); // W
            }
            if i > 0 {
                nbrs.push(id(i - 1, j)); // N
            }
            nbrs
        })
        .collect();
    PortGraphBuilder::from_adjacency_lists(&lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance;
    use crate::symmetry::OrbitPartition;

    #[test]
    fn torus_is_4_regular_and_fully_symmetric() {
        let g = oriented_torus(3, 5).unwrap();
        assert_eq!(g.num_nodes(), 15);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 4);
        assert!(OrbitPartition::compute(&g).is_fully_symmetric());
        assert!(oriented_torus(2, 5).is_err());
    }

    #[test]
    fn torus_distance_is_l1_with_wraparound() {
        let (r, c) = (4, 5);
        let g = oriented_torus(r, c).unwrap();
        let id = |i: usize, j: usize| i * c + j;
        let wrap = |a: usize, b: usize, m: usize| {
            let d = (a as isize - b as isize).unsigned_abs();
            d.min(m - d)
        };
        for i in 0..r {
            for j in 0..c {
                let expect = wrap(0, i, r) + wrap(0, j, c);
                assert_eq!(distance(&g, id(0, 0), id(i, j)), expect);
            }
        }
    }

    #[test]
    fn torus_ports_are_globally_consistent() {
        let g = oriented_torus(3, 3).unwrap();
        for v in g.nodes() {
            // going East then West returns to v
            let (e, pe) = g.succ(v, 0);
            assert_eq!(pe, 1);
            assert_eq!(g.succ(e, 1).0, v);
            // going South then North returns to v
            let (s, ps) = g.succ(v, 2);
            assert_eq!(ps, 3);
            assert_eq!(g.succ(s, 3).0, v);
        }
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4).unwrap();
        assert_eq!(g.num_nodes(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 2 * 4);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(1), 3); // border
        assert_eq!(g.degree(5), 4); // interior
        assert!(!OrbitPartition::compute(&g).is_fully_symmetric());
        assert!(grid(1, 1).is_err());
    }

    #[test]
    fn one_dimensional_grid_is_a_path() {
        let g = grid(1, 5).unwrap();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(distance(&g, 0, 4), 4);
    }
}
