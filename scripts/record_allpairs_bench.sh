#!/usr/bin/env bash
# Record the all-pairs Shrink / lockstep-simulation perf numbers as
# BENCH_allpairs.json (repo root), the file the perf trajectory is tracked
# in from PR 1 onward.
#
# Usage: scripts/record_allpairs_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_allpairs.json}"
cargo run --release -p anonrv-bench --bin allpairs_timing -- "$OUT"
