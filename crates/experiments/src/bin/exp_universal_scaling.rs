//! EXP-P41: UniversalRV total time versus (n, delta) (Proposition 4.1).
//! Pass `--full` for the EXPERIMENTS.md configuration.

use anonrv_experiments::scaling;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config =
        if full { scaling::ScalingConfig::full() } else { scaling::ScalingConfig::default() };
    println!("{}", scaling::run(&config));
}
