//! # anonrv-sim
//!
//! Synchronous two-agent rendezvous simulator.
//!
//! The paper's execution model: two identical anonymous agents are placed on
//! two nodes of an anonymous port-labelled graph; they run the same
//! deterministic algorithm in synchronous rounds, starting in rounds chosen
//! by the adversary (their difference is the *delay* `δ`).  In every round an
//! agent either stays put or moves through a port of its current node; upon
//! arrival it observes only the degree of the node and the entry port.
//! Rendezvous happens when both agents occupy the same node in the same
//! round (crossing inside an edge does not count, and is invisible to the
//! agents).
//!
//! Architecture:
//!
//! * agent algorithms are written against the restricted [`Navigator`]
//!   interface ([`AgentProgram`]) — they can never observe node identities,
//!   the graph, the other agent or the global clock, exactly as in the model;
//! * every navigator action is an [`Event`]; long waits are *single* events,
//!   so the astronomically long padding waits of `UniversalRV` cost O(1);
//! * three engines return bit-identical [`SimOutcome`]s, selected by
//!   [`EngineMode`] in the [`EngineConfig`]:
//!
//!   * the **streaming** engine runs the two agents on two threads that
//!     stream chunked event batches over bounded channels to a coordinator
//!     merging the position timelines on the fly — memory stays
//!     `O(chunk_size)` no matter how long the execution is, which is what
//!     astronomical horizons need;
//!   * the **lockstep** engine records the earlier agent's wait-compressed
//!     timeline and streams the later agent against it on a single thread —
//!     no thread/channel setup, which is what dominates short-horizon
//!     per-call sweeps;
//!   * the **batch** engine ([`batch`]) records *every* start node's
//!     timeline at most once in a [`TrajectoryCache`] and answers each
//!     `(u, v, δ)` STIC by merging two cached timelines through a per-node
//!     occupancy-interval index — `O(n)` program executions per graph
//!     instead of `O(n²·Δ)`, which is what all-pairs × delays sweep
//!     workloads need ([`SweepEngine`], [`simulate_batch`]);
//!
//!   [`EngineMode::Auto`] (the default) picks lockstep for per-call horizons
//!   up to `2¹⁶`, streaming beyond, and the batch path whenever the caller
//!   signals sweep reuse by constructing a [`SweepEngine`];
//! * beyond the unroll cap ([`UNROLL_CAP`], `2²²` rounds) the batch engine
//!   stops unrolling entirely and goes **symbolic** ([`symbolic`]): Brent
//!   cycle detection on the walker's full finite state
//!   ([`FiniteStateProgram`]) yields a [`SymbolicTimeline`]
//!   (`prefix + cycle^∞` in the same flat segment columns), and
//!   [`merge_symbolic`] resolves any horizon — `2^40` and far beyond — by
//!   closed-form cycle alignment, bit-identical to the explicit kernels
//!   (differentially property-tested) with exact meeting rounds, move
//!   totals that saturate only past `u64::MAX` traversals, and zero
//!   unrolled rounds; a merge whose alignment window would cost more than
//!   [`MERGE_SEG_CAP`] materialised segments declines (the caller falls
//!   back to the explicit path) instead of unrolling;
//! * [`trace::record_trace`] materialises a single agent's run-length-encoded
//!   position trace for tests and analysis.
//!
//! Round counters are `u128`: the padding bound `T(n, d, δ)` of the paper
//! overflows 64 bits already for moderate parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod engine;
pub mod navigator;
pub mod stic;
pub mod symbolic;
pub mod trace;
pub mod workload;

pub use batch::{
    merge_timelines, merge_timelines_deltas, merge_timelines_deltas_mapped,
    merge_timelines_deltas_with, merge_timelines_extend, simulate_batch, MergeScratch, SweepEngine,
    Timeline, TimelineParts, TimelineSeg, TrajectoryCache, UNROLL_CAP,
};
#[cfg(feature = "ref-oracle")]
pub use batch::{merge_timelines_deltas_reference, merge_timelines_reference};
pub use engine::{simulate, simulate_with, EngineConfig, EngineMode, Meeting, SimOutcome};
pub use navigator::{
    drive_finite_state, AgentProgram, Event, EventSink, FiniteStateProgram, GraphNavigator,
    Navigator, StepAction, StepDecision, Stop,
};
pub use stic::{Round, Stic};
pub use symbolic::{
    detect_symbolic, merge_symbolic, SymbolicTail, SymbolicTimeline, MERGE_SEG_CAP,
};
pub use trace::{record_trace, PositionTrace, Segment, TraceStats};
pub use workload::SweepWalker;
