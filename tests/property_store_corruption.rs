//! Property test of the store's **corruption degradation contract**: flip
//! one random bit at a random offset in a random on-disk artifact, and
//! every load path must degrade to recompute-and-overwrite — never serve
//! wrong data, never panic.  The end-to-end form of the guarantee: a sweep
//! over the damaged cache produces a table bit-identical to the undamaged
//! run, and afterwards the cache has healed back to fully warm.

use proptest::prelude::*;

use anonrv::graph::generators::oriented_ring;
use anonrv::plan::{PairOrbits, SweepPlan};
use anonrv::sim::{EngineConfig, SweepWalker};
use anonrv::store::{OutcomeProvenance, Store, SweepSession};

const KEY: &str = "prop-walker-5eed";

/// Unique, self-deleting scratch directory per test case.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "anonrv-prop-corruption-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// A horizon far beyond the unroll cap: outcomes at it can only come from
/// the symbolic (prefix + cycle) path.
const ASTRONOMICAL: anonrv::sim::Round = 1 << 40;

/// 64-bit FNV-1a — the codec's frame checksum, reimplemented here so the
/// tests can *re-seal* a deliberately patched frame (e.g. after rewriting
/// the header's version field) without reaching into store internals.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Patch the format-version field (header bytes 8..12) of an on-disk
/// frame and refresh the trailing checksum so only the version gate — not
/// the integrity gate — sees the change.
fn reseal_with_version(path: &std::path::Path, version: u32) {
    let mut bytes = std::fs::read(path).unwrap();
    let body_len = bytes.len() - 8;
    bytes[8..12].copy_from_slice(&version.to_le_bytes());
    let checksum = fnv64(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
    std::fs::write(path, &bytes).unwrap();
}

fn artifacts_with_prefix(dir: &std::path::Path, prefix: &str) -> Vec<std::path::PathBuf> {
    let mut found: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "anrv")
                && p.file_name().is_some_and(|f| f.to_string_lossy().starts_with(prefix))
        })
        .collect();
    found.sort();
    found
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn a_flipped_bit_anywhere_degrades_to_recompute_never_wrong_data(
        which in 0u64..1_000,
        offset in 0u64..1_000_000,
        bit in 0u32..8,
    ) {
        let dir = TempDir::new("byteflip");
        let store = Store::open(&dir.0).unwrap();
        let g = oriented_ring(6).unwrap();
        let program = SweepWalker { seed: 0x5EED };

        // populate: orbits, timelines and an outcome table
        let mut seed_session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(16));
        let plan = SweepPlan::from_orbits(seed_session.orbits().clone(), vec![0, 1], 16);
        let (seeded, _) = seed_session.run_plan(&plan).unwrap();
        let reference = seeded.table().to_vec();

        // pick a random artifact and flip one random bit at a random offset
        let mut artifacts: Vec<std::path::PathBuf> = std::fs::read_dir(&dir.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "anrv"))
            .collect();
        artifacts.sort();
        prop_assert!(!artifacts.is_empty());
        let victim = &artifacts[(which as usize) % artifacts.len()];
        let mut bytes = std::fs::read(victim).unwrap();
        let at = (offset as usize) % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(victim, &bytes).unwrap();

        // a direct load of the damaged kind is a miss or the truth — a
        // single flipped bit can never pass the end-to-end checksum
        if let Some(orbits) = store.load_orbits(&g) {
            prop_assert_eq!(orbits, PairOrbits::compute(&g));
        }

        // end to end: the sweep recomputes whatever the flip destroyed and
        // serves a table bit-identical to the undamaged run
        let mut session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(16));
        let plan = SweepPlan::from_orbits(session.orbits().clone(), vec![0, 1], 16);
        let (served, _) = session.run_plan(&plan).unwrap();
        prop_assert_eq!(served.table(), reference.as_slice());

        // and it healed in passing: the next session is fully warm
        let mut warm =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(16));
        let (again, prov) = warm.run_plan(&plan).unwrap();
        prop_assert_eq!(again.table(), reference.as_slice());
        prop_assert!(matches!(prov, OutcomeProvenance::WarmExact), "{:?}", prov);
    }

    /// The same degradation contract for the v4 **symbolic** artifact: a
    /// single flipped bit anywhere in `symbolic-*.anrv` makes the load a
    /// miss (never wrong cycle structure), an astronomical-horizon sweep
    /// over the damaged store re-detects and serves a table bit-identical
    /// to the undamaged run, and the artifact heals in passing.
    #[test]
    fn a_flipped_bit_in_a_symbolic_artifact_degrades_to_redetect(
        offset in 0u64..1_000_000,
        bit in 0u32..8,
    ) {
        let dir = TempDir::new("symflip");
        let store = Store::open(&dir.0).unwrap();
        let g = oriented_ring(6).unwrap();
        let program = SweepWalker { seed: 0x5EED };

        let mut seed_session = SweepSession::new(
            Some(&store), &g, &program, KEY, EngineConfig::batch(ASTRONOMICAL),
        );
        let plan =
            SweepPlan::from_orbits(seed_session.orbits().clone(), vec![0, 1], ASTRONOMICAL);
        let (seeded, prov) = seed_session.run_plan(&plan).unwrap();
        prop_assert!(
            matches!(prov, OutcomeProvenance::Symbolic { .. }),
            "astronomical cold run must report symbolic provenance, got {:?}", prov
        );
        let reference = seeded.table().to_vec();

        let symbolics = artifacts_with_prefix(&dir.0, "symbolic-");
        prop_assert_eq!(symbolics.len(), 1);
        let mut bytes = std::fs::read(&symbolics[0]).unwrap();
        let at = (offset as usize) % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(&symbolics[0], &bytes).unwrap();

        // the damaged artifact can never serve wrong cycle structure: the
        // load is a plain miss (the flip cannot survive the checksum, and
        // even a colliding frame would fail shape validation)
        prop_assert!(store.load_symbolic_timelines(&g, KEY).is_none());

        // force the sweep back through the symbolic path (not the
        // persisted outcome table) and require bit-identity
        for table in artifacts_with_prefix(&dir.0, "outcomes-") {
            std::fs::remove_file(table).unwrap();
        }
        let mut session = SweepSession::new(
            Some(&store), &g, &program, KEY, EngineConfig::batch(ASTRONOMICAL),
        );
        let (served, prov) = session.run_plan(&plan).unwrap();
        prop_assert_eq!(served.table(), reference.as_slice());
        prop_assert!(matches!(prov, OutcomeProvenance::Symbolic { detected: 6 }), "{:?}", prov);

        // healed: the rewritten artifact loads again with every start node
        let healed = store.load_symbolic_timelines(&g, KEY);
        prop_assert_eq!(healed.map(|s| s.len()), Some(6));

        // and the next session is fully warm off the re-persisted table
        let mut warm = SweepSession::new(
            Some(&store), &g, &program, KEY, EngineConfig::batch(ASTRONOMICAL),
        );
        let (again, prov) = warm.run_plan(&plan).unwrap();
        prop_assert_eq!(again.table(), reference.as_slice());
        prop_assert!(matches!(prov, OutcomeProvenance::WarmExact), "{:?}", prov);
    }
}

/// Version-compat pin: v5 readers accept v3 frames verbatim (the payload
/// layout is unchanged — v4 added the symbolic kind, v5 the implicit-group
/// descriptor kind; both only *add*), while versions outside `3..=5` stay
/// plain misses that degrade to recompute.
#[test]
fn version_3_explicit_frames_still_load_and_out_of_range_versions_miss() {
    let dir = TempDir::new("v3compat");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_ring(6).unwrap();
    let program = SweepWalker { seed: 0x5EED };

    let mut seed_session =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(16));
    let plan = SweepPlan::from_orbits(seed_session.orbits().clone(), vec![0, 1], 16);
    let (seeded, _) = seed_session.run_plan(&plan).unwrap();
    let reference = seeded.table().to_vec();

    // rewrite every artifact as a version-3 frame (checksum refreshed)
    let artifacts = artifacts_with_prefix(&dir.0, "");
    assert!(!artifacts.is_empty());
    for artifact in &artifacts {
        reseal_with_version(artifact, 3);
    }

    // the store reads them verbatim: the very next session is fully warm
    let mut warm = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(16));
    let (served, prov) = warm.run_plan(&plan).unwrap();
    assert_eq!(served.table(), reference.as_slice());
    assert!(matches!(prov, OutcomeProvenance::WarmExact), "{prov:?}");

    // versions outside the accepted range are plain misses — too old and
    // too new alike degrade to recompute, never to a misparse
    for stale in [2u32, 6u32] {
        for artifact in &artifacts {
            reseal_with_version(artifact, stale);
        }
        assert!(store.load_orbits(&g).is_none(), "version {stale} frame must miss");
        let mut cold = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(16));
        let (recomputed, _) = cold.run_plan(&plan).unwrap();
        // the recompute serves the right table and heals the artifacts
        // back to the current version for the next iteration to re-stale
        assert_eq!(recomputed.table(), reference.as_slice());
    }
}

/// Supersede pin: once a symbolic artifact exists it serves **every**
/// horizon of the same walker — alongside (not instead of) any explicit
/// frames persisted earlier at a fixed horizon — and mixed-artifact stores
/// keep every sweep bit-identical to a storeless cold run.
#[test]
fn symbolic_frames_supersede_explicit_across_horizons() {
    let dir = TempDir::new("supersede");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_ring(6).unwrap();
    let program = SweepWalker { seed: 0x5EED };

    // explicit frames first, at a small fixed horizon
    let mut small = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(16));
    let small_plan = SweepPlan::from_orbits(small.orbits().clone(), vec![0, 1], 16);
    small.run_plan(&small_plan).unwrap();
    assert_eq!(artifacts_with_prefix(&dir.0, "timelines-").len(), 1);
    assert!(artifacts_with_prefix(&dir.0, "symbolic-").is_empty());

    // an astronomical sweep adds the symbolic artifact under the same lock
    // discipline without disturbing the explicit one
    let mut big =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(ASTRONOMICAL));
    let big_plan = SweepPlan::from_orbits(big.orbits().clone(), vec![0, 1], ASTRONOMICAL);
    let (big_run, prov) = big.run_plan(&big_plan).unwrap();
    // the stored horizon-16 table is warmer than a cold start: met entries
    // are final by stop-propagation, unmet entries resume their merges —
    // symbolically, beyond the unroll cap — and both the superseding table
    // and the detected symbolic timelines persist back
    assert!(matches!(prov, OutcomeProvenance::WarmExtend { recorded: 16, .. }), "{prov:?}");
    assert_eq!(artifacts_with_prefix(&dir.0, "symbolic-").len(), 1);
    assert_eq!(artifacts_with_prefix(&dir.0, "timelines-").len(), 1);
    assert!(big.stats().symbolic_timelines > 0, "extension must have gone symbolic");

    // the extended table must be bit-identical to a storeless cold run at
    // the astronomical horizon — which itself must resolve symbolically
    let mut cold_big =
        SweepSession::new(None, &g, &program, KEY, EngineConfig::batch(ASTRONOMICAL));
    let cold_big_plan = SweepPlan::from_orbits(cold_big.orbits().clone(), vec![0, 1], ASTRONOMICAL);
    let (cold_big_run, cold_prov) = cold_big.run_plan(&cold_big_plan).unwrap();
    assert!(matches!(cold_prov, OutcomeProvenance::Symbolic { detected: 6 }), "{cold_prov:?}");
    assert_eq!(big_run.table(), cold_big_run.table());

    // the symbolic artifact now serves horizons the explicit frames never
    // saw: a mid-range warm sweep equals a storeless cold run bit for bit
    for h in [16, 64, 4096] {
        let mut warm = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(h));
        let warm_plan = SweepPlan::from_orbits(warm.orbits().clone(), vec![0, 1], h);
        let (warm_run, _) = warm.run_plan(&warm_plan).unwrap();

        let mut cold = SweepSession::new(None, &g, &program, KEY, EngineConfig::batch(h));
        let cold_plan = SweepPlan::from_orbits(cold.orbits().clone(), vec![0, 1], h);
        let (cold_run, _) = cold.run_plan(&cold_plan).unwrap();
        assert_eq!(warm_run.table(), cold_run.table(), "horizon {h}");
    }

    // and a fresh astronomical session is warm end to end
    let mut again =
        SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(ASTRONOMICAL));
    let (warm_big, prov) = again.run_plan(&big_plan).unwrap();
    assert_eq!(warm_big.table(), big_run.table());
    assert!(matches!(prov, OutcomeProvenance::WarmExact), "{prov:?}");
}
