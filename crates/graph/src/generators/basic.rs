//! Elementary families: rings, paths, complete graphs, stars, hypercubes,
//! lollipops.

use crate::builder::PortGraphBuilder;
use crate::error::GraphError;
use crate::graph::{PortGraph, SymmetryHint};
use crate::Result;

/// The two-node graph from the paper's introduction (delay 3 example).
pub fn two_node_graph() -> PortGraph {
    let mut b = PortGraphBuilder::new(2);
    b.add_edge(0, 0, 1, 0).expect("static construction");
    b.build().expect("static construction")
}

/// Oriented ring on `n ≥ 3` nodes: at every node, port `0` leads "clockwise"
/// (to `i + 1 mod n`) and port `1` leads "counter-clockwise".  Every pair of
/// nodes is symmetric and `Shrink(u, v) = dist(u, v)`.
pub fn oriented_ring(n: usize) -> Result<PortGraph> {
    if n < 3 {
        return Err(GraphError::invalid("oriented_ring requires n >= 3"));
    }
    let mut b = PortGraphBuilder::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        b.add_edge(i, 0, j, 1)?;
    }
    Ok(b.build()?.with_symmetry_hint(SymmetryHint::Cyclic))
}

/// Ring on `n ≥ 3` nodes with a per-node orientation choice: if
/// `clockwise_first[i]` is `true`, port `0` at node `i` points to
/// `i + 1 mod n`, otherwise to `i - 1 mod n`.  Choosing a non-uniform
/// orientation generally breaks the full symmetry of the oriented ring, which
/// makes this generator useful for nonsymmetric STIC workloads on rings.
pub fn ring_with_orientation(n: usize, clockwise_first: &[bool]) -> Result<PortGraph> {
    if n < 3 {
        return Err(GraphError::invalid("ring_with_orientation requires n >= 3"));
    }
    if clockwise_first.len() != n {
        return Err(GraphError::invalid("orientation vector length must equal n"));
    }
    let mut b = PortGraphBuilder::new(n);
    let port_to = |i: usize, j: usize| -> usize {
        // port used at node i for the edge towards j (its cw or ccw neighbour)
        let cw = (i + 1) % n == j;
        match (clockwise_first[i], cw) {
            (true, true) | (false, false) => 0,
            _ => 1,
        }
    };
    for i in 0..n {
        let j = (i + 1) % n;
        b.add_edge(i, port_to(i, j), j, port_to(j, i))?;
    }
    b.build()
}

/// Simple path on `n ≥ 2` nodes `0 - 1 - ... - n-1`.  Interior node `i` uses
/// port `0` towards `i - 1` and port `1` towards `i + 1`; the end nodes have
/// the single port `0`.
pub fn path(n: usize) -> Result<PortGraph> {
    if n < 2 {
        return Err(GraphError::invalid("path requires n >= 2"));
    }
    let mut b = PortGraphBuilder::new(n);
    for i in 0..n - 1 {
        let p_left = if i == 0 { 0 } else { 1 };
        b.add_edge(i, p_left, i + 1, 0)?;
    }
    b.build()
}

/// Complete graph on `n ≥ 2` nodes; at node `i` the ports enumerate the other
/// nodes in increasing order of identifier.
pub fn complete(n: usize) -> Result<PortGraph> {
    if n < 2 {
        return Err(GraphError::invalid("complete requires n >= 2"));
    }
    let lists: Vec<Vec<usize>> = (0..n).map(|i| (0..n).filter(|&j| j != i).collect()).collect();
    PortGraphBuilder::from_adjacency_lists(&lists)
}

/// Complete bipartite graph `K_{a,b}` with parts `{0..a}` and `{a..a+b}`;
/// ports enumerate the opposite part in increasing order.
pub fn complete_bipartite(a: usize, b: usize) -> Result<PortGraph> {
    if a == 0 || b == 0 {
        return Err(GraphError::invalid("complete_bipartite requires both parts non-empty"));
    }
    if a + b < 2 {
        return Err(GraphError::invalid("complete_bipartite requires at least 2 nodes"));
    }
    let lists: Vec<Vec<usize>> =
        (0..a + b).map(|i| if i < a { (a..a + b).collect() } else { (0..a).collect() }).collect();
    PortGraphBuilder::from_adjacency_lists(&lists)
}

/// Star with `k ≥ 2` leaves: center `0`, leaves `1..=k`.  Leaf `i` attaches to
/// port `i - 1` of the center, so distinct leaves are *not* symmetric.
pub fn star(k: usize) -> Result<PortGraph> {
    if k < 2 {
        return Err(GraphError::invalid("star requires at least 2 leaves"));
    }
    let mut b = PortGraphBuilder::new(k + 1);
    for i in 1..=k {
        b.add_edge(0, i - 1, i, 0)?;
    }
    b.build()
}

/// Hypercube of dimension `d ≥ 1`: nodes are the integers `0..2^d`, port `i`
/// flips bit `i` (and the entry port equals the exit port).  Every pair of
/// nodes is symmetric and `Shrink = Hamming distance`.
pub fn hypercube(d: usize) -> Result<PortGraph> {
    if d == 0 || d > 20 {
        return Err(GraphError::invalid("hypercube requires 1 <= d <= 20"));
    }
    let n = 1usize << d;
    let mut b = PortGraphBuilder::new(n);
    for u in 0..n {
        for i in 0..d {
            let v = u ^ (1 << i);
            if u < v {
                b.add_edge(u, i, v, i)?;
            }
        }
    }
    Ok(b.build()?.with_symmetry_hint(SymmetryHint::Hypercube { dim: d as u32 }))
}

/// Lollipop graph: a complete graph on `clique ≥ 3` nodes with a path of
/// `tail ≥ 1` extra nodes attached to node `0`.  A classic source of pairwise
/// nonsymmetric nodes.  Ports are assigned automatically in construction
/// order.
pub fn lollipop(clique: usize, tail: usize) -> Result<PortGraph> {
    if clique < 3 {
        return Err(GraphError::invalid("lollipop requires clique >= 3"));
    }
    if tail < 1 {
        return Err(GraphError::invalid("lollipop requires tail >= 1"));
    }
    let n = clique + tail;
    let mut b = PortGraphBuilder::new(n);
    for i in 0..clique {
        for j in i + 1..clique {
            b.add_edge_auto(i, j)?;
        }
    }
    // attach the tail to clique node 0
    b.add_edge_auto(0, clique)?;
    for i in clique..n - 1 {
        b.add_edge_auto(i, i + 1)?;
    }
    b.build()
}

/// Circulant graph `C_n(s_1, ..., s_k)` on `n ≥ 3` nodes: node `i` is
/// adjacent to `i ± s_j (mod n)` for every shift `s_j`.
///
/// Port convention (globally consistent, generalising [`oriented_ring`] —
/// which is exactly `circulant(n, &[1])`): at **every** node, port `2j`
/// leads to `i + s_j` and is entered there by port `2j + 1`, while port
/// `2j + 1` leads to `i − s_j` and is entered by port `2j`.  A shift
/// `s_j = n/2` pairs `i` with its antipode through a *single* edge carrying
/// port `2j` at both extremities (like the hypercube's self-paired ports).
/// Because the convention is translation-invariant, every pair of nodes is
/// symmetric and `Shrink(u, v)` equals the circulant distance — a family of
/// symmetric workloads with tunable degree and diameter.
///
/// Shifts must be strictly increasing with `0 < s_j ≤ n/2`, and
/// `gcd(n, s_1, ..., s_k)` must be `1` (otherwise the graph is
/// disconnected).
pub fn circulant(n: usize, shifts: &[usize]) -> Result<PortGraph> {
    if n < 3 {
        return Err(GraphError::invalid("circulant requires n >= 3"));
    }
    if shifts.is_empty() {
        return Err(GraphError::invalid("circulant requires at least one shift"));
    }
    if !shifts.windows(2).all(|w| w[0] < w[1]) {
        return Err(GraphError::invalid("circulant shifts must be strictly increasing"));
    }
    if shifts[0] == 0 || 2 * shifts[shifts.len() - 1] > n {
        return Err(GraphError::invalid("circulant shifts must satisfy 0 < s <= n/2"));
    }
    let gcd = shifts.iter().fold(n, |acc, &s| {
        let (mut a, mut b) = (acc, s);
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    });
    if gcd != 1 {
        return Err(GraphError::invalid("circulant is disconnected: gcd(n, shifts) > 1"));
    }
    let mut b = PortGraphBuilder::new(n);
    for (j, &s) in shifts.iter().enumerate() {
        for i in 0..n {
            if 2 * s == n {
                // antipodal shift: one self-paired port per node
                if i < (i + s) % n {
                    b.add_edge(i, 2 * j, (i + s) % n, 2 * j)?;
                }
            } else {
                b.add_edge(i, 2 * j, (i + s) % n, 2 * j + 1)?;
            }
        }
    }
    // the port convention is translation-invariant, so the n rotations act
    Ok(b.build()?.with_symmetry_hint(SymmetryHint::Cyclic))
}

/// An `n`-cycle (oriented ports) with one extra chord between nodes `0` and
/// `chord_to`; the chord destroys the ring's full symmetry, producing a small
/// family of graphs with a mix of symmetric and nonsymmetric pairs.
pub fn cycle_with_chord(n: usize, chord_to: usize) -> Result<PortGraph> {
    if n < 5 {
        return Err(GraphError::invalid("cycle_with_chord requires n >= 5"));
    }
    if chord_to <= 1 || chord_to >= n - 1 {
        return Err(GraphError::invalid("chord endpoint must not be adjacent to node 0"));
    }
    let mut b = PortGraphBuilder::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        b.add_edge(i, 0, j, 1)?;
    }
    b.add_edge(0, 2, chord_to, 2)?;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symmetry::OrbitPartition;

    #[test]
    fn two_node_graph_is_the_introduction_example() {
        let g = two_node_graph();
        assert_eq!(g.num_nodes(), 2);
        assert_eq!(g.num_edges(), 1);
        assert!(OrbitPartition::compute(&g).is_fully_symmetric());
    }

    #[test]
    fn oriented_ring_ports_are_consistent() {
        let g = oriented_ring(7).unwrap();
        for i in 0..7 {
            assert_eq!(g.succ(i, 0), ((i + 1) % 7, 1));
            assert_eq!(g.succ(i, 1), ((i + 6) % 7, 0));
        }
        assert!(oriented_ring(2).is_err());
    }

    #[test]
    fn ring_with_orientation_matches_oriented_ring_when_uniform() {
        let uniform = ring_with_orientation(6, &[true; 6]).unwrap();
        assert_eq!(uniform, oriented_ring(6).unwrap());
        // flipping one node's orientation yields a valid but different graph
        let mut o = vec![true; 6];
        o[2] = false;
        let twisted = ring_with_orientation(6, &o).unwrap();
        assert_ne!(twisted, uniform);
        twisted.validate().unwrap();
        assert!(ring_with_orientation(6, &[true; 5]).is_err());
    }

    #[test]
    fn path_degrees_and_validation() {
        let g = path(6).unwrap();
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(5), 1);
        for i in 1..5 {
            assert_eq!(g.degree(i), 2);
        }
        assert!(path(1).is_err());
    }

    #[test]
    fn complete_graph_counts() {
        let g = complete(6).unwrap();
        assert_eq!(g.num_edges(), 15);
        assert!(g.is_regular());
        assert!(complete(1).is_err());
    }

    #[test]
    fn complete_bipartite_structure() {
        let g = complete_bipartite(2, 3).unwrap();
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(4), 2);
        assert!(complete_bipartite(0, 3).is_err());
    }

    #[test]
    fn star_structure() {
        let g = star(5).unwrap();
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.degree(0), 5);
        for leaf in 1..=5 {
            assert_eq!(g.degree(leaf), 1);
        }
        assert!(star(1).is_err());
    }

    #[test]
    fn hypercube_structure_and_symmetry() {
        let g = hypercube(3).unwrap();
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 12);
        assert!(g.is_regular());
        assert!(OrbitPartition::compute(&g).is_fully_symmetric());
        assert!(hypercube(0).is_err());
    }

    #[test]
    fn lollipop_structure() {
        let g = lollipop(4, 3).unwrap();
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 6 + 3);
        assert_eq!(g.degree(0), 4); // clique node with the tail attached
        assert_eq!(g.degree(6), 1); // tail end
        assert!(lollipop(2, 1).is_err());
        assert!(lollipop(3, 0).is_err());
    }

    #[test]
    fn circulant_matches_the_documented_port_table() {
        let g = circulant(10, &[1, 3]).unwrap();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 20);
        for i in 0..10 {
            assert_eq!(g.succ(i, 0), ((i + 1) % 10, 1)); // +s_1
            assert_eq!(g.succ(i, 1), ((i + 9) % 10, 0)); // -s_1
            assert_eq!(g.succ(i, 2), ((i + 3) % 10, 3)); // +s_2
            assert_eq!(g.succ(i, 3), ((i + 7) % 10, 2)); // -s_2
        }
        assert!(OrbitPartition::compute(&g).is_fully_symmetric());
    }

    #[test]
    fn circulant_with_shift_one_is_the_oriented_ring() {
        assert_eq!(circulant(7, &[1]).unwrap(), oriented_ring(7).unwrap());
    }

    #[test]
    fn circulant_antipodal_shift_uses_a_self_paired_port() {
        let g = circulant(8, &[1, 4]).unwrap();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.succ(0, 2), (4, 2));
        assert_eq!(g.succ(4, 2), (0, 2));
        assert!(OrbitPartition::compute(&g).is_fully_symmetric());
    }

    #[test]
    fn circulant_rejects_bad_parameters() {
        assert!(circulant(2, &[1]).is_err());
        assert!(circulant(8, &[]).is_err());
        assert!(circulant(8, &[0, 1]).is_err());
        assert!(circulant(8, &[3, 1]).is_err());
        assert!(circulant(8, &[1, 5]).is_err()); // 5 > 8/2
        assert!(circulant(8, &[2, 4]).is_err()); // gcd(8, 2, 4) = 2
        assert!(circulant(9, &[3]).is_err()); // gcd(9, 3) = 3
    }

    #[test]
    fn cycle_with_chord_structure() {
        let g = cycle_with_chord(8, 4).unwrap();
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(4), 3);
        assert!(!OrbitPartition::compute(&g).is_fully_symmetric());
        assert!(cycle_with_chord(8, 1).is_err());
        assert!(cycle_with_chord(4, 2).is_err());
    }
}
