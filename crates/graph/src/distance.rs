//! Breadth-first search distances, eccentricities and diameter.

use std::collections::VecDeque;

use crate::graph::{NodeId, PortGraph};

/// Distance (in edges) from `source` to every node.  All nodes are reachable
/// because a validated [`PortGraph`] is connected.
pub fn bfs_distances(g: &PortGraph, source: NodeId) -> Vec<usize> {
    let n = g.num_nodes();
    let mut dist = vec![usize::MAX; n];
    let mut queue = VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for p in 0..g.degree(v) {
            let (w, _) = g.succ(v, p);
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Distance between two nodes.
pub fn distance(g: &PortGraph, u: NodeId, v: NodeId) -> usize {
    bfs_distances(g, u)[v]
}

/// BFS predecessor tree from `source`: `parent[v]` is `None` for the source
/// and `Some((parent, port_at_parent, port_at_v))` otherwise.
pub fn bfs_tree(g: &PortGraph, source: NodeId) -> Vec<Option<(NodeId, usize, usize)>> {
    let n = g.num_nodes();
    let mut parent = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = VecDeque::new();
    seen[source] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for p in 0..g.degree(v) {
            let (w, q) = g.succ(v, p);
            if !seen[w] {
                seen[w] = true;
                parent[w] = Some((v, p, q));
                queue.push_back(w);
            }
        }
    }
    parent
}

/// A shortest path from `u` to `v` as the sequence of outgoing ports to take
/// from `u`.
pub fn shortest_path_ports(g: &PortGraph, u: NodeId, v: NodeId) -> Vec<usize> {
    if u == v {
        return Vec::new();
    }
    let parent = bfs_tree(g, u);
    let mut ports_rev = Vec::new();
    let mut cur = v;
    while cur != u {
        let (p, port_at_parent, _) = parent[cur].expect("graph is connected");
        ports_rev.push(port_at_parent);
        cur = p;
    }
    ports_rev.reverse();
    ports_rev
}

/// Eccentricity of a node: the maximum distance from it to any other node.
pub fn eccentricity(g: &PortGraph, v: NodeId) -> usize {
    *bfs_distances(g, v).iter().max().unwrap_or(&0)
}

/// Diameter of the graph.
pub fn diameter(g: &PortGraph) -> usize {
    g.nodes().map(|v| eccentricity(g, v)).max().unwrap_or(0)
}

/// The full all-pairs distance matrix (row `u`, column `v`).  Quadratic in
/// memory; intended for the small/medium graphs used in the experiments.
pub fn distance_matrix(g: &PortGraph) -> Vec<Vec<usize>> {
    g.nodes().map(|v| bfs_distances(g, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, hypercube, oriented_ring, path};
    use crate::traversal::apply_ports_end;

    #[test]
    fn ring_distances_wrap_around() {
        let g = oriented_ring(8).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 3, 2, 1]);
        assert_eq!(diameter(&g), 4);
    }

    #[test]
    fn path_distances_and_eccentricity() {
        let g = path(5).unwrap();
        assert_eq!(distance(&g, 0, 4), 4);
        assert_eq!(eccentricity(&g, 2), 2);
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(diameter(&g), 4);
    }

    #[test]
    fn complete_graph_has_diameter_one() {
        let g = complete(6).unwrap();
        assert_eq!(diameter(&g), 1);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(distance(&g, u, v), usize::from(u != v));
            }
        }
    }

    #[test]
    fn hypercube_distance_is_hamming_distance() {
        let g = hypercube(4).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(distance(&g, u, v), (u ^ v).count_ones() as usize);
            }
        }
    }

    #[test]
    fn shortest_path_ports_reach_the_target_with_the_right_length() {
        let g = hypercube(3).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                let ports = shortest_path_ports(&g, u, v);
                assert_eq!(ports.len(), distance(&g, u, v));
                assert_eq!(apply_ports_end(&g, u, &ports), Some(v));
            }
        }
    }

    #[test]
    fn distance_matrix_is_symmetric() {
        let g = oriented_ring(7).unwrap();
        let m = distance_matrix(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(m[u][v], m[v][u]);
            }
        }
    }
}
