//! Offline stand-in for `rand_chacha` (see `vendor/README.md`): a genuine
//! ChaCha stream-cipher core with 8 double-rounds, exposed through the
//! workspace's [`rand`] traits.  Deterministic, but not bit-compatible with
//! upstream `rand_chacha` (the `seed_from_u64` key schedule differs).

use rand::{RngCore, SeedableRng};

/// ChaCha8-based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, 1 counter, 3 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word of `block` (16 = exhausted).
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal)
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self.block.iter_mut().zip(working.iter().zip(self.state.iter())) {
            *out = w.wrapping_add(s);
        }
        self.state[12] = self.state[12].wrapping_add(1); // block counter
        self.idx = 0;
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.block[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // "expand 32-byte k" constants
        let mut s = [0u32; 16];
        s[0] = 0x6170_7865;
        s[1] = 0x3320_646e;
        s[2] = 0x7962_2d32;
        s[3] = 0x6b20_6574;
        let mut sm = state;
        for i in 0..4 {
            let k = rand_splitmix(&mut sm);
            s[4 + 2 * i] = k as u32;
            s[5 + 2 * i] = (k >> 32) as u32;
        }
        // counter and nonce start at zero
        ChaCha8Rng { state: s, block: [0; 16], idx: 16 }
    }
}

/// Local SplitMix64 (kept here so the crate has no private access to `rand`).
fn rand_splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn chacha_is_deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut counts = [0usize; 2];
        for _ in 0..4096 {
            counts[usize::from(rng.gen_range(0..2u32) == 0)] += 1;
        }
        assert!(counts.iter().all(|&c| (1700..2400).contains(&c)), "{counts:?}");
    }
}
