//! `anonrv` — command-line front-end for the anonymous-rendezvous library.
//!
//! ```text
//! anonrv shrink   <graph> <u> <v>              Shrink(u, v), witness and distance
//! anonrv feasible <graph> <u> <v> <delta>      Corollary 3.1 classification of a STIC
//! anonrv simulate <graph> <u> <v> <delta> [--algo universal|symm|asymm]
//!                                              run a rendezvous algorithm on the STIC
//! anonrv orbits   <graph> [--json]             view-equivalence classes, symmetry
//!                                              group descriptor (closed form on
//!                                              stamped families — million-node
//!                                              tori answer without enumerating
//!                                              a single permutation)
//! anonrv sweep    <graph> [--deltas D] [--horizon H] [--seed S]
//!                 [--cache-dir DIR] [--shards K --shard-index I] [--merge]
//!                 [--shards K --supervised] [--stream [--chunk C]]
//!                 [--report text|json] [--trace-out FILE]
//!                                              exhaustive planned all-pairs sweep:
//!                                              resumable (persistent plan cache,
//!                                              horizon-generic: longer recordings
//!                                              serve shorter sweeps by prefix),
//!                                              shardable across processes, merged
//!                                              bit-identically; --supervised runs
//!                                              every shard in-process with
//!                                              retry/backoff over the store's
//!                                              missing-shard probe; --report json
//!                                              emits one schema-versioned report
//!                                              (anonrv.report/v1) on stdout and
//!                                              --trace-out writes a JSONL span/
//!                                              event trace (anonrv.trace/v1);
//!                                              --stream runs the implicit orbit
//!                                              planner: chunks of (class, δ)
//!                                              entries visit a fingerprinter
//!                                              instead of materialising the
//!                                              table, so all-pairs sweeps scale
//!                                              to million-node stamped graphs
//! anonrv cache    <dir> stats|gc|fsck [--repair] [--json]
//!                                              survey / compact / deep-verify a
//!                                              plan-cache dir (--json: the same
//!                                              data as an anonrv.report/v1 object)
//! anonrv figure1  [h]                          ASCII rendering of Q̂_h (default h = 2)
//! ```
//!
//! Graph specifications: `ring:8`, `path:5`, `star:4`, `complete:5`,
//! `hypercube:3`, `torus:3x4`, `grid:2x3`, `lollipop:4x2`,
//! `caterpillar:4x2`, `double-tree:2x3`, `random:10x4x7` (n, extra edges,
//! seed), `circulant:12x1x3` (n, then the shifts), `qhat:4`.

use std::process::ExitCode;

use anonrv_core::asymm_rv::AsymmRv;
use anonrv_core::feasibility::{classify, SticClass};
use anonrv_core::label::TrailSignature;
use anonrv_core::symm_rv::SymmRv;
use anonrv_core::universal_rv::UniversalRv;
use anonrv_graph::generators::{
    caterpillar, circulant, complete, grid, hypercube, lollipop, oriented_ring, oriented_torus,
    path, qh_hat, random_connected, star, symmetric_double_tree,
};
use anonrv_graph::render::figure1_text;
use anonrv_graph::shrink::shrink_detailed;
use anonrv_graph::symmetry::OrbitPartition;
use anonrv_graph::PortGraph;
use anonrv_sim::{simulate, Round, Stic};
use anonrv_uxs::{LengthRule, PseudorandomUxs, UxsProvider};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  anonrv shrink   <graph> <u> <v>\n  anonrv feasible <graph> <u> <v> <delta>\n  \
     anonrv simulate <graph> <u> <v> <delta> [--algo universal|symm|asymm] [--horizon H]\n  \
     anonrv orbits   <graph> [--json]\n  \
     anonrv sweep    <graph> [--deltas D] [--horizon H] [--seed S] [--cache-dir DIR]\n                  \
     [--shards K --shard-index I] [--merge] [--shards K --supervised]\n                  \
     [--stream [--chunk C]] [--report text|json] [--trace-out FILE]\n  \
     anonrv cache    <dir> stats|gc|fsck [--repair] [--json]\n  \
     anonrv figure1  [h]\n\n\
     sweep: exhaustive all-pairs x delay-grid planned sweep (D = count `5` for {0..4} or list \
     `0,2,7`;\n  S = walker seed, decimal or 0x-hex); --cache-dir makes it resumable (orbits/\
     timelines/outcomes\n  persist; recordings at a longer horizon serve shorter sweeps by \
     prefix truncation),\n  --shards/--shard-index executes one slice, --merge reassembles the \
     slices bit-identically,\n  --shards/--supervised runs every slice in-process with bounded \
     retry + backoff, re-running\n  only slices whose artifact is missing, then merges.\n  \
     --stream executes the plan through the implicit orbit planner (stamped vertex-transitive\n  \
     graphs only): chunks of C classes (default 1024) stream through a fingerprinter with\n  \
     bounded memory — the path that completes all-pairs sweeps on torus:1024x1024.\n  \
     --report json prints one anonrv.report/v1 JSON object (plan, provenance, session stats,\n  \
     supervisor attempt rows, metrics snapshot, outcome-table fingerprint) instead of text;\n  \
     --trace-out FILE streams every timing span and structured event as anonrv.trace/v1 JSONL.\n\n\
     cache: stats surveys artifact counts/bytes per kind (quarantined frames included) and\n  \
     recorded horizons; gc deletes corrupt/stale frames, orphaned temp/lock files and shard\n  \
     partials superseded by a merged table, reporting reclaimed bytes; fsck reads every frame\n  \
     in full (end-to-end checksum + structural payload verification) and lists a per-artifact\n  \
     verdict — with --repair, corrupt frames move to quarantine/ with a reason sidecar.\n\n\
     graphs: ring:8 path:5 star:4 complete:5 \
     hypercube:3 torus:3x4 grid:2x3 lollipop:4x2 caterpillar:4x2 double-tree:2x3 random:10x4x7 \
     circulant:12x1x3 qhat:4"
}

fn run(args: &[String]) -> Result<String, String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "shrink" => cmd_shrink(&args[1..]),
        "feasible" => cmd_feasible(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "orbits" => cmd_orbits(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "cache" => cmd_cache(&args[1..]),
        "figure1" => cmd_figure1(&args[1..]),
        "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Parse a graph specification like `ring:8` or `torus:3x4`.
fn parse_graph(spec: &str) -> Result<PortGraph, String> {
    let (kind, params) = spec.split_once(':').ok_or_else(|| format!("bad graph spec '{spec}'"))?;
    let dims: Vec<usize> = params
        .split('x')
        .map(|p| p.parse::<usize>().map_err(|_| format!("bad parameter '{p}' in '{spec}'")))
        .collect::<Result<_, _>>()?;
    let need = |count: usize| -> Result<(), String> {
        if dims.len() == count {
            Ok(())
        } else {
            Err(format!("'{kind}' expects {count} parameter(s), got {}", dims.len()))
        }
    };
    let build = |r: anonrv_graph::Result<PortGraph>| r.map_err(|e| e.to_string());
    match kind {
        "ring" => {
            need(1)?;
            build(oriented_ring(dims[0]))
        }
        "path" => {
            need(1)?;
            build(path(dims[0]))
        }
        "star" => {
            need(1)?;
            build(star(dims[0]))
        }
        "complete" => {
            need(1)?;
            build(complete(dims[0]))
        }
        "hypercube" => {
            need(1)?;
            build(hypercube(dims[0]))
        }
        "torus" => {
            need(2)?;
            build(oriented_torus(dims[0], dims[1]))
        }
        "grid" => {
            need(2)?;
            build(grid(dims[0], dims[1]))
        }
        "lollipop" => {
            need(2)?;
            build(lollipop(dims[0], dims[1]))
        }
        "caterpillar" => {
            need(2)?;
            build(caterpillar(dims[0], dims[1]))
        }
        "double-tree" => {
            need(2)?;
            symmetric_double_tree(dims[0], dims[1]).map(|(g, _)| g).map_err(|e| e.to_string())
        }
        "random" => {
            need(3)?;
            build(random_connected(dims[0], dims[1], dims[2] as u64))
        }
        "circulant" => {
            if dims.len() < 2 {
                return Err(format!(
                    "'circulant' expects n followed by at least one shift, got {}",
                    dims.len()
                ));
            }
            build(circulant(dims[0], &dims[1..]))
        }
        "qhat" => {
            need(1)?;
            qh_hat(dims[0]).map(|q| q.graph).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown graph family '{other}'")),
    }
}

fn parse_node(g: &PortGraph, arg: Option<&String>, name: &str) -> Result<usize, String> {
    let v: usize = arg
        .ok_or_else(|| format!("missing node argument <{name}>"))?
        .parse()
        .map_err(|_| format!("<{name}> must be a node index"))?;
    if v >= g.num_nodes() {
        return Err(format!("node {v} out of range (graph has {} nodes)", g.num_nodes()));
    }
    Ok(v)
}

fn cmd_shrink(args: &[String]) -> Result<String, String> {
    let g = parse_graph(args.first().ok_or("missing <graph>")?)?;
    let u = parse_node(&g, args.get(1), "u")?;
    let v = parse_node(&g, args.get(2), "v")?;
    let partition = OrbitPartition::compute(&g);
    let result = shrink_detailed(&g, u, v, usize::MAX).expect("unbounded search completes");
    let distance = anonrv_graph::distance::distance(&g, u, v);
    Ok(format!(
        "graph: {} nodes, {} edges\nnodes {} and {} are {}\ndistance(u, v)   = {}\nShrink(u, v)     = {}\nwitness sequence = {:?}\nclosest pair     = {:?}",
        g.num_nodes(),
        g.num_edges(),
        u,
        v,
        if partition.are_symmetric(u, v) { "symmetric" } else { "nonsymmetric" },
        distance,
        result.shrink,
        result.witness,
        result.closest_pair,
    ))
}

fn cmd_feasible(args: &[String]) -> Result<String, String> {
    let g = parse_graph(args.first().ok_or("missing <graph>")?)?;
    let u = parse_node(&g, args.get(1), "u")?;
    let v = parse_node(&g, args.get(2), "v")?;
    let delta: Round = args
        .get(3)
        .ok_or("missing <delta>")?
        .parse()
        .map_err(|_| "<delta> must be a non-negative integer")?;
    let class = classify(&g, u, v, delta);
    let verdict = match class {
        SticClass::Nonsymmetric => {
            "FEASIBLE — the initial positions are nonsymmetric, any delay works".to_string()
        }
        SticClass::SymmetricFeasible { shrink } => format!(
            "FEASIBLE — symmetric positions with delta = {delta} >= Shrink(u, v) = {shrink}"
        ),
        SticClass::SymmetricInfeasible { shrink } => format!(
            "INFEASIBLE — symmetric positions with delta = {delta} < Shrink(u, v) = {shrink} (Lemma 3.1)"
        ),
        SticClass::SameNode => "FEASIBLE (degenerate) — both agents start on the same node".to_string(),
    };
    Ok(format!("STIC [({u}, {v}), {delta}]: {verdict}"))
}

fn cmd_simulate(args: &[String]) -> Result<String, String> {
    let g = parse_graph(args.first().ok_or("missing <graph>")?)?;
    let u = parse_node(&g, args.get(1), "u")?;
    let v = parse_node(&g, args.get(2), "v")?;
    let delta: Round = args
        .get(3)
        .ok_or("missing <delta>")?
        .parse()
        .map_err(|_| "<delta> must be a non-negative integer")?;
    let algo_name = flag_value(args, "--algo").unwrap_or("universal");
    let horizon_override: Option<Round> = match flag_value(args, "--horizon") {
        Some(h) => Some(h.parse().map_err(|_| "bad --horizon value")?),
        None => None,
    };

    let n = g.num_nodes();
    let stic = Stic::new(u, v, delta);
    let class = classify(&g, u, v, delta);
    let uxs = PseudorandomUxs::with_rule(LengthRule::Quadratic { c: 1, min_len: 16 });
    let scheme = TrailSignature::new(uxs);

    let (outcome, algo_label) = match algo_name {
        "universal" => {
            let algo = UniversalRv::new(&uxs, &scheme);
            let d_hint = match class {
                SticClass::SymmetricFeasible { shrink }
                | SticClass::SymmetricInfeasible { shrink } => shrink.max(1),
                _ => 1,
            };
            let horizon = horizon_override
                .unwrap_or_else(|| algo.completion_horizon(n, d_hint, delta.max(1)));
            (simulate(&g, &algo, &stic, horizon), "UniversalRV")
        }
        "symm" => {
            let d = match class {
                SticClass::SymmetricFeasible { shrink }
                | SticClass::SymmetricInfeasible { shrink } => shrink.max(1),
                _ => return Err("--algo symm requires symmetric starting positions".to_string()),
            };
            let program = SymmRv::new(n, d, delta.max(d as Round), &uxs);
            let bound =
                anonrv_core::bounds::symm_rv_bound(n, d, delta.max(d as Round), uxs.length(n));
            let horizon = horizon_override.unwrap_or(bound.saturating_add(delta).saturating_add(1));
            (simulate(&g, &program, &stic, horizon), "SymmRV")
        }
        "asymm" => {
            let program = AsymmRv::new(n, delta.max(1), &scheme, &uxs);
            let horizon = horizon_override
                .unwrap_or_else(|| program.full_duration().saturating_add(delta).saturating_add(1));
            (simulate(&g, &program, &stic, horizon), "AsymmRV")
        }
        other => return Err(format!("unknown algorithm '{other}' (universal|symm|asymm)")),
    };

    let class_text = match class {
        SticClass::Nonsymmetric => "nonsymmetric (feasible)".to_string(),
        SticClass::SymmetricFeasible { shrink } => {
            format!("symmetric, Shrink = {shrink} (feasible)")
        }
        SticClass::SymmetricInfeasible { shrink } => {
            format!("symmetric, Shrink = {shrink} (INFEASIBLE)")
        }
        SticClass::SameNode => "same node".to_string(),
    };
    let result = match outcome.meeting {
        Some(m) => format!(
            "RENDEZVOUS at node {} after {} round(s) from the later agent's start (global round {})",
            m.node, m.later_round, m.global_round
        ),
        None => format!("no rendezvous within the horizon ({} rounds)", outcome.horizon),
    };
    Ok(format!(
        "graph: {} nodes, {} edges\nSTIC [({u}, {v}), {delta}]: {class_text}\nalgorithm: {algo_label}\n{result}",
        g.num_nodes(),
        g.num_edges(),
    ))
}

/// Node count above which `anonrv orbits` stops materialising the
/// per-class node listing: a stamped million-node torus answers from its
/// closed-form group descriptor alone, never running the O(n log n)
/// refinement or printing a million-entry class.
const ORBIT_LISTING_CAP: usize = 4096;

fn cmd_orbits(args: &[String]) -> Result<String, String> {
    use anonrv_obs::json::{obj, Value};

    let spec_arg = args.first().ok_or("missing <graph>")?;
    let g = parse_graph(spec_arg)?;
    let json_out = args.iter().any(|a| a == "--json");
    let n = g.num_nodes();

    // The pair-orbit view first: on stamped families (rings, tori,
    // hypercubes, circulants) this verifies the closed-form group in
    // O(n·Δ) without materialising a single permutation, so giant specs
    // (`torus:1024x1024`) answer in seconds.
    let orbits = anonrv_plan::PairOrbits::compute(&g);
    let group = orbits.group();

    // A closed-form group is transitive by construction: one node class.
    // Small graphs (and every explicit-fallback graph, whose group
    // enumeration already cost more) keep the refinement partition.
    let partition = if group.is_implicit() && n > ORBIT_LISTING_CAP {
        None
    } else {
        Some(OrbitPartition::compute(&g))
    };
    let num_node_classes = partition.as_ref().map_or(1, |p| p.classes().len());

    if json_out {
        let report = Value::Obj(vec![
            ("schema".into(), Value::from(anonrv_obs::report::REPORT_SCHEMA)),
            ("command".into(), Value::from("orbits")),
            (
                "graph".into(),
                obj([
                    ("spec", Value::from(spec_arg.as_str())),
                    ("nodes", Value::from(n)),
                    ("edges", Value::from(g.num_edges())),
                    ("hash", Value::from(format!("{:032x}", g.canonical_hash()))),
                ]),
            ),
            (
                "orbits".into(),
                obj([
                    ("family", Value::from(group.family())),
                    ("implicit", Value::from(group.is_implicit())),
                    ("generators", Value::from(group.generator_description())),
                    ("group_order", Value::from(orbits.group_order())),
                    ("node_classes", Value::from(num_node_classes)),
                    ("pair_classes", Value::from(orbits.num_pair_classes())),
                    ("ordered_pairs", Value::from(n * n)),
                    ("compression", Value::from(orbits.compression())),
                ]),
            ),
        ]);
        return Ok(report.to_string());
    }

    let mut out = format!(
        "graph: {n} nodes, {} edges\nview-equivalence classes: {num_node_classes}\n",
        g.num_edges(),
    );
    match &partition {
        Some(p) if n <= ORBIT_LISTING_CAP => {
            for (i, class) in p.classes().iter().enumerate() {
                out.push_str(&format!("  class {i}: {class:?}\n"));
            }
        }
        _ => out
            .push_str(&format!("  (class listing suppressed beyond {ORBIT_LISTING_CAP} nodes)\n")),
    }
    out.push_str(if num_node_classes == 1 {
        "all nodes are pairwise symmetric\n"
    } else if num_node_classes == n {
        "no two nodes are symmetric\n"
    } else {
        "the graph has both symmetric and nonsymmetric pairs\n"
    });
    out.push_str(&format!(
        "symmetry group: {} {}\ngenerators: {}\n",
        group.family(),
        if group.is_implicit() { "(implicit, closed form)" } else { "(BFS-enumerated)" },
        group.generator_description(),
    ));
    out.push_str(&format!(
        "automorphism group order: {}\npair orbits (ordered pairs): {} of {} (compression {:.1}x)",
        orbits.group_order(),
        orbits.num_pair_classes(),
        n * n,
        orbits.compression(),
    ));
    Ok(out)
}

/// Parse `--seed`: decimal by default, hexadecimal with an explicit `0x`
/// prefix (`--seed 10` is ten, `--seed 0x10` is sixteen).
fn parse_seed(spec: &str) -> Result<u64, String> {
    let parsed = match spec.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => spec.parse(),
    };
    parsed.map_err(|_| format!("bad --seed value '{spec}' (decimal, or hex with 0x)"))
}

/// Parse `--deltas`: a count `5` means the grid `{0..4}`, a comma list
/// `0,2,7` is taken verbatim (sorted ascending for the fast sweep path).
fn parse_deltas(spec: &str) -> Result<Vec<Round>, String> {
    let bad = |s: &str| format!("bad --deltas value '{s}'");
    if spec.contains(',') {
        let mut deltas: Vec<Round> = spec
            .split(',')
            .map(|p| p.trim().parse::<Round>().map_err(|_| bad(spec)))
            .collect::<Result<_, _>>()?;
        deltas.sort_unstable();
        deltas.dedup();
        if deltas.is_empty() {
            return Err(bad(spec));
        }
        Ok(deltas)
    } else {
        let count: Round = spec.parse().map_err(|_| bad(spec))?;
        if count == 0 {
            return Err("--deltas needs at least one delay".to_string());
        }
        Ok((0..count).collect())
    }
}

/// The timelines phrase of a cache report line (`"3 warm (2 by prefix) / 5
/// recorded"`).
fn timelines_phrase(stats: &anonrv_store::SessionStats) -> String {
    if stats.timeline_prefix_hits > 0 {
        format!(
            "{} warm ({} by prefix) / {} recorded",
            stats.timeline_hits, stats.timeline_prefix_hits, stats.timeline_misses
        )
    } else {
        format!("{} warm / {} recorded", stats.timeline_hits, stats.timeline_misses)
    }
}

fn cmd_sweep(args: &[String]) -> Result<String, String> {
    use anonrv_obs as obs;
    use anonrv_obs::json::Value;
    use anonrv_plan::SweepPlan;
    use anonrv_sim::EngineConfig;
    use anonrv_store::{
        table_fingerprint, OutcomeProvenance, ShardSpec, Store, SuperviseConfig, SweepSession,
    };

    let spec_arg = args.first().ok_or("missing <graph>")?;
    let g = parse_graph(spec_arg)?;
    let deltas = parse_deltas(flag_value(args, "--deltas").unwrap_or("5"))?;
    let horizon: Round = flag_value(args, "--horizon")
        .unwrap_or("256")
        .parse()
        .map_err(|_| "bad --horizon value")?;
    let seed: u64 = match flag_value(args, "--seed") {
        Some(s) => parse_seed(s)?,
        None => 0x5EED,
    };
    let store = match flag_value(args, "--cache-dir") {
        Some(dir) => Some(Store::open(dir).map_err(|e| format!("cannot open cache dir: {e}"))?),
        None => None,
    };
    let shards: Option<usize> = match flag_value(args, "--shards") {
        Some(s) => Some(s.parse().map_err(|_| "bad --shards value")?),
        None => None,
    };
    let shard_index: Option<usize> = match flag_value(args, "--shard-index") {
        Some(s) => Some(s.parse().map_err(|_| "bad --shard-index value")?),
        None => None,
    };
    let merge = args.iter().any(|a| a == "--merge");
    let supervised = args.iter().any(|a| a == "--supervised");
    let stream = args.iter().any(|a| a == "--stream");
    let chunk: usize = match flag_value(args, "--chunk") {
        Some(s) => match s.parse() {
            Ok(c) if c > 0 => c,
            _ => return Err("bad --chunk value (classes per streamed chunk, >= 1)".to_string()),
        },
        None => 1024,
    };
    let report_json = match flag_value(args, "--report") {
        None | Some("text") => false,
        Some("json") => true,
        Some(other) => return Err(format!("bad --report value '{other}' (text|json)")),
    };
    let trace_out = flag_value(args, "--trace-out");

    // `--report json` / `--trace-out` install a telemetry pipeline for the
    // duration of this sweep; without them every instrumentation site in the
    // stack stays a single relaxed atomic load (see anonrv-obs)
    let _obs = match (report_json, trace_out) {
        (false, None) => None,
        (_, Some(path)) => Some(
            obs::install(obs::ObsConfig::trace_file(path))
                .map_err(|e| format!("cannot create --trace-out file: {e}"))?,
        ),
        (true, None) => Some(
            obs::install(obs::ObsConfig::metrics_only())
                .map_err(|e| format!("cannot install telemetry: {e}"))?,
        ),
    };

    let program = anonrv_sim::SweepWalker { seed };
    // the canonical walker key: benchmark-recorded artifacts warm CLI
    // sweeps of the same seed, and vice versa
    let program_key = program.program_key();
    let n = g.num_nodes();

    // one session drives every mode: plan → cache-probe → execute →
    // record → broadcast, all inside `anonrv_store::SweepSession`
    let mut session =
        SweepSession::new(store.as_ref(), &g, &program, &program_key, EngineConfig::batch(horizon));
    let plan = SweepPlan::from_orbits(session.orbits().clone(), deltas.clone(), horizon);
    let classes = plan.orbits().num_pair_classes();
    let mut out = format!(
        "graph: {n} nodes, {} edges (hash {:032x})\nplan: {} ordered pairs -> {classes} classes \
         ({:.1}x), {} delays, horizon {horizon}\n",
        g.num_edges(),
        g.canonical_hash(),
        n * n,
        plan.orbits().compression(),
        deltas.len(),
    );

    // Assemble one `anonrv.report/v1` object: the shared prefix (schema,
    // command, graph, plan, mode), the caller's mode-specific members, then
    // the session stats and the full metrics snapshot.  The shape contract
    // lives in `anonrv_obs::report::validate_report`, which `report_check`
    // and CI enforce.
    let round_json =
        |r: Round| u64::try_from(r).map(Value::Uint).unwrap_or_else(|_| Value::Str(r.to_string()));
    let finish_json =
        |mode: &str, extra: Vec<(String, Value)>, stats: &anonrv_store::SessionStats| -> String {
            let mut members: Vec<(String, Value)> = vec![
                ("schema".into(), Value::from(obs::report::REPORT_SCHEMA)),
                ("command".into(), Value::from("sweep")),
                (
                    "graph".into(),
                    obs::json::obj([
                        ("spec", Value::from(spec_arg.as_str())),
                        ("nodes", Value::from(n)),
                        ("edges", Value::from(g.num_edges())),
                        ("hash", Value::from(format!("{:032x}", g.canonical_hash()))),
                    ]),
                ),
                (
                    "plan".into(),
                    obs::json::obj([
                        ("ordered_pairs", Value::from(n * n)),
                        ("classes", Value::from(classes)),
                        ("compression", Value::from(plan.orbits().compression())),
                        ("deltas", Value::Arr(deltas.iter().map(|&d| round_json(d)).collect())),
                        ("horizon", round_json(horizon)),
                    ]),
                ),
                ("mode".into(), Value::from(mode)),
            ];
            members.extend(extra);
            members.push((
                "session".into(),
                obs::json::obj([
                    ("orbits", Value::from(stats.orbits.to_string())),
                    ("timeline_hits", Value::from(stats.timeline_hits)),
                    ("timeline_prefix_hits", Value::from(stats.timeline_prefix_hits)),
                    ("timeline_misses", Value::from(stats.timeline_misses)),
                    ("executed", Value::from(stats.executed)),
                    ("answered", Value::from(stats.answered)),
                ]),
            ));
            members.push(("metrics".into(), obs::snapshot().to_json()));
            Value::Obj(members).to_string()
        };

    if stream {
        // -- streamed mode: the implicit orbit planner, nothing materialised
        if merge || supervised || shards.is_some() || shard_index.is_some() {
            return Err("--stream is a single-process mode; drop --shards/--shard-index/--merge/\
                 --supervised"
                .to_string());
        }
        let summary = session.run_streamed(&plan, chunk)?;
        let stats = session.stats();
        if report_json {
            return Ok(finish_json(
                "streamed",
                vec![
                    ("meetings".into(), Value::from(summary.met_total)),
                    ("member_stics".into(), Value::from(summary.answered)),
                    (
                        "table_fingerprint".into(),
                        Value::from(format!("{:016x}", summary.fingerprint)),
                    ),
                    (
                        "stream".into(),
                        obs::json::obj([
                            ("classes", Value::from(summary.classes)),
                            ("entries", Value::from(summary.entries)),
                            ("chunk_classes", Value::from(chunk)),
                        ]),
                    ),
                ],
                &stats,
            ));
        }
        out.push_str(&format!(
            "mode: streamed sweep ({} classes in chunks of {chunk}; outcome table never \
             materialised)\ncache: {}\nmeetings: {} of {} member STICs\noutcome table \
             fingerprint: {:016x}",
            summary.classes,
            if store.is_some() {
                "timelines persisted (streamed tables are fingerprinted, not stored)"
            } else {
                "disabled (pass --cache-dir to persist the representative timeline)"
            },
            summary.met_total,
            summary.answered,
            summary.fingerprint,
        ));
        return Ok(out);
    }

    if supervised {
        // -- supervised mode: run every slice with retry/backoff, then merge
        if merge {
            return Err("--supervised already merges; drop --merge".to_string());
        }
        if shard_index.is_some() {
            return Err("--supervised runs every shard; drop --shard-index".to_string());
        }
        if store.is_none() {
            return Err(
                "--supervised requires --cache-dir (shard artifacts meet there)".to_string()
            );
        }
        let shards = shards.ok_or("--supervised requires --shards")?;
        let (outcomes, report) =
            session.run_sharded_supervised(&plan, shards, SuperviseConfig::default())?;
        if report_json {
            // per-attempt rows: the same `ShardAttempt` records the text
            // mode prints and the `supervisor.attempt` trace events carry
            let rows: Vec<Value> = report
                .attempts_log
                .iter()
                .map(|r| {
                    obs::json::obj([
                        ("shard", Value::from(r.shard)),
                        ("attempt", Value::from(r.attempt)),
                        ("backoff_ms", Value::from(r.backoff_ms)),
                        ("elapsed_ms", Value::from(r.elapsed_ms)),
                        ("timed_out", Value::from(r.timed_out)),
                        ("outcome", Value::from(r.outcome())),
                        ("error", Value::from(r.error.clone())),
                    ])
                })
                .collect();
            let supervisor = obs::json::obj([
                ("shards", Value::from(report.shards)),
                ("attempts", Value::from(report.attempts)),
                ("retried", Value::Arr(report.retried.iter().map(|&i| Value::from(i)).collect())),
                ("timed_out", Value::from(report.timed_out)),
                ("already_present", Value::from(report.already_present)),
                ("rows", Value::Arr(rows)),
            ]);
            let stats = session.stats();
            return Ok(finish_json(
                "supervised",
                vec![
                    ("meetings".into(), Value::from(outcomes.met_total())),
                    ("member_stics".into(), Value::from(plan.num_member_queries())),
                    (
                        "table_fingerprint".into(),
                        Value::from(format!("{:016x}", table_fingerprint(outcomes.table()))),
                    ),
                    ("supervisor".into(), supervisor),
                ],
                &stats,
            ));
        }
        out.push_str(&format!(
            "mode: supervised sweep over {shards} shard(s)\nsupervisor: {} attempt(s), {} \
             shard(s) retried, {} timed out, {} already present\n",
            report.attempts,
            report.retried.len(),
            report.timed_out,
            report.already_present,
        ));
        for r in &report.attempts_log {
            out.push_str(&format!(
                "  shard {} attempt {}: {} ({} ms elapsed, {} ms backoff){}\n",
                r.shard,
                r.attempt,
                r.outcome(),
                r.elapsed_ms,
                r.backoff_ms,
                match &r.error {
                    Some(e) => format!(" — {e}"),
                    None => String::new(),
                },
            ));
        }
        out.push_str(&format!(
            "meetings: {} of {} member STICs\noutcome table fingerprint: {:016x}\nmerged \
             outcome table persisted; subsequent `anonrv sweep` runs are warm",
            outcomes.met_total(),
            plan.num_member_queries(),
            table_fingerprint(outcomes.table()),
        ));
        return Ok(out);
    }

    if merge {
        // -- merge mode: reassemble partial shard artifacts -----------------
        if store.is_none() {
            return Err("--merge requires --cache-dir".to_string());
        }
        let shards = shards.ok_or("--merge requires --shards")?;
        let outcomes = session.merge_shards(&plan, shards)?;
        if report_json {
            let stats = session.stats();
            return Ok(finish_json(
                "merge",
                vec![
                    ("shards".into(), Value::from(shards)),
                    ("meetings".into(), Value::from(outcomes.met_total())),
                    ("member_stics".into(), Value::from(plan.num_member_queries())),
                    (
                        "table_fingerprint".into(),
                        Value::from(format!("{:016x}", table_fingerprint(outcomes.table()))),
                    ),
                ],
                &stats,
            ));
        }
        out.push_str(&format!(
            "mode: merge of {shards} shard(s)\nmeetings: {} of {} member STICs\noutcome table \
             fingerprint: {:016x}\nmerged outcome table persisted; subsequent `anonrv sweep` \
             runs are warm",
            outcomes.met_total(),
            plan.num_member_queries(),
            table_fingerprint(outcomes.table()),
        ));
        return Ok(out);
    }

    if let Some(shards) = shards {
        // -- shard mode: execute one slice ----------------------------------
        if store.is_none() {
            return Err("--shards requires --cache-dir (shards meet there)".to_string());
        }
        let index = shard_index.ok_or("--shards requires --shard-index")?;
        let spec = ShardSpec::new(shards, index)?;
        let part = session.run_shard(&plan, spec)?;
        let stats = session.stats();
        if report_json {
            // a shard report fingerprints (and counts meetings over) its
            // own partial table — the slice is the deliverable here
            let met = part.table.iter().filter(|o| o.met()).count() * plan.orbits().class_size();
            let members = part.classes.len() * plan.deltas().len() * plan.orbits().class_size();
            return Ok(finish_json(
                "shard",
                vec![
                    ("meetings".into(), Value::from(met)),
                    ("member_stics".into(), Value::from(members)),
                    (
                        "table_fingerprint".into(),
                        Value::from(format!("{:016x}", table_fingerprint(&part.table))),
                    ),
                    (
                        "shard".into(),
                        obs::json::obj([
                            ("index", Value::from(spec.index())),
                            ("shards", Value::from(spec.shards())),
                            ("classes_executed", Value::from(part.classes.len())),
                        ]),
                    ),
                ],
                &stats,
            ));
        }
        out.push_str(&format!(
            "mode: shard {spec}\nclasses executed: {} of {classes}\ncache: orbits {}, \
             timelines {}\nshard artifact persisted; run every shard, then `--merge --shards \
             {shards}`",
            part.classes.len(),
            stats.orbits,
            timelines_phrase(&stats),
        ));
        return Ok(out);
    }
    if shard_index.is_some() {
        return Err("--shard-index requires --shards".to_string());
    }

    // -- full mode: one process executes (or warm-loads) the whole plan -----
    let (outcomes, provenance) = session.run_plan(&plan)?;
    let stats = session.stats();
    if report_json {
        let prov = match provenance {
            OutcomeProvenance::Cold => obs::json::obj([("kind", Value::from("cold"))]),
            OutcomeProvenance::WarmExact => obs::json::obj([("kind", Value::from("warm_exact"))]),
            OutcomeProvenance::WarmPrefix { recorded, remerged } => obs::json::obj([
                ("kind", Value::from("warm_prefix")),
                ("recorded", round_json(recorded)),
                ("remerged", Value::from(remerged)),
            ]),
            OutcomeProvenance::WarmExtend { recorded, extended } => obs::json::obj([
                ("kind", Value::from("warm_extend")),
                ("recorded", round_json(recorded)),
                ("extended", Value::from(extended)),
            ]),
            OutcomeProvenance::Symbolic { detected } => obs::json::obj([
                ("kind", Value::from("symbolic")),
                ("detected", Value::from(detected)),
                ("unrolled_rounds", Value::from(0usize)),
            ]),
        };
        return Ok(finish_json(
            "full",
            vec![
                ("cached".into(), Value::from(store.is_some())),
                ("provenance".into(), prov),
                ("meetings".into(), Value::from(outcomes.met_total())),
                ("member_stics".into(), Value::from(plan.num_member_queries())),
                (
                    "table_fingerprint".into(),
                    Value::from(format!("{:016x}", table_fingerprint(outcomes.table()))),
                ),
            ],
            &stats,
        ));
    }
    let cache_line = match (&store, provenance) {
        // the symbolic line prints with or without a store: the closed-form
        // cycle merges run in-process either way, and the horizon being
        // beyond the unroll cap is the headline
        (_, OutcomeProvenance::Symbolic { detected }) => format!(
            "outcomes symbolic ({detected} of {n} cycle structures detected, 0 unrolled rounds{})",
            if store.is_some() { "; timelines persisted" } else { "" },
        ),
        (None, _) => "disabled (pass --cache-dir to make sweeps resumable)".to_string(),
        (Some(_), OutcomeProvenance::WarmExact) => {
            "outcomes warm (planning, trajectory recording and merging all skipped)".to_string()
        }
        (Some(_), OutcomeProvenance::WarmPrefix { recorded, remerged }) => format!(
            "outcomes warm-prefix (recorded at horizon {recorded}, served at {horizon}: \
             {remerged} of {} representative merges re-run from warm timelines, {} program \
             executions)",
            plan.num_representative_queries(),
            stats.timeline_misses,
        ),
        (Some(_), OutcomeProvenance::WarmExtend { recorded, extended }) => format!(
            "outcomes warm-extend (recorded at horizon {recorded}, served at {horizon}: \
             {extended} of {} representative merges resumed at the recorded horizon)",
            plan.num_representative_queries(),
        ),
        (Some(_), OutcomeProvenance::Cold) => format!(
            "orbits {}, timelines {}, outcomes cold (persisted)",
            stats.orbits,
            timelines_phrase(&stats),
        ),
    };
    out.push_str(&format!(
        "mode: full sweep\ncache: {cache_line}\nmeetings: {} of {} member STICs\noutcome table \
         fingerprint: {:016x}",
        outcomes.met_total(),
        plan.num_member_queries(),
        table_fingerprint(outcomes.table()),
    ));
    Ok(out)
}

/// Wrap one cache action's payload as an `anonrv.report/v1` object
/// (`command` is `cache-stats` / `cache-gc` / `cache-fsck`; the payload
/// sits under the action-named key the validator requires).
fn cache_report_json(action: &str, dir: &str, body: anonrv_obs::json::Value) -> String {
    use anonrv_obs::json::Value;
    Value::Obj(vec![
        ("schema".into(), Value::from(anonrv_obs::report::REPORT_SCHEMA)),
        ("command".into(), Value::from(format!("cache-{action}"))),
        ("dir".into(), Value::from(dir)),
        (action.into(), body),
    ])
    .to_string()
}

fn cmd_cache(args: &[String]) -> Result<String, String> {
    use anonrv_obs::json::{obj, Value};
    use anonrv_store::Store;

    let dir = args.first().ok_or("missing <dir>")?;
    let action = args.get(1).map(String::as_str).ok_or("missing action (stats|gc|fsck)")?;
    let json_out = args.iter().any(|a| a == "--json");
    let store = Store::open(dir).map_err(|e| format!("cannot open cache dir: {e}"))?;
    match action {
        "stats" => {
            let s = store.stats().map_err(|e| format!("cannot survey cache dir: {e}"))?;
            if json_out {
                let kind = |k: anonrv_store::KindStats| {
                    obj([("files", Value::from(k.files)), ("bytes", Value::from(k.bytes))])
                };
                let horizons: Vec<Value> = s
                    .recorded_horizons
                    .iter()
                    .map(|&h| {
                        u64::try_from(h)
                            .map(Value::Uint)
                            .unwrap_or_else(|_| Value::Str(h.to_string()))
                    })
                    .collect();
                let body = obj([
                    ("orbits", kind(s.orbits)),
                    ("timelines", kind(s.timelines)),
                    ("symbolic", kind(s.symbolic)),
                    ("outcomes", kind(s.outcomes)),
                    ("shards", kind(s.shards)),
                    ("invalid", kind(s.invalid)),
                    ("quarantined", kind(s.quarantined)),
                    ("other", kind(s.other)),
                    ("total_bytes", Value::from(s.total_bytes())),
                    ("timeline_entries", Value::from(s.timeline_entries)),
                    ("symbolic_entries", Value::from(s.symbolic_entries)),
                    ("recorded_horizons", Value::Arr(horizons)),
                ]);
                return Ok(cache_report_json("stats", dir, body));
            }
            let row = |kind: &str, k: anonrv_store::KindStats| {
                format!("  {kind:<10} {:>6} file(s)  {:>12} bytes\n", k.files, k.bytes)
            };
            let mut out = format!("cache dir: {dir}\n");
            out.push_str(&row("orbits", s.orbits));
            out.push_str(&row("timelines", s.timelines));
            out.push_str(&row("symbolic", s.symbolic));
            out.push_str(&row("outcomes", s.outcomes));
            out.push_str(&row("shards", s.shards));
            out.push_str(&row("invalid", s.invalid));
            out.push_str(&row("quarantined", s.quarantined));
            out.push_str(&row("other", s.other));
            out.push_str(&format!(
                "total: {} bytes\ntimeline entries: {}\nsymbolic entries: {}\nrecorded horizons: {}",
                s.total_bytes(),
                s.timeline_entries,
                s.symbolic_entries,
                if s.recorded_horizons.is_empty() {
                    "(none)".to_string()
                } else {
                    s.recorded_horizons.iter().map(|h| h.to_string()).collect::<Vec<_>>().join(", ")
                },
            ));
            Ok(out)
        }
        "gc" => {
            let r = store.gc().map_err(|e| format!("cannot compact cache dir: {e}"))?;
            if json_out {
                let body = obj([
                    ("removed_files", Value::from(r.removed_files)),
                    ("reclaimed_bytes", Value::from(r.reclaimed_bytes)),
                    ("corrupt", Value::from(r.corrupt)),
                    ("superseded", Value::from(r.superseded)),
                    ("temp", Value::from(r.temp)),
                    ("locks", Value::from(r.locks)),
                ]);
                return Ok(cache_report_json("gc", dir, body));
            }
            Ok(format!(
                "cache dir: {dir}\nremoved {} file(s), reclaimed {} bytes\n  corrupt/stale: {}\n  \
                 superseded shard partials: {}\n  orphaned temp files: {}\n  stale lock files: {}",
                r.removed_files, r.reclaimed_bytes, r.corrupt, r.superseded, r.temp, r.locks,
            ))
        }
        "fsck" => {
            let repair = args.iter().any(|a| a == "--repair");
            let r = store.fsck(repair).map_err(|e| format!("cannot fsck cache dir: {e}"))?;
            if json_out {
                let entries: Vec<Value> = r
                    .entries
                    .iter()
                    .map(|e| {
                        obj([
                            ("name", Value::from(e.name.as_str())),
                            ("bytes", Value::from(e.bytes)),
                            ("verdict", Value::from(e.verdict.to_string())),
                            ("quarantined", Value::from(e.quarantined)),
                        ])
                    })
                    .collect();
                let body = obj([
                    ("repair", Value::from(repair)),
                    ("checked", Value::from(r.entries.len())),
                    ("valid", Value::from(r.valid)),
                    ("stale", Value::from(r.stale)),
                    ("corrupt", Value::from(r.corrupt)),
                    ("quarantined", Value::from(r.quarantined)),
                    ("entries", Value::Arr(entries)),
                ]);
                return Ok(cache_report_json("fsck", dir, body));
            }
            let mut out = format!("cache dir: {dir}\n");
            if r.entries.is_empty() {
                out.push_str("  (no artifacts)\n");
            }
            for e in &r.entries {
                out.push_str(&format!(
                    "  {:<28} {:>10} bytes  {}{}\n",
                    e.name,
                    e.bytes,
                    e.verdict,
                    if e.quarantined { "  -> quarantined" } else { "" },
                ));
            }
            out.push_str(&format!(
                "checked {} artifact(s): {} valid, {} stale, {} corrupt, {} quarantined",
                r.entries.len(),
                r.valid,
                r.stale,
                r.corrupt,
                r.quarantined,
            ));
            Ok(out)
        }
        other => Err(format!("unknown cache action '{other}' (stats|gc|fsck)")),
    }
}

fn cmd_figure1(args: &[String]) -> Result<String, String> {
    let h: usize = match args.first() {
        Some(arg) => arg.parse().map_err(|_| "h must be an integer >= 2")?,
        None => 2,
    };
    let q = qh_hat(h).map_err(|e| e.to_string())?;
    Ok(figure1_text(&q))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|s| s.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn graph_specs_parse() {
        assert_eq!(parse_graph("ring:6").unwrap().num_nodes(), 6);
        assert_eq!(parse_graph("torus:3x4").unwrap().num_nodes(), 12);
        assert_eq!(parse_graph("lollipop:4x2").unwrap().num_nodes(), 6);
        assert_eq!(parse_graph("double-tree:2x2").unwrap().num_nodes(), 14);
        assert_eq!(parse_graph("qhat:2").unwrap().num_nodes(), 17);
        assert_eq!(parse_graph("circulant:12x1x3").unwrap().num_nodes(), 12);
        assert_eq!(parse_graph("circulant:12x1x3").unwrap().degree(0), 4);
        assert!(parse_graph("ring").is_err());
        assert!(parse_graph("ring:abc").is_err());
        assert!(parse_graph("torus:3").is_err());
        assert!(parse_graph("circulant:12").is_err());
        assert!(parse_graph("circulant:12x2x4").is_err());
        assert!(parse_graph("mystery:3").is_err());
    }

    #[test]
    fn shrink_command_reports_the_double_tree_example() {
        let out = run(&argv(&["shrink", "double-tree:2x2", "0", "7"])).unwrap();
        assert!(out.contains("Shrink(u, v)"), "{out}");
    }

    #[test]
    fn feasible_command_matches_corollary_3_1() {
        let feasible = run(&argv(&["feasible", "ring:6", "0", "2", "2"])).unwrap();
        assert!(feasible.contains("FEASIBLE"), "{feasible}");
        let infeasible = run(&argv(&["feasible", "ring:6", "0", "3", "1"])).unwrap();
        assert!(infeasible.contains("INFEASIBLE"), "{infeasible}");
    }

    #[test]
    fn simulate_command_achieves_rendezvous_on_a_feasible_stic() {
        let out = run(&argv(&["simulate", "ring:4", "0", "1", "1"])).unwrap();
        assert!(out.contains("RENDEZVOUS"), "{out}");
        let asymm =
            run(&argv(&["simulate", "lollipop:3x2", "0", "4", "1", "--algo", "asymm"])).unwrap();
        assert!(asymm.contains("RENDEZVOUS"), "{asymm}");
    }

    #[test]
    fn orbits_and_figure1_render() {
        let orbits = run(&argv(&["orbits", "ring:5"])).unwrap();
        assert!(orbits.contains("all nodes are pairwise symmetric"), "{orbits}");
        // 5 rotations collapse the 25 ordered pairs to 5 orbits
        assert!(
            orbits.contains("pair orbits (ordered pairs): 5 of 25 (compression 5.0x)"),
            "{orbits}"
        );
        let rigid = run(&argv(&["orbits", "lollipop:3x2"])).unwrap();
        assert!(rigid.contains("automorphism group order: 1"), "{rigid}");
        let fig = run(&argv(&["figure1"])).unwrap();
        assert!(fig.contains("17 nodes"), "{fig}");
    }

    #[test]
    fn orbits_reports_the_implicit_group_descriptor() {
        // stamped families answer from the closed-form group
        let ring = run(&argv(&["orbits", "ring:5"])).unwrap();
        assert!(ring.contains("symmetry group: cyclic (implicit, closed form)"), "{ring}");
        assert!(ring.contains("generators: rotation v -> v+1 (mod 5)"), "{ring}");
        let torus = run(&argv(&["orbits", "torus:3x4"])).unwrap();
        assert!(torus.contains("symmetry group: torus (implicit, closed form)"), "{torus}");
        assert!(torus.contains("automorphism group order: 12"), "{torus}");
        // asymmetric graphs fall back to the BFS enumeration
        let rigid = run(&argv(&["orbits", "lollipop:3x2"])).unwrap();
        assert!(rigid.contains("symmetry group: explicit (BFS-enumerated)"), "{rigid}");

        // --json emits a validating anonrv.report/v1 object
        let report = run(&argv(&["orbits", "torus:3x4", "--json"])).unwrap();
        let v = anonrv_obs::json::parse(&report).unwrap();
        let summary = anonrv_obs::report::validate_report(&v).unwrap();
        assert_eq!(summary.command, "orbits");
        let orbits = v.get("orbits").unwrap();
        assert_eq!(orbits.get("family").unwrap().as_str(), Some("torus"));
        assert_eq!(orbits.get("group_order").unwrap().as_u64(), Some(12));
        assert_eq!(orbits.get("pair_classes").unwrap().as_u64(), Some(12));
        assert_eq!(orbits.get("node_classes").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn streamed_sweep_matches_the_full_run_bit_for_bit() {
        let base = ["sweep", "torus:3x4", "--deltas", "3", "--horizon", "64"];
        let line = |s: &str, prefix: &str| {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("{prefix} in {s}"))
                .to_string()
        };
        let full = run(&argv(&base)).unwrap();

        // streaming never materialises the table, yet fingerprints and
        // meeting counts match the materialised run exactly
        let mut streamed_args: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        streamed_args.extend(["--stream".to_string(), "--chunk".to_string(), "2".to_string()]);
        let streamed = run(&streamed_args).unwrap();
        assert!(streamed.contains("mode: streamed sweep"), "{streamed}");
        assert_eq!(
            line(&streamed, "outcome table fingerprint:"),
            line(&full, "outcome table fingerprint:")
        );
        assert_eq!(line(&streamed, "meetings:"), line(&full, "meetings:"));

        // the JSON report validates under mode `streamed` with the same
        // fingerprint
        let mut json_args = streamed_args.clone();
        json_args.extend(["--report".to_string(), "json".to_string()]);
        let report = run(&json_args).unwrap();
        let v = anonrv_obs::json::parse(&report).unwrap();
        let summary = anonrv_obs::report::validate_report(&v).unwrap();
        assert_eq!(summary.mode.as_deref(), Some("streamed"));
        let fp = summary.table_fingerprint.unwrap();
        assert!(full.contains(&format!("outcome table fingerprint: {fp}")), "{full}");

        // flag validation: streaming is single-process and needs an
        // implicit group
        let mut with_shards = streamed_args.clone();
        with_shards.extend(["--shards".to_string(), "2".to_string()]);
        assert!(run(&with_shards).is_err());
        let explicit = run(&argv(&["sweep", "lollipop:3x2", "--stream"]));
        assert!(explicit.unwrap_err().contains("implicit"), "explicit partitions cannot stream");
        assert!(run(&argv(&["sweep", "ring:6", "--stream", "--chunk", "0"])).is_err());
    }

    #[test]
    fn sweep_runs_cold_warm_and_sharded_with_identical_meeting_counts() {
        let dir =
            std::env::temp_dir().join(format!("anonrv-cli-sweep-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = dir.to_string_lossy().to_string();
        let base = ["sweep", "torus:3x4", "--deltas", "3", "--horizon", "64"];

        // storeless run (the reference)
        let plain = run(&argv(&base)).unwrap();
        let meetings_line = |s: &str| {
            s.lines().find(|l| l.starts_with("meetings:")).expect("meetings line").to_string()
        };
        let reference = meetings_line(&plain);
        assert!(plain.contains("144 ordered pairs -> 12 classes"), "{plain}");

        // cold store-backed run, then a warm one that skips everything
        let mut with_cache: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        with_cache.extend(["--cache-dir".to_string(), cache.clone()]);
        let cold = run(&with_cache).unwrap();
        assert!(cold.contains("outcomes cold (persisted)"), "{cold}");
        assert_eq!(meetings_line(&cold), reference);
        let warm = run(&with_cache).unwrap();
        assert!(warm.contains("outcomes warm"), "{warm}");
        assert_eq!(meetings_line(&warm), reference);

        // sharded execution into a fresh cache + deterministic merge
        let dir2 =
            std::env::temp_dir().join(format!("anonrv-cli-shard-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir2).ok();
        let cache2 = dir2.to_string_lossy().to_string();
        for index in 0..2 {
            let mut argv: Vec<String> = base.iter().map(|s| s.to_string()).collect();
            argv.extend([
                "--cache-dir".to_string(),
                cache2.clone(),
                "--shards".to_string(),
                "2".to_string(),
                "--shard-index".to_string(),
                index.to_string(),
            ]);
            let shard = run(&argv).unwrap();
            assert!(shard.contains(&format!("mode: shard {index}/2")), "{shard}");
        }
        let mut argv: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        argv.extend([
            "--cache-dir".to_string(),
            cache2.clone(),
            "--shards".to_string(),
            "2".to_string(),
            "--merge".to_string(),
        ]);
        let merged = run(&argv).unwrap();
        assert!(merged.contains("mode: merge of 2 shard(s)"), "{merged}");
        assert_eq!(meetings_line(&merged), reference, "sharded merge must be bit-identical");

        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn sweep_at_a_smaller_horizon_is_a_prefix_hit_bit_identical_to_a_cold_run() {
        let dir =
            std::env::temp_dir().join(format!("anonrv-cli-prefix-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = dir.to_string_lossy().to_string();
        let line = |s: &str, prefix: &str| {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("{prefix} in {s}"))
                .to_string()
        };

        // populate the cache at horizon 128 ...
        let long = run(&argv(&[
            "sweep",
            "torus:3x4",
            "--deltas",
            "3",
            "--horizon",
            "128",
            "--cache-dir",
            &cache,
        ]))
        .unwrap();
        assert!(long.contains("outcomes cold (persisted)"), "{long}");

        // ... then sweep at 48: prefix hit, zero program executions
        let short_args =
            ["sweep", "torus:3x4", "--deltas", "3", "--horizon", "48", "--cache-dir", &cache];
        let short = run(&argv(&short_args)).unwrap();
        assert!(short.contains("outcomes warm-prefix (recorded at horizon 128"), "{short}");
        assert!(short.contains("0 program executions"), "{short}");

        // bit-identical to a cold horizon-48 run (fingerprint + meetings)
        let cold = run(&argv(&["sweep", "torus:3x4", "--deltas", "3", "--horizon", "48"])).unwrap();
        assert_eq!(
            line(&short, "outcome table fingerprint:"),
            line(&cold, "outcome table fingerprint:"),
            "prefix-served table diverged from the cold run"
        );
        assert_eq!(line(&short, "meetings:"), line(&cold, "meetings:"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_subcommand_surveys_and_compacts_a_populated_directory() {
        let dir =
            std::env::temp_dir().join(format!("anonrv-cli-cache-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = dir.to_string_lossy().to_string();
        let base = ["sweep", "ring:8", "--deltas", "2", "--horizon", "32", "--cache-dir", &cache];

        // populate via a 2-shard run plus its merge (the merge supersedes
        // the partials), then plant one corrupt artifact
        for index in 0..2 {
            let mut argv_: Vec<String> = base.iter().map(|s| s.to_string()).collect();
            argv_.extend([
                "--shards".to_string(),
                "2".to_string(),
                "--shard-index".to_string(),
                index.to_string(),
            ]);
            run(&argv_).unwrap();
        }
        let mut argv_: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        argv_.extend(["--shards".to_string(), "2".to_string(), "--merge".to_string()]);
        run(&argv_).unwrap();
        std::fs::write(dir.join("outcomes-0000.anrv"), b"garbage").unwrap();

        let stats = run(&argv(&["cache", &cache, "stats"])).unwrap();
        assert!(stats.contains("orbits          1 file(s)"), "{stats}");
        assert!(stats.contains("timelines       1 file(s)"), "{stats}");
        assert!(stats.contains("outcomes        1 file(s)"), "{stats}");
        assert!(stats.contains("shards          2 file(s)"), "{stats}");
        assert!(stats.contains("invalid         1 file(s)"), "{stats}");
        assert!(stats.contains("recorded horizons: 32"), "{stats}");

        let gc = run(&argv(&["cache", &cache, "gc"])).unwrap();
        assert!(gc.contains("removed 3 file(s)"), "{gc}");
        assert!(gc.contains("corrupt/stale: 1"), "{gc}");
        assert!(gc.contains("superseded shard partials: 2"), "{gc}");

        // the survivors still serve a fully warm sweep
        let warm = run(&argv(&base)).unwrap();
        assert!(warm.contains("outcomes warm"), "{warm}");

        // argument validation
        assert!(run(&argv(&["cache", &cache])).is_err());
        assert!(run(&argv(&["cache", &cache, "defrag"])).is_err());
        assert!(run(&argv(&["cache"])).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn supervised_sweep_runs_every_shard_and_matches_the_plain_run() {
        let dir =
            std::env::temp_dir().join(format!("anonrv-cli-supervised-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = dir.to_string_lossy().to_string();
        let base = ["sweep", "torus:3x4", "--deltas", "3", "--horizon", "64"];
        let line = |s: &str, prefix: &str| {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("{prefix} in {s}"))
                .to_string()
        };

        // storeless run: the bit-identity reference
        let plain = run(&argv(&base)).unwrap();

        // one command executes all three slices and merges them
        let mut sup: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        sup.extend([
            "--cache-dir".to_string(),
            cache.clone(),
            "--shards".to_string(),
            "3".to_string(),
            "--supervised".to_string(),
        ]);
        let supervised = run(&sup).unwrap();
        assert!(supervised.contains("mode: supervised sweep over 3 shard(s)"), "{supervised}");
        assert!(supervised.contains("0 shard(s) retried"), "{supervised}");
        assert_eq!(line(&supervised, "meetings:"), line(&plain, "meetings:"));
        assert_eq!(
            line(&supervised, "outcome table fingerprint:"),
            line(&plain, "outcome table fingerprint:"),
            "supervised merge must be bit-identical to the plain run"
        );

        // the merged table persisted: a plain store-backed run is warm
        let mut warm: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        warm.extend(["--cache-dir".to_string(), cache.clone()]);
        let warm_out = run(&warm).unwrap();
        assert!(warm_out.contains("outcomes warm"), "{warm_out}");

        // flag validation: needs a store and a shard count, excludes the
        // single-slice and manual-merge flags
        assert!(run(&argv(&["sweep", "ring:6", "--shards", "2", "--supervised"])).is_err());
        let mut no_shards: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        no_shards.extend(["--cache-dir".to_string(), cache.clone(), "--supervised".to_string()]);
        assert!(run(&no_shards).is_err());
        let mut with_index = sup.clone();
        with_index.extend(["--shard-index".to_string(), "0".to_string()]);
        assert!(run(&with_index).is_err());
        let mut with_merge = sup.clone();
        with_merge.push("--merge".to_string());
        assert!(run(&with_merge).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_report_and_trace_validate_and_match_the_text_run() {
        let dir =
            std::env::temp_dir().join(format!("anonrv-cli-report-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let cache = dir.join("cache").to_string_lossy().to_string();
        let trace = dir.join("trace.jsonl").to_string_lossy().to_string();
        let base = ["sweep", "torus:3x4", "--deltas", "3", "--horizon", "64"];

        // the acceptance command: supervised sweep, JSON report, JSONL trace
        let mut sup: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        sup.extend([
            "--cache-dir".to_string(),
            cache.clone(),
            "--shards".to_string(),
            "2".to_string(),
            "--supervised".to_string(),
            "--report".to_string(),
            "json".to_string(),
            "--trace-out".to_string(),
            trace.clone(),
        ]);
        let report = run(&sup).unwrap();
        let v = anonrv_obs::json::parse(&report).unwrap();
        let summary = anonrv_obs::report::validate_report(&v).unwrap();
        assert_eq!(summary.command, "sweep");
        assert_eq!(summary.mode.as_deref(), Some("supervised"));
        assert!(summary.supervisor_rows >= 2, "one row per shard attempt");

        // the fingerprint matches a plain (storeless, text) run of the
        // same sweep bit for bit
        let plain = run(&argv(&base)).unwrap();
        let fp = summary.table_fingerprint.unwrap();
        assert!(plain.contains(&format!("outcome table fingerprint: {fp}")), "{plain}");

        // the trace validates: header first, well-formed nesting, and the
        // supervisor emitted its per-attempt events (other concurrent
        // tests may add theirs while the pipeline is installed, so >=)
        let content = std::fs::read_to_string(&trace).unwrap();
        let ts = anonrv_obs::report::validate_trace(&content).unwrap();
        assert!(ts.spans > 0, "spans reached the trace");
        assert!(ts.event_count("supervisor.attempt") >= summary.supervisor_rows as u64);

        // a warm full-mode report validates too, and carries provenance
        let mut warm: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        warm.extend([
            "--cache-dir".to_string(),
            cache.clone(),
            "--report".to_string(),
            "json".to_string(),
        ]);
        let warm_report = run(&warm).unwrap();
        let wv = anonrv_obs::json::parse(&warm_report).unwrap();
        let ws = anonrv_obs::report::validate_report(&wv).unwrap();
        assert_eq!(ws.mode.as_deref(), Some("full"));
        assert_eq!(ws.table_fingerprint.as_deref(), Some(fp.as_str()));
        assert_eq!(wv.get("provenance").unwrap().get("kind").unwrap().as_str(), Some("warm_exact"));

        // machine-readable cache reports validate against the same schema
        for action in ["stats", "gc", "fsck"] {
            let out = run(&argv(&["cache", &cache, action, "--json"])).unwrap();
            let cv = anonrv_obs::json::parse(&out).unwrap();
            let cs = anonrv_obs::report::validate_report(&cv).unwrap();
            assert_eq!(cs.command, format!("cache-{action}"));
        }

        // flag validation: an unknown --report value is rejected
        let mut bad: Vec<String> = base.iter().map(|s| s.to_string()).collect();
        bad.extend(["--report".to_string(), "xml".to_string()]);
        assert!(run(&bad).is_err());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsck_subcommand_verifies_and_repairs_a_populated_directory() {
        let dir = std::env::temp_dir().join(format!("anonrv-cli-fsck-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = dir.to_string_lossy().to_string();
        let base = ["sweep", "ring:8", "--deltas", "2", "--horizon", "32", "--cache-dir", &cache];
        run(&argv(&base)).unwrap();

        // a pristine cache: every artifact valid, nothing moved
        let clean = run(&argv(&["cache", &cache, "fsck"])).unwrap();
        assert!(clean.contains("0 corrupt"), "{clean}");
        assert!(!clean.contains("CORRUPT"), "{clean}");

        // flip one byte deep inside the largest artifact: the 64 KiB-prefix
        // survey can miss it, the full-checksum fsck must not
        let victim = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "anrv"))
            .max_by_key(|p| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
            .expect("an artifact to corrupt");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&victim, &bytes).unwrap();

        let found = run(&argv(&["cache", &cache, "fsck"])).unwrap();
        assert!(found.contains("1 corrupt"), "{found}");
        assert!(found.contains("CORRUPT"), "{found}");
        assert!(found.contains("0 quarantined"), "{found}");
        assert!(victim.exists(), "plain fsck must not move files");

        let repaired = run(&argv(&["cache", &cache, "fsck", "--repair"])).unwrap();
        assert!(repaired.contains("1 quarantined"), "{repaired}");
        assert!(repaired.contains("-> quarantined"), "{repaired}");
        assert!(!victim.exists(), "--repair moves the corrupt frame aside");

        // the quarantined frame surfaces in stats, and the cache still
        // serves: the damaged kind just recomputes
        let stats = run(&argv(&["cache", &cache, "stats"])).unwrap();
        assert!(
            stats.lines().any(|l| l.contains("quarantined") && l.contains("1 file(s)")),
            "{stats}"
        );
        run(&argv(&base)).unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_flag_combinations_are_validated() {
        assert!(run(&argv(&["sweep"])).is_err());
        assert!(run(&argv(&["sweep", "ring:6", "--deltas", "0"])).is_err());
        assert!(run(&argv(&["sweep", "ring:6", "--deltas", "x"])).is_err());
        assert!(run(&argv(&["sweep", "ring:6", "--horizon", "x"])).is_err());
        // sharding and merging need a shared cache directory
        assert!(run(&argv(&["sweep", "ring:6", "--shards", "2", "--shard-index", "0"])).is_err());
        assert!(run(&argv(&["sweep", "ring:6", "--merge", "--shards", "2"])).is_err());
        // a shard index without a shard count (and vice versa) is rejected
        assert!(run(&argv(&["sweep", "ring:6", "--shard-index", "0"])).is_err());
        let dir =
            std::env::temp_dir().join(format!("anonrv-cli-badshard-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = dir.to_string_lossy().to_string();
        assert!(run(&argv(&[
            "sweep",
            "ring:6",
            "--cache-dir",
            &cache,
            "--shards",
            "2",
            "--shard-index",
            "2"
        ]))
        .is_err());
        // merging before any shard ran reports the missing slice
        let err =
            run(&argv(&["sweep", "ring:6", "--cache-dir", &cache, "--shards", "2", "--merge"]))
                .unwrap_err();
        assert!(err.contains("missing or invalid"), "{err}");
        // an explicit delta list is accepted and normalised
        assert_eq!(parse_deltas("3,1,1").unwrap(), vec![1, 3]);
        assert_eq!(parse_deltas("4").unwrap(), vec![0, 1, 2, 3]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run(&argv(&["simulate", "ring:4", "0", "9", "1"])).is_err());
        assert!(run(&argv(&["unknown"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&argv(&["simulate", "ring:4", "0", "1", "1", "--algo", "nope"])).is_err());
        assert!(run(&argv(&["help"])).is_ok());
    }
}
