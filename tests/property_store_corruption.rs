//! Property test of the store's **corruption degradation contract**: flip
//! one random bit at a random offset in a random on-disk artifact, and
//! every load path must degrade to recompute-and-overwrite — never serve
//! wrong data, never panic.  The end-to-end form of the guarantee: a sweep
//! over the damaged cache produces a table bit-identical to the undamaged
//! run, and afterwards the cache has healed back to fully warm.

use proptest::prelude::*;

use anonrv::graph::generators::oriented_ring;
use anonrv::plan::{PairOrbits, SweepPlan};
use anonrv::sim::{EngineConfig, SweepWalker};
use anonrv::store::{OutcomeProvenance, Store, SweepSession};

const KEY: &str = "prop-walker-5eed";

/// Unique, self-deleting scratch directory per test case.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "anonrv-prop-corruption-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn a_flipped_bit_anywhere_degrades_to_recompute_never_wrong_data(
        which in 0u64..1_000,
        offset in 0u64..1_000_000,
        bit in 0u32..8,
    ) {
        let dir = TempDir::new("byteflip");
        let store = Store::open(&dir.0).unwrap();
        let g = oriented_ring(6).unwrap();
        let program = SweepWalker { seed: 0x5EED };

        // populate: orbits, timelines and an outcome table
        let mut seed_session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(16));
        let plan = SweepPlan::from_orbits(seed_session.orbits().clone(), vec![0, 1], 16);
        let (seeded, _) = seed_session.run_plan(&plan).unwrap();
        let reference = seeded.table().to_vec();

        // pick a random artifact and flip one random bit at a random offset
        let mut artifacts: Vec<std::path::PathBuf> = std::fs::read_dir(&dir.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "anrv"))
            .collect();
        artifacts.sort();
        prop_assert!(!artifacts.is_empty());
        let victim = &artifacts[(which as usize) % artifacts.len()];
        let mut bytes = std::fs::read(victim).unwrap();
        let at = (offset as usize) % bytes.len();
        bytes[at] ^= 1 << bit;
        std::fs::write(victim, &bytes).unwrap();

        // a direct load of the damaged kind is a miss or the truth — a
        // single flipped bit can never pass the end-to-end checksum
        if let Some(orbits) = store.load_orbits(&g) {
            prop_assert_eq!(orbits, PairOrbits::compute(&g));
        }

        // end to end: the sweep recomputes whatever the flip destroyed and
        // serves a table bit-identical to the undamaged run
        let mut session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(16));
        let plan = SweepPlan::from_orbits(session.orbits().clone(), vec![0, 1], 16);
        let (served, _) = session.run_plan(&plan).unwrap();
        prop_assert_eq!(served.table(), reference.as_slice());

        // and it healed in passing: the next session is fully warm
        let mut warm =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(16));
        let (again, prov) = warm.run_plan(&plan).unwrap();
        prop_assert_eq!(again.table(), reference.as_slice());
        prop_assert!(matches!(prov, OutcomeProvenance::WarmExact), "{:?}", prov);
    }
}
