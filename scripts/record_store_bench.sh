#!/usr/bin/env bash
# Record the persistent plan-cache perf numbers as BENCH_store.json (repo
# root): the exhaustive sweep workload (all (u, v) pairs x delta in {0..4}
# on oriented_torus(64, 64), 83.9M member STICs) in four temperatures, all
# through the SweepSession pipeline — cold (empty cache), warm timelines
# (planning + trajectory recording skipped, merges re-run), warm outcomes
# (exact hit: everything skipped) and warm prefix hit (only a 2x-horizon
# recording on disk; served by prefix truncation + warm re-merges, zero
# program executions).  The agent is the deliberately expensive walker
# (a hash-mix burn per action), so trajectory recording dominates the cold
# run and the warm ratios measure the gap a real algorithm would see.  The
# binary also asserts that a 2-shard execute + merge is bit-identical to
# the unsharded planned sweep, and that the prefix-served table is
# bit-identical to the cold one, before timing.
#
# Telemetry (anonrv-obs) contributes two extra sections: phase_seconds
# breaks the seeding cold run into plan/probe/execute/record/persist from
# the session's span histograms, and telemetry_overhead_pct re-times the
# warm-outcomes run with the metrics pipeline installed to bound the
# instrumentation cost (every other timed number runs with telemetry off).
#
# Usage: scripts/record_store_bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."
OUT="${1:-BENCH_store.json}"
cargo run --release -p anonrv-bench --bin store_timing -- "$OUT"
