//! The single sweep orchestrator every front-end drives.
//!
//! Before this module, the plan → cache-probe → execute → record →
//! broadcast pipeline was hand-assembled three times — in the CLI `sweep`
//! command, in the experiment runner, and in the shard executor — and the
//! three copies drifted apart in what they probed, what they persisted and
//! what they reported.  A [`SweepSession`] owns the whole flow once:
//!
//! ```text
//!   plan        orbits: store probe (verified load) or compute, save back
//!   cache-probe outcome table: exact hit / prefix hit / extend hit / miss;
//!               trajectory timelines: preload (served as-is; the merge
//!               kernels clip at each query's horizon) on first use
//!   execute     only what the probes left: representative merges (and, cold,
//!               the representative recordings)
//!   record      timelines + outcome tables persisted back, superseding
//!               shorter recordings in place
//!   broadcast   PlannedOutcomes serve any member STIC bit-identically
//!   report      SessionStats → the experiment tables' compression notes
//! ```
//!
//! Shard slicing is pluggable rather than a separate pipeline:
//! [`SweepSession::run_shard`] executes one [`ShardSpec`] slice of the same
//! plan, and [`SweepSession::merge_shards`] reassembles the partials — both
//! over the same probe/record machinery as the full
//! [`SweepSession::run_plan`].
//!
//! A session without a store ([`SweepSession::in_memory`]) is the
//! experiments' in-process mode: same pipeline, no persistence.
//!
//! ## Horizon genericity
//!
//! The store records horizons inside its frames, not in its keys, so a
//! session asking for horizon `h` is served by any recording at `H >= h`:
//! timelines preload **as-is** (the merge kernels clip at each query's
//! horizon) and outcome tables truncate through
//! [`PlannedOutcomes::truncate`] — both exact, because `Stop` propagation
//! makes the `h`-run a bit-identical prefix of the `H`-run.  A prefix
//! outcome hit re-runs only the merges the prefix alone cannot determine,
//! through warm timelines: **zero program executions**.  The opposite
//! direction is served too: a table recorded at `H < h` is **extended** up
//! ([`anonrv_plan::PlannedSweep::extend_table`]) — met entries are final by
//! stop-propagation and cost O(1), only the unmet ones resume their merge
//! at the recorded horizon.

use std::cell::Cell;
use std::time::{Duration, Instant};

use anonrv_graph::PortGraph;
use anonrv_obs as obs;
use anonrv_plan::{PairOrbits, PlannedOutcomes, PlannedSweep, SweepPlan};
use anonrv_sim::{AgentProgram, EngineConfig, Round, SimOutcome, Stic, SweepEngine, UNROLL_CAP};

use crate::cache::{Provenance, Store, TableFingerprinter};
use crate::fault;
use crate::shard::{ShardOutcomes, ShardSpec};

/// How a [`SweepSession::run_plan`] call obtained its outcome table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeProvenance {
    /// Executed (and, with a store, persisted): no usable table on disk.
    Cold,
    /// Loaded from a table recorded at exactly the requested horizon —
    /// planning, recording and merging all skipped.
    WarmExact,
    /// Loaded from a table recorded at a longer horizon and truncated down;
    /// `remerged` entries were re-derived from warm cached timelines (no
    /// program execution).
    WarmPrefix {
        /// The horizon the serving table was recorded at.
        recorded: Round,
        /// Entries the prefix alone could not determine (re-merged warm).
        remerged: usize,
    },
    /// Loaded from a table recorded at a **shorter** horizon and extended
    /// up: met entries are final by stop-propagation and served in O(1);
    /// only the unmet ones resumed their merge at the recorded horizon.
    WarmExtend {
        /// The horizon the serving table was recorded at.
        recorded: Round,
        /// Unmet entries whose merge resumed at the recorded horizon.
        extended: usize,
    },
    /// Executed through the symbolic (prefix + cycle) path: the plan's
    /// horizon exceeds the unroll cap, so outcomes were resolved by
    /// closed-form cycle merges — zero rounds unrolled, exact at any
    /// horizon (see `anonrv_sim::symbolic`).
    Symbolic {
        /// Start nodes whose cycle structure was detected (or preloaded).
        detected: usize,
    },
}

impl std::fmt::Display for OutcomeProvenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutcomeProvenance::Cold => f.write_str("cold"),
            OutcomeProvenance::WarmExact => f.write_str("warm"),
            OutcomeProvenance::WarmPrefix { recorded, remerged } => {
                write!(f, "warm-prefix (recorded at horizon {recorded}, {remerged} re-merged)")
            }
            OutcomeProvenance::WarmExtend { recorded, extended } => {
                write!(f, "warm-extend (recorded at horizon {recorded}, {extended} extended)")
            }
            OutcomeProvenance::Symbolic { detected } => {
                write!(f, "symbolic ({detected} cycle structures, 0 unrolled rounds)")
            }
        }
    }
}

/// A snapshot of everything a session has probed and executed so far — the
/// single source the CLI and the experiment compression notes report from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Whether the pair-orbit partition was loaded or computed.
    pub orbits: Provenance,
    /// Trajectory timelines preloaded from the store.
    pub timeline_hits: usize,
    /// The subset of [`SessionStats::timeline_hits`] served by prefix
    /// truncation of a longer recording.
    pub timeline_prefix_hits: usize,
    /// Timelines recorded cold by executing the agent program.
    pub timeline_misses: usize,
    /// Symbolic (prefix + cycle) timelines the engine holds — detected this
    /// session or preloaded from the store.
    pub symbolic_timelines: usize,
    /// Representative simulations (recordings or merges) executed.
    pub executed: usize,
    /// Member queries answered.
    pub answered: usize,
    /// Provenance of the last [`SweepSession::run_plan`] /
    /// [`SweepSession::merge_shards`] outcome table, if any ran.
    pub outcome: Option<OutcomeProvenance>,
    /// `(index, shards)` when this session executed a shard slice.
    pub shard: Option<(usize, usize)>,
}

/// What a [`SweepSession::run_streamed`] sweep produced — the whole
/// deliverable of a run whose outcome table was never materialised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamedSweepSummary {
    /// Pair classes executed.
    pub classes: usize,
    /// `(class, δ)` representative entries streamed.
    pub entries: usize,
    /// Entries whose representative met within the horizon.
    pub met_entries: usize,
    /// Member STICs those entries answer.
    pub answered: usize,
    /// Member STICs that meet.
    pub met_total: usize,
    /// [`crate::table_fingerprint`] of the table a materialised run would
    /// have produced — the bit-identity witness the differential suite and
    /// CI compare.
    pub fingerprint: u64,
}

/// One sweep workload of a `(graph, program)` pair, orchestrated end to
/// end.  See the module docs for the pipeline and `anonrv-store`'s crate
/// docs for the persistence model.
pub struct SweepSession<'a> {
    store: Option<&'a Store>,
    graph: &'a PortGraph,
    program_key: String,
    planned: PlannedSweep<'a>,
    orbits_provenance: Provenance,
    warmed: bool,
    timeline_hits: usize,
    timeline_prefix_hits: usize,
    symbolic_hits: usize,
    executed: usize,
    answered: usize,
    outcome: Option<OutcomeProvenance>,
    shard: Option<(usize, usize)>,
    /// Timeline misses already flushed into the metrics registry (misses
    /// accrue inside the engine cache; the session delta-flushes them).
    reported_misses: Cell<usize>,
}

impl<'a> SweepSession<'a> {
    /// Open a session: probe (or compute and save back) the pair-orbit
    /// partition and set up the planned executor.  Trajectory timelines are
    /// preloaded lazily, on the first call that actually executes — a
    /// session that ends up fully served by a warm outcome table never
    /// touches them.
    ///
    /// `program_key` must uniquely identify `program` *including its
    /// parameters* (see the crate docs); it is unused without a store.
    pub fn new(
        store: Option<&'a Store>,
        graph: &'a PortGraph,
        program: &'a dyn AgentProgram,
        program_key: impl Into<String>,
        config: EngineConfig,
    ) -> Self {
        let _plan_span = obs::span("session.plan");
        let (orbits, provenance) = match store {
            Some(store) => store.orbits(graph),
            None => (PairOrbits::compute(graph), Provenance::Cold),
        };
        obs::counter_add(
            match provenance {
                Provenance::Warm => "session.orbits.warm",
                Provenance::Cold => "session.orbits.cold",
            },
            1,
        );
        let planned = PlannedSweep::from_orbits(orbits, graph, program, config);
        Self::assemble(store, graph, program_key.into(), planned, provenance)
    }

    /// Open a session over a partition the caller already holds (sweeps
    /// sharing one graph reuse it across programs and parameter groups
    /// without recomputing or re-probing).  `orbits_provenance` is whatever
    /// the caller's own probe reported.
    pub fn with_orbits(
        store: Option<&'a Store>,
        orbits: &'a PairOrbits,
        orbits_provenance: Provenance,
        graph: &'a PortGraph,
        program: &'a dyn AgentProgram,
        program_key: impl Into<String>,
        config: EngineConfig,
    ) -> Self {
        let planned = PlannedSweep::with_orbits(orbits, graph, program, config);
        Self::assemble(store, graph, program_key.into(), planned, orbits_provenance)
    }

    /// A storeless session: the experiments' in-process mode — same
    /// pipeline and statistics, no persistence.
    pub fn in_memory(
        graph: &'a PortGraph,
        program: &'a dyn AgentProgram,
        config: EngineConfig,
    ) -> Self {
        Self::new(None, graph, program, "", config)
    }

    fn assemble(
        store: Option<&'a Store>,
        graph: &'a PortGraph,
        program_key: String,
        planned: PlannedSweep<'a>,
        orbits_provenance: Provenance,
    ) -> Self {
        SweepSession {
            store,
            graph,
            program_key,
            planned,
            orbits_provenance,
            warmed: false,
            timeline_hits: 0,
            timeline_prefix_hits: 0,
            symbolic_hits: 0,
            executed: 0,
            answered: 0,
            outcome: None,
            shard: None,
            reported_misses: Cell::new(0),
        }
    }

    /// The planned executor (orbit canonicalisation over the sweep engine).
    pub fn planned(&self) -> &PlannedSweep<'a> {
        &self.planned
    }

    /// The underlying sweep engine.
    pub fn engine(&self) -> &SweepEngine<'a> {
        self.planned.engine()
    }

    /// The pair-orbit partition queries are canonicalised through.
    pub fn orbits(&self) -> &PairOrbits {
        self.planned.orbits()
    }

    /// The graph this session sweeps.
    pub fn graph(&self) -> &'a PortGraph {
        self.graph
    }

    /// The snapshot the CLI and the compression notes report from.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            orbits: self.orbits_provenance,
            timeline_hits: self.timeline_hits,
            timeline_prefix_hits: self.timeline_prefix_hits,
            timeline_misses: self
                .planned
                .engine()
                .cache()
                .computed()
                .saturating_sub(self.timeline_hits),
            symbolic_timelines: self.planned.engine().cache().computed_symbolic(),
            executed: self.executed,
            answered: self.answered,
            outcome: self.outcome,
            shard: self.shard,
        }
    }

    /// Preload the engine's trajectory cache from the store, once, before
    /// the first execution (lazily so warm-outcome sessions skip the IO).
    fn ensure_warm(&mut self) {
        if self.warmed {
            return;
        }
        self.warmed = true;
        if let Some(store) = self.store {
            let _warm_span = obs::span("session.warm");
            let warmed = store.warm_engine(self.planned.engine(), &self.program_key);
            self.timeline_hits = warmed.installed;
            self.timeline_prefix_hits = warmed.prefix;
            self.symbolic_hits = warmed.symbolic;
            obs::counter_add("session.timeline.hits", warmed.installed as u64);
            obs::counter_add("session.timeline.prefix_hits", warmed.prefix as u64);
            obs::counter_add("session.symbolic.hits", warmed.symbolic as u64);
        }
    }

    /// Delta-flush timeline misses (cold recordings accrued inside the
    /// engine cache since the last flush) into the metrics registry.
    fn flush_timeline_metrics(&self) {
        if !obs::enabled() {
            return;
        }
        let misses = self.planned.engine().cache().computed().saturating_sub(self.timeline_hits);
        let delta = misses.saturating_sub(self.reported_misses.get());
        if delta > 0 {
            obs::counter_add("session.timeline.misses", delta as u64);
            self.reported_misses.set(misses);
        }
    }

    /// Count this run's table provenance and broadcast volume into the
    /// session stats and, when telemetry is on, the metrics registry.
    fn note_outcome(&mut self, provenance: OutcomeProvenance, executed: usize, answered: usize) {
        self.executed += executed;
        self.answered += answered;
        self.outcome = Some(provenance);
        if obs::enabled() {
            obs::counter_add(
                match provenance {
                    OutcomeProvenance::Cold => "session.outcome.cold",
                    OutcomeProvenance::WarmExact => "session.outcome.warm_exact",
                    OutcomeProvenance::WarmPrefix { .. } => "session.outcome.warm_prefix",
                    OutcomeProvenance::WarmExtend { .. } => "session.outcome.warm_extend",
                    OutcomeProvenance::Symbolic { .. } => "session.outcome.symbolic",
                },
                1,
            );
            obs::counter_add("session.executed", executed as u64);
            obs::counter_add("session.answered", answered as u64);
            self.flush_timeline_metrics();
        }
    }

    /// `true` when the engine holds timelines the store has not seen —
    /// everything beyond the preloaded ones was recorded by this session.
    fn has_new_recordings(&self) -> bool {
        let cache = self.planned.engine().cache();
        cache.computed() > self.timeline_hits || cache.computed_symbolic() > self.symbolic_hits
    }

    /// Persist every timeline recorded so far (best effort: a failed write
    /// leaves the cache cold but the results correct).  A session that
    /// recorded nothing new skips the read-merge-write round trip.
    fn persist_timelines_soft(&self) {
        self.flush_timeline_metrics();
        if let Some(store) = self.store {
            if self.has_new_recordings() {
                let _record_span = obs::span("session.record");
                let _ = store.persist_engine(self.planned.engine(), &self.program_key);
            }
        }
    }

    fn persist_timelines(&self) -> Result<(), String> {
        self.flush_timeline_metrics();
        if let Some(store) = self.store {
            if self.has_new_recordings() {
                let _record_span = obs::span("session.record");
                store
                    .persist_engine(self.planned.engine(), &self.program_key)
                    .map_err(|e| format!("cannot persist timelines: {e}"))?;
            }
        }
        Ok(())
    }

    /// Answer a batch of `(stic, horizon)` queries — the experiment
    /// harness's entry point: one representative simulation per distinct
    /// `(pair class, δ, horizon)` group, broadcast back in input order
    /// (each bit-identical to simulating the member directly).  Newly
    /// recorded timelines persist back to the store, best-effort.
    pub fn simulate_cases(&mut self, queries: &[(Stic, Round)]) -> Vec<SimOutcome> {
        let _broadcast_span = obs::span("session.broadcast");
        self.ensure_warm();
        let (outcomes, exec) = self.planned.simulate_many_counted(queries);
        self.executed += exec.executed;
        self.answered += exec.answered;
        obs::counter_add("session.executed", exec.executed as u64);
        obs::counter_add("session.answered", exec.answered as u64);
        self.persist_timelines_soft();
        outcomes
    }

    /// Execute a whole plan through the probe → execute → record pipeline.
    /// Returns the broadcastable outcome table and how it was obtained
    /// (exact warm hit, prefix hit, extend hit, or cold execution; see
    /// [`OutcomeProvenance`]).  The plan must share this session's
    /// partition, δ-grid order and a horizon within the engine's.
    pub fn run_plan<'p>(
        &mut self,
        plan: &'p SweepPlan,
    ) -> Result<(PlannedOutcomes<'p>, OutcomeProvenance), String> {
        if let Some(store) = self.store {
            let probe_span = obs::span("session.probe");
            let probed = store.load_plan_outcomes_any(self.graph, &self.program_key, plan);
            drop(probe_span);
            if let Some((table, recorded)) = probed {
                if recorded == plan.horizon() {
                    let outcomes = PlannedOutcomes::from_table(plan, table)?;
                    let provenance = OutcomeProvenance::WarmExact;
                    self.note_outcome(provenance, 0, plan.num_member_queries());
                    return Ok((outcomes, provenance));
                }
                let recorded_plan =
                    SweepPlan::from_orbits(plan.orbits().clone(), plan.deltas().to_vec(), recorded);
                self.ensure_warm();
                if recorded > plan.horizon() {
                    // prefix hit: truncate the longer table; entries the
                    // prefix alone cannot determine re-merge (rayon)
                    // through warm timelines
                    let full = PlannedOutcomes::from_table(&recorded_plan, table)?;
                    let execute_span = obs::span("session.execute");
                    let (outcomes, remerged) = self.planned.serve_prefix(&full, plan)?;
                    drop(execute_span);
                    // self-heal: a re-merge over a missing timeline recorded it
                    self.persist_timelines()?;
                    let provenance = OutcomeProvenance::WarmPrefix { recorded, remerged };
                    self.note_outcome(provenance, remerged, plan.num_member_queries());
                    return Ok((outcomes, provenance));
                }
                // extend hit: the stored table is shorter; met entries are
                // final by stop-propagation, unmet entries resume their
                // merge at the recorded horizon (rayon) and the superseding
                // table persists back
                let prior = PlannedOutcomes::from_table(&recorded_plan, table)?;
                let execute_span = obs::span("session.execute");
                let (outcomes, extended) = self.planned.extend_table(&prior, plan)?;
                drop(execute_span);
                self.persist_timelines()?;
                {
                    let _persist_span = obs::span("session.persist");
                    store
                        .save_plan_outcomes(self.graph, &self.program_key, plan, outcomes.table())
                        .map_err(|e| format!("cannot persist outcomes: {e}"))?;
                }
                let provenance = OutcomeProvenance::WarmExtend { recorded, extended };
                self.note_outcome(provenance, extended, plan.num_member_queries());
                return Ok((outcomes, provenance));
            }
        }
        // cold: execute the representatives, persist everything
        self.ensure_warm();
        let execute_span = obs::span("session.execute");
        let outcomes = self.planned.run(plan);
        drop(execute_span);
        self.persist_timelines()?;
        if let Some(store) = self.store {
            let _persist_span = obs::span("session.persist");
            store
                .save_plan_outcomes(self.graph, &self.program_key, plan, outcomes.table())
                .map_err(|e| format!("cannot persist outcomes: {e}"))?;
        }
        let detected = self.planned.engine().cache().computed_symbolic();
        let provenance = if plan.horizon() > UNROLL_CAP && detected > 0 {
            // beyond the unroll cap the engine routed every representative
            // through the closed-form cycle merge: no explicit unrolling
            OutcomeProvenance::Symbolic { detected }
        } else {
            OutcomeProvenance::Cold
        };
        self.note_outcome(provenance, plan.num_representative_queries(), plan.num_member_queries());
        Ok((outcomes, provenance))
    }

    /// Execute a whole plan in **streaming** mode: the outcome table is
    /// never materialised — and therefore never probed from or persisted to
    /// the store — outcomes flow through a running
    /// [`TableFingerprinter`] and aggregate counters instead.  This is the
    /// entry point for sweeps whose table cannot exist in memory: a
    /// 1024×1024 torus has 2²⁰ pair classes, so even the class-compressed
    /// table is gigabytes at any realistic δ-grid, while the streamed
    /// summary stays O(1) and peak memory is `O(|timeline(0)| +
    /// chunk_classes · |δ|)`.
    ///
    /// Requires an implicit orbit partition
    /// ([`anonrv_plan::PairOrbits::is_implicit`]); see
    /// [`PlannedSweep::run_streamed`] for the mapped-merge mechanics and
    /// the remaining guards.  The summary's fingerprint equals
    /// [`crate::table_fingerprint`] of the table [`SweepSession::run_plan`]
    /// would have produced, which is how small instances pin this path
    /// bit-for-bit against the materialised one.  Timelines recorded along
    /// the way (exactly one: node 0's) persist back best-effort, so a
    /// repeated streamed sweep skips its single program execution.
    pub fn run_streamed(
        &mut self,
        plan: &SweepPlan,
        chunk_classes: usize,
    ) -> Result<StreamedSweepSummary, String> {
        self.ensure_warm();
        let execute_span = obs::span("session.execute");
        let total = plan.orbits().num_pair_classes() * plan.deltas().len();
        let mut fingerprint = TableFingerprinter::new(total);
        let stats =
            self.planned.run_streamed(plan, chunk_classes, |_, chunk| fingerprint.extend(chunk))?;
        drop(execute_span);
        self.executed += stats.entries;
        self.answered += stats.answered;
        if obs::enabled() {
            obs::counter_add("session.outcome.streamed", 1);
            obs::counter_add("session.executed", stats.entries as u64);
            obs::counter_add("session.answered", stats.answered as u64);
        }
        self.persist_timelines_soft();
        Ok(StreamedSweepSummary {
            classes: stats.classes,
            entries: stats.entries,
            met_entries: stats.met_entries,
            answered: stats.answered,
            met_total: stats.met_total,
            fingerprint: fingerprint.finish(),
        })
    }

    /// Execute one shard slice of `plan` — the classes `spec` selects —
    /// persisting the partial table and the recorded timelines into the
    /// store (shards meet there; see [`crate::shard`]).  Concatenating
    /// every slice via [`SweepSession::merge_shards`] reproduces
    /// [`SweepSession::run_plan`]'s cold table bit-identically.
    pub fn run_shard(
        &mut self,
        plan: &SweepPlan,
        spec: ShardSpec,
    ) -> Result<ShardOutcomes, String> {
        fault::hit_io("shard.execute").map_err(|e| e.to_string())?;
        self.ensure_warm();
        let classes = spec.classes(plan.orbits().num_pair_classes());
        let execute_span = obs::span("session.execute");
        let table = self.planned.run_classes(plan, &classes);
        drop(execute_span);
        let part = ShardOutcomes { spec, classes, table };
        let executed = part.classes.len() * plan.deltas().len();
        let answered = executed * plan.orbits().class_size();
        self.executed += executed;
        self.answered += answered;
        obs::counter_add("session.executed", executed as u64);
        obs::counter_add("session.answered", answered as u64);
        self.shard = Some((spec.index(), spec.shards()));
        if let Some(store) = self.store {
            let _persist_span = obs::span("session.persist");
            store
                .save_shard(self.graph, &self.program_key, plan, &part)
                .map_err(|e| format!("cannot persist shard: {e}"))?;
        }
        self.persist_timelines()?;
        Ok(part)
    }

    /// Reassemble the `shards` partial artifacts of `plan` into the full
    /// outcome table — bit-identical to an unsharded run — and persist it,
    /// so subsequent sessions hit the merged table directly.
    pub fn merge_shards<'p>(
        &mut self,
        plan: &'p SweepPlan,
        shards: usize,
    ) -> Result<PlannedOutcomes<'p>, String> {
        let store = self.store.ok_or("merging shards requires a store")?;
        let merge_span = obs::span("session.merge");
        let table = store.merge_shards(self.graph, &self.program_key, plan, shards)?;
        let outcomes = PlannedOutcomes::from_table(plan, table)?;
        drop(merge_span);
        {
            let _persist_span = obs::span("session.persist");
            store
                .save_plan_outcomes(self.graph, &self.program_key, plan, outcomes.table())
                .map_err(|e| format!("cannot persist merged outcomes: {e}"))?;
        }
        self.note_outcome(OutcomeProvenance::Cold, 0, plan.num_member_queries());
        Ok(outcomes)
    }

    /// Execute **all** `shards` slices of `plan` under supervision, then
    /// merge: the fault-tolerant single-host form of the shard pipeline.
    ///
    /// The supervisor's ground truth is the store, not its own
    /// bookkeeping: each round it probes [`Store::missing_shards`] and
    /// dispatches exactly the gaps — so slices another process already
    /// persisted are never re-run, a slice whose executor "succeeded" but
    /// whose artifact failed its integrity gates *is* re-run, and retries
    /// are always safe because every shard outcome is a deterministic,
    /// bit-identical function of `(graph, program, plan, spec)`.  Failed
    /// slices (errors or panics — a panicking executor is isolated, not
    /// fatal) retry with exponential backoff up to
    /// [`SuperviseConfig::max_attempts`]; an attempt that overruns
    /// [`SuperviseConfig::shard_deadline`] is counted as a straggler in
    /// [`SuperviseReport::timed_out`].  The deadline is observational —
    /// in-process slices cannot be pre-empted mid-merge; true kills belong
    /// to the subprocess workers the daemon direction adds — but a
    /// completed-late slice still persisted a correct artifact, so it is
    /// kept, not discarded.  Once no shard is missing, the partials merge
    /// exactly as [`SweepSession::merge_shards`] would.
    pub fn run_sharded_supervised<'p>(
        &mut self,
        plan: &'p SweepPlan,
        shards: usize,
        config: SuperviseConfig,
    ) -> Result<(PlannedOutcomes<'p>, SuperviseReport), String> {
        let store = self.store.ok_or("supervised sharding requires a store")?;
        ShardSpec::new(shards, 0)?;
        if config.max_attempts == 0 {
            return Err("supervisor max_attempts must be at least 1".into());
        }
        let _supervisor_span = obs::span("supervisor.run");
        let mut report = SuperviseReport { shards, ..Default::default() };
        let mut attempts = vec![0usize; shards];
        let mut last_error: Vec<Option<String>> = vec![None; shards];
        let mut first_probe = true;
        loop {
            let missing = store.missing_shards(self.graph, &self.program_key, plan, shards)?;
            if first_probe {
                report.already_present = shards - missing.len();
                first_probe = false;
            }
            if missing.is_empty() {
                break;
            }
            for index in missing {
                if attempts[index] >= config.max_attempts {
                    let why = last_error[index].as_deref().unwrap_or("artifact never appeared");
                    return Err(format!(
                        "shard {index}/{shards} still missing after {} attempt(s): {why}",
                        attempts[index]
                    ));
                }
                let mut backoff = Duration::ZERO;
                if attempts[index] > 0 {
                    // exponential backoff between retries of the same slice
                    let exp = u32::try_from(attempts[index] - 1).unwrap_or(u32::MAX);
                    backoff = config.base_backoff.saturating_mul(2u32.saturating_pow(exp.min(16)));
                    std::thread::sleep(backoff);
                }
                attempts[index] += 1;
                report.attempts += 1;
                let spec = ShardSpec::new(shards, index).expect("index < shards");
                let started = Instant::now();
                // a panicking slice must not take the supervisor down with
                // it: isolate, record, and let the retry policy decide
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.run_shard(plan, spec)
                }));
                let elapsed = started.elapsed();
                let timed_out = elapsed > config.shard_deadline;
                if timed_out {
                    report.timed_out += 1;
                }
                let mut panicked = false;
                last_error[index] = match outcome {
                    Ok(Ok(_)) => None,
                    Ok(Err(e)) => Some(e),
                    Err(panic) => {
                        panicked = true;
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "opaque panic payload".into());
                        Some(format!("shard executor panicked: {msg}"))
                    }
                };
                let row = ShardAttempt {
                    shard: index,
                    attempt: attempts[index],
                    backoff_ms: u64::try_from(backoff.as_millis()).unwrap_or(u64::MAX),
                    elapsed_ms: u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX),
                    timed_out,
                    error: last_error[index].clone(),
                };
                if obs::enabled() {
                    obs::counter_add("supervisor.attempts", 1);
                    if row.attempt > 1 {
                        obs::counter_add("supervisor.retries", 1);
                    }
                    if row.timed_out {
                        obs::counter_add("supervisor.timeouts", 1);
                    }
                    if panicked {
                        obs::counter_add("supervisor.panics", 1);
                    }
                    obs::event(
                        "supervisor.attempt",
                        &[
                            ("shard", obs::Field::from(row.shard)),
                            ("attempt", obs::Field::from(row.attempt)),
                            ("backoff_ms", obs::Field::from(row.backoff_ms)),
                            ("elapsed_ms", obs::Field::from(row.elapsed_ms)),
                            ("timed_out", obs::Field::from(row.timed_out)),
                            ("outcome", obs::Field::from(row.outcome())),
                            ("error", obs::Field::from(row.error.clone().unwrap_or_default())),
                        ],
                    );
                }
                report.attempts_log.push(row);
            }
        }
        report.retried = (0..shards).filter(|&i| attempts[i] > 1).collect();
        let outcomes = self.merge_shards(plan, shards)?;
        Ok((outcomes, report))
    }
}

/// Retry policy of [`SweepSession::run_sharded_supervised`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperviseConfig {
    /// Executions attempted per shard before the supervisor gives up
    /// (must be at least 1).
    pub max_attempts: usize,
    /// Backoff before the first retry of a slice; doubles per further
    /// retry of the same slice.
    pub base_backoff: Duration,
    /// Wall-clock budget per attempt; an attempt that overruns is counted
    /// in [`SuperviseReport::timed_out`] (observational — see
    /// [`SweepSession::run_sharded_supervised`]).
    pub shard_deadline: Duration,
}

impl Default for SuperviseConfig {
    fn default() -> Self {
        SuperviseConfig {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            shard_deadline: Duration::from_secs(60),
        }
    }
}

/// One supervised slice execution — the structured row behind both the
/// CLI's per-attempt text lines and the `--report json` supervisor
/// section (each row is also emitted as a `supervisor.attempt` obs
/// event with identical fields).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAttempt {
    /// The shard index dispatched.
    pub shard: usize,
    /// 1-based attempt ordinal for this shard.
    pub attempt: usize,
    /// Backoff slept before this attempt (zero on a first attempt).
    pub backoff_ms: u64,
    /// Wall-clock duration of the attempt.
    pub elapsed_ms: u64,
    /// Whether the attempt overran [`SuperviseConfig::shard_deadline`].
    pub timed_out: bool,
    /// The failure (error or isolated panic), `None` on success.
    pub error: Option<String>,
}

impl ShardAttempt {
    /// The row's outcome label: `error` when the attempt failed,
    /// `timeout` when it succeeded but overran the deadline, else `ok`.
    pub fn outcome(&self) -> &'static str {
        if self.error.is_some() {
            "error"
        } else if self.timed_out {
            "timeout"
        } else {
            "ok"
        }
    }
}

/// What a [`SweepSession::run_sharded_supervised`] call did to converge.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SuperviseReport {
    /// The shard count supervised.
    pub shards: usize,
    /// Total slice executions attempted (equals `shards -
    /// already_present` on a disturbance-free run).
    pub attempts: usize,
    /// Shard indices that needed more than one attempt, ascending.
    pub retried: Vec<usize>,
    /// Attempts that overran the per-shard deadline (stragglers).
    pub timed_out: usize,
    /// Shards whose artifact the first probe already found on disk —
    /// work a previous (possibly crashed) run left behind and this one
    /// did not repeat.
    pub already_present: usize,
    /// Every attempt in dispatch order — one [`ShardAttempt`] per slice
    /// execution, the single source both report renderings draw from.
    pub attempts_log: Vec<ShardAttempt>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{TempDir, Walker};
    use anonrv_graph::generators::oriented_torus;

    const KEY: &str = "test-walker-5eed";

    fn walker() -> Walker {
        Walker { seed: 0x5EED }
    }

    #[test]
    fn full_pipeline_cold_then_exact_then_prefix() {
        let dir = TempDir::new("session-pipeline");
        let store = Store::open(&dir.0).unwrap();
        let g = oriented_torus(3, 4).unwrap();
        let program = walker();
        let deltas: Vec<Round> = vec![0, 1, 2];

        // cold: everything executes and persists
        let mut cold = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(cold.orbits().clone(), deltas.clone(), 64);
        let (cold_outcomes, prov) = cold.run_plan(&plan).unwrap();
        assert_eq!(prov, OutcomeProvenance::Cold);
        let cold_stats = cold.stats();
        assert_eq!(cold_stats.orbits, Provenance::Cold);
        assert!(cold_stats.timeline_misses > 0);
        assert_eq!(cold_stats.executed, plan.num_representative_queries());

        // exact hit: nothing executes, not even timeline preloading
        let mut warm = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
        let (warm_outcomes, prov) = warm.run_plan(&plan).unwrap();
        assert_eq!(prov, OutcomeProvenance::WarmExact);
        assert_eq!(warm_outcomes.table(), cold_outcomes.table());
        let warm_stats = warm.stats();
        assert_eq!(warm_stats.orbits, Provenance::Warm);
        assert_eq!((warm_stats.executed, warm_stats.timeline_misses), (0, 0));

        // prefix hit at a smaller horizon: zero recordings, every timeline
        // a prefix hit, outcomes bit-identical to a cold in-memory run
        let mut prefix =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(20));
        let small = SweepPlan::from_orbits(prefix.orbits().clone(), deltas.clone(), 20);
        let (served, prov) = prefix.run_plan(&small).unwrap();
        let OutcomeProvenance::WarmPrefix { recorded, remerged } = prov else {
            panic!("expected a prefix hit, got {prov:?}");
        };
        assert_eq!(recorded, 64);
        let stats = prefix.stats();
        assert_eq!(stats.timeline_misses, 0, "a prefix hit must not record");
        assert_eq!(stats.timeline_prefix_hits, stats.timeline_hits);
        assert_eq!(stats.executed, remerged);
        let reference = SweepSession::in_memory(&g, &program, EngineConfig::batch(20))
            .run_plan(&small)
            .unwrap()
            .0;
        assert_eq!(served.table(), reference.table(), "prefix-hit differential");
    }

    #[test]
    fn extend_hits_resume_merges_and_supersede_the_shorter_table() {
        let dir = TempDir::new("session-extend");
        let store = Store::open(&dir.0).unwrap();
        let g = oriented_torus(3, 4).unwrap();
        let program = walker();
        let deltas: Vec<Round> = vec![0, 1, 2];

        // seed a *short* table
        let mut seed = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(12));
        let short_plan = SweepPlan::from_orbits(seed.orbits().clone(), deltas.clone(), 12);
        let (short_outcomes, prov) = seed.run_plan(&short_plan).unwrap();
        assert_eq!(prov, OutcomeProvenance::Cold);

        // ask for a longer horizon: the short table extends up instead of
        // the session restarting every merge from round zero
        let mut session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
        let long_plan = SweepPlan::from_orbits(session.orbits().clone(), deltas.clone(), 64);
        let (served, prov) = session.run_plan(&long_plan).unwrap();
        let OutcomeProvenance::WarmExtend { recorded, extended } = prov else {
            panic!("expected an extend hit, got {prov:?}");
        };
        assert_eq!(recorded, 12);
        let unmet = short_outcomes.table().iter().filter(|o| o.meeting.is_none()).count();
        assert_eq!(extended, unmet, "only unmet entries resume their merge");
        assert_eq!(session.stats().executed, extended);
        let reference = SweepSession::in_memory(&g, &program, EngineConfig::batch(64))
            .run_plan(&long_plan)
            .unwrap()
            .0;
        assert_eq!(served.table(), reference.table(), "extend-hit differential");

        // the superseding table persisted: the long horizon is now an exact
        // hit, and the short one still serves as a prefix hit
        let mut warm = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
        let (_, prov) = warm.run_plan(&long_plan).unwrap();
        assert_eq!(prov, OutcomeProvenance::WarmExact);
        let mut prefix =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(12));
        let (again, prov) = prefix.run_plan(&short_plan).unwrap();
        assert!(
            matches!(prov, OutcomeProvenance::WarmPrefix { recorded: 64, .. }),
            "expected a prefix hit off the superseding table, got {prov:?}"
        );
        assert_eq!(again.table(), short_outcomes.table(), "round trip diverged");
    }

    #[test]
    fn sharded_sessions_merge_bit_identically_to_the_unsharded_run() {
        let dir = TempDir::new("session-shards");
        let store = Store::open(&dir.0).unwrap();
        let g = oriented_torus(3, 4).unwrap();
        let program = walker();
        let deltas: Vec<Round> = vec![0, 1, 2, 3, 4];

        let reference_session = &mut SweepSession::in_memory(&g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(reference_session.orbits().clone(), deltas, 64);
        let reference = reference_session.run_plan(&plan).unwrap().0;

        for index in 0..3usize {
            let mut worker =
                SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
            let spec = ShardSpec::new(3, index).unwrap();
            let part = worker.run_shard(&plan, spec).unwrap();
            assert_eq!(part.classes, spec.classes(12));
            assert_eq!(worker.stats().shard, Some((index, 3)));
        }
        let mut merger =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
        let merged = merger.merge_shards(&plan, 3).unwrap();
        assert_eq!(merged.table(), reference.table(), "3-shard session merge diverged");

        // the persisted merge now serves an exact warm hit
        let mut warm = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
        let (_, prov) = warm.run_plan(&plan).unwrap();
        assert_eq!(prov, OutcomeProvenance::WarmExact);
        // merging with a wrong shard count still fails loudly
        assert!(merger.merge_shards(&plan, 5).is_err());
    }

    #[test]
    fn supervised_runs_converge_skip_present_work_and_validate_their_config() {
        let dir = TempDir::new("session-supervised");
        let store = Store::open(&dir.0).unwrap();
        let g = oriented_torus(3, 4).unwrap();
        let program = walker();
        let deltas: Vec<Round> = vec![0, 1, 2];

        let reference_session = &mut SweepSession::in_memory(&g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(reference_session.orbits().clone(), deltas, 64);
        let reference = reference_session.run_plan(&plan).unwrap().0;

        // pre-run one slice: the probe must find it and not repeat the work
        let mut early = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
        early.run_shard(&plan, ShardSpec::new(3, 1).unwrap()).unwrap();

        let mut session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
        let (merged, report) =
            session.run_sharded_supervised(&plan, 3, SuperviseConfig::default()).unwrap();
        assert_eq!(merged.table(), reference.table(), "supervised merge diverged");
        assert_eq!(report.shards, 3);
        assert_eq!(report.already_present, 1);
        assert_eq!(report.attempts, 2, "only the two missing slices execute");
        assert!(report.retried.is_empty());
        assert_eq!(report.timed_out, 0);
        assert_eq!(report.attempts_log.len(), report.attempts);
        assert!(report.attempts_log.iter().all(|row| row.outcome() == "ok" && row.attempt == 1));

        // a second supervised run finds every slice present and just merges
        let mut again = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
        let (_, report) =
            again.run_sharded_supervised(&plan, 3, SuperviseConfig::default()).unwrap();
        assert_eq!((report.already_present, report.attempts), (3, 0));

        // config and mode validation
        assert!(session.run_sharded_supervised(&plan, 0, SuperviseConfig::default()).is_err());
        let bad = SuperviseConfig { max_attempts: 0, ..SuperviseConfig::default() };
        assert!(session.run_sharded_supervised(&plan, 3, bad).is_err());
        let mut memless = SweepSession::in_memory(&g, &program, EngineConfig::batch(64));
        assert!(memless.run_sharded_supervised(&plan, 3, SuperviseConfig::default()).is_err());
    }

    #[test]
    fn supervised_retries_heal_injected_persist_failures_bit_identically() {
        let dir = TempDir::new("session-supervised-retry");
        let store = Store::open(&dir.0).unwrap();
        let g = oriented_torus(3, 4).unwrap();
        let program = walker();
        let deltas: Vec<Round> = vec![0, 1, 2];

        let reference_session = &mut SweepSession::in_memory(&g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(reference_session.orbits().clone(), deltas, 64);
        let reference = reference_session.run_plan(&plan).unwrap().0;

        // the first persist of shard 0 dies; the supervisor must retry
        // exactly that slice and still converge bit-identically
        let guard = crate::fault::scoped("shard.persist=io-error:1");
        let config = SuperviseConfig {
            base_backoff: std::time::Duration::from_millis(1),
            ..SuperviseConfig::default()
        };
        let mut session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
        let (merged, report) = session.run_sharded_supervised(&plan, 2, config).unwrap();
        drop(guard);
        assert_eq!(merged.table(), reference.table(), "healed merge diverged");
        assert_eq!(report.retried, vec![0]);
        assert_eq!(report.attempts, 3, "two first attempts plus one retry");
        let shard0: Vec<_> = report.attempts_log.iter().filter(|r| r.shard == 0).collect();
        assert_eq!(shard0.len(), 2, "the injected failure costs shard 0 one retry");
        assert_eq!((shard0[0].attempt, shard0[0].outcome()), (1, "error"));
        assert!(shard0[0].error.as_deref().unwrap().contains("injected fault"));
        assert_eq!((shard0[1].attempt, shard0[1].outcome()), (2, "ok"));
        assert!(shard0[1].backoff_ms >= 1, "a retry waits out its backoff");

        // exhausted retries surface the last underlying error
        let guard = crate::fault::scoped("shard.execute=io-error");
        let mut doomed =
            SweepSession::new(Some(&store), &g, &program, "other-key", EngineConfig::batch(64));
        let err = doomed.run_sharded_supervised(&plan, 2, config).unwrap_err();
        drop(guard);
        assert!(err.contains("still missing after 3 attempt(s)"), "{err}");
        assert!(err.contains("injected fault at shard.execute"), "{err}");
    }

    #[test]
    fn streamed_sessions_fingerprint_the_exact_materialised_table() {
        let dir = TempDir::new("session-streamed");
        let store = Store::open(&dir.0).unwrap();
        let g = oriented_torus(3, 4).unwrap();
        let program = walker();
        let deltas: Vec<Round> = vec![0, 1, 2, 5];

        // materialised reference table and its fingerprint
        let mut reference = SweepSession::in_memory(&g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(reference.orbits().clone(), deltas, 64);
        let table = reference.run_plan(&plan).unwrap().0.table().to_vec();
        let expect = crate::table_fingerprint(&table);

        let mut session =
            SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
        let summary = session.run_streamed(&plan, 5).unwrap();
        assert_eq!(summary.fingerprint, expect, "streamed fingerprint diverged");
        assert_eq!(summary.classes, plan.orbits().num_pair_classes());
        assert_eq!(summary.entries, table.len());
        assert_eq!(summary.met_entries, table.iter().filter(|o| o.meeting.is_some()).count());
        assert_eq!(summary.answered, plan.num_member_queries());
        let stats = session.stats();
        assert_eq!(stats.executed, summary.entries);
        assert_eq!(stats.answered, summary.answered);
        assert_eq!(stats.outcome, None, "a streamed run has no table provenance");
        // node 0's recording persisted: a second streamed session replays
        // without a single program execution
        let mut warm = SweepSession::new(Some(&store), &g, &program, KEY, EngineConfig::batch(64));
        let again = warm.run_streamed(&plan, 3).unwrap();
        assert_eq!(again, summary);
        assert_eq!(warm.stats().timeline_misses, 0, "warm streamed run must not record");
    }

    #[test]
    fn in_memory_sessions_report_cold_stats_and_answer_case_batches() {
        let g = oriented_torus(3, 3).unwrap();
        let program = walker();
        let mut session = SweepSession::in_memory(&g, &program, EngineConfig::batch(50));
        let queries: Vec<(Stic, Round)> =
            vec![(Stic::new(0, 5, 1), 50), (Stic::new(1, 3, 1), 50), (Stic::new(0, 5, 1), 30)];
        let outcomes = session.simulate_cases(&queries);
        assert_eq!(outcomes.len(), 3);
        for (i, (stic, horizon)) in queries.iter().enumerate() {
            assert_eq!(
                outcomes[i],
                session.engine().simulate_capped(stic, *horizon),
                "case {i} diverged"
            );
        }
        let stats = session.stats();
        assert_eq!(stats.orbits, Provenance::Cold);
        assert_eq!(stats.answered, 3);
        // (0,5) and (1,3) are translates: one class, two (δ, horizon) groups
        assert_eq!(stats.executed, 2);
        assert_eq!(stats.timeline_hits, 0);
        assert!(stats.timeline_misses > 0);
        assert!(session.merge_shards(&SweepPlan::new(&g, vec![0], 10), 1).is_err());
    }
}
