//! # anonrv-core
//!
//! The primary contribution of *Using Time to Break Symmetry: Universal
//! Deterministic Anonymous Rendezvous* (Pelc & Yadav, SPAA 2019), implemented
//! on top of the [`anonrv_graph`] / [`anonrv_uxs`] / [`anonrv_sim`]
//! substrates.
//!
//! Two identical anonymous agents are dropped on two nodes of an anonymous
//! port-labelled graph and must meet at a node while navigating in
//! synchronous rounds, possibly starting with an adversarial delay `δ`.
//! A *space-time initial configuration* (STIC) is `[(u, v), δ]`.  The paper's
//! results, and the modules implementing them:
//!
//! | Paper reference | Statement | Module |
//! |---|---|---|
//! | Definition 3.1 | `Shrink(u, v)` | [`anonrv_graph::shrink`] over the flat [`anonrv_graph::pairspace`] engine |
//! | Lemma 3.1 | symmetric `u, v` with `δ < Shrink(u, v)` ⇒ infeasible | [`feasibility`] |
//! | Algorithm 1/2, Lemma 3.2/3.3 | `SymmRV(n, d, δ)` meets symmetric STICs with `δ ≥ d = Shrink` in ≤ `T(n, d, δ)` rounds | [`symm_rv`], [`mod@explore`], [`bounds`] |
//! | Proposition 3.1 | `AsymmRV(n)` meets nonsymmetric STICs in poly(`n`) rounds | [`asymm_rv`], [`label`] (substituted, see DESIGN.md §4.2) |
//! | Algorithm 3, Theorem 3.1 | `UniversalRV` meets **every** feasible STIC with no a-priori knowledge | [`universal_rv`], [`pairing`] |
//! | Corollary 3.1 | feasibility ⇔ nonsymmetric ∨ (symmetric ∧ `δ ≥ Shrink`) | [`feasibility`] ([`FeasibilityOracle`] answers all pairs in one `O(n²·Δ)` [`anonrv_graph::pairspace`] sweep) |
//! | Theorem 4.1 | on `Q̂_h` some STICs at distance `D = 2k` need ≥ `2^(k−1)` rounds | [`lower_bound`] |
//! | Proposition 4.1 | `UniversalRV` runs in `O(n + δ)^O(n + δ)` rounds | [`bounds`] |
//! | Introduction | rendezvous ⇔ leader election | [`leader`] |
//! | Section 4 (discussion) | deleting `SymmRV` gives a poly-time universal algorithm for nonsymmetric STICs | [`asymm_only`] |
//! | Conclusion | the randomized baseline: two random walks meet in poly time | [`random_baseline`] |
//!
//! ## Quick start
//!
//! ```
//! use anonrv_core::prelude::*;
//! use anonrv_graph::generators::oriented_ring;
//! use anonrv_sim::{simulate, Stic};
//!
//! // A 6-node oriented ring: every pair of nodes is symmetric and
//! // Shrink(u, v) equals the distance between u and v.
//! let g = oriented_ring(6).unwrap();
//! let stic = Stic::new(0, 2, 2); // delay 2 == Shrink(0, 2): feasible
//! assert!(is_feasible(&g, 0, 2, 2));
//!
//! // Run the universal algorithm with zero a-priori knowledge.
//! let uxs = PseudorandomUxs::with_rule(LengthRule::Quadratic { c: 1, min_len: 16 });
//! let scheme = TrailSignature::new(uxs);
//! let algo = UniversalRv::new(&uxs, &scheme);
//! let horizon = algo.completion_horizon(6, 2, 2);
//! let outcome = simulate(&g, &algo, &stic, horizon);
//! assert!(outcome.met());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asymm_only;
pub mod asymm_rv;
pub mod bounds;
pub mod explore;
pub mod feasibility;
pub mod label;
pub mod leader;
pub mod lower_bound;
pub mod pairing;
pub mod random_baseline;
pub mod symm_rv;
pub mod universal_rv;

pub use asymm_only::AsymmOnlyUniversalRv;
pub use asymm_rv::{AsymmRv, AsymmRvUnknownDelay};
pub use explore::explore;
pub use feasibility::{classify, classify_all_pairs, is_feasible, FeasibilityOracle, SticClass};
pub use label::{ExactViewLabel, LabelScheme, TrailSignature, LABEL_BITS};
pub use leader::{elect_leader, LeaderElection, Role, WaitingForMommy};
pub use lower_bound::{
    check_schedule_explicit, check_schedule_symbolic, LowerBoundReport, ObliviousSchedule,
    ObliviousStep, TreePosition,
};
pub use random_baseline::{estimate_random_rendezvous, RandomBaselineEstimate, RandomWalkRv};
pub use symm_rv::SymmRv;
pub use universal_rv::UniversalRv;

/// Everything most users need, in one import.
pub mod prelude {
    pub use crate::asymm_rv::{AsymmRv, AsymmRvUnknownDelay};
    pub use crate::bounds::{symm_rv_bound, walk_count_bound};
    pub use crate::feasibility::{classify, is_feasible, FeasibilityOracle, SticClass};
    pub use crate::label::{ExactViewLabel, LabelScheme, TrailSignature};
    pub use crate::leader::{elect_leader, Role, WaitingForMommy};
    pub use crate::lower_bound::{check_schedule_symbolic, ObliviousSchedule};
    pub use crate::symm_rv::SymmRv;
    pub use crate::universal_rv::UniversalRv;
    pub use anonrv_uxs::{LengthRule, PseudorandomUxs, UxsProvider};
}
