//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Implements the benchmarking surface this workspace uses —
//! `criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `Bencher::iter_batched`, `BenchmarkId` and `sample_size` — with a simple
//! but honest measurement loop: per sample, the routine is run enough times
//! to fill a minimum sample duration, and the per-iteration wall time of
//! every sample is collected; the report prints the median, mean and min.
//!
//! Command-line compatibility: the first free (non-flag) argument is treated
//! as a substring filter on `group/benchmark` ids, matching `cargo bench --
//! <filter>`; a `--test` flag runs every benchmark routine once without
//! timing (upstream criterion's smoke-test mode, used by CI to keep benches
//! compiling and running); other `--bench`-style flags that cargo appends
//! are ignored.

use std::time::{Duration, Instant};

/// How `iter_batched` amortises its setup; the stand-in measures the routine
/// only (setup runs untimed either way), so the variants differ only in how
/// many routine calls share one timing window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many routine calls per timing window.
    SmallInput,
    /// Large inputs: one routine call per timing window.
    LargeInput,
    /// One routine call per timing window.
    PerIteration,
}

/// A benchmark identifier `function_name/parameter`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier composed of a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Types accepted wherever criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    /// Render into the printed id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// The timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<f64>, // per-iteration nanoseconds, one entry per sample
    sample_size: usize,
    sample_time: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Time `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            // smoke-test mode: run the routine once, record nothing
            let _ = std::hint::black_box(routine());
            return;
        }
        // Warm up and estimate the per-iteration cost.
        let per_iter = {
            let start = Instant::now();
            let _ = std::hint::black_box(routine());
            start.elapsed().max(Duration::from_nanos(1))
        };
        let iters_per_sample =
            (self.sample_time.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                let _ = std::hint::black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Time `routine` on fresh inputs produced by `setup`; only the routine
    /// is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let _ = std::hint::black_box(routine(setup()));
            return;
        }
        // One routine call per timing window: setup cost must stay untimed,
        // so batching multiple calls into one window is not possible without
        // pre-building all inputs (which the stand-in avoids for memory's
        // sake).  Samples therefore time exactly one iteration each.
        let total = self.sample_size.max(8);
        for _ in 0..total {
            let input = setup();
            let start = Instant::now();
            let _ = std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    /// Number of samples collected per benchmark (default 30).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Ignored tuning knob kept for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into_id());
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            sample_time: self.criterion.sample_time,
            test_mode: self.criterion.test_mode,
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("{full_id:<60} (test mode: ran once, ok)");
        } else {
            report(&full_id, &bencher.samples);
        }
        self
    }

    /// Run one benchmark parameterised by an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(&mut self) {}
}

/// Benchmark manager: configuration plus the id filter and smoke-test flag
/// from the CLI.
pub struct Criterion {
    filter: Option<String>,
    sample_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` (and friends); the first free argument
        // is the benchmark filter and `--test` selects smoke-test mode, as
        // with upstream criterion.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let test_mode = std::env::args().skip(1).any(|a| a == "--test");
        Criterion { filter, sample_time: Duration::from_millis(10), test_mode }
    }
}

impl Criterion {
    /// Begin a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 30 }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        if self.matches(&id) {
            let mut bencher = Bencher {
                samples: Vec::new(),
                sample_size: 30,
                sample_time: self.sample_time,
                test_mode: self.test_mode,
            };
            f(&mut bencher);
            if self.test_mode {
                println!("{id:<60} (test mode: ran once, ok)");
            } else {
                report(&id, &bencher.samples);
            }
        }
        self
    }

    fn matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }
}

fn report(id: &str, samples: &[f64]) {
    if samples.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let min = sorted[0];
    println!(
        "{id:<60} time: [median {}] (mean {}, min {}, {} samples)",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(min),
        sorted.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Group several benchmark functions under one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples_and_reports() {
        let mut c =
            Criterion { filter: None, sample_time: Duration::from_micros(50), test_mode: false };
        let mut ran = 0u64;
        c.benchmark_group("demo").sample_size(3).bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn filter_skips_nonmatching_benchmarks() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            sample_time: Duration::from_micros(50),
            test_mode: false,
        };
        let mut ran = false;
        c.benchmark_group("demo").bench_function("skipped", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(!ran);
    }

    #[test]
    fn iter_batched_times_only_the_routine() {
        let mut c =
            Criterion { filter: None, sample_time: Duration::from_micros(50), test_mode: false };
        let mut calls = 0u32;
        c.benchmark_group("demo").sample_size(4).bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 8],
                |v| {
                    calls += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        assert!(calls >= 4);
    }
}
