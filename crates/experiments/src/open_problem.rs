//! EXP-OPEN — the Section 4 discussion around the paper's open problem:
//!
//! > "a simplified algorithm working only for STICs with asymmetric nodes,
//! > which can be obtained from Algorithm UniversalRV by deleting the
//! > Procedure SymmRV in each phase, would indeed be polynomial in n and δ."
//!
//! The experiment runs that simplified algorithm
//! ([`anonrv_core::asymm_only::AsymmOnlyUniversalRv`]) and the full
//! `UniversalRV` side by side on the same nonsymmetric STICs and reports the
//! measured times and the analytic completion bounds, exhibiting the
//! polynomial-versus-exponential gap the open problem asks about.

use anonrv_core::asymm_only::AsymmOnlyUniversalRv;
use anonrv_core::label::TrailSignature;
use anonrv_core::universal_rv::UniversalRv;
use anonrv_graph::generators::lollipop;
use anonrv_sim::{simulate, Round, Stic};
use anonrv_uxs::{LengthRule, PseudorandomUxs};

use crate::report::{fmt_opt_rounds, fmt_rounds, Table};
use crate::runner::par_map;

/// Configuration of the open-problem experiment.
#[derive(Debug, Clone)]
pub struct OpenProblemConfig {
    /// Lollipop tail lengths swept (the graph has `clique + tail` nodes; the
    /// two agents start at the clique and at the tail end — nonsymmetric).
    pub sizes: Vec<(usize, usize)>,
    /// Delay applied to every STIC.
    pub delta: Round,
    /// Whether to also run the (much slower) full `UniversalRV` for
    /// comparison on each point.
    pub run_full_universal: bool,
    /// UXS length rule.
    pub uxs_rule: LengthRule,
}

impl Default for OpenProblemConfig {
    fn default() -> Self {
        OpenProblemConfig {
            sizes: vec![(3, 1), (3, 2), (4, 2), (4, 3)],
            delta: 1,
            run_full_universal: true,
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
        }
    }
}

impl OpenProblemConfig {
    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        OpenProblemConfig {
            sizes: vec![(3, 1), (3, 2), (4, 2), (4, 3), (5, 3), (5, 4), (6, 4)],
            delta: 1,
            run_full_universal: true,
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
        }
    }
}

/// One measured point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenProblemRecord {
    /// Number of nodes.
    pub n: usize,
    /// Measured time of the asymmetric-only algorithm.
    pub asymm_only_time: Option<Round>,
    /// Its (polynomial) completion bound.
    pub asymm_only_bound: Round,
    /// Measured time of the full `UniversalRV` (when run).
    pub universal_time: Option<Option<Round>>,
    /// The full algorithm's completion bound for the same STIC.
    pub universal_bound: Round,
}

/// Run the sweep.
pub fn collect(config: &OpenProblemConfig) -> Vec<OpenProblemRecord> {
    let uxs_rule = config.uxs_rule;
    let delta = config.delta;
    let run_full = config.run_full_universal;
    par_map(config.sizes.clone(), |&(clique, tail)| {
        let g = lollipop(clique, tail).unwrap();
        let n = g.num_nodes();
        let stic = Stic::new(0, n - 1, delta);
        let uxs = PseudorandomUxs::with_rule(uxs_rule);
        let scheme = TrailSignature::new(uxs);

        let asymm_only = AsymmOnlyUniversalRv::new(&uxs, &scheme);
        let asymm_only_bound = asymm_only.completion_horizon(n, delta);
        let asymm_only_time = simulate(&g, &asymm_only, &stic, asymm_only_bound).rendezvous_time();

        let full = UniversalRv::new(&uxs, &scheme);
        let universal_bound = full.completion_horizon(n, 1, delta);
        let universal_time = if run_full {
            Some(simulate(&g, &full, &stic, universal_bound).rendezvous_time())
        } else {
            None
        };

        OpenProblemRecord { n, asymm_only_time, asymm_only_bound, universal_time, universal_bound }
    })
}

/// Run the experiment as a report table.
pub fn run(config: &OpenProblemConfig) -> Table {
    let mut table = Table::new(
        "EXP-OPEN",
        "Deleting SymmRV: polynomial universal rendezvous for nonsymmetric STICs (Section 4 discussion)",
        &[
            "n",
            "delta",
            "AsymmOnly time",
            "AsymmOnly bound (poly)",
            "UniversalRV time",
            "UniversalRV bound",
        ],
    );
    for r in collect(config) {
        table.push_row([
            r.n.to_string(),
            config.delta.to_string(),
            fmt_opt_rounds(r.asymm_only_time),
            fmt_rounds(r.asymm_only_bound),
            match r.universal_time {
                Some(t) => fmt_opt_rounds(t),
                None => "(not run)".to_string(),
            },
            fmt_rounds(r.universal_bound),
        ]);
    }
    table.push_note(
        "Paper: the simplified algorithm is polynomial in n and delta while UniversalRV's bound \
         is exponential; expected outcome is both algorithms meeting on every row, with the \
         AsymmOnly bound growing polynomially and the UniversalRV bound exploding.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_simplified_algorithm_meets_and_its_bound_stays_far_below_the_full_one() {
        let config = OpenProblemConfig {
            sizes: vec![(3, 1), (3, 2)],
            run_full_universal: false,
            ..OpenProblemConfig::default()
        };
        let records = collect(&config);
        assert_eq!(records.len(), 2);
        for r in &records {
            assert!(r.asymm_only_time.is_some(), "{r:?}");
            assert!(r.asymm_only_bound < r.universal_bound, "{r:?}");
        }
    }
}
