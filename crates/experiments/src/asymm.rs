//! EXP-P31 — Proposition 3.1: rendezvous from nonsymmetric initial positions
//! in time polynomial in `n`.
//!
//! The paper uses the log-space procedure of Czyzowicz–Kosowski–Pelc (2012)
//! as a black box; our substitute is the label-based `AsymmRV` of
//! [`anonrv_core::asymm_rv`] (DESIGN.md §4.2).  The experiment
//!
//! * sweeps the nonsymmetric workloads, runs the substitute on nonsymmetric
//!   pairs for several delays and records measured time against the
//!   substitute's own closed-form duration `P(n, δ̂)`;
//! * verifies per instance that the label scheme distinguishes the chosen
//!   pairs (the per-instance verification the substitution requires);
//! * reports how the worst measured time grows with `n`, which is the
//!   polynomial-versus-exponential contrast the paper draws against
//!   Section 4.

use anonrv_core::asymm_rv::AsymmRv;
use anonrv_core::label::{LabelScheme, TrailSignature};
use anonrv_plan::PairOrbits;
use anonrv_sim::{EngineConfig, Stic};
use anonrv_store::{Provenance, SweepSession};
use anonrv_uxs::{LengthRule, PseudorandomUxs};

use crate::report::{compression_note, fmt_opt_rounds, fmt_rounds, PlanCompression, Table};
use crate::runner::{distinct_in_order, run_cases_planned, Aggregate, Case, RunRecord};
use crate::suite::{nonsymmetric_delays, nonsymmetric_pairs, nonsymmetric_workloads, Scale};

/// Configuration of the `AsymmRV` experiment.
#[derive(Debug, Clone)]
pub struct AsymmConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Maximum nonsymmetric pairs per instance.
    pub max_pairs: usize,
    /// UXS length rule used by the procedure.
    pub uxs_rule: LengthRule,
}

impl Default for AsymmConfig {
    fn default() -> Self {
        AsymmConfig {
            scale: Scale::Quick,
            max_pairs: 3,
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
        }
    }
}

impl AsymmConfig {
    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        AsymmConfig {
            scale: Scale::Full,
            max_pairs: 5,
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
        }
    }
}

/// Raw records plus the per-instance label-distinctness verification.
#[derive(Debug, Clone)]
pub struct AsymmOutcome {
    /// One record per simulated STIC.
    pub records: Vec<RunRecord>,
    /// Pairs whose labels were *not* distinct (skipped from simulation and
    /// reported; empty on the shipped suites).
    pub label_collisions: Vec<(String, usize, usize)>,
    /// Per-instance pair-orbit planning statistics.
    pub plan_stats: Vec<PlanCompression>,
}

/// Run the experiment and return the raw outcome.
///
/// `AsymmRV` is one program per delay *budget* (δ = 0 and δ = 1 share budget
/// 1), so each budget gets one in-memory [`SweepSession`]: the workload's
/// pair-orbit partition (computed once per instance — most of these families
/// are rigid, where planning degrades to a no-op) collapses equivalent
/// cases, the trajectory cache is shared by every verified pair and every
/// delay mapping to the budget, and rayon fans out over the representative
/// merges.
pub fn collect(config: &AsymmConfig) -> AsymmOutcome {
    let workloads = nonsymmetric_workloads(config.scale);
    let uxs = PseudorandomUxs::with_rule(config.uxs_rule);
    let scheme = TrailSignature::new(uxs);
    let deltas = nonsymmetric_delays(config.scale);
    let mut records = Vec::new();
    let mut label_collisions = Vec::new();
    let mut plan_stats = Vec::new();
    for w in &workloads {
        let n = w.n();
        let mut verified_pairs = Vec::new();
        for (u, v) in nonsymmetric_pairs(&w.graph, config.max_pairs) {
            if scheme.labels_distinct(&w.graph, u, v, n) {
                verified_pairs.push((u, v));
            } else {
                label_collisions.push((w.label.clone(), u, v));
            }
        }
        let oracle = anonrv_core::FeasibilityOracle::new(&w.graph);
        let orbits = PairOrbits::compute(&w.graph);
        let mut instance = PlanCompression::new(w.label.clone(), n * n, orbits.num_pair_classes());
        for budget in distinct_in_order(deltas.iter().map(|&d| d.max(1))) {
            let program = AsymmRv::new(n, budget, &scheme, &uxs);
            let bound = program.full_duration();
            // exact horizons: symbolic serving removed the unroll ceiling,
            // so a silently saturated sum would misreport the bound the
            // suite claims to verify — overflow must be loud, not clamped
            let horizon_of = |delta: u128| {
                bound
                    .checked_add(delta)
                    .and_then(|h| h.checked_add(1))
                    .expect("exact AsymmRV horizon overflows Round")
            };
            let cases: Vec<Case<'_>> = deltas
                .iter()
                .copied()
                .filter(|&d| d.max(1) == budget)
                .flat_map(|d| {
                    verified_pairs.iter().map(move |&(u, v)| Case {
                        family: w.family.clone(),
                        label: w.label.clone(),
                        graph: &w.graph,
                        stic: Stic::new(u, v, d),
                        horizon: horizon_of(d),
                        bound: Some(bound),
                    })
                })
                .collect();
            let Some(max_horizon) = cases.iter().map(|c| c.horizon).max() else {
                continue; // no verified pairs on this instance
            };
            let mut session = SweepSession::with_orbits(
                None,
                &orbits,
                Provenance::Cold,
                &w.graph,
                &program,
                "",
                EngineConfig::with_horizon(max_horizon),
            );
            records.extend(run_cases_planned(&cases, &mut session, &oracle));
            instance.absorb(&session.stats());
        }
        plan_stats.push(instance);
    }
    AsymmOutcome { records, label_collisions, plan_stats }
}

/// Run the experiment as a report table (one row per instance).
pub fn run(config: &AsymmConfig) -> Table {
    let outcome = collect(config);
    let mut table = Table::new(
        "EXP-P31",
        "AsymmRV substitute on nonsymmetric STICs (Proposition 3.1)",
        &["family", "instance", "n", "STICs", "met", "within P(n, delta)", "max time", "max bound"],
    );
    let mut labels: Vec<String> = outcome.records.iter().map(|r| r.label.clone()).collect();
    labels.dedup();
    for label in labels {
        let group: Vec<RunRecord> =
            outcome.records.iter().filter(|r| r.label == label).cloned().collect();
        let agg = Aggregate::of(&group);
        let max_bound = group.iter().filter_map(|r| r.bound).max();
        table.push_row([
            group[0].family.clone(),
            label.clone(),
            group[0].n.to_string(),
            agg.total.to_string(),
            agg.met.to_string(),
            agg.within_bound.to_string(),
            fmt_opt_rounds(agg.max_time),
            max_bound.map(fmt_rounds).unwrap_or_else(|| "-".to_string()),
        ]);
    }
    table.push_note(
        "Paper: nonsymmetric STICs are feasible for every delay and the procedure is polynomial \
         in n; expected outcome is 'met' = 'STICs' on every row, with 'max time' growing \
         polynomially with n (contrast with the exponential growth of EXP-T41).",
    );
    table.push_note(format!(
        "Label collisions detected (pairs excluded, see DESIGN.md §4.2): {}",
        outcome.label_collisions.len()
    ));
    table.push_note(compression_note(&outcome.plan_stats));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_nonsymmetric_stic_meets_within_the_substitute_bound() {
        let config = AsymmConfig { max_pairs: 2, ..AsymmConfig::default() };
        let outcome = collect(&config);
        assert!(!outcome.records.is_empty());
        assert!(outcome.label_collisions.is_empty(), "{:?}", outcome.label_collisions);
        for r in &outcome.records {
            assert!(
                r.met,
                "AsymmRV must meet on {} pair ({}, {}) delta {}",
                r.label, r.u, r.v, r.delta
            );
            assert!(r.within_bound(), "substitute bound violated on {:?}", r);
            assert_eq!(r.class, "nonsymmetric");
        }
    }

    #[test]
    fn measured_time_is_monotone_ish_in_n_for_the_lollipop_family() {
        // The polynomial-shape claim: the worst time over the lollipop family
        // must stay well below the exponential envelope; here we just check
        // it is bounded by its own polynomial bound per instance (exhaustive
        // in the previous test) and that the table renders one row per
        // instance.
        let config = AsymmConfig { max_pairs: 1, ..AsymmConfig::default() };
        let table = run(&config);
        assert!(table.num_rows() >= 2);
    }
}
