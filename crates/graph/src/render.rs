//! Rendering of port-labelled graphs (DOT and plain text), used to reproduce
//! Figure 1 of the paper.

use std::fmt::Write as _;

use crate::generators::{Cardinal, QhGraph};
use crate::graph::PortGraph;

/// Render the graph in Graphviz DOT format.  Every edge is annotated with its
/// two port numbers (`taillabel`/`headlabel` on an undirected edge).
pub fn to_dot(g: &PortGraph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle, label=\"\"];");
    for v in g.nodes() {
        let _ = writeln!(out, "  n{v};");
    }
    for (u, pu, v, pv) in g.edges() {
        let _ = writeln!(out, "  n{u} -- n{v} [taillabel=\"{pu}\", headlabel=\"{pv}\"];");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render the graph in DOT with cardinal port letters (`N/E/S/W`) instead of
/// numbers — the natural rendering for `Q_h` / `Q̂_h` (Figure 1).
pub fn to_dot_cardinal(g: &PortGraph, name: &str) -> String {
    let letter = |p: usize| {
        Cardinal::from_port(p).map(|c| c.letter().to_string()).unwrap_or_else(|| p.to_string())
    };
    let mut out = String::new();
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle, label=\"\"];");
    for (u, pu, v, pv) in g.edges() {
        let _ = writeln!(
            out,
            "  n{u} -- n{v} [taillabel=\"{}\", headlabel=\"{}\"];",
            letter(pu),
            letter(pv)
        );
    }
    let _ = writeln!(out, "}}");
    out
}

/// A plain-text adjacency summary: one line per node with its degree and the
/// `(port -> neighbour @ entry port)` list.  Stable output, used in golden
/// tests and by the CLI.
pub fn to_text(g: &PortGraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "nodes: {}, edges: {}", g.num_nodes(), g.num_edges());
    for v in g.nodes() {
        let ports: Vec<String> = g.ports(v).map(|(p, w, q)| format!("{p}->{w}@{q}")).collect();
        let _ = writeln!(out, "  {v} (deg {}): {}", g.degree(v), ports.join("  "));
    }
    out
}

/// Textual reproduction of Figure 1: the tree `Q_h` drawn by depth levels and
/// the list of leaf edges added in `Q̂_h` (pairings and the four alternating
/// cycles), with cardinal port letters.
pub fn figure1_text(q: &QhGraph) -> String {
    let g = &q.graph;
    let mut out = String::new();
    let kind = if q.is_hat { "Q̂" } else { "Q" };
    let _ = writeln!(
        out,
        "{}_{} : {} nodes, {} edges, x = 3^(h-1) = {}",
        kind,
        q.h,
        g.num_nodes(),
        g.num_edges(),
        q.x()
    );
    // tree levels
    for d in 0..=q.h {
        let level: Vec<String> = g
            .nodes()
            .filter(|&v| q.depth[v] == d)
            .map(|v| match q.leaf_type[v] {
                Some(c) => format!("{v}[{}]", c.letter()),
                None => format!("{v}"),
            })
            .collect();
        let _ = writeln!(out, "  depth {d}: {}", level.join(" "));
    }
    // tree edges
    let _ = writeln!(out, "  tree edges (parent --port/port-- child):");
    for (u, pu, v, pv) in g.edges() {
        let du = q.depth[u];
        let dv = q.depth[v];
        if du + 1 == dv || dv + 1 == du {
            let (hi, ph, lo, pl) = if du < dv { (u, pu, v, pv) } else { (v, pv, u, pu) };
            let _ =
                writeln!(out, "    {hi} --{}/{}-- {lo}", cardinal_letter(ph), cardinal_letter(pl));
        }
    }
    if q.is_hat {
        let _ = writeln!(out, "  added leaf edges (Q̂ only):");
        for (u, pu, v, pv) in g.edges() {
            let both_leaves = q.leaf_type[u].is_some() && q.leaf_type[v].is_some();
            if both_leaves {
                let _ = writeln!(
                    out,
                    "    {u}[{}] --{}/{}-- {v}[{}]",
                    q.leaf_type[u].unwrap().letter(),
                    cardinal_letter(pu),
                    cardinal_letter(pv),
                    q.leaf_type[v].unwrap().letter()
                );
            }
        }
    }
    out
}

fn cardinal_letter(p: usize) -> String {
    Cardinal::from_port(p).map(|c| c.letter().to_string()).unwrap_or_else(|| p.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{oriented_ring, qh_hat, qh_tree};

    #[test]
    fn dot_output_contains_all_edges() {
        let g = oriented_ring(4).unwrap();
        let dot = to_dot(&g, "ring4");
        assert!(dot.starts_with("graph ring4 {"));
        assert_eq!(dot.matches(" -- ").count(), g.num_edges());
        assert!(dot.contains("taillabel"));
    }

    #[test]
    fn cardinal_dot_uses_letters() {
        let q = qh_hat(2).unwrap();
        let dot = to_dot_cardinal(&q.graph, "qhat2");
        assert!(dot.contains("taillabel=\"N\"") || dot.contains("headlabel=\"N\""));
        assert_eq!(dot.matches(" -- ").count(), q.graph.num_edges());
    }

    #[test]
    fn text_rendering_is_stable_and_complete() {
        let g = oriented_ring(3).unwrap();
        let t = to_text(&g);
        assert!(t.contains("nodes: 3, edges: 3"));
        assert_eq!(t.lines().count(), 1 + 3);
    }

    #[test]
    fn figure1_text_mentions_every_level_and_added_edges() {
        let tree = qh_tree(2).unwrap();
        let t = figure1_text(&tree);
        assert!(t.contains("depth 0"));
        assert!(t.contains("depth 2"));
        assert!(!t.contains("added leaf edges"));

        let hat = qh_hat(2).unwrap();
        let t = figure1_text(&hat);
        assert!(t.contains("added leaf edges"));
        // Q̂_2 has 34 edges, 16 of them tree edges, 18 added between leaves
        assert!(t.matches("--").count() >= 34);
    }
}
