//! EXP-ABL: ablations of the reproduction's design choices (DESIGN.md §4).
//! Pass `--full` for the EXPERIMENTS.md configuration.

use anonrv_experiments::ablation;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config =
        if full { ablation::AblationConfig::full() } else { ablation::AblationConfig::default() };
    for table in ablation::run(&config) {
        println!("{table}");
    }
}
