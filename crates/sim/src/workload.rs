//! Deterministic workload programs shared by the benches, the CLI and the
//! persistent-store tests.
//!
//! Sweep-shaped measurements want an agent whose event mix resembles the
//! paper's procedures (pseudo-random moves interleaved with short waits)
//! without any per-algorithm setup cost, so that what gets timed is
//! engine/planner/store work.  Keeping the program *here* — next to the
//! engines — gives every consumer the same byte-for-byte behaviour and,
//! just as importantly for the persistent plan cache, the same canonical
//! [`SweepWalker::program_key`]: artifacts recorded by the benchmarks warm
//! the CLI's sweeps and vice versa.

use crate::navigator::{AgentProgram, Navigator, Stop};
use crate::stic::Round;

/// The deterministic sweep-workload agent: a seeded LCG mixing
/// pseudo-random moves with short waits.  The seed is a constant of the
/// program (both agents share it), so differently seeded walkers are
/// different programs — [`SweepWalker::program_key`] embeds the seed for
/// exactly that reason.
pub struct SweepWalker {
    /// LCG seed (a constant of the program, shared by both agents).
    pub seed: u64,
}

impl SweepWalker {
    /// The canonical persistent-cache program key of this walker
    /// (`"sweep-walker-<seed in hex>"`).  Every store-backed consumer must
    /// use this key so their artifacts warm each other.
    pub fn program_key(&self) -> String {
        format!("sweep-walker-{:x}", self.seed)
    }
}

impl AgentProgram for SweepWalker {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let mut state = self.seed | 1;
        loop {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = state >> 33;
            if roll.is_multiple_of(4) {
                nav.wait((roll % 7 + 1) as Round)?;
            } else {
                nav.move_via(roll as usize % nav.degree())?;
            }
        }
    }

    fn name(&self) -> &str {
        "sweep-walker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::SweepEngine;
    use crate::engine::EngineConfig;
    use anonrv_graph::generators::oriented_ring;

    #[test]
    fn the_walker_is_deterministic_and_seed_sensitive() {
        let g = oriented_ring(8).unwrap();
        let stic = crate::stic::Stic::new(0, 3, 2);
        let a = SweepEngine::new(&g, &SweepWalker { seed: 0x5EED }, EngineConfig::batch(200));
        let b = SweepEngine::new(&g, &SweepWalker { seed: 0x5EED }, EngineConfig::batch(200));
        assert_eq!(a.simulate(&stic), b.simulate(&stic));
        assert_eq!(SweepWalker { seed: 0x5EED }.program_key(), "sweep-walker-5eed");
        assert_eq!(SweepWalker { seed: 10 }.program_key(), "sweep-walker-a");
    }
}
