//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Provides exactly the two entry points the workspace uses —
//! [`to_string_pretty`] and [`from_str`] — over the sibling `serde`
//! stand-in's owned JSON [`Value`](serde::Value) tree.  The printer writes
//! RFC 8259 JSON with two-space indentation; the parser accepts the full
//! grammar (nested containers, escapes including `\uXXXX` with surrogate
//! pairs) and keeps number literals as text so `u128` round counts survive
//! round-trips without precision loss.

use serde::{Deserialize, Serialize, Value};

/// Serialisation / parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Serialise a value to pretty-printed JSON (two-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Serialise a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // The pretty printer is the canonical one; compact output simply uses
    // zero indentation growth, so reuse it with post-hoc minification being
    // unnecessary for the workspace (only `to_string_pretty` is load-bearing).
    to_string_pretty(value)
}

/// Parse JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// printer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(text) => out.push_str(text),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_value(item, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, member)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                push_indent(indent + 1, out);
                write_string(key, out);
                out.push_str(": ");
                write_value(member, indent + 1, out);
            }
            out.push('\n');
            push_indent(indent, out);
            out.push('}');
        }
    }
}

fn push_indent(levels: usize, out: &mut String) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(Error(format!("expected '{literal}' at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let member = self.parse_value()?;
            entries.push((key, member));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(Error(format!("invalid number at byte {start}")));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number literal is ASCII")
            .to_string();
        Ok(Value::Num(text))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                // high surrogate: a `\uXXXX` low surrogate must follow
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid surrogate pair".into()))?
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?
                            };
                            out.push(c);
                            continue; // parse_hex4 already advanced past the digits
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // decode one UTF-8 scalar from the remaining input
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    let c = rest.chars().next().expect("peeked byte implies a char");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse exactly four hex digits, advancing past them.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error("non-ASCII in \\u escape".into()))?;
        let unit =
            u32::from_str_radix(digits, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end;
        Ok(unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("tørus — \"3x4\"\n".into())),
            ("n".into(), Value::Num("340282366920938463463374607431768211455".into())),
            (
                "rows".into(),
                Value::Arr(vec![
                    Value::Arr(vec![Value::Str("a".into()), Value::Null]),
                    Value::Bool(true),
                ]),
            ),
            ("empty_arr".into(), Value::Arr(vec![])),
            ("empty_obj".into(), Value::Obj(vec![])),
        ]);
        let text = {
            let mut out = String::new();
            write_value(&v, 0, &mut out);
            out
        };
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        let back = parser.parse_value().unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_escapes_and_surrogates() {
        let mut parser = Parser { bytes: "\"aé😀\\t\"".as_bytes(), pos: 0 };
        let s = parser.parse_string().unwrap();
        assert_eq!(s, "aé😀\t");
    }

    #[test]
    fn typed_round_trip_via_public_api() {
        let json = to_string_pretty(&vec![1u32, 2, 3]).unwrap();
        let back: Vec<u32> = from_str(&json).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        assert!(from_str::<Vec<u32>>("[1, 2,]").is_err());
    }
}
