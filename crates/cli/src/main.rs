//! `anonrv` — command-line front-end for the anonymous-rendezvous library.
//!
//! ```text
//! anonrv shrink   <graph> <u> <v>              Shrink(u, v), witness and distance
//! anonrv feasible <graph> <u> <v> <delta>      Corollary 3.1 classification of a STIC
//! anonrv simulate <graph> <u> <v> <delta> [--algo universal|symm|asymm]
//!                                              run a rendezvous algorithm on the STIC
//! anonrv orbits   <graph>                      view-equivalence classes of the graph
//! anonrv figure1  [h]                          ASCII rendering of Q̂_h (default h = 2)
//! ```
//!
//! Graph specifications: `ring:8`, `path:5`, `star:4`, `complete:5`,
//! `hypercube:3`, `torus:3x4`, `grid:2x3`, `lollipop:4x2`,
//! `caterpillar:4x2`, `double-tree:2x3`, `random:10x4x7` (n, extra edges,
//! seed), `circulant:12x1x3` (n, then the shifts), `qhat:4`.

use std::process::ExitCode;

use anonrv_core::asymm_rv::AsymmRv;
use anonrv_core::feasibility::{classify, SticClass};
use anonrv_core::label::TrailSignature;
use anonrv_core::symm_rv::SymmRv;
use anonrv_core::universal_rv::UniversalRv;
use anonrv_graph::generators::{
    caterpillar, circulant, complete, grid, hypercube, lollipop, oriented_ring, oriented_torus,
    path, qh_hat, random_connected, star, symmetric_double_tree,
};
use anonrv_graph::render::figure1_text;
use anonrv_graph::shrink::shrink_detailed;
use anonrv_graph::symmetry::OrbitPartition;
use anonrv_graph::PortGraph;
use anonrv_sim::{simulate, Round, Stic};
use anonrv_uxs::{LengthRule, PseudorandomUxs, UxsProvider};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            ExitCode::from(2)
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  anonrv shrink   <graph> <u> <v>\n  anonrv feasible <graph> <u> <v> <delta>\n  \
     anonrv simulate <graph> <u> <v> <delta> [--algo universal|symm|asymm] [--horizon H]\n  \
     anonrv orbits   <graph>\n  anonrv figure1  [h]\n\ngraphs: ring:8 path:5 star:4 complete:5 \
     hypercube:3 torus:3x4 grid:2x3 lollipop:4x2 caterpillar:4x2 double-tree:2x3 random:10x4x7 \
     circulant:12x1x3 qhat:4"
}

fn run(args: &[String]) -> Result<String, String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "shrink" => cmd_shrink(&args[1..]),
        "feasible" => cmd_feasible(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "orbits" => cmd_orbits(&args[1..]),
        "figure1" => cmd_figure1(&args[1..]),
        "help" | "--help" | "-h" => Ok(usage().to_string()),
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Parse a graph specification like `ring:8` or `torus:3x4`.
fn parse_graph(spec: &str) -> Result<PortGraph, String> {
    let (kind, params) = spec.split_once(':').ok_or_else(|| format!("bad graph spec '{spec}'"))?;
    let dims: Vec<usize> = params
        .split('x')
        .map(|p| p.parse::<usize>().map_err(|_| format!("bad parameter '{p}' in '{spec}'")))
        .collect::<Result<_, _>>()?;
    let need = |count: usize| -> Result<(), String> {
        if dims.len() == count {
            Ok(())
        } else {
            Err(format!("'{kind}' expects {count} parameter(s), got {}", dims.len()))
        }
    };
    let build = |r: anonrv_graph::Result<PortGraph>| r.map_err(|e| e.to_string());
    match kind {
        "ring" => {
            need(1)?;
            build(oriented_ring(dims[0]))
        }
        "path" => {
            need(1)?;
            build(path(dims[0]))
        }
        "star" => {
            need(1)?;
            build(star(dims[0]))
        }
        "complete" => {
            need(1)?;
            build(complete(dims[0]))
        }
        "hypercube" => {
            need(1)?;
            build(hypercube(dims[0]))
        }
        "torus" => {
            need(2)?;
            build(oriented_torus(dims[0], dims[1]))
        }
        "grid" => {
            need(2)?;
            build(grid(dims[0], dims[1]))
        }
        "lollipop" => {
            need(2)?;
            build(lollipop(dims[0], dims[1]))
        }
        "caterpillar" => {
            need(2)?;
            build(caterpillar(dims[0], dims[1]))
        }
        "double-tree" => {
            need(2)?;
            symmetric_double_tree(dims[0], dims[1]).map(|(g, _)| g).map_err(|e| e.to_string())
        }
        "random" => {
            need(3)?;
            build(random_connected(dims[0], dims[1], dims[2] as u64))
        }
        "circulant" => {
            if dims.len() < 2 {
                return Err(format!(
                    "'circulant' expects n followed by at least one shift, got {}",
                    dims.len()
                ));
            }
            build(circulant(dims[0], &dims[1..]))
        }
        "qhat" => {
            need(1)?;
            qh_hat(dims[0]).map(|q| q.graph).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown graph family '{other}'")),
    }
}

fn parse_node(g: &PortGraph, arg: Option<&String>, name: &str) -> Result<usize, String> {
    let v: usize = arg
        .ok_or_else(|| format!("missing node argument <{name}>"))?
        .parse()
        .map_err(|_| format!("<{name}> must be a node index"))?;
    if v >= g.num_nodes() {
        return Err(format!("node {v} out of range (graph has {} nodes)", g.num_nodes()));
    }
    Ok(v)
}

fn cmd_shrink(args: &[String]) -> Result<String, String> {
    let g = parse_graph(args.first().ok_or("missing <graph>")?)?;
    let u = parse_node(&g, args.get(1), "u")?;
    let v = parse_node(&g, args.get(2), "v")?;
    let partition = OrbitPartition::compute(&g);
    let result = shrink_detailed(&g, u, v, usize::MAX).expect("unbounded search completes");
    let distance = anonrv_graph::distance::distance(&g, u, v);
    Ok(format!(
        "graph: {} nodes, {} edges\nnodes {} and {} are {}\ndistance(u, v)   = {}\nShrink(u, v)     = {}\nwitness sequence = {:?}\nclosest pair     = {:?}",
        g.num_nodes(),
        g.num_edges(),
        u,
        v,
        if partition.are_symmetric(u, v) { "symmetric" } else { "nonsymmetric" },
        distance,
        result.shrink,
        result.witness,
        result.closest_pair,
    ))
}

fn cmd_feasible(args: &[String]) -> Result<String, String> {
    let g = parse_graph(args.first().ok_or("missing <graph>")?)?;
    let u = parse_node(&g, args.get(1), "u")?;
    let v = parse_node(&g, args.get(2), "v")?;
    let delta: Round = args
        .get(3)
        .ok_or("missing <delta>")?
        .parse()
        .map_err(|_| "<delta> must be a non-negative integer")?;
    let class = classify(&g, u, v, delta);
    let verdict = match class {
        SticClass::Nonsymmetric => {
            "FEASIBLE — the initial positions are nonsymmetric, any delay works".to_string()
        }
        SticClass::SymmetricFeasible { shrink } => format!(
            "FEASIBLE — symmetric positions with delta = {delta} >= Shrink(u, v) = {shrink}"
        ),
        SticClass::SymmetricInfeasible { shrink } => format!(
            "INFEASIBLE — symmetric positions with delta = {delta} < Shrink(u, v) = {shrink} (Lemma 3.1)"
        ),
        SticClass::SameNode => "FEASIBLE (degenerate) — both agents start on the same node".to_string(),
    };
    Ok(format!("STIC [({u}, {v}), {delta}]: {verdict}"))
}

fn cmd_simulate(args: &[String]) -> Result<String, String> {
    let g = parse_graph(args.first().ok_or("missing <graph>")?)?;
    let u = parse_node(&g, args.get(1), "u")?;
    let v = parse_node(&g, args.get(2), "v")?;
    let delta: Round = args
        .get(3)
        .ok_or("missing <delta>")?
        .parse()
        .map_err(|_| "<delta> must be a non-negative integer")?;
    let algo_name = flag_value(args, "--algo").unwrap_or("universal");
    let horizon_override: Option<Round> = match flag_value(args, "--horizon") {
        Some(h) => Some(h.parse().map_err(|_| "bad --horizon value")?),
        None => None,
    };

    let n = g.num_nodes();
    let stic = Stic::new(u, v, delta);
    let class = classify(&g, u, v, delta);
    let uxs = PseudorandomUxs::with_rule(LengthRule::Quadratic { c: 1, min_len: 16 });
    let scheme = TrailSignature::new(uxs);

    let (outcome, algo_label) = match algo_name {
        "universal" => {
            let algo = UniversalRv::new(&uxs, &scheme);
            let d_hint = match class {
                SticClass::SymmetricFeasible { shrink }
                | SticClass::SymmetricInfeasible { shrink } => shrink.max(1),
                _ => 1,
            };
            let horizon = horizon_override
                .unwrap_or_else(|| algo.completion_horizon(n, d_hint, delta.max(1)));
            (simulate(&g, &algo, &stic, horizon), "UniversalRV")
        }
        "symm" => {
            let d = match class {
                SticClass::SymmetricFeasible { shrink }
                | SticClass::SymmetricInfeasible { shrink } => shrink.max(1),
                _ => return Err("--algo symm requires symmetric starting positions".to_string()),
            };
            let program = SymmRv::new(n, d, delta.max(d as Round), &uxs);
            let bound =
                anonrv_core::bounds::symm_rv_bound(n, d, delta.max(d as Round), uxs.length(n));
            let horizon = horizon_override.unwrap_or(bound.saturating_add(delta).saturating_add(1));
            (simulate(&g, &program, &stic, horizon), "SymmRV")
        }
        "asymm" => {
            let program = AsymmRv::new(n, delta.max(1), &scheme, &uxs);
            let horizon = horizon_override
                .unwrap_or_else(|| program.full_duration().saturating_add(delta).saturating_add(1));
            (simulate(&g, &program, &stic, horizon), "AsymmRV")
        }
        other => return Err(format!("unknown algorithm '{other}' (universal|symm|asymm)")),
    };

    let class_text = match class {
        SticClass::Nonsymmetric => "nonsymmetric (feasible)".to_string(),
        SticClass::SymmetricFeasible { shrink } => {
            format!("symmetric, Shrink = {shrink} (feasible)")
        }
        SticClass::SymmetricInfeasible { shrink } => {
            format!("symmetric, Shrink = {shrink} (INFEASIBLE)")
        }
        SticClass::SameNode => "same node".to_string(),
    };
    let result = match outcome.meeting {
        Some(m) => format!(
            "RENDEZVOUS at node {} after {} round(s) from the later agent's start (global round {})",
            m.node, m.later_round, m.global_round
        ),
        None => format!("no rendezvous within the horizon ({} rounds)", outcome.horizon),
    };
    Ok(format!(
        "graph: {} nodes, {} edges\nSTIC [({u}, {v}), {delta}]: {class_text}\nalgorithm: {algo_label}\n{result}",
        g.num_nodes(),
        g.num_edges(),
    ))
}

fn cmd_orbits(args: &[String]) -> Result<String, String> {
    let g = parse_graph(args.first().ok_or("missing <graph>")?)?;
    let partition = OrbitPartition::compute(&g);
    let classes = partition.classes();
    let mut out = format!(
        "graph: {} nodes, {} edges\nview-equivalence classes: {}\n",
        g.num_nodes(),
        g.num_edges(),
        classes.len()
    );
    for (i, class) in classes.iter().enumerate() {
        out.push_str(&format!("  class {i}: {class:?}\n"));
    }
    out.push_str(if classes.len() == 1 {
        "all nodes are pairwise symmetric\n"
    } else if classes.len() == g.num_nodes() {
        "no two nodes are symmetric\n"
    } else {
        "the graph has both symmetric and nonsymmetric pairs\n"
    });
    // pair-orbit view: what the sweep planner collapses all-pairs workloads to
    let n = g.num_nodes();
    let orbits = anonrv_plan::PairOrbits::compute(&g);
    out.push_str(&format!(
        "automorphism group order: {}\npair orbits (ordered pairs): {} of {} (compression {:.1}x)",
        orbits.group_order(),
        orbits.num_pair_classes(),
        n * n,
        orbits.compression(),
    ));
    Ok(out)
}

fn cmd_figure1(args: &[String]) -> Result<String, String> {
    let h: usize = match args.first() {
        Some(arg) => arg.parse().map_err(|_| "h must be an integer >= 2")?,
        None => 2,
    };
    let q = qh_hat(h).map_err(|e| e.to_string())?;
    Ok(figure1_text(&q))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(|s| s.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn graph_specs_parse() {
        assert_eq!(parse_graph("ring:6").unwrap().num_nodes(), 6);
        assert_eq!(parse_graph("torus:3x4").unwrap().num_nodes(), 12);
        assert_eq!(parse_graph("lollipop:4x2").unwrap().num_nodes(), 6);
        assert_eq!(parse_graph("double-tree:2x2").unwrap().num_nodes(), 14);
        assert_eq!(parse_graph("qhat:2").unwrap().num_nodes(), 17);
        assert_eq!(parse_graph("circulant:12x1x3").unwrap().num_nodes(), 12);
        assert_eq!(parse_graph("circulant:12x1x3").unwrap().degree(0), 4);
        assert!(parse_graph("ring").is_err());
        assert!(parse_graph("ring:abc").is_err());
        assert!(parse_graph("torus:3").is_err());
        assert!(parse_graph("circulant:12").is_err());
        assert!(parse_graph("circulant:12x2x4").is_err());
        assert!(parse_graph("mystery:3").is_err());
    }

    #[test]
    fn shrink_command_reports_the_double_tree_example() {
        let out = run(&argv(&["shrink", "double-tree:2x2", "0", "7"])).unwrap();
        assert!(out.contains("Shrink(u, v)"), "{out}");
    }

    #[test]
    fn feasible_command_matches_corollary_3_1() {
        let feasible = run(&argv(&["feasible", "ring:6", "0", "2", "2"])).unwrap();
        assert!(feasible.contains("FEASIBLE"), "{feasible}");
        let infeasible = run(&argv(&["feasible", "ring:6", "0", "3", "1"])).unwrap();
        assert!(infeasible.contains("INFEASIBLE"), "{infeasible}");
    }

    #[test]
    fn simulate_command_achieves_rendezvous_on_a_feasible_stic() {
        let out = run(&argv(&["simulate", "ring:4", "0", "1", "1"])).unwrap();
        assert!(out.contains("RENDEZVOUS"), "{out}");
        let asymm =
            run(&argv(&["simulate", "lollipop:3x2", "0", "4", "1", "--algo", "asymm"])).unwrap();
        assert!(asymm.contains("RENDEZVOUS"), "{asymm}");
    }

    #[test]
    fn orbits_and_figure1_render() {
        let orbits = run(&argv(&["orbits", "ring:5"])).unwrap();
        assert!(orbits.contains("all nodes are pairwise symmetric"), "{orbits}");
        // 5 rotations collapse the 25 ordered pairs to 5 orbits
        assert!(
            orbits.contains("pair orbits (ordered pairs): 5 of 25 (compression 5.0x)"),
            "{orbits}"
        );
        let rigid = run(&argv(&["orbits", "lollipop:3x2"])).unwrap();
        assert!(rigid.contains("automorphism group order: 1"), "{rigid}");
        let fig = run(&argv(&["figure1"])).unwrap();
        assert!(fig.contains("17 nodes"), "{fig}");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(run(&argv(&["simulate", "ring:4", "0", "9", "1"])).is_err());
        assert!(run(&argv(&["unknown"])).is_err());
        assert!(run(&[]).is_err());
        assert!(run(&argv(&["simulate", "ring:4", "0", "1", "1", "--algo", "nope"])).is_err());
        assert!(run(&argv(&["help"])).is_ok());
    }
}
