//! # anonrv-bench
//!
//! Shared fixtures for the criterion benchmarks that time the kernels behind
//! every reproduced table/figure (see DESIGN.md §3 for the experiment index
//! and EXPERIMENTS.md for the recorded outcomes).  The benches themselves
//! live in `benches/`, one per experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use anonrv_core::label::TrailSignature;
use anonrv_core::universal_rv::UniversalRv;
use anonrv_graph::PortGraph;
use anonrv_sim::{
    simulate, simulate_with, AgentProgram, EngineConfig, Navigator, Round, SimOutcome, Stic, Stop,
    SweepEngine,
};
use anonrv_uxs::{LengthRule, PseudorandomUxs};

/// The short UXS rule shared by all benchmarks (coverage on the benchmark
/// instances is asserted by the integration suite).
pub fn bench_uxs() -> PseudorandomUxs {
    PseudorandomUxs::with_rule(LengthRule::Quadratic { c: 1, min_len: 16 })
}

/// Run `UniversalRV` on a STIC until rendezvous (or the completion horizon of
/// the phase with the given parameter hints) and return the outcome.
pub fn run_universal(g: &PortGraph, stic: Stic, d_hint: usize, delta_hint: Round) -> SimOutcome {
    let uxs = bench_uxs();
    let scheme = TrailSignature::new(uxs);
    let algo = UniversalRv::new(&uxs, &scheme);
    let horizon = algo.completion_horizon(g.num_nodes(), d_hint.max(1), delta_hint.max(1));
    simulate(g, &algo, &stic, horizon)
}

/// Assert that an outcome represents a rendezvous (used by benches so a
/// regression in the algorithm fails the bench loudly instead of silently
/// timing a non-meeting run).
pub fn expect_met(outcome: &SimOutcome) -> Round {
    outcome.rendezvous_time().expect("benchmark STIC must be solved")
}

// ---------------------------------------------------------------------------
// the symm-sweep workload (BENCH_sweep.json / benches/sweep_batch.rs)
// ---------------------------------------------------------------------------

/// Deterministic agent of the sweep workload (re-exported from
/// [`anonrv_sim::workload`] so the benches, the CLI and the store tests
/// share one byte-for-byte program *and* one canonical cache program key).
pub use anonrv_sim::SweepWalker;

/// A deliberately **expensive** variant of [`SweepWalker`]: the same
/// pseudo-random move/wait mix, but every action first burns `cost`
/// rounds of a deterministic hash mix whose result feeds the decision —
/// standing in for an algorithm with real per-round bookkeeping (label
/// construction, UXS evaluation).  The store benchmark records with this
/// program so trajectory recording dominates the cold run, which is what
/// the warm paths skip: the cold/warm gap it measures is the one a real
/// workload would see.
///
/// The mix feeds the walk, so the compiler cannot elide it, and the walk
/// is a pure function of `(seed, cost)` — [`ExpensiveWalker::program_key`]
/// embeds both.
pub struct ExpensiveWalker {
    /// LCG seed (a constant of the program, shared by both agents).
    pub seed: u64,
    /// Hash-mix iterations paid per action.
    pub cost: u32,
}

impl ExpensiveWalker {
    /// The canonical persistent-cache program key of this walker
    /// (`"expensive-walker-<seed in hex>-<cost>"`).
    pub fn program_key(&self) -> String {
        format!("expensive-walker-{:x}-{}", self.seed, self.cost)
    }
}

impl AgentProgram for ExpensiveWalker {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let mut state = self.seed | 1;
        loop {
            for _ in 0..self.cost {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                state ^= state >> 29;
            }
            let roll = state >> 33;
            if roll.is_multiple_of(4) {
                nav.wait((roll % 7 + 1) as Round)?;
            } else {
                nav.move_via(roll as usize % nav.degree())?;
            }
        }
    }

    fn name(&self) -> &str {
        "expensive-walker"
    }
}

/// The STICs of the symm-sweep workload on a graph of `n` nodes: **all**
/// `n²` ordered `(u, v)` pairs × every delay in `{0..deltas}`.
pub fn sweep_stics(n: usize, deltas: u32) -> Vec<Stic> {
    let mut stics = Vec::with_capacity(n * n * deltas as usize);
    for u in 0..n {
        for v in 0..n {
            for delta in 0..deltas {
                stics.push(Stic::new(u, v, delta as Round));
            }
        }
    }
    stics
}

/// Run `stics` through per-call lockstep simulation (the pre-batch
/// baseline): every call re-executes both agents' programs from scratch.
/// Returns the number of meetings (consumed so the work cannot be elided).
pub fn sweep_per_call_lockstep(
    g: &PortGraph,
    program: &dyn AgentProgram,
    stics: &[Stic],
    horizon: Round,
) -> usize {
    stics
        .iter()
        .filter(|stic| {
            simulate_with(g, program, program, stic, EngineConfig::lockstep(horizon)).met()
        })
        .count()
}

/// Run the symm-sweep workload (all ordered pairs × `deltas` delays)
/// through one batch [`SweepEngine`]: each start node's trajectory is
/// recorded once and each pair's whole delay sweep is one cached-timeline
/// pass (`simulate_deltas`).  Returns the number of meetings.
pub fn sweep_batch_engine(
    g: &PortGraph,
    program: &dyn AgentProgram,
    deltas: u32,
    horizon: Round,
) -> usize {
    let engine = SweepEngine::new(g, program, EngineConfig::batch(horizon));
    let deltas: Vec<Round> = (0..deltas as Round).collect();
    let n = g.num_nodes();
    let mut met = 0usize;
    for u in 0..n {
        for v in 0..n {
            met += engine.simulate_deltas(u, v, &deltas).iter().filter(|o| o.met()).count();
        }
    }
    met
}

/// Run the symm-sweep workload through the **pair-orbit planner**
/// ([`anonrv_plan::PlannedSweep`]) on top of the batch engine: the
/// automorphism group collapses the `n²` ordered pairs to their orbit
/// representatives (256× on the 16×16 torus), only the representatives are
/// merged, and `met` is counted through the expansion map.  Returns the
/// number of meetings — identical to [`sweep_batch_engine`] (the differential
/// and validation tests pin bit-identity of the full outcomes).
pub fn sweep_planned_engine(
    g: &PortGraph,
    program: &dyn AgentProgram,
    deltas: u32,
    horizon: Round,
) -> usize {
    let deltas: Vec<Round> = (0..deltas as Round).collect();
    let planned = anonrv_plan::PlannedSweep::new(g, program, EngineConfig::batch(horizon));
    let plan = anonrv_plan::SweepPlan::from_orbits(planned.orbits().clone(), deltas, horizon);
    planned.run(&plan).met_total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::oriented_ring;

    #[test]
    fn the_benchmark_fixture_solves_its_reference_stic() {
        let g = oriented_ring(4).unwrap();
        let outcome = run_universal(&g, Stic::new(0, 1, 1), 1, 1);
        // the meeting may happen as early as the later agent's start round
        let _time = expect_met(&outcome);
        assert!(outcome.met());
    }

    #[test]
    fn the_sweep_workload_agrees_across_engines_and_mixes_outcomes() {
        use anonrv_graph::generators::oriented_torus;
        let g = oriented_torus(3, 4).unwrap();
        let stics = sweep_stics(g.num_nodes(), 5);
        assert_eq!(stics.len(), 12 * 12 * 5);
        let program = SweepWalker { seed: 0x5EED };
        let met_lockstep = sweep_per_call_lockstep(&g, &program, &stics, 64);
        let met_batch = sweep_batch_engine(&g, &program, 5, 64);
        let met_planned = sweep_planned_engine(&g, &program, 5, 64);
        assert_eq!(met_lockstep, met_batch);
        assert_eq!(met_planned, met_batch);
        assert!(met_batch > 0 && met_batch < stics.len());
    }
}
