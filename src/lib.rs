//! # anonrv
//!
//! Umbrella crate for the reproduction of *Using Time to Break Symmetry:
//! Universal Deterministic Anonymous Rendezvous* (Pelc & Yadav, SPAA 2019),
//! grown into a system that evaluates rendezvous workloads at scale:
//! exhaustive all-pairs × delay tables, resumable across runs (persistent
//! plan cache) and shardable across processes.
//!
//! **Start with `ARCHITECTURE.md`** (at the repository root, and embedded
//! at the end of this page) for the system-level picture — the
//! three-engine simulation stack, the plan-then-execute pipeline, the
//! store/shard layer and the data-flow diagram of an exhaustive sweep.
//! This crate re-exports the focused sub-crates under one roof so that
//! downstream users (and the workspace-level integration tests and
//! examples) need a single dependency.
//!
//! ## The layers, bottom up
//!
//! * [`graph`] ([`anonrv_graph`]) — the port-labelled graph substrate: every
//!   generator used by the paper or the experiments, the view-equivalence
//!   partition, `Shrink`, the flat product-space
//!   [`anonrv_graph::pairspace`] engine, and the canonical structural hash
//!   ([`anonrv_graph::fingerprint`]) the persistent cache keys by;
//! * [`uxs`] ([`anonrv_uxs`]) — universal exploration sequences;
//! * [`sim`] ([`anonrv_sim`]) — the two-agent round simulator: three
//!   bit-identical engines (streaming for astronomical horizons, lockstep
//!   for one-off calls, trajectory-memoized batch for sweeps);
//! * [`core`] ([`anonrv_core`]) — the paper's algorithms (`SymmRV`,
//!   `AsymmRV`, `UniversalRV`) and the exact feasibility characterisation;
//! * [`plan`] ([`anonrv_plan`]) — symmetry-reduced sweep planning: the `n²`
//!   ordered start pairs collapse onto automorphism orbits, one
//!   representative runs per `(orbit, δ)`, and outcomes broadcast back
//!   bit-identically;
//! * [`store`] ([`anonrv_store`]) — persistence, sharding and
//!   orchestration for planned sweeps: a content-addressed, *horizon-
//!   generic* on-disk cache (orbits, trajectory timelines, outcome
//!   tables; horizons recorded inside the frames, so one recording at the
//!   largest horizon serves every smaller one by exact prefix truncation;
//!   integrity-checked, falling back to recompute; compactable via
//!   [`anonrv_store::Store::gc`]), shard persistence whose partial
//!   results merge deterministically into the unsharded table, and the
//!   [`anonrv_store::SweepSession`] pipeline (plan → cache-probe →
//!   execute → record → broadcast) that the CLI, the experiment harness
//!   and the benchmarks all drive;
//! * [`experiments`] ([`anonrv_experiments`]) — the table/figure harnesses,
//!   including the `--exhaustive` uncapped sweeps;
//! * [`obs`] ([`anonrv_obs`]) — dependency-free structured telemetry
//!   threaded through all of the above: a lock-cheap metrics registry,
//!   explicit timing spans and events with pluggable JSONL sinks, and the
//!   schema-versioned report/trace validation behind `anonrv sweep
//!   --report json` / `--trace-out` (off by default; one relaxed atomic
//!   load per site when disabled).
//!
//! The `anonrv` CLI (`crates/cli`) fronts the same machinery; see
//! `anonrv help`, in particular `anonrv sweep --cache-dir … --shards …
//! --merge` for store-backed exhaustive sweeps and `anonrv cache <dir>
//! stats|gc` for surveying and compacting a cache directory.
//!
//! ---
#![doc = include_str!("../ARCHITECTURE.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use anonrv_core as core;
pub use anonrv_experiments as experiments;
pub use anonrv_graph as graph;
pub use anonrv_obs as obs;
pub use anonrv_plan as plan;
pub use anonrv_sim as sim;
pub use anonrv_store as store;
pub use anonrv_uxs as uxs;
