//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! The workspace only serialises plain named-field structs to JSON and back
//! (via `serde_json`), so the stand-in replaces serde's visitor machinery
//! with a small owned JSON [`Value`] tree: [`Serialize`] renders into a
//! `Value`, [`Deserialize`] rebuilds from one.  The derive macros come from
//! the sibling `serde_derive` stand-in and generate impls of these traits.

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON value.
///
/// Numbers are kept as their literal text so that `u128` round counts (the
/// simulator's `Round` type) survive round-trips without precision loss.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, stored as its literal text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (insertion-ordered).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialisation / deserialisation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Construct an error with the given message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a JSON [`Value`].
pub trait Serialize {
    /// Render into a JSON value.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Value used when an object member is absent.  Errors by default;
    /// `Option<T>` overrides this to `None` (matching serde's behaviour for
    /// optional fields).
    fn missing(field: &str) -> Result<Self, Error> {
        Err(Error::msg(format!("missing field '{field}'")))
    }
}

/// Helper used by derive-generated code: fetch and deserialise one field.
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(member) => T::from_value(member),
        None => T::missing(name),
    }
}

// ---------------------------------------------------------------------------
// impls for the primitive types the workspace serialises
// ---------------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(text) => text
                        .parse::<$t>()
                        .map_err(|_| Error::msg(format!("invalid {} literal '{text}'", stringify!($t)))),
                    other => Err(Error::msg(format!("expected a number, found {other:?}"))),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(format!("{self}"))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(text) => {
                text.parse::<f64>().map_err(|_| Error::msg(format!("invalid f64 literal '{text}'")))
            }
            other => Err(Error::msg(format!("expected a number, found {other:?}"))),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected a bool, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::msg(format!("expected a string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }

    fn missing(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!("expected an array, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(
            u128::from_value(&340282366920938463463374607431768211455u128.to_value()),
            Ok(u128::MAX)
        );
        assert_eq!(String::from_value(&"hé — llo".to_string().to_value()), Ok("hé — llo".into()));
        assert_eq!(Option::<usize>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<usize>::from_value(&7usize.to_value()), Ok(Some(7)));
        assert_eq!(Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()), Ok(vec![1, 2, 3]));
    }

    #[test]
    fn missing_fields_default_only_for_options() {
        let obj = Value::Obj(vec![]);
        assert!(from_field::<usize>(&obj, "gone").is_err());
        assert_eq!(from_field::<Option<usize>>(&obj, "gone"), Ok(None));
    }

    #[test]
    fn type_mismatches_error() {
        assert!(bool::from_value(&Value::Num("1".into())).is_err());
        assert!(u32::from_value(&Value::Num("-5".into())).is_err());
        assert!(u8::from_value(&Value::Num("300".into())).is_err());
    }
}
