//! EXP-FIG1 bench: construction and verification cost of the Section 4
//! graphs `Q_h` / `Q̂_h` (Figure 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use anonrv_graph::generators::{qh_hat, qh_tree};
use anonrv_graph::symmetry::OrbitPartition;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_construction");
    for h in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::new("qh_tree", h), &h, |b, &h| {
            b.iter(|| qh_tree(black_box(h)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("qh_hat", h), &h, |b, &h| {
            b.iter(|| qh_hat(black_box(h)).unwrap())
        });
    }
    let q3 = qh_hat(3).unwrap();
    group.bench_function("orbit partition of Q̂_3", |b| {
        b.iter(|| OrbitPartition::compute(black_box(&q3.graph)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
