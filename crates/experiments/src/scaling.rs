//! EXP-P41 — Proposition 4.1: the time used by `UniversalRV` grows like
//! `O(n + δ)^O(n + δ)`.
//!
//! The experiment runs `UniversalRV` to rendezvous on a family of symmetric
//! STICs of increasing size and delay (oriented rings, starting nodes at
//! distance `d = Shrink = 2`, `δ = d`, plus a delay sweep at fixed `n`), and
//! reports for every point
//!
//! * the measured rendezvous time (rounds since the later agent's start),
//! * the index of the resolving phase `g(n, d, δ)` and the paper's phase-count
//!   estimate `O(n⁴ + δ²)`,
//! * the analytic completion bound our implementation guarantees, and
//! * the paper's envelope `(n + δ)^(n + δ)`.
//!
//! The expected *shape* is super-polynomial growth of both the measured time
//! and the bound, while staying below the envelope — not a match of absolute
//! constants (the paper gives none).

use anonrv_core::bounds::proposition41_envelope;
use anonrv_core::label::TrailSignature;
use anonrv_core::pairing::phase_of;
use anonrv_core::universal_rv::UniversalRv;
use anonrv_graph::generators::oriented_ring;
use anonrv_graph::shrink::shrink;
use anonrv_sim::{EngineConfig, Round, Stic, SweepEngine};
use anonrv_uxs::{LengthRule, PseudorandomUxs};

use crate::report::{fmt_opt_rounds, fmt_rounds, Table};
use crate::runner::{distinct_in_order, par_map};

/// One point of the scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalingPoint {
    /// Ring size.
    pub n: usize,
    /// Distance between the starting nodes (`= Shrink` on the oriented ring).
    pub d: usize,
    /// Delay.
    pub delta: Round,
}

/// Configuration of the scaling experiment.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// The sweep points.
    pub points: Vec<ScalingPoint>,
    /// UXS length rule.
    pub uxs_rule: LengthRule,
}

impl Default for ScalingConfig {
    fn default() -> Self {
        ScalingConfig {
            points: vec![
                ScalingPoint { n: 4, d: 2, delta: 2 },
                ScalingPoint { n: 5, d: 2, delta: 2 },
                ScalingPoint { n: 6, d: 2, delta: 2 },
                ScalingPoint { n: 4, d: 2, delta: 3 },
            ],
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
        }
    }
}

impl ScalingConfig {
    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        ScalingConfig {
            points: vec![
                ScalingPoint { n: 4, d: 2, delta: 2 },
                ScalingPoint { n: 5, d: 2, delta: 2 },
                ScalingPoint { n: 6, d: 2, delta: 2 },
                ScalingPoint { n: 7, d: 2, delta: 2 },
                ScalingPoint { n: 8, d: 2, delta: 2 },
                ScalingPoint { n: 4, d: 2, delta: 3 },
                ScalingPoint { n: 4, d: 2, delta: 4 },
                ScalingPoint { n: 6, d: 3, delta: 3 },
            ],
            uxs_rule: LengthRule::Quadratic { c: 1, min_len: 16 },
        }
    }
}

/// One measured row of the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScalingRecord {
    /// The sweep point.
    pub point: ScalingPoint,
    /// Measured rendezvous time.
    pub time: Option<Round>,
    /// Index of the resolving phase `g(n, d, δ)`.
    pub resolving_phase: u64,
    /// The paper's phase-count shape `n⁴ + δ²` evaluated at the point.
    pub phase_shape: u64,
    /// Our implementation's completion bound (the simulation horizon).
    pub completion_bound: Round,
    /// The paper's `(n + δ)^(n + δ)` envelope.
    pub envelope: Round,
}

/// Run the sweep and return the measured records (in `config.points`
/// order).
///
/// `UniversalRV` takes no parameters, so all points sharing one ring size
/// run the same program on the same graph: each size gets one
/// [`SweepEngine`] at the largest completion bound among its points, the
/// trajectory cache records each queried start node once, and rayon fans
/// out over cached-timeline merges (capped at every point's own bound).
pub fn collect(config: &ScalingConfig) -> Vec<ScalingRecord> {
    let uxs = PseudorandomUxs::with_rule(config.uxs_rule);
    let scheme = TrailSignature::new(uxs);
    let algo = UniversalRv::new(&uxs, &scheme);
    let mut records: Vec<Option<ScalingRecord>> = vec![None; config.points.len()];
    for n in distinct_in_order(config.points.iter().map(|p| p.n)) {
        let g = oriented_ring(n).expect("ring generation");
        let group: Vec<usize> =
            (0..config.points.len()).filter(|&i| config.points[i].n == n).collect();
        let max_horizon = group
            .iter()
            .map(|&i| algo.completion_horizon(n, config.points[i].d, config.points[i].delta))
            .max()
            .expect("size groups are non-empty");
        let engine = SweepEngine::new(&g, &algo, EngineConfig::with_horizon(max_horizon));
        for (i, record) in par_map(group, |&i| {
            let point = config.points[i];
            let ScalingPoint { n, d, delta } = point;
            let (u, v) = (0usize, d);
            debug_assert_eq!(shrink(&g, u, v), Some(d));
            let horizon = algo.completion_horizon(n, d, delta);
            let outcome = engine.simulate_capped(&Stic::new(u, v, delta), horizon);
            let record = ScalingRecord {
                point,
                time: outcome.rendezvous_time(),
                resolving_phase: phase_of(n, d, delta.min(u64::MAX as Round) as u64),
                phase_shape: (n as u64).pow(4) + (delta as u64).pow(2),
                completion_bound: horizon,
                envelope: proposition41_envelope(n, delta),
            };
            (i, record)
        }) {
            records[i] = Some(record);
        }
    }
    records.into_iter().map(|r| r.expect("every point is simulated")).collect()
}

/// Run the experiment as a report table.
pub fn run(config: &ScalingConfig) -> Table {
    let records = collect(config);
    let mut table = Table::new(
        "EXP-P41",
        "UniversalRV total time versus (n, delta) on oriented rings (Proposition 4.1)",
        &[
            "n",
            "d",
            "delta",
            "measured time",
            "resolving phase g(n,d,delta)",
            "n^4 + delta^2",
            "completion bound",
            "envelope (n+delta)^(n+delta)",
        ],
    );
    for r in &records {
        table.push_row([
            r.point.n.to_string(),
            r.point.d.to_string(),
            r.point.delta.to_string(),
            fmt_opt_rounds(r.time),
            r.resolving_phase.to_string(),
            r.phase_shape.to_string(),
            fmt_rounds(r.completion_bound),
            fmt_rounds(r.envelope),
        ]);
    }
    table.push_note(
        "Paper: the number of phases before rendezvous is O(n^4 + delta^2) and the total time is \
         O(n + delta)^O(n + delta); the expected shape is measured time and completion bound \
         growing super-polynomially with n + delta while every measurement stays at or below the \
         completion bound.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScalingConfig {
        ScalingConfig {
            points: vec![
                ScalingPoint { n: 4, d: 2, delta: 2 },
                ScalingPoint { n: 5, d: 2, delta: 2 },
                ScalingPoint { n: 4, d: 2, delta: 3 },
            ],
            ..ScalingConfig::default()
        }
    }

    #[test]
    fn every_point_meets_below_its_completion_bound() {
        for r in collect(&tiny()) {
            let t = r.time.expect("feasible STIC must be solved");
            assert!(t <= r.completion_bound, "{r:?}");
            assert!(
                r.resolving_phase as u128 <= r.phase_shape as u128 * 4,
                "the resolving phase should respect the O(n^4 + delta^2) shape: {r:?}"
            );
        }
    }

    #[test]
    fn time_grows_with_n_at_fixed_delta() {
        let records = collect(&tiny());
        let t4 = records[0].time.unwrap();
        let t5 = records[1].time.unwrap();
        assert!(t5 > t4, "measured time must grow with n (t4 = {t4}, t5 = {t5})");
        // and with the delay at fixed n
        let t4_d3 = records[2].time.unwrap();
        assert!(t4_d3 > t4, "measured time must grow with the delay (t4 = {t4}, t4_d3 = {t4_d3})");
    }

    #[test]
    fn the_table_has_one_row_per_point() {
        let cfg = tiny();
        assert_eq!(run(&cfg).num_rows(), cfg.points.len());
    }
}
