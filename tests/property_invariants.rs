//! Property-based tests (proptest) on the core data structures and the
//! paper's invariants.

use proptest::prelude::*;

use anonrv_core::feasibility::{is_feasible, symmetric_trajectories_never_meet};
use anonrv_core::leader::{elect_leader, LeaderElection};
use anonrv_core::pairing::{f, f_inv, g, g_inv, params_of_phase, phase_of};
use anonrv_graph::distance::{bfs_distances, distance};
use anonrv_graph::generators::{
    oriented_ring, oriented_torus, random_connected, symmetric_double_tree,
};
use anonrv_graph::shrink::shrink;
use anonrv_graph::symmetry::OrbitPartition;
use anonrv_graph::traversal::{apply_ports, apply_ports_end};
use anonrv_graph::view::symmetric_by_views;
use anonrv_uxs::{apply, transcript, PseudorandomUxs, Uxs, UxsProvider};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ------------------------------------------------------------------
    // pairing bijections (Section 3.2)
    // ------------------------------------------------------------------

    #[test]
    fn pairing_f_round_trips(x in 1u64..5_000, y in 1u64..5_000) {
        let z = f(x, y);
        prop_assert_eq!(f_inv(z), (x, y));
    }

    #[test]
    fn pairing_f_inverse_round_trips(z in 1u64..2_000_000) {
        let (x, y) = f_inv(z);
        prop_assert!(x >= 1 && y >= 1);
        prop_assert_eq!(f(x, y), z);
    }

    #[test]
    fn pairing_g_round_trips(x in 1u64..300, y in 1u64..300, z in 1u64..300) {
        prop_assert_eq!(g_inv(g(x, y, z)), (x, y, z));
    }

    #[test]
    fn phase_decoding_round_trips(p in 1u64..500_000) {
        let (n, d, delta) = params_of_phase(p);
        prop_assert_eq!(phase_of(n, d, delta), p);
        prop_assert!(n >= 1 && d >= 1 && delta >= 1);
    }

    // ------------------------------------------------------------------
    // graph substrate invariants
    // ------------------------------------------------------------------

    #[test]
    fn random_connected_graphs_validate_and_are_connected(
        n in 2usize..14,
        extra in 0usize..8,
        seed in 0u64..500,
    ) {
        // the generator rejects more extra edges than the complete graph can hold
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, seed).unwrap();
        prop_assert!(g.validate().is_ok());
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.num_nodes(), n);
        // port reciprocity: succ(succ(v, p)) returns through the reported port
        for v in g.nodes() {
            for p in 0..g.degree(v) {
                let (w, q) = g.succ(v, p);
                prop_assert_eq!(g.succ(w, q), (v, p));
            }
        }
    }

    #[test]
    fn bfs_distances_satisfy_the_triangle_inequality_over_edges(
        n in 3usize..12,
        extra in 0usize..6,
        seed in 0u64..200,
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, seed).unwrap();
        let dist0 = bfs_distances(&g, 0);
        for (u, _, v, _) in g.edges() {
            prop_assert!(dist0[u].abs_diff(dist0[v]) <= 1);
        }
    }

    #[test]
    fn shrink_is_symmetric_bounded_by_distance_and_zero_only_on_equal_nodes(
        rows in 3usize..5,
        cols in 3usize..6,
        a in 0usize..20,
        b in 0usize..20,
    ) {
        let g = oriented_torus(rows, cols).unwrap();
        let n = g.num_nodes();
        let (u, v) = (a % n, b % n);
        let s_uv = shrink(&g, u, v).unwrap();
        let s_vu = shrink(&g, v, u).unwrap();
        prop_assert_eq!(s_uv, s_vu, "Shrink is symmetric in its arguments");
        prop_assert!(s_uv <= distance(&g, u, v));
        prop_assert_eq!(s_uv == 0, u == v);
    }

    #[test]
    fn orbit_partition_matches_view_equality_on_random_graphs(
        n in 2usize..10,
        extra in 0usize..6,
        seed in 0u64..200,
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, seed).unwrap();
        let partition = OrbitPartition::compute(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                if u < v {
                    prop_assert_eq!(partition.are_symmetric(u, v), symmetric_by_views(&g, u, v));
                }
            }
        }
    }

    #[test]
    fn applying_a_port_sequence_and_its_reverse_returns_to_the_start(
        n in 3usize..12,
        extra in 0usize..6,
        seed in 0u64..200,
        ports in proptest::collection::vec(0usize..4, 0..12),
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, seed).unwrap();
        // reduce each port modulo the degree of the node it is used at, so the
        // sequence is applicable (this mirrors what an agent would do)
        let mut node = 0usize;
        let mut applied = Vec::new();
        for p in ports {
            let port = p % g.degree(node);
            applied.push(port);
            node = g.succ(node, port).0;
        }
        let walk = apply_ports(&g, 0, &applied).unwrap();
        prop_assert_eq!(walk.end(), node);
        let back = apply_ports_end(&g, walk.end(), &walk.reverse_ports()).unwrap();
        prop_assert_eq!(back, 0);
    }

    // ------------------------------------------------------------------
    // UXS invariants
    // ------------------------------------------------------------------

    #[test]
    fn uxs_application_is_deterministic_and_transcripts_agree_on_symmetric_nodes(
        rows in 3usize..5,
        cols in 3usize..5,
        seed_node in 0usize..16,
    ) {
        let g = oriented_torus(rows, cols).unwrap();
        let n = g.num_nodes();
        let start = seed_node % n;
        let uxs = PseudorandomUxs::default().sequence(n);
        let w1 = apply(&g, &uxs, start);
        let w2 = apply(&g, &uxs, start);
        prop_assert_eq!(&w1.nodes, &w2.nodes, "application must be deterministic");
        // all torus nodes are symmetric: transcripts are identical everywhere
        let reference = transcript(&g, &uxs, 0);
        prop_assert_eq!(transcript(&g, &uxs, start), reference);
    }

    #[test]
    fn uxs_prefix_is_a_prefix_of_the_walk(
        len in 1usize..60,
        cut in 0usize..60,
        ring in 3usize..9,
    ) {
        let g = oriented_ring(ring).unwrap();
        let terms: Vec<usize> = (0..len).map(|i| (i * 7 + 1) % 3).collect();
        let uxs = Uxs::new(terms);
        let cut = cut.min(uxs.len());
        let full = apply(&g, &uxs, 0);
        let partial = apply(&g, &uxs.prefix(cut), 0);
        prop_assert_eq!(&full.nodes[..partial.nodes.len()], &partial.nodes[..]);
    }

    // ------------------------------------------------------------------
    // feasibility / Lemma 3.1 invariants
    // ------------------------------------------------------------------

    #[test]
    fn feasibility_is_monotone_in_delta_on_rings(
        n in 3usize..12,
        a in 0usize..12,
        b in 0usize..12,
        delta in 0u64..12,
    ) {
        let g = oriented_ring(n).unwrap();
        let (u, v) = (a % n, b % n);
        prop_assume!(u != v);
        if is_feasible(&g, u, v, delta as u128) {
            prop_assert!(is_feasible(&g, u, v, delta as u128 + 1));
        }
    }

    #[test]
    fn lemma_3_1_trajectories_never_meet_below_shrink_on_double_trees(
        depth in 1usize..4,
        delta_offset in 0usize..1,
        ports in proptest::collection::vec(0usize..3, 1..40),
    ) {
        let (g, mirror) = symmetric_double_tree(2, depth).unwrap();
        let leaf = (0..g.num_nodes() / 2).find(|&v| g.degree(v) == 1).unwrap();
        let (u, v) = (leaf, mirror[leaf]);
        // Shrink(u, v) = 1, so the only infeasible delay is 0
        let delta = delta_offset; // always 0
        prop_assert!(symmetric_trajectories_never_meet(&g, u, v, delta, &ports));
    }

    // ------------------------------------------------------------------
    // leader election invariants
    // ------------------------------------------------------------------

    #[test]
    fn leader_election_is_antisymmetric_and_decisive_on_unequal_trajectories(
        a in proptest::collection::vec(proptest::option::of(0usize..4), 0..12),
        b in proptest::collection::vec(proptest::option::of(0usize..4), 0..12),
    ) {
        let forward = elect_leader(&a, &b);
        let backward = elect_leader(&b, &a);
        match forward {
            LeaderElection::AgentA => prop_assert_eq!(backward, LeaderElection::AgentB),
            LeaderElection::AgentB => prop_assert_eq!(backward, LeaderElection::AgentA),
            LeaderElection::Undecided => prop_assert_eq!(backward, LeaderElection::Undecided),
        }
        // undecided only when the (end-aligned, None-padded) trajectories coincide
        if forward == LeaderElection::Undecided {
            let max_len = a.len().max(b.len());
            let padded = |s: &[Option<usize>]| {
                let mut v = vec![None; max_len - s.len()];
                v.extend_from_slice(s);
                v
            };
            prop_assert_eq!(padded(&a), padded(&b));
        }
    }
}

// ----------------------------------------------------------------------
// deterministic (non-proptest) invariants that complete the picture
// ----------------------------------------------------------------------

#[test]
fn double_trees_of_every_arity_and_depth_have_shrink_one_on_mirror_pairs() {
    for arity in 2..=3usize {
        for depth in 1..=3usize {
            let (g, mirror) = symmetric_double_tree(arity, depth).unwrap();
            let partition = OrbitPartition::compute(&g);
            for (v, &m) in mirror.iter().enumerate().take(g.num_nodes() / 2) {
                assert!(partition.are_symmetric(v, m));
                assert_eq!(shrink(&g, v, m), Some(1));
            }
        }
    }
}

#[test]
fn pseudorandom_uxs_is_a_pure_function_of_n_and_the_seed() {
    let a = PseudorandomUxs::default();
    let b = PseudorandomUxs::default();
    for n in [2usize, 5, 9, 16] {
        assert_eq!(a.sequence(n).terms(), b.sequence(n).terms());
        assert_eq!(a.length(n), a.sequence(n).len());
    }
    assert_ne!(a.sequence(5).terms(), a.sequence(6).terms());
}
