//! Orbits of ordered node pairs under the port-preserving automorphism
//! group, with canonicalisation witnesses — **explicit** (per-node `π_u`
//! tables) for arbitrary graphs, or **implicit** (closed-form group
//! arithmetic, no tables at all) when the graph carries a verified
//! [`SymmetryGroup`] family.
//!
//! The construction leans on two structural facts about connected
//! port-labelled graphs:
//!
//! 1. **Port-rigidity.**  A port-preserving automorphism satisfies
//!    `φ(succ(v, p)) = succ(φ(v), p)` with matching entry ports, so `φ` is
//!    completely determined by the image of one node and can be grown (or
//!    refuted) by a single BFS propagation in `O(n·Δ)`.
//! 2. **Freeness.**  By the same rigidity, an automorphism fixing any node
//!    is the identity.  Hence the group acts freely on nodes *and* on
//!    ordered pairs: every node orbit and every pair orbit has exactly
//!    `|Aut(G)|` elements, and for each node `a` there is exactly one
//!    automorphism carrying `a` to its orbit representative.
//!
//! Freeness is what makes the pair partition cheap: the canonical form of
//! `(u, v)` is `(rep(u), π_u(v))` where `π_u` is the unique automorphism
//! with `π_u(u) = rep(u)`, so [`PairOrbits::class_of`] is two array lookups
//! and no `n²` table is ever materialised.
//!
//! # Implicit mode: million-node planning
//!
//! When the group is one of the closed-form [`SymmetryGroup`] families
//! (torus translations, ring/circulant rotations, hypercube
//! XOR-translations — all vertex-transitive and verified
//! generator-by-generator against the actual graph before use), even the
//! *witness arrays* disappear.  Transitivity puts every node in one orbit
//! with representative `0`; the unique automorphism carrying `u` to `0` is
//! the group inverse of element `u` (elements are indexed by the image of
//! node `0`), so
//!
//! * `class_of(u, v)   = apply(inverse(u), v)`   — O(1) arithmetic,
//! * `representative(c) = (0, c)`,
//! * `to_canonical(u, x) = apply(inverse(u), x)`, `from_canonical(u, x) =
//!   apply(u, x)`,
//! * `members(c)` enumerates `(k, apply(k, c))` for `k` in `0..n` lazily,
//!
//! and the whole structure is a few machine words regardless of `n` — no
//! per-node `π_u` tables, no `|Aut|·n` permutation store, no `n²` anything.
//! Element indexing coincides with the BFS scan order of the explicit
//! computation, so implicit and explicit partitions of the same graph agree
//! class-ID-for-class-ID (pinned by `tests/property_implicit_orbits.rs`).
//!
//! # Design note: why pair-graph refinement is unsound (and orbits are not)
//!
//! An earlier design sketch proposed compressing all-pairs sweeps by colour
//! refinement over the **common-port pair graph** — the graph behind the
//! paper's `Shrink`, whose states are ordered pairs `(a, b)` and whose
//! transitions move *both* coordinates through the same port, `(a, b) →
//! (succ(a, p), succ(b, p))`.  Two pairs refined into the same class there
//! have isomorphic common-port reachability structure, so one might hope
//! they also share rendezvous outcomes.  **They do not**, and the
//! counterexample is small enough to keep in view:
//!
//! On the oriented 8-ring, consider the ordered pairs `(0, 2)` and `(0, 6)`.
//! Lockstep moves preserve the node difference, so both pairs have the same
//! common-port orbit shape and the same `Shrink = 2`; every pair-graph
//! refinement therefore leaves them in one class.  Now run the program
//! "always move clockwise" (port 0) on both agents.  From `(0, 2)` with
//! delay `δ = 2`, the later agent sits on node 2 while the earlier agent
//! walks `0 → 1 → 2`: they meet in round 2.  From `(0, 6)` with the same
//! delay, the earlier agent starts a 2-round head start *behind* a partner
//! that then flees clockwise at the same speed forever: they never meet.
//! Same refinement class, different outcomes — broadcasting one
//! representative's outcome to the other would be silently wrong.
//!
//! The root cause: rendezvous executions are **time-shifted**, not
//! port-lockstep.  The pair graph quantifies over runs where both agents
//! take the same port in the same round; a delayed execution pairs round `t`
//! of one agent with round `t − δ` of the other, which the common-port
//! structure does not constrain.  Any equivalence used to broadcast outcomes
//! must commute with *independent* per-agent dynamics — exactly what a
//! port-preserving automorphism does (`φ` maps each agent's whole walk
//! separately), and what no refinement of the lockstep pair product can
//! guarantee.
//!
//! The executable form of this note is pinned twice: the test
//! `ring_pairs_with_equal_shrink_but_opposite_orientation_stay_separate`
//! below checks that [`PairOrbits`] keeps `(0, 2)` and `(0, 6)` apart (no
//! rotation of the ring relates them — rotations preserve the *signed*
//! difference), and `tests/property_plan.rs` re-derives the outcome split
//! with a real simulation.  If you are tempted to resurrect pair-graph
//! refinement for a coarser compression, route it through the asynchronous
//! (independent-moves) pair product instead — see ROADMAP.md.

use anonrv_graph::{NodeId, PortGraph};

pub use anonrv_graph::group::{Automorphisms, SymmetryGroup};

const UNSET: u32 = u32::MAX;

/// The explicit canonicalisation tables: per-node orbit representatives and
/// the index of the witnessing automorphism.  Only materialised for
/// [`SymmetryGroup::Explicit`] groups — implicit families derive all four
/// maps from closed-form arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Witness {
    /// Smallest image of each node under the group (its orbit
    /// representative).
    node_rep: Vec<u32>,
    /// Dense index of each orbit-representative node (`UNSET` elsewhere).
    rep_dense: Vec<u32>,
    /// Dense index → representative node.
    node_reps: Vec<u32>,
    /// `canon[a]` = index of the unique automorphism with
    /// `apply(canon[a], a) = node_rep[a]`.
    canon: Vec<u32>,
}

/// The partition of all `n²` **ordered** node pairs into orbits of the
/// automorphism group, with the canonicalisation witnesses needed to
/// broadcast simulation outcomes (meeting nodes included) from a class
/// representative to every member.
///
/// Class identifiers are laid out as `rep_index(u) · n + c`: the canonical
/// form of `(u, v)` is the pair `(rep(u), π_u(v))` where `rep(u)` is the
/// smallest node in `u`'s orbit and `π_u` the unique automorphism carrying
/// `u` there.  Every class therefore contains exactly one pair whose first
/// coordinate is an orbit representative, and that pair *is* the class
/// representative.
///
/// Built on an implicit [`SymmetryGroup`] (see
/// [`PairOrbits::is_implicit`]), the same queries are answered by O(1)
/// closed-form arithmetic with **no stored tables**, which is what lets
/// million-node vertex-transitive instances plan on one machine; the class
/// numbering is identical either way.
///
/// Note that equality (`PartialEq`) is *representational*: an implicit
/// partition and the explicit partition of the same graph define the same
/// classes but compare unequal.  Consumers that only need partition
/// compatibility (e.g. outcome-table reuse) key on
/// [`PairOrbits::num_pair_classes`] plus the graph's canonical hash instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairOrbits {
    n: usize,
    group: SymmetryGroup,
    witness: Option<Witness>,
}

impl PairOrbits {
    /// Compute the pair-orbit partition of `g`: closed-form (implicit) when
    /// the graph carries a verified symmetry family, explicit BFS otherwise.
    pub fn compute(g: &PortGraph) -> Self {
        Self::from_group(SymmetryGroup::of(g))
    }

    /// Compute the explicit (BFS permutation-table) partition of `g`,
    /// ignoring any implicit family — the oracle the differential suites
    /// pin implicit partitions against.
    pub fn compute_explicit(g: &PortGraph) -> Self {
        Self::from_group(SymmetryGroup::explicit(g))
    }

    /// Build the partition from a precomputed automorphism group.
    pub fn from_automorphisms(autos: Automorphisms) -> Self {
        Self::from_group(SymmetryGroup::Explicit(autos))
    }

    /// Build the partition from a symmetry group in either representation.
    pub fn from_group(group: SymmetryGroup) -> Self {
        let n = group.num_nodes();
        let witness = group.automorphisms().map(|autos| {
            let mut node_rep = vec![0u32; n];
            let mut canon = vec![0u32; n];
            for a in 0..n {
                let (mut best, mut best_k) = (autos.apply(0, a), 0usize);
                for k in 1..autos.order() {
                    let img = autos.apply(k, a);
                    if img < best {
                        best = img;
                        best_k = k;
                    }
                }
                node_rep[a] = best as u32;
                canon[a] = best_k as u32;
            }
            let mut rep_dense = vec![UNSET; n];
            let mut node_reps = Vec::new();
            for v in 0..n {
                if node_rep[v] as usize == v {
                    rep_dense[v] = node_reps.len() as u32;
                    node_reps.push(v as u32);
                }
            }
            Witness { node_rep, rep_dense, node_reps, canon }
        });
        debug_assert!(
            witness.is_some() || group.is_transitive(),
            "implicit families are vertex-transitive by construction"
        );
        PairOrbits { n, group, witness }
    }

    /// Number of nodes of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The symmetry group the partition is built on.
    pub fn group(&self) -> &SymmetryGroup {
        &self.group
    }

    /// The explicit automorphism table, when the partition was built on one
    /// (`None` in implicit mode — nothing is materialised there).
    pub fn automorphisms(&self) -> Option<&Automorphisms> {
        self.group.automorphisms()
    }

    /// `true` when every query is answered by closed-form arithmetic with no
    /// stored permutations or witness tables.
    pub fn is_implicit(&self) -> bool {
        self.witness.is_none()
    }

    /// Order of the automorphism group — by freeness also the size of
    /// *every* node orbit and every pair class.
    pub fn group_order(&self) -> usize {
        self.group.order()
    }

    /// Number of node orbits (`n / group_order`).
    pub fn num_node_orbits(&self) -> usize {
        match &self.witness {
            Some(w) => w.node_reps.len(),
            None => 1,
        }
    }

    /// Number of ordered-pair classes (`n² / group_order`).
    pub fn num_pair_classes(&self) -> usize {
        self.num_node_orbits() * self.n
    }

    /// Size of every pair class (uniform, by freeness of the action).
    pub fn class_size(&self) -> usize {
        self.group.order()
    }

    /// The compression ratio `n² / num_pair_classes` (= the group order).
    pub fn compression(&self) -> f64 {
        (self.n * self.n) as f64 / self.num_pair_classes() as f64
    }

    /// Orbit representative (smallest image) of node `u`.
    #[inline]
    pub fn node_representative(&self, u: NodeId) -> NodeId {
        match &self.witness {
            Some(w) => w.node_rep[u] as usize,
            None => 0,
        }
    }

    /// Index of the unique automorphism carrying `u` to its orbit
    /// representative (`π_u`).
    #[inline]
    fn canon_of(&self, u: NodeId) -> usize {
        match &self.witness {
            Some(w) => w.canon[u] as usize,
            // transitive: rep(u) = 0, and the element carrying u to 0 is
            // the group inverse of element u
            None => self.group.inverse(u),
        }
    }

    /// Class identifier of the ordered pair `(u, v)`, in
    /// `0..num_pair_classes` — two array lookups (explicit mode) or pure
    /// arithmetic (implicit mode), no `n²` table either way.
    ///
    /// Pairs related by an automorphism share a class (and therefore share
    /// every rendezvous outcome); unrelated pairs never do:
    ///
    /// ```
    /// use anonrv_graph::generators::oriented_ring;
    /// use anonrv_plan::PairOrbits;
    ///
    /// let g = oriented_ring(8).unwrap();
    /// let orbits = PairOrbits::compute(&g);
    /// // the 8 rotations collapse the 64 ordered pairs to 8 classes
    /// assert_eq!(orbits.num_pair_classes(), 8);
    /// // (0, 2) and (3, 5) are the same pair up to rotation ...
    /// assert_eq!(orbits.class_of(0, 2), orbits.class_of(3, 5));
    /// // ... while (0, 6) walks the other way around and stays separate
    /// assert_ne!(orbits.class_of(0, 2), orbits.class_of(0, 6));
    /// // the canonical representative is itself a member of the class
    /// let (r, c) = orbits.representative(orbits.class_of(3, 5));
    /// assert_eq!(orbits.class_of(r, c), orbits.class_of(3, 5));
    /// ```
    #[inline]
    pub fn class_of(&self, u: NodeId, v: NodeId) -> usize {
        match &self.witness {
            Some(w) => {
                let k = w.canon[u] as usize;
                w.rep_dense[w.node_rep[u] as usize] as usize * self.n + self.group.apply(k, v)
            }
            None => self.group.apply(self.group.inverse(u), v),
        }
    }

    /// The canonical representative pair of a class.
    #[inline]
    pub fn representative(&self, class: usize) -> (NodeId, NodeId) {
        match &self.witness {
            Some(w) => (w.node_reps[class / self.n] as usize, class % self.n),
            None => (0, class),
        }
    }

    /// All member pairs of a class (each exactly once, the representative
    /// among them), enumerated lazily from the group action.
    pub fn members(&self, class: usize) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        let (r, c) = self.representative(class);
        (0..self.group.order()).map(move |k| (self.group.apply(k, r), self.group.apply(k, c)))
    }

    /// `true` iff `(u, v)` and `(u2, v2)` lie in the same pair orbit.
    pub fn are_equivalent(&self, u: NodeId, v: NodeId, u2: NodeId, v2: NodeId) -> bool {
        self.class_of(u, v) == self.class_of(u2, v2)
    }

    /// Map a node of `(u, ·)`'s world into the canonical world of `u`'s
    /// class representative (`π_u`, the witnessing automorphism).
    #[inline]
    pub fn to_canonical(&self, u: NodeId, x: NodeId) -> NodeId {
        self.group.apply(self.canon_of(u), x)
    }

    /// Map a node of the canonical world back into `(u, ·)`'s world
    /// (`π_u⁻¹`) — this is what lets a planned sweep reconstruct member
    /// meeting nodes bit-identically.
    #[inline]
    pub fn from_canonical(&self, u: NodeId, x: NodeId) -> NodeId {
        match &self.witness {
            Some(w) => self.group.apply_inv(w.canon[u] as usize, x),
            // π_u = (element u)⁻¹, so π_u⁻¹ = element u
            None => self.group.apply(u, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::{
        circulant, hypercube, lollipop, oriented_ring, oriented_torus, qh_hat,
        symmetric_double_tree,
    };

    #[test]
    fn pair_classes_partition_all_ordered_pairs() {
        for g in [
            oriented_ring(7).unwrap(),
            oriented_torus(3, 4).unwrap(),
            hypercube(3).unwrap(),
            circulant(10, &[1, 3]).unwrap(),
            symmetric_double_tree(2, 2).unwrap().0,
            lollipop(4, 3).unwrap(),
            qh_hat(2).unwrap().graph,
        ] {
            let n = g.num_nodes();
            for orbits in [PairOrbits::compute(&g), PairOrbits::compute_explicit(&g)] {
                assert_eq!(orbits.num_pair_classes() * orbits.class_size(), n * n);
                let mut seen = vec![0usize; n * n];
                for class in 0..orbits.num_pair_classes() {
                    let (r, c) = orbits.representative(class);
                    assert_eq!(orbits.class_of(r, c), class, "representative is self-canonical");
                    for (a, b) in orbits.members(class) {
                        assert_eq!(orbits.class_of(a, b), class);
                        seen[a * n + b] += 1;
                    }
                }
                assert!(seen.iter().all(|&s| s == 1), "every ordered pair in exactly one class");
            }
        }
    }

    /// Implicit partitions agree with the explicit oracle **class-ID for
    /// class-ID** on every query (the full differential suite lives in
    /// `tests/property_implicit_orbits.rs`).
    #[test]
    fn implicit_partition_matches_explicit_class_for_class() {
        for g in [
            oriented_ring(8).unwrap(),
            oriented_torus(3, 5).unwrap(),
            hypercube(4).unwrap(),
            circulant(8, &[1, 4]).unwrap(),
        ] {
            let implicit = PairOrbits::compute(&g);
            let explicit = PairOrbits::compute_explicit(&g);
            assert!(implicit.is_implicit(), "generator hint did not verify");
            assert!(!explicit.is_implicit());
            assert!(implicit.automorphisms().is_none());
            assert_eq!(implicit.num_pair_classes(), explicit.num_pair_classes());
            assert_eq!(implicit.group_order(), explicit.group_order());
            for u in g.nodes() {
                assert_eq!(implicit.node_representative(u), explicit.node_representative(u));
                for v in g.nodes() {
                    assert_eq!(implicit.class_of(u, v), explicit.class_of(u, v));
                    assert_eq!(implicit.to_canonical(u, v), explicit.to_canonical(u, v));
                    assert_eq!(implicit.from_canonical(u, v), explicit.from_canonical(u, v));
                }
            }
        }
    }

    #[test]
    fn canonical_maps_witness_the_class() {
        let g = oriented_torus(4, 4).unwrap();
        for orbits in [PairOrbits::compute(&g), PairOrbits::compute_explicit(&g)] {
            for u in g.nodes() {
                for v in g.nodes() {
                    let (r, c) = orbits.representative(orbits.class_of(u, v));
                    assert_eq!(orbits.to_canonical(u, u), r);
                    assert_eq!(orbits.to_canonical(u, v), c);
                    assert_eq!(orbits.from_canonical(u, r), u);
                    assert_eq!(orbits.from_canonical(u, c), v);
                }
            }
        }
    }

    #[test]
    fn torus_16x16_compresses_all_pairs_to_256_classes() {
        let g = oriented_torus(16, 16).unwrap();
        let orbits = PairOrbits::compute(&g);
        assert!(orbits.is_implicit());
        assert_eq!(orbits.group_order(), 256);
        assert_eq!(orbits.num_pair_classes(), 256);
        assert_eq!(orbits.compression(), 256.0);
    }

    /// The implicit structure is O(1)-sized: a million-node torus partition
    /// is built instantly and answers canonical-map queries without any
    /// `|Aut|·n` or `n²` storage.
    #[test]
    fn million_node_torus_partition_is_constant_size() {
        let group = SymmetryGroup::Torus { rows: 1024, cols: 1024 };
        let orbits = PairOrbits::from_group(group);
        let n = 1024 * 1024;
        assert_eq!(orbits.num_pair_classes(), n);
        assert_eq!(orbits.class_size(), n);
        let (u, v) = (123_456, 987_654);
        let class = orbits.class_of(u, v);
        let (r, c) = orbits.representative(class);
        assert_eq!((r, c), (0, class));
        assert_eq!(orbits.to_canonical(u, u), 0);
        assert_eq!(orbits.to_canonical(u, v), class);
        assert_eq!(orbits.from_canonical(u, class), v);
        assert_eq!(orbits.class_of(r, c), class);
    }

    #[test]
    fn rebuilt_groups_yield_identical_partitions() {
        let g = oriented_torus(3, 4).unwrap();
        let autos = Automorphisms::compute(&g);
        let perms: Vec<Vec<u32>> = autos.permutations().map(|p| p.to_vec()).collect();
        let rebuilt = Automorphisms::from_permutations(&g, perms).unwrap();
        assert_eq!(PairOrbits::from_automorphisms(rebuilt), PairOrbits::from_automorphisms(autos));
    }

    /// The module-level counterexample: on the oriented 8-ring, `(0, 2)` and
    /// `(0, 6)` are indistinguishable to common-port pair-graph refinement
    /// (node-difference is preserved by lockstep moves, both have
    /// `Shrink = 2`), yet their outcomes differ — so the planner must keep
    /// them in different classes, and it does (they are not related by any
    /// rotation).
    #[test]
    fn ring_pairs_with_equal_shrink_but_opposite_orientation_stay_separate() {
        let g = oriented_ring(8).unwrap();
        assert_eq!(anonrv_graph::shrink::shrink(&g, 0, 2), Some(2));
        assert_eq!(anonrv_graph::shrink::shrink(&g, 0, 6), Some(2));
        for orbits in [PairOrbits::compute(&g), PairOrbits::compute_explicit(&g)] {
            assert!(!orbits.are_equivalent(0, 2, 0, 6));
            // ...while genuinely rotated pairs collapse
            assert!(orbits.are_equivalent(0, 2, 3, 5));
        }
    }
}
