//! # anonrv-store
//!
//! Persistence and sharding for planned sweeps: the layer that takes the
//! in-process plan-then-execute pipeline of `anonrv-plan` / `anonrv-sim`
//! **across runs and across processes**.
//!
//! Repeated sweeps over one graph used to re-derive everything from
//! scratch — the automorphism group, the pair-orbit partition, every start
//! node's trajectory timeline, every representative merge.  All of those are
//! deterministic functions of `(graph, program, horizon)`, so they are
//! cacheable; and the planner's representative work-list is embarrassingly
//! parallel, so it is shardable.  This crate supplies both:
//!
//! * [`Store`] — a content-addressed on-disk cache (directory of
//!   checksummed, versioned artifacts keyed by
//!   [`PortGraph::canonical_hash`](anonrv_graph::PortGraph::canonical_hash))
//!   holding serialized automorphism groups / [`PairOrbits`], recorded
//!   wait-compressed [`Timeline`](anonrv_sim::Timeline)s, and full
//!   representative-outcome tables.  Every load is integrity-checked
//!   (magic, format version, length, checksum, embedded identity) and
//!   falls back to recompute-and-overwrite on any mismatch — see
//!   [`cache`] for the trust model and `codec.rs` for the frame layout.
//! * [`ShardSpec`] / [`execute_shard`] / [`Store::merge_shards`] — a shard
//!   executor that splits a [`SweepPlan`]'s `(class, δ)` work-list into
//!   `--shards K --shard-index i` slices whose partial outcome files merge
//!   deterministically into one table **bit-identical** to the unsharded
//!   run — see [`shard`].
//!
//! On a warm cache an exhaustive all-pairs × δ-grid sweep skips planning
//! and trajectory recording entirely (orbit + timeline artifacts), and
//! skips even the merges when the exact plan was executed before (outcome
//! artifact) — the `anonrv sweep` CLI command and the `store_timing`
//! benchmark drive precisely this path.
//!
//! ## Cache round-trip
//!
//! ```
//! use anonrv_graph::generators::oriented_torus;
//! use anonrv_plan::{PlannedOutcomes, PlannedSweep, SweepPlan};
//! use anonrv_sim::{EngineConfig, Navigator, Stop};
//! use anonrv_store::{Provenance, Store};
//!
//! // a deterministic agent program (both agents run it)
//! let clockwise = |nav: &mut dyn Navigator| -> Result<(), Stop> {
//!     loop {
//!         nav.move_via(0)?;
//!     }
//! };
//!
//! let dir = std::env::temp_dir().join(format!("anonrv-store-doc-{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let store = Store::open(&dir).unwrap();
//! let g = oriented_torus(3, 4).unwrap();
//!
//! // cold: the partition is computed and persisted
//! let (orbits, prov) = store.orbits(&g);
//! assert_eq!(prov, Provenance::Cold);
//!
//! // execute a small planned sweep and persist its outcome table
//! let plan = SweepPlan::from_orbits(orbits.clone(), vec![0, 1, 2], 64);
//! let planned = PlannedSweep::from_orbits(orbits, &g, &clockwise, EngineConfig::batch(64));
//! let outcomes = planned.run(&plan);
//! store.save_plan_outcomes(&g, "clockwise", &plan, outcomes.table()).unwrap();
//!
//! // warm: both the partition and the full table come back bit-identically,
//! // with no planning, no program execution and no merging
//! let (warm_orbits, prov) = store.orbits(&g);
//! assert_eq!(prov, Provenance::Warm);
//! let table = store.load_plan_outcomes(&g, "clockwise", &plan).unwrap();
//! assert_eq!(table, outcomes.table());
//! let warm = PlannedOutcomes::from_table(&plan, table).unwrap();
//! assert_eq!(warm.get(5, 7, 1), outcomes.get(5, 7, 1));
//! # std::fs::remove_dir_all(&dir).ok();
//! ```
//!
//! [`PairOrbits`]: anonrv_plan::PairOrbits
//! [`SweepPlan`]: anonrv_plan::SweepPlan

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod codec;
pub mod shard;

pub use cache::{Provenance, Store, WarmStats};
pub use shard::{execute_shard, merge_shard_outcomes, ShardOutcomes, ShardSpec};

/// Shared fixtures for the unit tests of this crate.
#[cfg(test)]
pub(crate) mod testutil {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// The shared deterministic sweep-workload agent — the same
    /// byte-for-byte program the benches and the CLI drive this store with.
    pub(crate) use anonrv_sim::SweepWalker as Walker;

    /// A unique, self-deleting scratch directory per test.
    pub(crate) struct TempDir(pub PathBuf);

    impl TempDir {
        pub(crate) fn new(tag: &str) -> Self {
            static COUNTER: AtomicUsize = AtomicUsize::new(0);
            let dir = std::env::temp_dir().join(format!(
                "anonrv-store-test-{tag}-{}-{}",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::remove_dir_all(&dir).ok();
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }
}
