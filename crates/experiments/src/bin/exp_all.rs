//! Run every experiment and print every table (the contents of
//! EXPERIMENTS.md).  Pass `--full` for the EXPERIMENTS.md configuration and
//! `--json <path>` to additionally archive the report as JSON.

use anonrv_experiments::run_all;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let full = args.iter().any(|a| a == "--full");
    let report = run_all(full);
    println!("{}", report.render());
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(pos + 1) {
            std::fs::write(path, report.to_json()).expect("writing the JSON report");
            eprintln!("JSON report written to {path}");
        } else {
            eprintln!("--json requires a path argument");
            std::process::exit(2);
        }
    }
}
