//! The rendezvous ⇔ leader-election equivalence from the paper's
//! introduction.
//!
//! * **Leader election ⇒ rendezvous** ("waiting for Mommy"): once the roles
//!   are assigned, the non-leader waits at its initial node while the leader
//!   explores the graph (here: applies the UXS), so the leader eventually
//!   stands on the non-leader's node.  [`WaitingForMommy`] is that pair of
//!   programs; it is executed with [`anonrv_sim::simulate_with`] because the
//!   two agents run *different* code — exactly the point of the reduction.
//!
//! * **Rendezvous ⇒ leader election**: after meeting, the agents compare
//!   their trajectories coded as sequences of encountered (entry) port
//!   numbers.  Since they started at different nodes and met, there is a
//!   round in which they entered their current node by different ports;
//!   considering the *last* such round before (or at) the meeting, the agent
//!   that entered by the larger port becomes the leader.  [`elect_leader`]
//!   implements that tie-break.

use anonrv_graph::{NodeId, Port, PortGraph};
use anonrv_sim::{AgentProgram, Navigator, Round, Stop};
use anonrv_uxs::UxsProvider;

/// Role assigned to an agent before running the "waiting for Mommy"
/// reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The leader explores the graph until it finds the follower.
    Leader,
    /// The follower ("Mommy") waits at its initial node forever.
    Follower,
}

/// The "waiting for Mommy" reduction of leader election to rendezvous:
/// a per-role agent program.
pub struct WaitingForMommy<'a> {
    /// This agent's role.
    pub role: Role,
    /// Upper bound on the size of the graph (the leader needs it to pick the
    /// UXS; the follower ignores it).
    pub n: usize,
    /// Source of the exploration sequence used by the leader.
    pub uxs: &'a dyn UxsProvider,
}

impl<'a> WaitingForMommy<'a> {
    /// Program for an agent with the given role in a graph of size at most
    /// `n`.
    pub fn new(role: Role, n: usize, uxs: &'a dyn UxsProvider) -> Self {
        WaitingForMommy { role, n, uxs }
    }

    /// Number of rounds after which the leader is guaranteed to have visited
    /// every node of a covered graph (one UXS application).
    pub fn exploration_bound(&self) -> Round {
        self.uxs.length(self.n) as Round + 1
    }
}

impl AgentProgram for WaitingForMommy<'_> {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        match self.role {
            Role::Follower => {
                // wait forever (the engine interrupts on rendezvous / horizon)
                loop {
                    nav.wait(Round::MAX)?;
                }
            }
            Role::Leader => {
                // apply the UXS Y(n) from the current node, repeatedly: each
                // application visits every node of a covered graph, so the
                // waiting follower is found during the first pass.
                loop {
                    let y = self.uxs.sequence(self.n);
                    let mut entry = nav.move_via(0)?;
                    for &a in y.terms() {
                        let p = (entry + a) % nav.degree();
                        entry = nav.move_via(p)?;
                    }
                }
            }
        }
    }

    fn name(&self) -> &str {
        match self.role {
            Role::Leader => "waiting-for-mommy/leader",
            Role::Follower => "waiting-for-mommy/follower",
        }
    }
}

/// Outcome of the post-rendezvous leader election.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaderElection {
    /// The first agent (whose trajectory was passed first) is the leader.
    AgentA,
    /// The second agent is the leader.
    AgentB,
    /// The recorded trajectories are identical, so no leader can be elected
    /// from them.  This cannot happen for agents that started at *different*
    /// nodes and met (the paper's argument); it is reported rather than
    /// panicking so that callers can treat degenerate inputs gracefully.
    Undecided,
}

/// Elect a leader from the two agents' trajectories, each coded as the
/// sequence of ports by which the agent entered the node it occupied at each
/// round (`None` when the agent did not move into the node that round — it
/// waited, or it is the starting round).
///
/// The two slices are aligned **at their ends**: the last entries correspond
/// to the meeting round.  Scanning backwards from the meeting, the first
/// round in which the entry ports differ decides the election; the agent with
/// the larger entry port wins (`Some(p) > None` — entering beats waiting).
pub fn elect_leader(entries_a: &[Option<Port>], entries_b: &[Option<Port>]) -> LeaderElection {
    let len = entries_a.len().max(entries_b.len());
    for back in 0..len {
        let a = entries_a.len().checked_sub(back + 1).map(|i| entries_a[i]).unwrap_or(None);
        let b = entries_b.len().checked_sub(back + 1).map(|i| entries_b[i]).unwrap_or(None);
        match a.cmp(&b) {
            std::cmp::Ordering::Greater => return LeaderElection::AgentA,
            std::cmp::Ordering::Less => return LeaderElection::AgentB,
            std::cmp::Ordering::Equal => continue,
        }
    }
    LeaderElection::Undecided
}

/// Convenience: turn a per-round sequence of *outgoing* actions
/// (`Some(port)` = move via that port, `None` = wait) into the corresponding
/// per-round sequence of *entry* ports observed when following those actions
/// from `start` in `g` — the coding [`elect_leader`] consumes.
pub fn entry_ports_of_actions(
    g: &PortGraph,
    start: NodeId,
    actions: &[Option<Port>],
) -> Vec<Option<Port>> {
    let mut node = start;
    let mut out = Vec::with_capacity(actions.len());
    for &action in actions {
        match action {
            None => out.push(None),
            Some(p) => {
                let (next, entry) = g.succ(node, p);
                node = next;
                out.push(Some(entry));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::{lollipop, oriented_ring, oriented_torus, two_node_graph};
    use anonrv_sim::{simulate_with, EngineConfig, Stic};
    use anonrv_uxs::PseudorandomUxs;

    fn mommy_meets(
        g: &PortGraph,
        leader_start: NodeId,
        follower_start: NodeId,
        delay: Round,
        leader_is_earlier: bool,
    ) -> Option<Round> {
        let uxs = PseudorandomUxs::default();
        let n = g.num_nodes();
        let leader = WaitingForMommy::new(Role::Leader, n, &uxs);
        let follower = WaitingForMommy::new(Role::Follower, n, &uxs);
        let horizon = delay + leader.exploration_bound() * 2 + 2;
        let outcome = if leader_is_earlier {
            let stic = Stic::new(leader_start, follower_start, delay);
            simulate_with(g, &leader, &follower, &stic, EngineConfig::with_horizon(horizon))
        } else {
            let stic = Stic::new(follower_start, leader_start, delay);
            simulate_with(g, &follower, &leader, &stic, EngineConfig::with_horizon(horizon))
        };
        outcome.rendezvous_time()
    }

    #[test]
    fn leader_finds_the_waiting_follower_on_small_graphs() {
        for (g, u, v) in [
            (two_node_graph(), 0usize, 1usize),
            (oriented_ring(7).unwrap(), 0, 3),
            (oriented_torus(3, 3).unwrap(), 0, 4),
            (lollipop(4, 2).unwrap(), 0, 5),
        ] {
            for delay in [0 as Round, 1, 4] {
                assert!(
                    mommy_meets(&g, u, v, delay, true).is_some(),
                    "leader-first failed (delay {delay})"
                );
                assert!(
                    mommy_meets(&g, u, v, delay, false).is_some(),
                    "follower-first failed (delay {delay})"
                );
            }
        }
    }

    #[test]
    fn symmetric_positions_are_no_obstacle_once_roles_exist() {
        // The whole point of the reduction: with roles assigned, even
        // perfectly symmetric positions (infeasible for identical agents with
        // delay 0) are easy.
        let g = oriented_ring(8).unwrap();
        assert!(mommy_meets(&g, 0, 4, 0, true).is_some());
    }

    #[test]
    fn election_picks_the_larger_entry_port_at_the_last_difference() {
        // same length, last difference at the final round
        let a = [Some(1), Some(0), Some(2)];
        let b = [Some(1), Some(0), Some(1)];
        assert_eq!(elect_leader(&a, &b), LeaderElection::AgentA);
        assert_eq!(elect_leader(&b, &a), LeaderElection::AgentB);

        // difference earlier, identical tail
        let a = [Some(3), Some(1), Some(1)];
        let b = [Some(0), Some(1), Some(1)];
        assert_eq!(elect_leader(&a, &b), LeaderElection::AgentA);

        // waiting loses against entering
        let a = [None, Some(0)];
        let b = [Some(0), Some(0)];
        assert_eq!(elect_leader(&a, &b), LeaderElection::AgentB);
    }

    #[test]
    fn election_handles_trajectories_of_different_lengths() {
        // the shorter trajectory is padded with "did not move" at the front
        let a = [Some(0), Some(1)];
        let b = [Some(2), Some(0), Some(1)];
        assert_eq!(elect_leader(&a, &b), LeaderElection::AgentB);
        assert_eq!(elect_leader(&b, &a), LeaderElection::AgentA);
    }

    #[test]
    fn identical_trajectories_are_undecided() {
        let a = [Some(0), None, Some(1)];
        assert_eq!(elect_leader(&a, &a), LeaderElection::Undecided);
        assert_eq!(elect_leader(&[], &[]), LeaderElection::Undecided);
    }

    #[test]
    fn entry_ports_follow_the_graph() {
        let g = oriented_ring(5).unwrap();
        // moving clockwise (port 0) always enters by port 1 on this ring
        let actions = [Some(0), Some(0), None, Some(1)];
        let entries = entry_ports_of_actions(&g, 0, &actions);
        assert_eq!(entries, vec![Some(1), Some(1), None, Some(0)]);
    }

    #[test]
    fn the_paper_argument_elects_exactly_one_leader_after_a_meeting() {
        // Two agents on a lollipop meet via "waiting for Mommy"; reconstruct
        // their entry-port trajectories and check the election is decisive
        // and antisymmetric.
        let g = lollipop(3, 2).unwrap();
        // leader walks ports 0,0 from node 4 (tail end) towards the clique;
        // follower waits at node 0
        let leader_actions = [Some(0), Some(0)];
        let follower_actions = [None, None];
        let a = entry_ports_of_actions(&g, 4, &leader_actions);
        let b = entry_ports_of_actions(&g, 0, &follower_actions);
        let election = elect_leader(&a, &b);
        assert_ne!(election, LeaderElection::Undecided);
        let reversed = elect_leader(&b, &a);
        let expected = match election {
            LeaderElection::AgentA => LeaderElection::AgentB,
            LeaderElection::AgentB => LeaderElection::AgentA,
            LeaderElection::Undecided => LeaderElection::Undecided,
        };
        assert_eq!(reversed, expected);
    }
}
