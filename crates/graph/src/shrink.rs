//! The paper's `Shrink(u, v)` quantity (Definition 3.1).
//!
//! For a pair of nodes `u, v`, `Shrink(u, v)` is the smallest distance
//! between `α(u)` and `α(v)` over all port sequences `α` that are applicable
//! at both nodes.  Intuitively it is the closest the two agents can ever get
//! while blindly copying each other's moves — which is exactly what happens
//! when identical deterministic agents start at symmetric positions.
//!
//! Corollary 3.1 characterises feasibility through this quantity: a STIC
//! `[(u, v), δ]` with symmetric `u, v` is feasible iff `δ ≥ Shrink(u, v)`.
//!
//! The computation is a search over the *pair graph*: states are ordered
//! pairs `(a, b)` of nodes, the start state is `(u, v)`, and for every port
//! `p` applicable at both coordinates there is a transition to
//! `(succ(a, p), succ(b, p))`.  `Shrink` is the minimum graph distance
//! `dist(a, b)` over all reachable states.
//!
//! The functions here are thin wrappers over the flat product-space engine
//! in [`crate::pairspace`]: single-pair queries run a flat-array BFS over a
//! precomputed distance matrix, and [`shrink_all_symmetric_pairs`] uses
//! [`crate::pairspace::ShrinkEngine::all_pairs`] to answer **all** pairs in
//! one `O(n²·Δ)` reverse-propagation sweep instead of one BFS per pair.
//! The original `HashMap`-backed per-pair BFS is retained as
//! [`shrink_reference_bfs`] so property tests can differentially validate
//! the engine against it.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::distance::bfs_distances;
use crate::graph::{NodeId, PortGraph};
use crate::pairspace::ShrinkEngine;

/// Result of a [`shrink_detailed`] computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkResult {
    /// The value `Shrink(u, v)`.
    pub shrink: usize,
    /// A port sequence `α` witnessing the minimum, i.e.
    /// `dist(α(u), α(v)) == shrink`.  Empty when the initial distance is
    /// already minimal.
    pub witness: Vec<usize>,
    /// The pair of nodes `(α(u), α(v))` realising the minimum.
    pub closest_pair: (NodeId, NodeId),
    /// Number of pair states explored.
    pub explored_pairs: usize,
}

/// Compute `Shrink(u, v)`.
///
/// Defined for any pair; for `u == v` the result is `0`.  For symmetric
/// `u ≠ v` the result is at least `1` (a common port sequence can never merge
/// two symmetric nodes, because reversing the walk from the common endpoint
/// would have to reach both); for *nonsymmetric* pairs the agents' positions
/// can genuinely merge and the result may be `0`.
///
/// One-shot convenience: builds a [`ShrinkEngine`] for the single query.
/// Callers with more than one pair to resolve should build the engine once
/// (or use [`shrink_all_symmetric_pairs`] /
/// [`crate::pairspace::ShrinkEngine::all_pairs`]).
pub fn shrink(g: &PortGraph, u: NodeId, v: NodeId) -> Option<usize> {
    Some(ShrinkEngine::new(g).shrink(u, v))
}

/// Compute `Shrink(u, v)` but give up (returning `None`) after exploring more
/// than `max_pairs` pair states.  `shrink` uses `usize::MAX`.
pub fn shrink_bounded(g: &PortGraph, u: NodeId, v: NodeId, max_pairs: usize) -> Option<usize> {
    ShrinkEngine::new(g).shrink_bounded(u, v, max_pairs)
}

/// Full computation with a witness sequence.  Returns `None` only when the
/// `max_pairs` exploration budget is exhausted before the search completes.
pub fn shrink_detailed(
    g: &PortGraph,
    u: NodeId,
    v: NodeId,
    max_pairs: usize,
) -> Option<ShrinkResult> {
    ShrinkEngine::new(g).shrink_detailed(u, v, max_pairs)
}

/// Brute-force reference: minimum of `dist(α(u), α(v))` over every applicable
/// sequence `α` of length at most `max_len`.  Exponential; used only to
/// cross-check [`shrink`] in tests.
pub fn shrink_brute_force(g: &PortGraph, u: NodeId, v: NodeId, max_len: usize) -> usize {
    use crate::traversal::apply_ports_end;
    let dist_from: Vec<Vec<usize>> = g.nodes().map(|x| bfs_distances(g, x)).collect();
    let mut best = dist_from[u][v];
    let mut stack: Vec<Vec<usize>> = vec![vec![]];
    while let Some(seq) = stack.pop() {
        let a = apply_ports_end(g, u, &seq);
        let b = apply_ports_end(g, v, &seq);
        if let (Some(a), Some(b)) = (a, b) {
            best = best.min(dist_from[a][b]);
            if seq.len() < max_len {
                let max_port = g.degree(a).min(g.degree(b));
                for p in 0..max_port {
                    let mut next = seq.clone();
                    next.push(p);
                    stack.push(next);
                }
            }
        }
    }
    best
}

/// The pre-`pairspace` implementation: an exhaustive `HashMap`-backed BFS
/// over the pair states reachable from `(u, v)`, with a lazily filled
/// per-source distance cache.  `O(n²·Δ)` per pair and allocation-heavy —
/// kept (unbounded, no early exit) purely as an independent oracle for the
/// differential property tests of [`crate::pairspace`].
pub fn shrink_reference_bfs(g: &PortGraph, u: NodeId, v: NodeId) -> usize {
    if u == v {
        return 0;
    }
    let n = g.num_nodes();
    let mut dist_cache: HashMap<NodeId, Vec<usize>> = HashMap::new();
    let mut dist = |a: NodeId, b: NodeId| -> usize {
        if a == b {
            0
        } else {
            dist_cache.entry(a).or_insert_with(|| bfs_distances(g, a))[b]
        }
    };
    let key = |a: NodeId, b: NodeId| a * n + b;
    let mut seen: HashSet<usize> = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(key(u, v));
    queue.push_back((u, v));
    let mut best = dist(u, v);
    while let Some((a, b)) = queue.pop_front() {
        let common_ports = g.degree(a).min(g.degree(b));
        for p in 0..common_ports {
            let (a2, _) = g.succ(a, p);
            let (b2, _) = g.succ(b, p);
            if seen.insert(key(a2, b2)) {
                best = best.min(dist(a2, b2));
                queue.push_back((a2, b2));
            }
        }
    }
    best
}

/// `Shrink` for every symmetric pair of the graph, as
/// `((u, v), shrink)` entries ordered by pair.
///
/// Runs the one-pass [`ShrinkEngine::all_pairs`] sweep (`O(n²·Δ)` total)
/// rather than one pair-graph BFS per pair (`O(n⁴·Δ)` total).
pub fn shrink_all_symmetric_pairs(g: &PortGraph) -> Vec<((NodeId, NodeId), usize)> {
    let partition = crate::symmetry::OrbitPartition::compute(g);
    let all = ShrinkEngine::new(g).all_pairs();
    partition.symmetric_pairs().into_iter().map(|(u, v)| ((u, v), all.get(u, v))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance;
    use crate::generators::{
        hypercube, oriented_ring, oriented_torus, path, symmetric_double_tree,
    };

    #[test]
    fn shrink_of_a_node_with_itself_is_zero() {
        let g = oriented_ring(5).unwrap();
        assert_eq!(shrink(&g, 2, 2), Some(0));
    }

    #[test]
    fn oriented_ring_shrink_equals_distance() {
        let g = oriented_ring(8).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(shrink(&g, u, v), Some(distance(&g, u, v)));
            }
        }
    }

    #[test]
    fn oriented_torus_shrink_equals_distance() {
        // the paper's Section 3 example
        let g = oriented_torus(4, 4).unwrap();
        for u in [0usize, 3, 7] {
            for v in g.nodes() {
                assert_eq!(shrink(&g, u, v), Some(distance(&g, u, v)), "pair ({u},{v})");
            }
        }
    }

    #[test]
    fn hypercube_shrink_equals_distance() {
        let g = hypercube(3).unwrap();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(shrink(&g, u, v), Some(distance(&g, u, v)));
            }
        }
    }

    #[test]
    fn symmetric_double_tree_shrink_is_one_for_mirror_pairs() {
        // the paper's second Section 3 example: Shrink can really shrink
        let (g, mirror) = symmetric_double_tree(2, 3).unwrap();
        for v in g.nodes() {
            let m = mirror[v];
            if m != v {
                assert_eq!(shrink(&g, v, m), Some(1), "node {v} vs mirror {m}");
            }
        }
        // ... even though the distance between deep mirror pairs is large
        let far = g
            .nodes()
            .filter(|&v| mirror[v] != v)
            .max_by_key(|&v| distance(&g, v, mirror[v]))
            .unwrap();
        assert!(distance(&g, far, mirror[far]) > 1);
    }

    #[test]
    fn brute_force_agrees_on_small_graphs() {
        for g in [oriented_ring(5).unwrap(), path(5).unwrap(), hypercube(3).unwrap()] {
            for u in g.nodes() {
                for v in g.nodes() {
                    let fast = shrink(&g, u, v).unwrap();
                    let slow = shrink_brute_force(&g, u, v, 6);
                    assert_eq!(fast, slow, "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn reference_bfs_agrees_with_the_engine_on_small_graphs() {
        for g in [oriented_ring(6).unwrap(), path(5).unwrap(), oriented_torus(3, 3).unwrap()] {
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(shrink(&g, u, v), Some(shrink_reference_bfs(&g, u, v)), "({u},{v})");
                }
            }
        }
    }

    #[test]
    fn witness_sequence_realises_the_reported_shrink() {
        use crate::traversal::apply_ports_end;
        let (g, mirror) = symmetric_double_tree(2, 2).unwrap();
        let v = g.nodes().find(|&v| mirror[v] != v && g.degree(v) == 1).unwrap();
        let r = shrink_detailed(&g, v, mirror[v], usize::MAX).unwrap();
        let a = apply_ports_end(&g, v, &r.witness).unwrap();
        let b = apply_ports_end(&g, mirror[v], &r.witness).unwrap();
        assert_eq!(distance(&g, a, b), r.shrink);
        assert_eq!((a, b), r.closest_pair);
    }

    #[test]
    fn bounded_search_gives_up_gracefully() {
        let g = oriented_torus(5, 5).unwrap();
        // a budget of a single pair cannot finish (best > 0 initially)
        assert_eq!(shrink_bounded(&g, 0, 12, 1), None);
        // a generous budget succeeds
        assert!(shrink_bounded(&g, 0, 12, 100_000).is_some());
    }

    #[test]
    fn all_symmetric_pairs_listing_is_consistent() {
        let g = oriented_ring(6).unwrap();
        let all = shrink_all_symmetric_pairs(&g);
        assert_eq!(all.len(), 6 * 5 / 2);
        for ((u, v), s) in all {
            assert_eq!(s, distance(&g, u, v));
        }
    }
}
