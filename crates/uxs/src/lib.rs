//! # anonrv-uxs
//!
//! Universal exploration sequences (UXS) for the anonymous-rendezvous
//! reproduction.
//!
//! Section 2 of the paper uses a UXS `Y(n) = (a_1, ..., a_M)` for the class
//! of graphs of size `n`: its *application* `R(u) = (u_0, u_1, ..., u_{M+1})`
//! at any node `u` of any such graph visits every node of the graph.  The
//! application rule is
//!
//! * `u_0 = u`, `u_1 = succ(u_0, 0)`, and
//! * `u_{i+1} = succ(u_i, (p + a_i) mod deg(u_i))` where `p` is the port by
//!   which the walk entered `u_i`.
//!
//! The paper invokes Reingold'08 / Koucký'02 for the *existence* of a UXS of
//! length polynomial in `n`.  Those constructions have enormous constants, so
//! this crate substitutes a **deterministic, fixed-seed pseudorandom
//! sequence** derived from `n` alone (both agents therefore agree on it, as
//! the model requires) together with a *coverage verifier* used by the test
//! and experiment suites to confirm that the substitute sequence indeed
//! explores every graph it is used on.  See DESIGN.md §4.1 for the
//! substitution rationale.
//!
//! The crate also exposes the application/transcript machinery shared by the
//! algorithms: [`apply`], [`covers`], [`transcript`], and the
//! [`UxsProvider`] abstraction that lets experiments swap sequence lengths
//! (the ablation study of EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod provider;
mod sequence;
mod verify;

pub use provider::{CachedProvider, LengthRule, PseudorandomUxs, UxsProvider};
pub use sequence::{
    apply, covers, fingerprint_pairs, transcript, transcript_fingerprint, Uxs, UxsWalk,
};
pub use verify::{covers_from_all, shortest_covering_prefix, verify_on_family, CoverageReport};
