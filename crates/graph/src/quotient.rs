//! Quotient (minimal base) graph of the view equivalence.
//!
//! Collapsing every view-equivalence class of a port-labelled graph to a
//! single node yields the *quotient graph*: the smallest port-labelled
//! (multi)graph with the same universal cover.  Two nodes of `G` have equal
//! views iff they map to the same quotient node, so the pair
//! *(quotient, image of the node)* — encoded canonically — is a complete,
//! polynomial-size invariant of the view.  The analysis layer and the exact
//! label scheme of the `AsymmRV` substitute use this encoding.

use crate::graph::{NodeId, Port, PortGraph};
use crate::symmetry::OrbitPartition;

/// The quotient of a [`PortGraph`] by its view equivalence.  Unlike
/// [`PortGraph`] this may contain self-loops and parallel arcs, so it is kept
/// as a separate type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quotient {
    /// `adj[c][p] = (target class, entry port)` for each port `p` of class `c`.
    adj: Vec<Vec<(usize, Port)>>,
    /// A representative original node per class.
    representatives: Vec<NodeId>,
    /// Number of original nodes per class.
    sizes: Vec<usize>,
    /// Class of every original node.
    class_of: Vec<usize>,
}

impl Quotient {
    /// Build the quotient of `g` from a previously computed partition.
    pub fn from_partition(g: &PortGraph, partition: &OrbitPartition) -> Self {
        let reps = partition.representatives();
        let sizes: Vec<usize> = partition.classes().iter().map(|c| c.len()).collect();
        let adj = reps
            .iter()
            .map(|&rep| {
                (0..g.degree(rep))
                    .map(|p| {
                        let (w, q) = g.succ(rep, p);
                        (partition.class_of(w), q)
                    })
                    .collect()
            })
            .collect();
        let class_of = (0..g.num_nodes()).map(|v| partition.class_of(v)).collect();
        Quotient { adj, representatives: reps, sizes, class_of }
    }

    /// Build the quotient of `g`, computing the partition internally.
    pub fn compute(g: &PortGraph) -> Self {
        Self::from_partition(g, &OrbitPartition::compute(g))
    }

    /// Number of quotient nodes (view-equivalence classes).
    pub fn num_classes(&self) -> usize {
        self.adj.len()
    }

    /// Degree of a quotient node.
    pub fn degree(&self, class: usize) -> usize {
        self.adj[class].len()
    }

    /// The class an original node maps to.
    pub fn class_of(&self, v: NodeId) -> usize {
        self.class_of[v]
    }

    /// A representative original node of `class`.
    pub fn representative(&self, class: usize) -> NodeId {
        self.representatives[class]
    }

    /// Number of original nodes in `class`.
    pub fn class_size(&self, class: usize) -> usize {
        self.sizes[class]
    }

    /// Follow port `p` out of `class`: the target class and the entry port.
    pub fn succ(&self, class: usize, p: Port) -> (usize, Port) {
        self.adj[class][p]
    }

    /// Canonical byte encoding of the pair *(quotient, marked class)*.
    ///
    /// Classes are renumbered by a deterministic BFS from the marked class
    /// that scans ports in increasing order, so the encoding is identical for
    /// any two nodes (possibly of different graphs) with equal views, and
    /// different otherwise.
    pub fn canonical_code(&self, marked_class: usize) -> Vec<u8> {
        let k = self.num_classes();
        let mut order = vec![usize::MAX; k]; // class -> canonical id
        let mut bfs = std::collections::VecDeque::new();
        order[marked_class] = 0;
        bfs.push_back(marked_class);
        let mut next_id = 1usize;
        let mut visit_sequence = vec![marked_class];
        while let Some(c) = bfs.pop_front() {
            for p in 0..self.degree(c) {
                let (t, _) = self.succ(c, p);
                if order[t] == usize::MAX {
                    order[t] = next_id;
                    next_id += 1;
                    bfs.push_back(t);
                    visit_sequence.push(t);
                }
            }
        }
        // encode, in canonical order, the full port map of every class
        let mut out = Vec::new();
        out.extend_from_slice(b"Q");
        out.extend_from_slice(next_id.to_string().as_bytes());
        out.push(b';');
        for &c in &visit_sequence {
            out.push(b'(');
            for p in 0..self.degree(c) {
                let (t, q) = self.succ(c, p);
                out.extend_from_slice(p.to_string().as_bytes());
                out.push(b'>');
                out.extend_from_slice(order[t].to_string().as_bytes());
                out.push(b':');
                out.extend_from_slice(q.to_string().as_bytes());
                out.push(b',');
            }
            out.push(b')');
        }
        out
    }

    /// Canonical code of an original node (through its class).
    pub fn canonical_code_of_node(&self, v: NodeId) -> Vec<u8> {
        self.canonical_code(self.class_of(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{lollipop, oriented_ring, oriented_torus, path, symmetric_double_tree};

    #[test]
    fn quotient_of_a_fully_symmetric_graph_has_one_class() {
        let g = oriented_torus(3, 3).unwrap();
        let q = Quotient::compute(&g);
        assert_eq!(q.num_classes(), 1);
        assert_eq!(q.degree(0), 4);
        assert_eq!(q.class_size(0), 9);
        // every port loops back to the single class
        for p in 0..4 {
            assert_eq!(q.succ(0, p).0, 0);
        }
    }

    #[test]
    fn quotient_of_an_asymmetric_graph_is_the_graph_itself() {
        let g = lollipop(4, 2).unwrap();
        let q = Quotient::compute(&g);
        assert_eq!(q.num_classes(), g.num_nodes());
        for v in g.nodes() {
            assert_eq!(q.class_size(q.class_of(v)), 1);
        }
    }

    #[test]
    fn canonical_codes_agree_exactly_with_symmetry() {
        for g in [path(5).unwrap(), oriented_ring(6).unwrap(), lollipop(3, 3).unwrap()] {
            let q = Quotient::compute(&g);
            let part = OrbitPartition::compute(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    assert_eq!(
                        q.canonical_code_of_node(u) == q.canonical_code_of_node(v),
                        part.are_symmetric(u, v),
                        "nodes {u}, {v}"
                    );
                }
            }
        }
    }

    #[test]
    fn canonical_codes_are_comparable_across_graphs() {
        // two oriented rings of the same size: every node of either graph has
        // the same view, so codes must match across graphs
        let g1 = oriented_ring(5).unwrap();
        let g2 = oriented_ring(5).unwrap();
        let q1 = Quotient::compute(&g1);
        let q2 = Quotient::compute(&g2);
        assert_eq!(q1.canonical_code_of_node(0), q2.canonical_code_of_node(3));
        // rings of different sizes still quotient to the same single-class map,
        // which is precisely the "same view" statement for oriented rings --
        // an agent cannot tell oriented rings apart without knowing n.
        let g3 = oriented_ring(7).unwrap();
        let q3 = Quotient::compute(&g3);
        assert_eq!(q1.canonical_code_of_node(0), q3.canonical_code_of_node(0));
    }

    #[test]
    fn double_tree_quotient_halves_the_graph() {
        let (g, _mirror) = symmetric_double_tree(2, 2).unwrap();
        let q = Quotient::compute(&g);
        assert_eq!(q.num_classes() * 2, g.num_nodes());
    }

    #[test]
    fn representatives_map_back_to_their_classes() {
        let g = path(6).unwrap();
        let q = Quotient::compute(&g);
        for c in 0..q.num_classes() {
            assert_eq!(q.class_of(q.representative(c)), c);
        }
    }
}
