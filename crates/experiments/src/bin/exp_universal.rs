//! EXP-T31: UniversalRV on a mixed STIC suite with zero a-priori knowledge
//! (Theorem 3.1 / Corollary 3.1).  Pass `--full` for the EXPERIMENTS.md
//! configuration.

use anonrv_experiments::universal;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        universal::UniversalConfig::full()
    } else {
        universal::UniversalConfig::default()
    };
    println!("{}", universal::run(&config));
}
