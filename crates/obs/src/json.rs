//! A minimal JSON codec — the serialization substrate of every telemetry
//! artifact this crate produces (trace records, metrics snapshots, CLI
//! reports) and of the `report_check` validator that consumes them.
//!
//! The crate is deliberately dependency-free (see the crate docs), so this
//! module hand-rolls the two halves it actually needs and nothing more:
//!
//! * **emission** — [`Value`] implements [`std::fmt::Display`] as compact
//!   single-line JSON with full string escaping, which is exactly the shape
//!   a JSONL trace wants (one record per line);
//! * **parsing** — [`parse`] is a strict recursive-descent reader for the
//!   same dialect (UTF-8, no comments, no trailing commas), enough to
//!   round-trip every artifact we emit and to validate reports in CI.
//!
//! Integers are kept exact: a number without a fraction or exponent parses
//! into [`Value::Uint`] / [`Value::Int`] rather than going through `f64`,
//! so 64-bit counters and checksums survive a round trip bit-for-bit.

use std::fmt;

/// A parsed or to-be-emitted JSON value.
///
/// Object member order is preserved (members are a `Vec`, not a map): the
/// emitters in this workspace write deterministic key orders, and keeping
/// them makes report diffs stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64`, kept exact.
    Uint(u64),
    /// A negative integer that fits `i64`, kept exact.
    Int(i64),
    /// Any other number (fraction or exponent present).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in member order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object (`None` on other variants or absent key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Uint(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Uint(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            Value::Num(f) => Some(f),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members in order, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// `true` for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<u64> for Value {
    fn from(u: u64) -> Self {
        Value::Uint(u)
    }
}
impl From<usize> for Value {
    fn from(u: usize) -> Self {
        Value::Uint(u as u64)
    }
}
impl From<u32> for Value {
    fn from(u: u32) -> Self {
        Value::Uint(u64::from(u))
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        if i >= 0 {
            Value::Uint(i as u64)
        } else {
            Value::Int(i)
        }
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Num(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Arr(items)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(opt: Option<T>) -> Self {
        match opt {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

/// Build an object from `(key, value)` pairs in order.
pub fn obj<K: Into<String>, V: Into<Value>>(members: impl IntoIterator<Item = (K, V)>) -> Value {
    Value::Obj(members.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Uint(u) => write!(f, "{u}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Num(n) => {
                // JSON has no NaN/Inf; emit null rather than invalid output
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Value::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parse one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("malformed literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // surrogate pairs: only what our own emitter
                            // never produces, mapped to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // re-decode the UTF-8 sequence starting at this byte
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = s.chars().next().expect("nonempty by construction");
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Uint(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>().map(Value::Num).map_err(|_| format!("bad number {text:?}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_display_and_parse() {
        let v = obj([
            ("name", Value::from("sweep \"quoted\"\nline")),
            ("count", Value::from(u64::MAX)),
            ("neg", Value::from(-42i64)),
            ("pi", Value::from(3.5f64)),
            ("ok", Value::from(true)),
            ("none", Value::Null),
            ("list", Value::Arr(vec![Value::Uint(1), Value::Str("x".into())])),
            ("nested", obj([("k", 7u64)])),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        // exact 64-bit integers survive (no f64 round trip)
        assert_eq!(back.get("count").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(back.get("nested").unwrap().get("k").unwrap().as_u64(), Some(7));
    }

    #[test]
    fn unicode_and_escapes_parse() {
        let v = parse(r#"{"s": "π A \t", "e": []}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("π A \t"));
        assert_eq!(v.get("e").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn accessors_discriminate_variants() {
        let v = parse(r#"{"u": 5, "i": -3, "f": 1.5, "b": false, "s": "x"}"#).unwrap();
        assert_eq!(v.get("u").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("i").unwrap().as_u64(), None);
        assert_eq!(v.get("i").unwrap().as_f64(), Some(-3.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
        assert!(Value::Null.is_null());
    }
}
