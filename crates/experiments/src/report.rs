//! Lightweight tabular reports.
//!
//! Every experiment produces one or more [`Table`]s: the same rows that
//! EXPERIMENTS.md records, printable as aligned ASCII and serialisable to
//! JSON for archival.  Keeping this in-crate (rather than pulling a table
//! crate) keeps the dependency set to the pre-approved list.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// A titled table with a header row, data rows and free-form notes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment identifier, e.g. `"EXP-L32"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows; every row should have `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed below the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a data row.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        debug_assert_eq!(row.len(), self.headers.len(), "row width mismatch in table {}", self.id);
        self.rows.push(row);
    }

    /// Append a note.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column index by header name.
    pub fn column(&self, header: &str) -> Option<usize> {
        self.headers.iter().position(|h| h == header)
    }

    /// All values of the named column.
    pub fn column_values(&self, header: &str) -> Vec<&str> {
        match self.column(header) {
            Some(i) => self.rows.iter().map(|r| r[i].as_str()).collect(),
            None => Vec::new(),
        }
    }

    /// Render the table as aligned, pipe-separated ASCII (GitHub-flavoured
    /// markdown, so it can be pasted into EXPERIMENTS.md verbatim).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = writeln!(out);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out);
            let _ = writeln!(out, "> {}", note);
        }
        out
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serialisation cannot fail")
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// A group of tables produced by one experiment binary (or by `exp_all`).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Report {
    /// The tables, in presentation order.
    pub tables: Vec<Table>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Append a table.
    pub fn push(&mut self, table: Table) {
        self.tables.push(table);
    }

    /// Render every table.
    pub fn render(&self) -> String {
        self.tables.iter().map(Table::render).collect::<Vec<_>>().join("\n")
    }

    /// Serialise to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialisation cannot fail")
    }

    /// Find a table by id.
    pub fn table(&self, id: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.id == id)
    }
}

/// One workload's pair-orbit planning statistics: how far the sweep planner
/// compressed its STIC batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanCompression {
    /// Instance label.
    pub label: String,
    /// Number of ordered pairs (`n²`).
    pub pairs: usize,
    /// Number of pair-orbit classes.
    pub classes: usize,
    /// Representative simulations executed.
    pub executed: usize,
    /// Member STICs answered.
    pub answered: usize,
}

impl PlanCompression {
    /// The pair-space compression ratio `n² / classes`.
    pub fn ratio(&self) -> f64 {
        self.pairs as f64 / self.classes as f64
    }
}

/// Render per-instance planning statistics as a single table note.
pub fn compression_note(stats: &[PlanCompression]) -> String {
    let total_answered: usize = stats.iter().map(|s| s.answered).sum();
    let total_executed: usize = stats.iter().map(|s| s.executed).sum();
    let detail: Vec<String> = stats
        .iter()
        .map(|s| {
            format!(
                "{}: {} pairs -> {} orbits ({:.1}x), {}/{} sims",
                s.label,
                s.pairs,
                s.classes,
                s.ratio(),
                s.executed,
                s.answered
            )
        })
        .collect();
    format!(
        "Pair-orbit planning executed {total_executed} representative simulations for \
         {total_answered} STICs — {}.",
        detail.join("; ")
    )
}

/// Format a `u128` round count compactly (scientific-ish for huge values).
pub fn fmt_rounds(rounds: u128) -> String {
    if rounds < 1_000_000 {
        rounds.to_string()
    } else {
        let mut value = rounds as f64;
        let mut exp = 0u32;
        while value >= 10.0 {
            value /= 10.0;
            exp += 1;
        }
        format!("{value:.2}e{exp}")
    }
}

/// Format an optional round count (`-` when absent).
pub fn fmt_opt_rounds(rounds: Option<u128>) -> String {
    rounds.map(fmt_rounds).unwrap_or_else(|| "-".to_string())
}

/// Format a ratio with 2 decimals, guarding against division by zero.
pub fn fmt_ratio(numerator: u128, denominator: u128) -> String {
    if denominator == 0 {
        "-".to_string()
    } else {
        format!("{:.3}", numerator as f64 / denominator as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_render_aligns_columns_and_keeps_order() {
        let mut t = Table::new("EXP-X", "demo", &["family", "n", "time"]);
        t.push_row(["ring", "6", "12"]);
        t.push_row(["torus", "16", "1234"]);
        t.push_note("a note");
        let rendered = t.render();
        assert!(rendered.contains("## EXP-X — demo"));
        assert!(rendered.contains("| family | n  | time |"));
        assert!(rendered.contains("| torus  | 16 | 1234 |"));
        assert!(rendered.contains("> a note"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn table_columns_are_addressable_by_name() {
        let mut t = Table::new("EXP-X", "demo", &["k", "met"]);
        t.push_row(["1", "yes"]);
        t.push_row(["2", "no"]);
        assert_eq!(t.column("met"), Some(1));
        assert_eq!(t.column("missing"), None);
        assert_eq!(t.column_values("met"), vec!["yes", "no"]);
        assert!(t.column_values("missing").is_empty());
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = Report::new();
        let mut t = Table::new("EXP-Y", "json", &["a"]);
        t.push_row(["1"]);
        r.push(t);
        let json = r.to_json();
        let back: Report = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
        assert!(r.table("EXP-Y").is_some());
        assert!(r.table("EXP-Z").is_none());
    }

    #[test]
    fn compression_note_summarises_per_instance_stats() {
        let stats = vec![
            PlanCompression {
                label: "ring-8".into(),
                pairs: 64,
                classes: 8,
                executed: 6,
                answered: 24,
            },
            PlanCompression {
                label: "torus-3x4".into(),
                pairs: 144,
                classes: 12,
                executed: 4,
                answered: 16,
            },
        ];
        assert_eq!(stats[0].ratio(), 8.0);
        let note = compression_note(&stats);
        assert!(note.contains("10 representative simulations for 40 STICs"), "{note}");
        assert!(note.contains("ring-8: 64 pairs -> 8 orbits (8.0x), 6/24 sims"), "{note}");
    }

    #[test]
    fn round_formatting() {
        assert_eq!(fmt_rounds(999_999), "999999");
        assert_eq!(fmt_rounds(1_000_000), "1.00e6");
        assert_eq!(fmt_rounds(u128::MAX), "3.40e38");
        assert_eq!(fmt_opt_rounds(None), "-");
        assert_eq!(fmt_opt_rounds(Some(42)), "42");
        assert_eq!(fmt_ratio(1, 0), "-");
        assert_eq!(fmt_ratio(3, 4), "0.750");
    }

    #[test]
    fn display_matches_render() {
        let t = Table::new("EXP-D", "display", &["x"]);
        assert_eq!(format!("{t}"), t.render());
    }
}
