//! Integration tests of the persistent plan cache + shard executor
//! (`anonrv-store`) through the umbrella crate: cache correctness under
//! corruption, truncation and format staleness; warm-vs-cold bit-identity;
//! and the exhaustive sharded-merge-vs-unsharded differential on the 3×4
//! torus.

use anonrv::graph::generators::{oriented_ring, oriented_torus};
use anonrv::plan::{PlannedOutcomes, PlannedSweep, SweepPlan};
use anonrv::sim::{EngineConfig, Round, SimOutcome, Stic, SweepWalker};
use anonrv::store::{execute_shard, Provenance, ShardSpec, Store};

/// Unique, self-deleting scratch directory per test.
struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir()
            .join(format!("anonrv-integration-store-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// The shared deterministic sweep-workload agent (the exact program the
/// benches and the `anonrv sweep` CLI drive the store with).
fn walker() -> SweepWalker {
    SweepWalker { seed: 0x5EED }
}

const KEY: &str = "sweep-walker-5eed";
const HORIZON: Round = 64;

fn deltas() -> Vec<Round> {
    vec![0, 1, 2, 3, 4]
}

#[test]
fn warm_and_cold_planned_sweeps_are_bit_identical_end_to_end() {
    let dir = TempDir::new("warm-cold");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_torus(3, 4).unwrap();
    let program = walker();

    // cold: everything computed, everything persisted
    let (cold, mut cold_stats) =
        store.prepare_sweep(&g, &program, KEY, EngineConfig::batch(HORIZON));
    assert_eq!(cold_stats.orbits, Provenance::Cold);
    let plan = SweepPlan::from_orbits(cold.orbits().clone(), deltas(), HORIZON);
    let cold_outcomes = cold.run(&plan);
    cold_stats.record_misses(cold.engine());
    assert!(cold_stats.timeline_misses > 0);
    store.persist_engine(cold.engine(), KEY).unwrap();
    store.save_plan_outcomes(&g, KEY, &plan, cold_outcomes.table()).unwrap();

    // warm: planning and trajectory recording are skipped entirely ...
    let (warm, mut warm_stats) =
        store.prepare_sweep(&g, &program, KEY, EngineConfig::batch(HORIZON));
    assert_eq!(warm_stats.orbits, Provenance::Warm);
    assert_eq!(warm_stats.timeline_hits, cold.engine().cache().computed());
    let warm_outcomes = warm.run(&plan);
    warm_stats.record_misses(warm.engine());
    assert_eq!(warm_stats.timeline_misses, 0, "warm run must not re-record");
    assert_eq!(warm_outcomes.table(), cold_outcomes.table(), "warm/cold differential");

    // ... and the persisted outcome table even skips the merges, while
    // remaining bit-identical to direct simulation of every member STIC
    let table = store.load_plan_outcomes(&g, KEY, &plan).expect("outcome artifact");
    let restored = PlannedOutcomes::from_table(&plan, table).unwrap();
    for u in g.nodes() {
        for v in g.nodes() {
            for (di, &delta) in plan.deltas().iter().enumerate() {
                let direct = warm.engine().simulate(&Stic::new(u, v, delta));
                assert_eq!(restored.get(u, v, di), direct, "({u}, {v}) delta {delta}");
            }
        }
    }
}

#[test]
fn corrupted_truncated_and_stale_timeline_artifacts_fall_back_to_recompute() {
    let dir = TempDir::new("fallback");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_ring(8).unwrap();
    let program = walker();

    let (cold, _) = store.prepare_sweep(&g, &program, KEY, EngineConfig::batch(HORIZON));
    let plan = SweepPlan::from_orbits(cold.orbits().clone(), deltas(), HORIZON);
    let reference = cold.run(&plan);
    store.persist_engine(cold.engine(), KEY).unwrap();

    let timeline_artifact = || {
        let mut files: Vec<_> = std::fs::read_dir(&dir.0)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.file_name().unwrap().to_string_lossy().starts_with("timelines-"))
            .collect();
        assert_eq!(files.len(), 1, "exactly one timeline artifact expected");
        files.pop().unwrap()
    };
    let path = timeline_artifact();
    let good = std::fs::read(&path).unwrap();

    let mutations: Vec<(&str, Vec<u8>)> = vec![
        ("payload corruption", {
            let mut bad = good.clone();
            let mid = bad.len() / 2;
            bad[mid] ^= 0x20;
            bad
        }),
        ("truncation", good[..good.len() * 2 / 3].to_vec()),
        ("format-version bump", {
            let mut stale = good.clone();
            stale[8] = stale[8].wrapping_add(1); // the version field
            stale
        }),
    ];
    for (what, bytes) in mutations {
        std::fs::write(&path, &bytes).unwrap();
        // the damaged artifact is a miss, never an error or wrong data
        let (sweep, stats) = store.prepare_sweep(&g, &program, KEY, EngineConfig::batch(HORIZON));
        assert_eq!(stats.timeline_hits, 0, "{what}: damaged artifact must not preload");
        let outcomes = sweep.run(&plan);
        assert_eq!(outcomes.table(), reference.table(), "{what}: outcomes must be unaffected");
        // recompute-and-overwrite restores a loadable artifact
        store.persist_engine(sweep.engine(), KEY).unwrap();
        let (_, stats) = store.prepare_sweep(&g, &program, KEY, EngineConfig::batch(HORIZON));
        assert!(stats.timeline_hits > 0, "{what}: artifact must be restored");
        std::fs::write(&path, &good).unwrap();
    }
}

#[test]
fn exhaustive_sharded_merge_equals_the_unsharded_sweep_on_torus_3x4() {
    let dir = TempDir::new("shard-differential");
    let store = Store::open(&dir.0).unwrap();
    let g = oriented_torus(3, 4).unwrap();
    let program = walker();

    // the unsharded reference: one process, no store
    let reference_sweep = PlannedSweep::new(&g, &program, EngineConfig::batch(HORIZON));
    let plan = SweepPlan::from_orbits(reference_sweep.orbits().clone(), deltas(), HORIZON);
    let reference = reference_sweep.run(&plan);

    for shards in [2usize, 3, 5] {
        // each shard in its own engine, as separate processes would run
        for index in 0..shards {
            let (worker, _) = store.prepare_sweep(&g, &program, KEY, EngineConfig::batch(HORIZON));
            let part = execute_shard(&worker, &plan, ShardSpec::new(shards, index).unwrap());
            store.save_shard(&g, KEY, &plan, &part).unwrap();
            store.persist_engine(worker.engine(), KEY).unwrap();
        }
        let merged = store.merge_shards(&g, KEY, &plan, shards).unwrap();
        assert_eq!(merged, reference.table(), "{shards}-shard merge differential");

        // ... and the merged table broadcasts to every member STIC
        // bit-identically to direct simulation (the exhaustive check)
        let outcomes = PlannedOutcomes::from_table(&plan, merged).unwrap();
        let mut met = 0usize;
        for u in g.nodes() {
            for v in g.nodes() {
                for (di, &delta) in plan.deltas().iter().enumerate() {
                    let direct: SimOutcome =
                        reference_sweep.engine().simulate(&Stic::new(u, v, delta));
                    assert_eq!(outcomes.get(u, v, di), direct);
                    met += usize::from(direct.met());
                }
            }
        }
        assert_eq!(outcomes.met_total(), met);
    }

    // a partial shard set refuses to merge
    assert!(store.merge_shards(&g, KEY, &plan, 4).is_err());
}
