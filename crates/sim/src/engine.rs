//! The streaming two-agent simulation engine.
//!
//! Each agent runs on its own thread and streams chunked [`Event`] batches
//! over a bounded channel; the coordinator merges the two position timelines
//! on the fly and stops everything as soon as a rendezvous (or the horizon)
//! is reached.  Memory stays `O(chunk_size)` no matter how long the executed
//! algorithms are, and waits of astronomical length (the padding of
//! `UniversalRV`) cost a single event.

use std::collections::VecDeque;
use std::thread;

use crossbeam_channel::{bounded, Receiver, Sender};

use anonrv_graph::{NodeId, PortGraph};

use crate::navigator::{AgentProgram, Event, EventSink, GraphNavigator, Stop};
use crate::stic::{Round, Stic};

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Global round horizon: the simulation gives up if no rendezvous happens
    /// at a global round `<= horizon`.
    pub horizon: Round,
    /// Number of events per channel batch.
    pub chunk_size: usize,
    /// Number of batches that may be in flight per agent.
    pub channel_capacity: usize,
}

impl EngineConfig {
    /// Configuration with the given horizon and default batching.
    pub fn with_horizon(horizon: Round) -> Self {
        EngineConfig { horizon, chunk_size: 4096, channel_capacity: 8 }
    }
}

/// A detected rendezvous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meeting {
    /// Global round of the meeting (the earlier agent's clock).
    pub global_round: Round,
    /// Rounds since the later agent's start — the paper's notion of
    /// rendezvous *time*.
    pub later_round: Round,
    /// The node where the agents met.
    pub node: NodeId,
}

/// Result of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutcome {
    /// The meeting, if one happened within the horizon.
    pub meeting: Option<Meeting>,
    /// Edge traversals of the earlier agent observed up to the meeting /
    /// horizon.
    pub earlier_moves: u64,
    /// Edge traversals of the later agent observed up to the meeting /
    /// horizon.
    pub later_moves: u64,
    /// Whether the earlier agent's program terminated by itself (only
    /// meaningful when no meeting interrupted it).
    pub earlier_terminated: bool,
    /// Whether the later agent's program terminated by itself.
    pub later_terminated: bool,
    /// The horizon used.
    pub horizon: Round,
}

impl SimOutcome {
    /// `true` iff rendezvous was achieved within the horizon.
    pub fn met(&self) -> bool {
        self.meeting.is_some()
    }

    /// Rendezvous time in the paper's sense (rounds after the later agent's
    /// start), if the agents met.
    pub fn rendezvous_time(&self) -> Option<Round> {
        self.meeting.map(|m| m.later_round)
    }
}

enum Msg {
    Events(Vec<Event>),
    Done { terminated: bool, moves: u64 },
}

/// Channel-backed event sink used by the agent threads.
struct ChannelSink {
    buffer: Vec<Event>,
    chunk_size: usize,
    tx: Sender<Msg>,
}

impl ChannelSink {
    fn new(chunk_size: usize, tx: Sender<Msg>) -> Self {
        ChannelSink { buffer: Vec::with_capacity(chunk_size), chunk_size, tx }
    }
}

impl EventSink for ChannelSink {
    fn emit(&mut self, event: Event) -> Result<(), Stop> {
        self.buffer.push(event);
        if self.buffer.len() >= self.chunk_size {
            let batch = std::mem::replace(&mut self.buffer, Vec::with_capacity(self.chunk_size));
            self.tx.send(Msg::Events(batch)).map_err(|_| Stop::Interrupted)?;
        }
        Ok(())
    }

    fn finish(&mut self) {
        if !self.buffer.is_empty() {
            let batch = std::mem::take(&mut self.buffer);
            let _ = self.tx.send(Msg::Events(batch));
        }
    }
}

const INFINITY: Round = Round::MAX;

/// Coordinator-side view of one agent's position timeline, reconstructed
/// lazily from its event stream.
struct Cursor {
    rx: Receiver<Msg>,
    pending: VecDeque<Event>,
    /// Current segment `[seg_start, seg_end)` at `node`, in *global* rounds.
    seg_start: Round,
    seg_end: Round,
    node: NodeId,
    /// No more events will arrive.
    stream_closed: bool,
    /// The program terminated by itself (final position lasts forever).
    terminated: bool,
    /// The infinite tail segment has been emitted.
    tail_emitted: bool,
    moves: u64,
}

impl Cursor {
    fn new(rx: Receiver<Msg>, start_node: NodeId, start_time: Round) -> Self {
        Cursor {
            rx,
            pending: VecDeque::new(),
            seg_start: start_time,
            seg_end: start_time + 1,
            node: start_node,
            stream_closed: false,
            terminated: false,
            tail_emitted: false,
            moves: 0,
        }
    }

    /// Ensure at least one pending event or learn that the stream is closed.
    fn fill(&mut self) {
        while self.pending.is_empty() && !self.stream_closed {
            match self.rx.recv() {
                Ok(Msg::Events(batch)) => self.pending.extend(batch),
                Ok(Msg::Done { terminated, moves }) => {
                    self.stream_closed = true;
                    self.terminated = terminated;
                    self.moves = moves;
                }
                Err(_) => {
                    self.stream_closed = true;
                }
            }
        }
    }

    /// Advance the timeline.  Either the current segment is extended by one or
    /// more wait events (same node, larger `seg_end`) or the cursor moves on
    /// to the next one-round segment of a move event.  In both cases the
    /// coordinator must re-check the overlap with the other agent before
    /// advancing again — a wait extension can create an overlap that did not
    /// exist before, and skipping past it would miss a rendezvous that happens
    /// while this agent is parked.  Returns `false` when the timeline is
    /// exhausted (no further position information exists).
    fn advance(&mut self) -> bool {
        self.fill();
        match self.pending.pop_front() {
            Some(Event::Wait { rounds }) => {
                self.seg_end += rounds;
                // absorb any further already-received waits (same node), but do
                // not block waiting for more: the extended segment must be
                // compared against the other agent first
                while let Some(&Event::Wait { rounds }) = self.pending.front() {
                    self.seg_end += rounds;
                    self.pending.pop_front();
                }
                true
            }
            Some(Event::Move { to, .. }) => {
                self.seg_start = self.seg_end;
                self.seg_end += 1;
                self.node = to;
                true
            }
            None => {
                // stream closed
                if self.terminated && !self.tail_emitted {
                    self.tail_emitted = true;
                    self.seg_start = self.seg_end;
                    self.seg_end = INFINITY;
                    return true;
                }
                false
            }
        }
    }

    /// Absorb any immediately available waits into the current segment so the
    /// first comparison sees a maximal run.  (Correctness does not depend on
    /// this; it only avoids degenerate 1-round segments at the start.)
    fn absorb_leading_waits(&mut self) {
        loop {
            self.fill();
            match self.pending.front() {
                Some(Event::Wait { rounds }) => {
                    self.seg_end += rounds;
                    self.pending.pop_front();
                }
                _ => break,
            }
        }
    }
}

/// Simulate the STIC with both agents running the same `program` (the
/// standard anonymous setting), up to the given global horizon.
pub fn simulate(
    g: &PortGraph,
    program: &dyn AgentProgram,
    stic: &Stic,
    horizon: Round,
) -> SimOutcome {
    simulate_with(g, program, program, stic, EngineConfig::with_horizon(horizon))
}

/// Simulate with possibly different programs for the two agents (used by the
/// leader-election reduction and by adversarial tests) and explicit engine
/// configuration.
pub fn simulate_with(
    g: &PortGraph,
    earlier_program: &dyn AgentProgram,
    later_program: &dyn AgentProgram,
    stic: &Stic,
    config: EngineConfig,
) -> SimOutcome {
    assert!(stic.earlier < g.num_nodes(), "earlier start node out of range");
    assert!(stic.later < g.num_nodes(), "later start node out of range");

    if stic.delay > config.horizon {
        // the later agent never even appears within the horizon
        return SimOutcome {
            meeting: None,
            earlier_moves: 0,
            later_moves: 0,
            earlier_terminated: false,
            later_terminated: false,
            horizon: config.horizon,
        };
    }

    thread::scope(|scope| {
        let (tx_a, rx_a) = bounded::<Msg>(config.channel_capacity);
        let (tx_b, rx_b) = bounded::<Msg>(config.channel_capacity);

        let earlier_horizon = config.horizon;
        let later_horizon = config.horizon - stic.delay;

        scope.spawn(move || {
            run_agent(g, earlier_program, stic.earlier, earlier_horizon, config.chunk_size, tx_a);
        });
        scope.spawn(move || {
            run_agent(g, later_program, stic.later, later_horizon, config.chunk_size, tx_b);
        });

        coordinate(rx_a, rx_b, stic, config.horizon)
    })
}

fn run_agent(
    g: &PortGraph,
    program: &dyn AgentProgram,
    start: NodeId,
    horizon: Round,
    chunk_size: usize,
    tx: Sender<Msg>,
) {
    let sink = ChannelSink::new(chunk_size, tx.clone());
    let mut nav = GraphNavigator::new(g, start, horizon, sink);
    let result = program.run(&mut nav);
    let moves = nav.moves();
    let _sink = nav.into_sink(); // flush
    let _ = tx.send(Msg::Done { terminated: result.is_ok(), moves });
}

fn coordinate(rx_a: Receiver<Msg>, rx_b: Receiver<Msg>, stic: &Stic, horizon: Round) -> SimOutcome {
    let mut a = Cursor::new(rx_a, stic.earlier, 0);
    let mut b = Cursor::new(rx_b, stic.later, stic.delay);
    a.absorb_leading_waits();
    b.absorb_leading_waits();

    let mut meeting = None;
    loop {
        // overlap of the two current segments
        let lo = a.seg_start.max(b.seg_start);
        let hi = a.seg_end.min(b.seg_end);
        if lo < hi && a.node == b.node && lo <= horizon {
            meeting = Some(Meeting { global_round: lo, later_round: lo - stic.delay, node: a.node });
            break;
        }
        if lo > horizon {
            break;
        }
        if a.seg_end == INFINITY && b.seg_end == INFINITY {
            // both agents parked forever on different nodes
            break;
        }
        let advanced = if a.seg_end <= b.seg_end { a.advance() } else { b.advance() };
        if !advanced {
            break;
        }
    }

    // Drain whatever the agents still have to say so the move counters are as
    // accurate as possible, then drop the receivers (unblocking the agents if
    // they are still running).
    let (a_moves, a_term) = drain(a);
    let (b_moves, b_term) = drain(b);

    SimOutcome {
        meeting,
        earlier_moves: a_moves,
        later_moves: b_moves,
        earlier_terminated: a_term,
        later_terminated: b_term,
        horizon,
    }
}

fn drain(cursor: Cursor) -> (u64, bool) {
    // If the stream already closed we have exact counts; otherwise count what
    // is pending and give the sender a chance to finish quickly, then drop.
    if !cursor.stream_closed {
        // do not block: the agent may be far from done; just drop the channel.
        let pending_moves =
            cursor.pending.iter().filter(|e| matches!(e, Event::Move { .. })).count() as u64;
        return (pending_moves, false);
    }
    let pending_moves =
        cursor.pending.iter().filter(|e| matches!(e, Event::Move { .. })).count() as u64;
    let _ = pending_moves;
    (cursor.moves, cursor.terminated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::navigator::Navigator;
    use anonrv_graph::generators::{oriented_ring, two_node_graph};

    /// "move every round through port 0" — the introduction's example
    /// algorithm on the two-node graph.
    fn mover() -> impl AgentProgram {
        |nav: &mut dyn Navigator| -> Result<(), Stop> {
            loop {
                nav.move_via(0)?;
            }
        }
    }

    /// Wait forever (a single maximal wait per iteration, so that waiting
    /// until an astronomically distant horizon stays O(1) events).
    fn waiter() -> impl AgentProgram {
        |nav: &mut dyn Navigator| -> Result<(), Stop> {
            loop {
                nav.wait(Round::MAX)?;
            }
        }
    }

    #[test]
    fn two_node_graph_with_odd_delay_meets_as_in_the_introduction() {
        // identical agents executing "move at each round" with delay 3 meet
        // 3 rounds after the start of the earlier agent
        let g = two_node_graph();
        let out = simulate(&g, &mover(), &Stic::new(0, 1, 3), 100);
        let m = out.meeting.expect("must meet");
        assert_eq!(m.global_round, 3);
        assert_eq!(m.later_round, 0);
    }

    #[test]
    fn two_node_graph_with_even_delay_never_meets_with_the_naive_mover() {
        let g = two_node_graph();
        let out = simulate(&g, &mover(), &Stic::new(0, 1, 2), 10_000);
        assert!(!out.met());
        // and simultaneous start can never meet regardless of the algorithm
        let out0 = simulate(&g, &mover(), &Stic::simultaneous(0, 1), 10_000);
        assert!(!out0.met());
    }

    #[test]
    fn waiting_for_mommy_meets_when_roles_differ() {
        let g = oriented_ring(6).unwrap();
        // earlier agent waits at node 0, later agent walks the ring
        let out = simulate_with(
            &g,
            &waiter(),
            &mover(),
            &Stic::new(0, 3, 2),
            EngineConfig::with_horizon(100),
        );
        let m = out.meeting.expect("walker reaches the waiter");
        assert_eq!(m.node, 0);
        assert_eq!(m.later_round, 3); // three ring steps from node 3 to node 0... via port 0: 3->4->5->0
    }

    #[test]
    fn meeting_can_happen_at_the_later_agents_start_round() {
        let g = oriented_ring(5).unwrap();
        // earlier walks; later appears right on the node the earlier agent
        // reaches at that very round
        let out = simulate(&g, &mover(), &Stic::new(0, 2, 2), 100);
        let m = out.meeting.expect("must meet immediately");
        assert_eq!(m.later_round, 0);
        assert_eq!(m.global_round, 2);
        assert_eq!(m.node, 2);
    }

    #[test]
    fn horizon_is_respected() {
        let g = oriented_ring(6).unwrap();
        // two waiters on different nodes never meet; simulation returns quickly
        let out = simulate(&g, &waiter(), &Stic::new(0, 3, 1), 1_000_000);
        assert!(!out.met());
        assert_eq!(out.horizon, 1_000_000);
    }

    #[test]
    fn both_programs_terminating_far_apart_ends_the_simulation() {
        let g = oriented_ring(8).unwrap();
        let two_steps = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            nav.move_via(0)?;
            nav.move_via(0)?;
            Ok(())
        };
        let out = simulate(&g, &two_steps, &Stic::new(0, 4, 0), Round::MAX - 1);
        assert!(!out.met());
        assert!(out.earlier_terminated);
        assert!(out.later_terminated);
    }

    #[test]
    fn terminated_programs_still_meet_later_arrivals() {
        let g = oriented_ring(6).unwrap();
        // earlier agent takes two steps to node 2 and stops forever;
        // later agent starts at node 5 much later and walks until it hits node 2.
        let two_steps = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            nav.move_via(0)?;
            nav.move_via(0)?;
            Ok(())
        };
        let out = simulate_with(
            &g,
            &two_steps,
            &mover(),
            &Stic::new(0, 5, 50),
            EngineConfig::with_horizon(10_000),
        );
        let m = out.meeting.expect("the mover reaches the parked agent");
        assert_eq!(m.node, 2);
        assert_eq!(m.later_round, 3); // 5 -> 0 -> 1 -> 2
    }

    #[test]
    fn delay_beyond_horizon_means_no_meeting() {
        let g = oriented_ring(4).unwrap();
        let out = simulate(&g, &mover(), &Stic::new(0, 2, 1_000), 10);
        assert!(!out.met());
    }

    #[test]
    fn huge_waits_do_not_hang_the_engine() {
        let g = oriented_ring(4).unwrap();
        let patient = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            nav.wait(1u128 << 90)?;
            nav.move_via(0)?;
            Ok(())
        };
        let out = simulate_with(
            &g,
            &patient,
            &waiter(),
            &Stic::new(0, 1, 0),
            EngineConfig::with_horizon(1u128 << 91),
        );
        // the earlier agent eventually steps onto node 1 where the later agent
        // has been waiting the whole time
        let m = out.meeting.expect("meet after the long wait");
        assert_eq!(m.node, 1);
        assert_eq!(m.global_round, (1u128 << 90) + 1);
    }

    #[test]
    fn same_start_node_meets_at_the_later_start() {
        let g = oriented_ring(5).unwrap();
        let out = simulate(&g, &waiter(), &Stic::new(3, 3, 7), 100);
        let m = out.meeting.unwrap();
        assert_eq!(m.global_round, 7);
        assert_eq!(m.later_round, 0);
        assert_eq!(m.node, 3);
    }
}
