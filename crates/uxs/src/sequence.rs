//! The UXS data type and its application semantics.

use anonrv_graph::{NodeId, Port, PortGraph};

/// A (candidate) universal exploration sequence: the integer terms
/// `(a_1, ..., a_M)` of Section 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Uxs {
    terms: Vec<usize>,
}

impl Uxs {
    /// Wrap an explicit term sequence.
    pub fn new(terms: Vec<usize>) -> Self {
        Uxs { terms }
    }

    /// The number of terms `M`.  The application visits `M + 2` nodes
    /// (`u_0 ... u_{M+1}`), i.e. performs `M + 1` moves.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` iff the sequence has no terms (its application still performs
    /// the single initial port-0 move).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The raw terms.
    pub fn terms(&self) -> &[usize] {
        &self.terms
    }

    /// A prefix of the sequence (used by the ablation experiments).
    pub fn prefix(&self, len: usize) -> Uxs {
        Uxs { terms: self.terms[..len.min(self.terms.len())].to_vec() }
    }

    /// Number of moves performed by the application of this sequence.
    pub fn num_moves(&self) -> usize {
        self.terms.len() + 1
    }
}

/// The application `R(u)` of a UXS at a start node: all visited nodes plus
/// the outgoing and entry ports of every move.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UxsWalk {
    /// Visited nodes `u_0, ..., u_{M+1}`.
    pub nodes: Vec<NodeId>,
    /// Outgoing port of move `i` (taken at `nodes[i]`).
    pub out_ports: Vec<Port>,
    /// Entry port of move `i` (the port of the traversed edge at `nodes[i+1]`).
    pub in_ports: Vec<Port>,
}

impl UxsWalk {
    /// The port sequence that retraces this walk backwards to its start.
    pub fn backtrack_ports(&self) -> Vec<Port> {
        self.in_ports.iter().rev().copied().collect()
    }

    /// Set of distinct visited nodes.
    pub fn visited(&self) -> std::collections::HashSet<NodeId> {
        self.nodes.iter().copied().collect()
    }
}

/// Apply the UXS at `start` following the paper's rule (analysis-side: the
/// graph is known).  Agent-side execution lives in `anonrv-core`, which only
/// uses the restricted navigator interface.
pub fn apply(g: &PortGraph, uxs: &Uxs, start: NodeId) -> UxsWalk {
    let mut nodes = Vec::with_capacity(uxs.len() + 2);
    let mut out_ports = Vec::with_capacity(uxs.len() + 1);
    let mut in_ports = Vec::with_capacity(uxs.len() + 1);
    nodes.push(start);

    // first move: port 0
    let (mut cur, mut entry) = g.succ(start, 0);
    nodes.push(cur);
    out_ports.push(0);
    in_ports.push(entry);

    for &a in uxs.terms() {
        let d = g.degree(cur);
        let p = (entry + a) % d;
        let (next, q) = g.succ(cur, p);
        nodes.push(next);
        out_ports.push(p);
        in_ports.push(q);
        cur = next;
        entry = q;
    }
    UxsWalk { nodes, out_ports, in_ports }
}

/// `true` iff the application of `uxs` at `start` visits every node of `g`.
pub fn covers(g: &PortGraph, uxs: &Uxs, start: NodeId) -> bool {
    let mut seen = vec![false; g.num_nodes()];
    let mut count = 0usize;
    let mark = |v: NodeId, seen: &mut Vec<bool>, count: &mut usize| {
        if !seen[v] {
            seen[v] = true;
            *count += 1;
        }
    };
    mark(start, &mut seen, &mut count);
    let (mut cur, mut entry) = g.succ(start, 0);
    mark(cur, &mut seen, &mut count);
    for &a in uxs.terms() {
        if count == g.num_nodes() {
            return true;
        }
        let d = g.degree(cur);
        let p = (entry + a) % d;
        let (next, q) = g.succ(cur, p);
        mark(next, &mut seen, &mut count);
        cur = next;
        entry = q;
    }
    count == g.num_nodes()
}

/// The *trail transcript* of the UXS application at `start`: the degree of
/// the start node followed, for every subsequent visited node, by the pair
/// `(entry port, degree)`.  The transcript is exactly what an agent observes
/// while executing the application, so it is computable agent-side; it is
/// identical for two symmetric start nodes (equal views force equal
/// observations along equal port decisions).
pub fn transcript(g: &PortGraph, uxs: &Uxs, start: NodeId) -> Vec<(usize, usize)> {
    let walk = apply(g, uxs, start);
    let mut t = Vec::with_capacity(walk.nodes.len());
    t.push((usize::MAX, g.degree(start)));
    for (i, &v) in walk.nodes.iter().enumerate().skip(1) {
        t.push((walk.in_ports[i - 1], g.degree(v)));
    }
    t
}

/// 64-bit FNV-1a fingerprint of the trail transcript.  Used as the default
/// (polynomial-size) label of the `AsymmRV` substitute; see DESIGN.md §4.2.
pub fn transcript_fingerprint(g: &PortGraph, uxs: &Uxs, start: NodeId) -> u64 {
    fingerprint_pairs(&transcript(g, uxs, start))
}

/// FNV-1a over a slice of pairs (shared with the agent-side implementation in
/// `anonrv-core`, which computes the same value from its own observations).
pub fn fingerprint_pairs(pairs: &[(usize, usize)]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &(a, b) in pairs {
        for byte in a.to_le_bytes().into_iter().chain(b.to_le_bytes()) {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::{lollipop, oriented_ring, oriented_torus, star};
    use anonrv_graph::symmetry::OrbitPartition;

    fn small_uxs() -> Uxs {
        Uxs::new(vec![1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0, 1, 0, 1])
    }

    #[test]
    fn application_has_the_documented_length() {
        let g = oriented_ring(5).unwrap();
        let uxs = small_uxs();
        let walk = apply(&g, &uxs, 0);
        assert_eq!(walk.nodes.len(), uxs.len() + 2);
        assert_eq!(walk.out_ports.len(), uxs.len() + 1);
        assert_eq!(walk.in_ports.len(), uxs.len() + 1);
        assert_eq!(uxs.num_moves(), uxs.len() + 1);
    }

    #[test]
    fn first_move_uses_port_zero() {
        let g = star(4).unwrap();
        let walk = apply(&g, &small_uxs(), 0);
        assert_eq!(walk.out_ports[0], 0);
        assert_eq!(walk.nodes[1], g.succ(0, 0).0);
    }

    #[test]
    fn backtrack_ports_return_to_the_start() {
        let g = lollipop(4, 3).unwrap();
        let walk = apply(&g, &small_uxs(), 2);
        let back = anonrv_graph::traversal::apply_ports(
            &g,
            *walk.nodes.last().unwrap(),
            &walk.backtrack_ports(),
        )
        .unwrap();
        assert_eq!(back.end(), 2);
    }

    #[test]
    fn covers_detects_full_and_partial_coverage() {
        let g = oriented_ring(4).unwrap();
        // Application rule: the next port is (entry port + term) mod degree.
        // On the oriented ring the entry port is always 1 when moving
        // clockwise, so term 1 keeps going clockwise (covers the ring) while
        // term 0 goes back the way it came (bounces between two nodes).
        let all_one = Uxs::new(vec![1; 6]);
        assert!(covers(&g, &all_one, 0));
        let all_zero = Uxs::new(vec![0; 6]);
        assert!(!covers(&g, &all_zero, 0));
        let too_short = Uxs::new(vec![1]);
        assert!(!covers(&g, &too_short, 0));
        // covers agrees with apply + visited
        assert_eq!(apply(&g, &all_one, 0).visited().len(), 4);
        assert_eq!(apply(&g, &all_zero, 0).visited().len(), 2);
    }

    #[test]
    fn transcript_is_equal_for_symmetric_nodes_and_observable_only() {
        let g = oriented_torus(3, 4).unwrap();
        let uxs = small_uxs();
        let p = OrbitPartition::compute(&g);
        assert!(p.is_fully_symmetric());
        let t0 = transcript(&g, &uxs, 0);
        for v in g.nodes() {
            assert_eq!(transcript(&g, &uxs, v), t0, "symmetric nodes must have equal transcripts");
        }
        assert_eq!(t0.len(), uxs.len() + 2);
        assert_eq!(t0[0], (usize::MAX, 4));
    }

    #[test]
    fn transcript_fingerprints_differ_on_a_clearly_asymmetric_pair() {
        let g = lollipop(4, 3).unwrap();
        let uxs = small_uxs();
        // node 0 (degree 4, clique + tail) vs the tail end (degree 1)
        assert_ne!(transcript_fingerprint(&g, &uxs, 0), transcript_fingerprint(&g, &uxs, 6));
    }

    #[test]
    fn prefix_truncates() {
        let u = small_uxs();
        assert_eq!(u.prefix(3).terms(), &[1, 0, 1]);
        assert_eq!(u.prefix(100).len(), u.len());
        assert!(!u.is_empty());
        assert!(Uxs::new(vec![]).is_empty());
    }

    #[test]
    fn fingerprint_pairs_is_order_sensitive() {
        assert_ne!(fingerprint_pairs(&[(1, 2), (3, 4)]), fingerprint_pairs(&[(3, 4), (1, 2)]));
        assert_eq!(fingerprint_pairs(&[]), fingerprint_pairs(&[]));
    }
}
