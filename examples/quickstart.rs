//! Quickstart: classify a space-time initial configuration (STIC) and run the
//! universal rendezvous algorithm on it with zero a-priori knowledge.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use anonrv_core::prelude::*;
use anonrv_graph::generators::oriented_ring;
use anonrv_graph::shrink::shrink;
use anonrv_sim::{simulate, Stic};

fn main() {
    // A 6-node oriented ring: every pair of nodes is symmetric, and
    // Shrink(u, v) equals the distance between u and v.
    let g = oriented_ring(6).expect("ring generation");
    let (u, v) = (0usize, 2usize);
    let d = shrink(&g, u, v).expect("shrink computation");
    println!("graph: oriented ring with {} nodes", g.num_nodes());
    println!("Shrink({u}, {v}) = {d}");

    // Corollary 3.1: the STIC [(u, v), delta] is feasible iff the positions
    // are nonsymmetric, or they are symmetric and delta >= Shrink(u, v).
    for delta in [d as u128 - 1, d as u128] {
        println!(
            "STIC [({u}, {v}), {delta}] is {}",
            if is_feasible(&g, u, v, delta) { "feasible" } else { "infeasible (Lemma 3.1)" }
        );
    }

    // Run UniversalRV (Algorithm 3) on the feasible STIC.  The algorithm
    // knows nothing: not the graph, not its size, not the delay.
    let delta = d as u128;
    let uxs = PseudorandomUxs::with_rule(LengthRule::Quadratic { c: 1, min_len: 16 });
    let scheme = TrailSignature::new(uxs);
    let algo = UniversalRv::new(&uxs, &scheme);
    let horizon = algo.completion_horizon(g.num_nodes(), d, delta);
    let outcome = simulate(&g, &algo, &Stic::new(u, v, delta), horizon);
    match outcome.meeting {
        Some(m) => println!(
            "UniversalRV: rendezvous at node {} after {} rounds (later agent's clock)",
            m.node, m.later_round
        ),
        None => println!("UniversalRV: no rendezvous within {horizon} rounds"),
    }
}
