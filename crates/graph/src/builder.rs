//! Checked construction of [`PortGraph`]s.

use crate::error::GraphError;
use crate::graph::{NodeId, Port, PortGraph};
use crate::Result;

/// Incremental, checked builder for [`PortGraph`].
///
/// Edges are added with explicit ports at both extremities.  The builder
/// rejects self-loops, parallel edges and reused ports at insertion time;
/// [`PortGraphBuilder::build`] additionally checks that the ports of every
/// node are contiguous (`0..deg`) and that the graph is connected, as the
/// paper's model requires.
///
/// ```
/// use anonrv_graph::PortGraphBuilder;
///
/// // the two-node graph from the paper's introduction
/// let mut b = PortGraphBuilder::new(2);
/// b.add_edge(0, 0, 1, 0).unwrap();
/// let g = b.build().unwrap();
/// assert_eq!(g.num_nodes(), 2);
/// assert_eq!(g.succ(0, 0), (1, 0));
/// ```
#[derive(Debug, Clone)]
pub struct PortGraphBuilder {
    /// `slots[v][p] = Some((w, q))` once the edge using port `p` at `v` is known.
    slots: Vec<Vec<Option<(NodeId, Port)>>>,
}

impl PortGraphBuilder {
    /// Create a builder for a graph with `n` nodes and no edges yet.
    pub fn new(n: usize) -> Self {
        PortGraphBuilder { slots: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.slots.len()
    }

    /// Add one more (isolated, for now) node and return its index.
    pub fn add_node(&mut self) -> NodeId {
        self.slots.push(Vec::new());
        self.slots.len() - 1
    }

    /// Add the undirected edge `{u, v}` with port `pu` at `u` and `pv` at `v`.
    pub fn add_edge(&mut self, u: NodeId, pu: Port, v: NodeId, pv: Port) -> Result<()> {
        let n = self.slots.len();
        if u >= n {
            return Err(GraphError::NodeOutOfRange { node: u, n });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfRange { node: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.slots[u].iter().flatten().any(|&(w, _)| w == v) {
            return Err(GraphError::ParallelEdge { u, v });
        }
        if self.port_used(u, pu) {
            return Err(GraphError::DuplicatePort { node: u, port: pu });
        }
        if self.port_used(v, pv) {
            return Err(GraphError::DuplicatePort { node: v, port: pv });
        }
        self.set_slot(u, pu, (v, pv));
        self.set_slot(v, pv, (u, pu));
        Ok(())
    }

    /// Add the edge `{u, v}` using the smallest unused port at each endpoint.
    /// Returns the pair of assigned ports.
    pub fn add_edge_auto(&mut self, u: NodeId, v: NodeId) -> Result<(Port, Port)> {
        let pu = self.next_free_port(u);
        let pv = self.next_free_port(v);
        self.add_edge(u, pu, v, pv)?;
        Ok((pu, pv))
    }

    /// Current number of used ports at `v` (its degree so far).
    pub fn degree(&self, v: NodeId) -> usize {
        self.slots.get(v).map(|s| s.iter().flatten().count()).unwrap_or(0)
    }

    /// Smallest port not yet used at `v`.
    pub fn next_free_port(&self, v: NodeId) -> Port {
        let slots = &self.slots[v];
        for (p, s) in slots.iter().enumerate() {
            if s.is_none() {
                return p;
            }
        }
        slots.len()
    }

    fn port_used(&self, v: NodeId, p: Port) -> bool {
        self.slots[v].get(p).map(|s| s.is_some()).unwrap_or(false)
    }

    fn set_slot(&mut self, v: NodeId, p: Port, value: (NodeId, Port)) {
        let slots = &mut self.slots[v];
        if slots.len() <= p {
            slots.resize(p + 1, None);
        }
        slots[p] = Some(value);
    }

    /// Finalise the graph.  Fails if some node has non-contiguous ports, an
    /// isolated node exists or the graph is disconnected.
    pub fn build(self) -> Result<PortGraph> {
        let mut adj: Vec<Box<[(NodeId, Port)]>> = Vec::with_capacity(self.slots.len());
        for (v, slots) in self.slots.into_iter().enumerate() {
            let mut list = Vec::with_capacity(slots.len());
            for (p, s) in slots.into_iter().enumerate() {
                match s {
                    Some(half) => list.push(half),
                    None => {
                        // a hole below the maximum used port
                        let _ = p;
                        return Err(GraphError::NonContiguousPorts { node: v });
                    }
                }
            }
            if list.is_empty() {
                return Err(GraphError::IsolatedNode { node: v });
            }
            adj.push(list.into_boxed_slice());
        }
        PortGraph::from_adjacency(adj)
    }

    /// Build a graph from plain adjacency lists, assigning ports in list
    /// order (`adj[v][i]` uses port `i` at `v`).  Every edge must appear in
    /// both endpoint lists exactly once.
    pub fn from_adjacency_lists(lists: &[Vec<NodeId>]) -> Result<PortGraph> {
        let n = lists.len();
        let mut b = PortGraphBuilder::new(n);
        for (u, nbrs) in lists.iter().enumerate() {
            for (pu, &v) in nbrs.iter().enumerate() {
                if v >= n {
                    return Err(GraphError::NodeOutOfRange { node: v, n });
                }
                if u < v {
                    // port at v = position of u in v's list
                    let pv = lists[v]
                        .iter()
                        .position(|&w| w == u)
                        .ok_or(GraphError::DuplicatePort { node: v, port: 0 })?;
                    b.add_edge(u, pu, v, pv)?;
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_triangle_builds() {
        let mut b = PortGraphBuilder::new(3);
        b.add_edge(0, 0, 1, 0).unwrap();
        b.add_edge(1, 1, 2, 0).unwrap();
        b.add_edge(2, 1, 0, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert!(g.is_regular());
        g.validate().unwrap();
    }

    #[test]
    fn self_loops_are_rejected() {
        let mut b = PortGraphBuilder::new(2);
        assert_eq!(b.add_edge(0, 0, 0, 1), Err(GraphError::SelfLoop { node: 0 }));
    }

    #[test]
    fn parallel_edges_are_rejected() {
        let mut b = PortGraphBuilder::new(2);
        b.add_edge(0, 0, 1, 0).unwrap();
        assert_eq!(b.add_edge(0, 1, 1, 1), Err(GraphError::ParallelEdge { u: 0, v: 1 }));
    }

    #[test]
    fn duplicate_ports_are_rejected() {
        let mut b = PortGraphBuilder::new(3);
        b.add_edge(0, 0, 1, 0).unwrap();
        assert_eq!(b.add_edge(0, 0, 2, 0), Err(GraphError::DuplicatePort { node: 0, port: 0 }));
    }

    #[test]
    fn non_contiguous_ports_are_rejected_at_build_time() {
        let mut b = PortGraphBuilder::new(2);
        // Port 1 is used at node 0 but port 0 never is.
        b.add_edge(0, 1, 1, 0).unwrap();
        assert_eq!(b.build(), Err(GraphError::NonContiguousPorts { node: 0 }));
    }

    #[test]
    fn disconnected_graphs_are_rejected() {
        let mut b = PortGraphBuilder::new(4);
        b.add_edge(0, 0, 1, 0).unwrap();
        b.add_edge(2, 0, 3, 0).unwrap();
        assert_eq!(b.build(), Err(GraphError::Disconnected));
    }

    #[test]
    fn isolated_nodes_are_rejected() {
        let mut b = PortGraphBuilder::new(3);
        b.add_edge(0, 0, 1, 0).unwrap();
        assert_eq!(b.build(), Err(GraphError::IsolatedNode { node: 2 }));
    }

    #[test]
    fn add_edge_auto_assigns_lowest_free_ports() {
        let mut b = PortGraphBuilder::new(4);
        assert_eq!(b.add_edge_auto(0, 1).unwrap(), (0, 0));
        assert_eq!(b.add_edge_auto(0, 2).unwrap(), (1, 0));
        assert_eq!(b.add_edge_auto(0, 3).unwrap(), (2, 0));
        assert_eq!(b.degree(0), 3);
        let g = b.build().unwrap();
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree_sequence(), vec![3, 1, 1, 1]);
    }

    #[test]
    fn from_adjacency_lists_round_trips_ports_in_list_order() {
        let lists = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        let g = PortGraphBuilder::from_adjacency_lists(&lists).unwrap();
        assert_eq!(g.succ(0, 0), (1, 0));
        assert_eq!(g.succ(0, 1), (2, 0));
        assert_eq!(g.succ(2, 1), (1, 1));
    }

    #[test]
    fn add_node_grows_the_graph() {
        let mut b = PortGraphBuilder::new(1);
        let v = b.add_node();
        assert_eq!(v, 1);
        b.add_edge(0, 0, 1, 0).unwrap();
        assert_eq!(b.build().unwrap().num_nodes(), 2);
    }
}
