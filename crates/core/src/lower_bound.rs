//! Executable machinery for the Section 4 lower bound (Theorem 4.1).
//!
//! The theorem: on the graph `Q̂_h` with `h = 2D`, `D = 2k`, any algorithm
//! that achieves rendezvous for every STIC `[(r, v), D]` with `v ∈ Z`
//! (`|Z| = 2^k`) needs at least `2^(k−1)` rounds for some of them.
//!
//! The proof observes that on `Q̂_h` — a 4-regular graph with all views equal
//! and every edge carrying opposite cardinal ports — an agent can learn
//! nothing while navigating, so any deterministic algorithm degenerates to a
//! fixed word over `{stay, N, E, S, W}` (an *oblivious schedule*), and that,
//! as long as executions are shorter than the distance to the leaf cycles,
//! everything happens inside the tree `Q_h`.
//!
//! This module provides both environments:
//!
//! * the **explicit** checker runs oblivious schedules on the concrete
//!   `Q̂_h` built by [`anonrv_graph::generators::qh_hat`] (practical for
//!   `k ≤ 2`, i.e. `h ≤ 8`), and
//! * the **symbolic** checker runs them on the infinite 4-regular
//!   port-homogeneous tree (the universal cover of `Q̂_h`, and exactly the
//!   tree-restricted setting of the proof), where positions are reduced words
//!   over the cardinals; it scales to large `k`.
//!
//! A schedule "achieves the rendezvous family" when every STIC `[(r, v), D]`,
//! `v ∈ Z`, is met; [`LowerBoundReport`] records which ones are not and how
//! long the met ones took, so experiments can confirm the `2^(k−1)`
//! threshold.

use anonrv_graph::generators::{z_set, Cardinal, QhGraph};
use anonrv_sim::{simulate, AgentProgram, Navigator, Round, Stic, Stop};

/// One step of an oblivious schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObliviousStep {
    /// Stay at the current node this round.
    Stay,
    /// Move through the given cardinal port.
    Go(Cardinal),
}

impl ObliviousStep {
    /// Short letter used in printouts (`.` for stay).
    pub fn letter(self) -> char {
        match self {
            ObliviousStep::Stay => '.',
            ObliviousStep::Go(c) => c.letter(),
        }
    }
}

/// A fixed word over `{stay, N, E, S, W}`; the shape every deterministic
/// algorithm takes on `Q̂_h` (see the module documentation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObliviousSchedule {
    /// The steps, executed in order; after the last step the agent stays put
    /// forever.
    pub steps: Vec<ObliviousStep>,
}

impl ObliviousSchedule {
    /// Build from explicit steps.
    pub fn new(steps: Vec<ObliviousStep>) -> Self {
        ObliviousSchedule { steps }
    }

    /// Parse from a string of letters `N`, `E`, `S`, `W` and `.` (stay).
    pub fn parse(word: &str) -> Option<Self> {
        let steps = word
            .chars()
            .map(|c| match c {
                '.' => Some(ObliviousStep::Stay),
                'N' => Some(ObliviousStep::Go(Cardinal::N)),
                'E' => Some(ObliviousStep::Go(Cardinal::E)),
                'S' => Some(ObliviousStep::Go(Cardinal::S)),
                'W' => Some(ObliviousStep::Go(Cardinal::W)),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()?;
        Some(ObliviousSchedule { steps })
    }

    /// Length of the schedule in rounds.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` iff the schedule has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// A deterministic pseudorandom schedule (for adversary experiments).
    pub fn pseudorandom(len: usize, seed: u64) -> Self {
        // small xorshift so the core crate needs no extra dependency
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let steps = (0..len)
            .map(|_| match next() % 5 {
                0 => ObliviousStep::Stay,
                1 => ObliviousStep::Go(Cardinal::N),
                2 => ObliviousStep::Go(Cardinal::E),
                3 => ObliviousStep::Go(Cardinal::S),
                _ => ObliviousStep::Go(Cardinal::W),
            })
            .collect();
        ObliviousSchedule { steps }
    }

    /// The natural "sweep" schedule that walks out and back along every word
    /// in `{N, E}^k` in lexicographic order — the kind of exploration the
    /// proof's counting argument charges for (it visits every midpoint
    /// `M(v) = γ(r)`), but it is **not** a meeting schedule.  Its length is
    /// `2k · 2^k`.
    pub fn sweep(k: usize) -> Self {
        let mut steps = Vec::with_capacity((2 * k) << k);
        for mask in 0u64..(1u64 << k) {
            let gamma: Vec<Cardinal> = (0..k)
                .map(|i| if mask >> i & 1 == 0 { Cardinal::N } else { Cardinal::E })
                .collect();
            for &c in &gamma {
                steps.push(ObliviousStep::Go(c));
            }
            for &c in gamma.iter().rev() {
                steps.push(ObliviousStep::Go(c.opposite()));
            }
        }
        ObliviousSchedule { steps }
    }

    /// A schedule that *does* meet every STIC `[(r, v), D]` of the Theorem 4.1
    /// family: walk out and back along every **doubled** word `γ‖γ`,
    /// `γ ∈ {N, E}^k`, in lexicographic order.  Its length is `4k · 2^k`.
    ///
    /// Why it meets: each block returns both agents to their starting nodes,
    /// so at the start of the block for `γ = σ` (global round `4k·i`, where
    /// `σ` is the `i`-th word) the earlier agent is at `r` and the later agent
    /// — whose clock lags by exactly `D = 2k` rounds — is at its start
    /// `v = (σ‖σ)(r)`.  Half-way through that block (2k rounds later) the
    /// earlier agent stands on `(σ‖σ)(r) = v` while the later agent, having
    /// just started the block, is still at `v`: they meet, at the later
    /// agent's local round `4k·i`.  The worst family member is the last word,
    /// giving time `≈ 4k(2^k − 1) ≥ 2^(k−1)` — the upper-bound counterpart of
    /// the theorem (tight up to the `Θ(k)` factor).
    pub fn meeting_sweep(k: usize) -> Self {
        let mut steps = Vec::with_capacity((4 * k) << k);
        for mask in 0u64..(1u64 << k) {
            let gamma: Vec<Cardinal> = (0..k)
                .map(|i| if mask >> i & 1 == 0 { Cardinal::N } else { Cardinal::E })
                .collect();
            let doubled: Vec<Cardinal> = gamma.iter().chain(gamma.iter()).copied().collect();
            for &c in &doubled {
                steps.push(ObliviousStep::Go(c));
            }
            for &c in doubled.iter().rev() {
                steps.push(ObliviousStep::Go(c.opposite()));
            }
        }
        ObliviousSchedule { steps }
    }
}

impl AgentProgram for ObliviousSchedule {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        for step in &self.steps {
            match step {
                ObliviousStep::Stay => nav.wait(1)?,
                ObliviousStep::Go(c) => {
                    // Q̂_h is 4-regular with cardinal ports; on any other graph
                    // this program is simply not applicable.
                    assert_eq!(
                        nav.degree(),
                        4,
                        "oblivious schedules require a 4-regular cardinal graph"
                    );
                    nav.move_via(c.port())?;
                }
            }
        }
        Ok(())
    }

    fn name(&self) -> &str {
        "oblivious-schedule"
    }
}

/// Outcome of checking one schedule against the whole family of Theorem 4.1
/// STICs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerBoundReport {
    /// The parameter `k` (so `D = 2k`, threshold `2^(k−1)`).
    pub k: usize,
    /// Rendezvous time (rounds after the later agent's start) per `Z` node,
    /// `None` when that STIC was not met.
    pub times: Vec<Option<Round>>,
    /// The theorem's threshold `2^(k−1)`.
    pub threshold: Round,
}

impl LowerBoundReport {
    /// `true` iff every STIC of the family was met.
    pub fn met_all(&self) -> bool {
        self.times.iter().all(|t| t.is_some())
    }

    /// Number of unmet STICs.
    pub fn unmet(&self) -> usize {
        self.times.iter().filter(|t| t.is_none()).count()
    }

    /// Worst-case rendezvous time over the met STICs.
    pub fn max_time(&self) -> Option<Round> {
        self.times.iter().flatten().copied().max()
    }

    /// The statement of Theorem 4.1 for this schedule: either some STIC was
    /// left unmet, or the worst-case time reaches the threshold.
    pub fn consistent_with_theorem(&self) -> bool {
        !self.met_all() || self.max_time().unwrap_or(0) >= self.threshold
    }
}

/// Check a schedule on the **explicit** graph `Q̂_h`: the STICs are
/// `[(root, v), D]` for every `v` in the `Z` set, and the simulation horizon
/// is the point where both agents have finished the schedule (after which no
/// further meeting can occur because both stay put on, by then, distinct
/// nodes).
pub fn check_schedule_explicit(
    q: &QhGraph,
    k: usize,
    schedule: &ObliviousSchedule,
) -> LowerBoundReport {
    assert!(q.is_hat, "the lower bound environment is Q̂_h");
    let d = 2 * k as Round;
    let z = z_set(q, k).expect("Z requires 2k <= h");
    let horizon = d + schedule.len() as Round + 2;
    let times = z
        .iter()
        .map(|&v| {
            let stic = Stic::new(q.root, v, d);
            simulate(&q.graph, schedule, &stic, horizon).rendezvous_time()
        })
        .collect();
    LowerBoundReport { k, times, threshold: 1u128 << (k.saturating_sub(1)) }
}

/// A position in the infinite 4-regular cardinal tree (the universal cover of
/// `Q̂_h`): the reduced word of cardinals leading to it from the root.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct TreePosition {
    word: Vec<Cardinal>,
}

impl TreePosition {
    /// The root of the tree.
    pub fn root() -> Self {
        TreePosition { word: Vec::new() }
    }

    /// The node reached from the root by a (not necessarily reduced) word.
    pub fn from_word(word: &[Cardinal]) -> Self {
        let mut p = TreePosition::root();
        for &c in word {
            p.step(c);
        }
        p
    }

    /// Move through the cardinal port `c` (reduces the word in place).
    pub fn step(&mut self, c: Cardinal) {
        if self.word.last() == Some(&c.opposite()) {
            self.word.pop();
        } else {
            self.word.push(c);
        }
    }

    /// Distance from the root.
    pub fn depth(&self) -> usize {
        self.word.len()
    }

    /// The reduced word.
    pub fn word(&self) -> &[Cardinal] {
        &self.word
    }
}

/// Check a schedule in the **symbolic** tree environment (the proof's
/// tree-restricted setting): the later agent starts at the node `γ‖γ` for
/// every `γ ∈ {N, E}^k`, with delay `D = 2k`.
pub fn check_schedule_symbolic(k: usize, schedule: &ObliviousSchedule) -> LowerBoundReport {
    let d = 2 * k;
    let threshold = 1u128 << (k.saturating_sub(1));
    let mut times = Vec::with_capacity(1usize << k);
    for mask in 0u64..(1u64 << k) {
        let gamma: Vec<Cardinal> =
            (0..k).map(|i| if mask >> i & 1 == 0 { Cardinal::N } else { Cardinal::E }).collect();
        let doubled: Vec<Cardinal> = gamma.iter().chain(gamma.iter()).copied().collect();
        times.push(symbolic_meeting_time(schedule, &doubled, d));
    }
    LowerBoundReport { k, times, threshold }
}

/// Meeting time (rounds after the later agent's start) of two agents running
/// `schedule` in the infinite cardinal tree, the earlier from the root and
/// the later from `later_start`, with the given delay; `None` if they never
/// meet.
fn symbolic_meeting_time(
    schedule: &ObliviousSchedule,
    later_start: &[Cardinal],
    delay: usize,
) -> Option<Round> {
    let mut earlier = TreePosition::root();
    let mut later = TreePosition::from_word(later_start);
    // advance the earlier agent through the delay
    for step in schedule.steps.iter().take(delay) {
        if let ObliviousStep::Go(c) = step {
            earlier.step(*c);
        }
    }
    if earlier == later {
        return Some(0);
    }
    // now run both in lockstep; the later agent executes step t while the
    // earlier agent executes step t + delay (staying put once its schedule is
    // exhausted)
    let total = schedule.len();
    for t in 0..total {
        if let Some(ObliviousStep::Go(c)) = schedule.steps.get(t + delay) {
            earlier.step(*c);
        }
        if let ObliviousStep::Go(c) = schedule.steps[t] {
            later.step(c);
        }
        if earlier == later {
            return Some(t as Round + 1);
        }
    }
    // both parked forever afterwards
    if earlier == later {
        return Some(total as Round);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::qh_hat;

    #[test]
    fn schedule_parsing_and_rendering() {
        let s = ObliviousSchedule::parse("NE.SW").unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.steps[2], ObliviousStep::Stay);
        assert_eq!(s.steps.iter().map(|x| x.letter()).collect::<String>(), "NE.SW");
        assert!(ObliviousSchedule::parse("NX").is_none());
        assert!(!s.is_empty());
        assert!(ObliviousSchedule::new(vec![]).is_empty());
    }

    #[test]
    fn tree_positions_reduce_words() {
        let mut p = TreePosition::root();
        p.step(Cardinal::N);
        p.step(Cardinal::E);
        p.step(Cardinal::W); // cancels the E
        assert_eq!(p.word(), &[Cardinal::N]);
        p.step(Cardinal::S); // cancels the N
        assert_eq!(p.depth(), 0);
        assert_eq!(p, TreePosition::root());
    }

    #[test]
    fn short_schedules_leave_some_z_stic_unmet_explicitly() {
        // k = 2: threshold 2^(k-1) = 2; any schedule of length < 2... is of course
        // trivially failing, so test the contrapositive on slightly longer but
        // still-too-weak schedules: none of these meets all four Z STICs.
        let k = 2usize;
        let q = qh_hat(4 * k).unwrap();
        for schedule in [
            ObliviousSchedule::parse("N").unwrap(),
            ObliviousSchedule::parse("NNNN").unwrap(),
            ObliviousSchedule::pseudorandom(6, 3),
        ] {
            let report = check_schedule_explicit(&q, k, &schedule);
            assert_eq!(report.times.len(), 4);
            assert!(!report.met_all(), "schedule {:?} unexpectedly met every STIC", schedule);
            assert!(report.consistent_with_theorem());
        }
    }

    #[test]
    fn explicit_and_symbolic_checkers_agree_for_small_k() {
        let k = 1usize;
        let q = qh_hat(4 * k).unwrap();
        for schedule in [
            ObliviousSchedule::parse("N").unwrap(),
            ObliviousSchedule::parse("NESW").unwrap(),
            ObliviousSchedule::pseudorandom(3, 7),
            ObliviousSchedule::sweep(k),
        ] {
            let explicit = check_schedule_explicit(&q, k, &schedule);
            let symbolic = check_schedule_symbolic(k, &schedule);
            assert_eq!(explicit.times, symbolic.times, "schedule {schedule:?}");
        }
    }

    #[test]
    fn symbolic_checker_scales_and_respects_the_threshold_shape() {
        for k in 1..=6usize {
            let report = check_schedule_symbolic(k, &ObliviousSchedule::pseudorandom(k, 11));
            assert_eq!(report.times.len(), 1 << k);
            assert_eq!(report.threshold, 1u128 << (k - 1));
            // a schedule shorter than the threshold cannot meet the whole family
            assert!(report.consistent_with_theorem());
        }
    }

    #[test]
    fn sweep_schedule_has_the_documented_length() {
        let k = 3;
        assert_eq!(ObliviousSchedule::sweep(k).len(), 2 * k * (1 << k));
        assert_eq!(ObliviousSchedule::meeting_sweep(k).len(), 4 * k * (1 << k));
    }

    #[test]
    fn meeting_sweep_meets_the_whole_family_and_pays_the_threshold() {
        for k in 1..=5usize {
            let schedule = ObliviousSchedule::meeting_sweep(k);
            let report = check_schedule_symbolic(k, &schedule);
            assert!(report.met_all(), "meeting sweep must meet every Z STIC (k = {k})");
            let worst = report.max_time().unwrap();
            assert!(
                worst >= report.threshold,
                "Theorem 4.1: worst time {worst} must reach the threshold {} (k = {k})",
                report.threshold
            );
            assert!(
                worst <= 4 * (k as Round) * (1 << k),
                "the meeting sweep is an upper bound witness (k = {k})"
            );
        }
    }

    #[test]
    fn meeting_sweep_agrees_with_the_explicit_graph_for_small_k() {
        for k in 1..=2usize {
            let q = qh_hat(4 * k).unwrap();
            let schedule = ObliviousSchedule::meeting_sweep(k);
            let explicit = check_schedule_explicit(&q, k, &schedule);
            let symbolic = check_schedule_symbolic(k, &schedule);
            assert_eq!(explicit.times, symbolic.times, "k = {k}");
            assert!(explicit.met_all());
        }
    }

    #[test]
    fn report_accessors() {
        let report =
            LowerBoundReport { k: 2, times: vec![Some(3), None, Some(5), Some(1)], threshold: 2 };
        assert!(!report.met_all());
        assert_eq!(report.unmet(), 1);
        assert_eq!(report.max_time(), Some(5));
        assert!(report.consistent_with_theorem());
        let all_met = LowerBoundReport { k: 2, times: vec![Some(1), Some(1)], threshold: 2 };
        assert!(!all_met.consistent_with_theorem());
    }
}
