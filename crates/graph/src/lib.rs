//! # anonrv-graph
//!
//! Anonymous, port-labelled graph substrate for the reproduction of
//! *Using Time to Break Symmetry: Universal Deterministic Anonymous
//! Rendezvous* (Pelc & Yadav, SPAA 2019).
//!
//! The paper's model is a simple, finite, undirected, connected graph whose
//! nodes are unlabeled while the edges incident to a node of degree `d` are
//! labelled with the *ports* `0, 1, ..., d-1`.  There is no coherence between
//! the port numbers at the two extremities of an edge.  Agents navigating the
//! graph only ever observe the degree of the node they stand on and the port
//! by which they entered it.
//!
//! This crate provides:
//!
//! * [`PortGraph`] — the immutable port-labelled graph representation, with a
//!   checked [`builder::PortGraphBuilder`];
//! * [`generators`] — every graph family used in the paper or in the
//!   reproduction experiments (rings, oriented tori, symmetric double trees,
//!   the lower-bound graphs `Q_h` / `Q̂_h` of Section 4, random graphs, ...);
//! * [`view`] — truncated views `V(v, G)` and their canonical encodings;
//! * [`symmetry`] — the view-equivalence partition computed by
//!   port-respecting colour refinement (two nodes are *symmetric* iff they
//!   have equal views);
//! * [`group`] — port-preserving automorphism groups, either explicit
//!   (BFS-computed permutation tables, [`group::Automorphisms`]) or
//!   **implicit** ([`group::SymmetryGroup`]): closed-form O(1) group actions
//!   for the structured families (ring/circulant rotations, torus
//!   translations, hypercube XOR-translations), verified generator-by-
//!   generator against the actual graph so million-node instances plan
//!   without ever materialising an `|Aut|·n` table;
//! * [`quotient`] — the quotient (minimal base) graph of the view
//!   equivalence;
//! * [`shrink`] — the paper's `Shrink(u, v)` quantity (Definition 3.1);
//! * [`pairspace`] — the flat product-space engine behind `Shrink`: a dense
//!   CSR pair graph with a precomputed distance matrix, answering single
//!   pairs by flat BFS and **all `n²` pairs in one `O(n²·Δ)` sweep**
//!   ([`pairspace::ShrinkEngine::all_pairs`]);
//! * [`traversal`] / [`distance`] — port-sequence application `α(x)`,
//!   reverse paths, BFS distances;
//! * [`fingerprint`] — the canonical 128-bit structural hash
//!   ([`PortGraph::canonical_hash`]) the persistent plan cache
//!   (`anonrv-store`) keys its on-disk artifacts by;
//! * [`render`] — DOT / ASCII rendering used to reproduce Figure 1.
//!
//! ```
//! use anonrv_graph::generators::oriented_ring;
//! use anonrv_graph::symmetry::OrbitPartition;
//! use anonrv_graph::shrink::shrink;
//!
//! let g = oriented_ring(6).unwrap();
//! let orbits = OrbitPartition::compute(&g);
//! // In an oriented ring every pair of nodes is symmetric...
//! assert_eq!(orbits.num_classes(), 1);
//! // ...and Shrink(u, v) equals the distance between u and v.
//! assert_eq!(shrink(&g, 0, 2), Some(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod distance;
pub mod error;
pub mod fingerprint;
pub mod generators;
pub mod graph;
pub mod group;
pub mod pairspace;
pub mod quotient;
pub mod render;
pub mod shrink;
pub mod symmetry;
pub mod traversal;
pub mod view;

pub use builder::PortGraphBuilder;
pub use error::GraphError;
pub use graph::{NodeId, Port, PortGraph, SymmetryHint};
pub use group::{Automorphisms, SymmetryGroup};

/// Convenient `Result` alias used across the crate.
pub type Result<T> = std::result::Result<T, GraphError>;
