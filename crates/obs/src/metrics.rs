//! The lock-cheap metrics registry: named atomic counters, gauges and
//! log-bucketed histograms, snapshotted at end of run.
//!
//! ## Concurrency model
//!
//! Recording is wait-free after the first touch of a name: every metric is
//! a set of atomics behind an `Arc`, and the name → metric map is an
//! `RwLock<HashMap>` taken for **read** on the hot path (writers appear
//! only on the first recording of a new name).  Counters are exact under
//! arbitrary concurrency (plain `fetch_add`); histograms never tear — each
//! observation lands in exactly one bucket and the snapshot derives the
//! total count from the bucket sum, so a reader can at worst see an
//! observation's bucket before its byte-sum, never a half-written value.
//!
//! ## The zero-cost contract
//!
//! Nothing in this module runs when telemetry is disabled: the crate-level
//! entry points ([`crate::counter_add`] and friends) check one relaxed
//! atomic and return before touching the registry.  See the crate docs.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use crate::json::{self, Value};

/// Number of histogram buckets: bucket `k` holds values whose bit length is
/// `k` (i.e. `v` in `[2^(k-1), 2^k)`), bucket 0 holds exactly `{0}`, and
/// bucket 64 tops out at `u64::MAX`.
const BUCKETS: usize = 65;

/// A log-bucketed histogram: 65 power-of-two buckets plus sum/min/max.
///
/// `record` is three-to-four relaxed atomic RMWs; there is no lock to
/// tear, and the snapshot's `count` is the sum of the bucket counts, so it
/// always equals the number of fully recorded bucket increments.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `k`.
fn bucket_upper(k: usize) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (k, bucket) in self.buckets.iter().enumerate() {
            let c = bucket.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((bucket_upper(k), c));
                count += c;
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations (derived from the buckets, never torn).
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// The inclusive upper bound of the bucket containing quantile `q`
    /// (`0.0..=1.0`) — a log-resolution approximation, exact enough for
    /// p50/p90/p99 reporting.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for &(upper, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return upper.min(self.max);
            }
        }
        self.max
    }

    fn to_json(&self) -> Value {
        json::obj([
            ("count", Value::Uint(self.count)),
            ("sum", Value::Uint(self.sum)),
            ("min", Value::Uint(self.min)),
            ("max", Value::Uint(self.max)),
            (
                "buckets",
                Value::Arr(
                    self.buckets
                        .iter()
                        .map(|&(le, c)| Value::Arr(vec![Value::Uint(le), Value::Uint(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The process-wide named-metric registry.  Obtain it through
/// [`registry`]; recording normally goes through the crate-level
/// enabled-gated entry points instead.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

/// Fetch (or create) a named slot in one of the maps.  Fast path: a read
/// lock and a hash lookup; the write lock is taken only the first time a
/// name is seen.
fn slot<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().expect("metrics registry poisoned").get(name) {
        return Arc::clone(found);
    }
    let mut w = map.write().expect("metrics registry poisoned");
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl Registry {
    /// Add `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        slot(&self.counters, name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Set the named gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: u64) {
        slot(&self.gauges, name).store(value, Ordering::Relaxed);
    }

    /// Record one observation into the named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        slot(&self.histograms, name).record(value);
    }

    /// Drop every metric (a fresh [`crate::install`] starts from zero).
    pub(crate) fn clear(&self) {
        self.counters.write().expect("metrics registry poisoned").clear();
        self.gauges.write().expect("metrics registry poisoned").clear();
        self.histograms.write().expect("metrics registry poisoned").clear();
    }

    /// Snapshot every metric, names sorted, values read relaxed.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        counters.sort();
        let mut gauges: Vec<(String, u64)> = self
            .gauges
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        gauges.sort();
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .read()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { counters, gauges, histograms }
    }
}

/// The process-wide registry (created on first use, lives forever; its
/// *contents* reset on each [`crate::install`]).
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// An end-of-run view of every metric, renderable as text or JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// `(name, snapshot)` histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Look up one counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Look up one histogram's snapshot, if it was ever observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// The JSON form embedded in `--report json` output (schema documented
    /// in [`crate::report`]).
    pub fn to_json(&self) -> Value {
        json::obj([
            (
                "counters",
                Value::Obj(
                    self.counters.iter().map(|(k, v)| (k.clone(), Value::Uint(*v))).collect(),
                ),
            ),
            (
                "gauges",
                Value::Obj(self.gauges.iter().map(|(k, v)| (k.clone(), Value::Uint(*v))).collect()),
            ),
            (
                "histograms",
                Value::Obj(self.histograms.iter().map(|(k, v)| (k.clone(), v.to_json())).collect()),
            ),
        ])
    }

    /// A human-readable rendering (the CLI's non-JSON metrics view).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("  {name:<42} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("  {name:<42} {value} (gauge)\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "  {name:<42} n={} sum={} min={} p50<={} p99<={} max={}\n",
                h.count,
                h.sum,
                h.min,
                h.quantile_upper(0.50),
                h.quantile_upper(0.99),
                h.max,
            ));
        }
        if out.is_empty() {
            out.push_str("  (no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histograms_aggregate_and_quantile() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 5, 9, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1016);
        assert_eq!((s.min, s.max), (0, 1000));
        assert_eq!(s.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 6);
        assert_eq!(s.quantile_upper(0.5), 1);
        assert_eq!(s.quantile_upper(1.0), 1000);
        let empty = Histogram::default().snapshot();
        assert_eq!((empty.count, empty.quantile_upper(0.5)), (0, 0));
    }

    #[test]
    fn registry_counts_and_snapshots() {
        let r = Registry::default();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add("b", 1);
        r.gauge_set("g", 9);
        r.gauge_set("g", 4);
        r.observe("h", 7);
        let s = r.snapshot();
        assert_eq!(s.counter("a"), 5);
        assert_eq!(s.counter("b"), 1);
        assert_eq!(s.counter("missing"), 0);
        assert_eq!(s.gauges, vec![("g".to_string(), 4)]);
        assert_eq!(s.histogram("h").unwrap().count, 1);
        assert!(s.histogram("absent").is_none());
        // snapshots serialize and read back
        let v = s.to_json();
        assert_eq!(v.get("counters").unwrap().get("a").unwrap().as_u64(), Some(5));
        assert!(s.to_text().contains("a"));
        r.clear();
        assert!(r.snapshot().counters.is_empty());
    }
}
