//! EXP-SHRINK bench: the cost of computing `Shrink(u, v)` (pair-graph BFS) on
//! the Section 3 example families.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use anonrv_graph::generators::{oriented_ring, oriented_torus, symmetric_double_tree};
use anonrv_graph::shrink::{shrink, shrink_all_symmetric_pairs};

fn bench_shrink(c: &mut Criterion) {
    let mut group = c.benchmark_group("shrink");
    let torus = oriented_torus(6, 6).unwrap();
    group.bench_function("torus-6x6 antipodal pair", |b| {
        b.iter(|| shrink(black_box(&torus), 0, 21))
    });
    let ring = oriented_ring(64).unwrap();
    group.bench_function("ring-64 antipodal pair", |b| b.iter(|| shrink(black_box(&ring), 0, 32)));
    let (tree, mirror) = symmetric_double_tree(2, 6).unwrap();
    let leaf = (0..tree.num_nodes() / 2).find(|&v| tree.degree(v) == 1).unwrap();
    group.bench_function("double-tree depth-6 mirror leaves", |b| {
        b.iter(|| shrink(black_box(&tree), leaf, mirror[leaf]))
    });
    let small_torus = oriented_torus(4, 4).unwrap();
    group.bench_function("torus-4x4 all symmetric pairs", |b| {
        b.iter_batched(
            || small_torus.clone(),
            |g| shrink_all_symmetric_pairs(black_box(&g)),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_shrink);
criterion_main!(benches);
