//! # anonrv-plan
//!
//! Symmetry-reduced **sweep planning**: collapse all-pairs workloads onto one
//! representative query per equivalence class of ordered start pairs, execute
//! only the representatives, and broadcast the results back.
//!
//! ## Why this is sound
//!
//! In the paper's model (Pelc & Yadav, SPAA 2019) an agent observes nothing
//! but its own degree, entry port and clock, so every rendezvous outcome is a
//! function of the agents' *views*, never of node identities.  The strongest
//! executable form of that statement uses port-preserving automorphisms: if
//! `φ` is an automorphism of the port-labelled graph `G` with `φ(u) = u'` and
//! `φ(v) = v'`, then for **any** pair of deterministic programs and any delay
//! `δ`, the execution from `(u', v')` is the `φ`-image of the execution from
//! `(u, v)` — same observation sequences, same meeting rounds, same move
//! counts, same termination flags, and the meeting node maps through `φ`.
//! [`PairOrbits`] partitions the `n²` ordered pairs into the orbits of the
//! automorphism group and keeps the witnessing automorphism per node, so a
//! planned sweep reconstructs even the meeting node of every member pair
//! **bit-identically** (see [`PairOrbits::from_canonical`]).
//!
//! Orbits are computed through the *port-rigidity* of anonymous graphs: a
//! port-preserving automorphism of a connected port-labelled graph is
//! uniquely determined by the image of a single node (`φ(succ(v, p)) =
//! succ(φ(v), p)` propagates the map edge by edge).  The node
//! view-equivalence partition from [`anonrv_graph::symmetry`] (colour
//! refinement) prunes the candidate images, and each surviving candidate is
//! checked by one `O(n·Δ)` propagation, so the whole group costs
//! `O(k·n·Δ)` for `k` view-equivalent candidates — cheap enough to plan
//! every sweep, and the action is *free* (an automorphism fixing any node is
//! the identity), which makes every pair class the same size and
//! canonicalisation a two-lookup operation.
//!
//! ## Why not colour refinement on the common-port pair graph
//!
//! The pair graph behind `Shrink` (transitions `(a, b) → (succ(a, p),
//! succ(b, p))` over common ports) is the wrong carrier for *outcome*
//! equivalence: its refinement cannot separate pairs whose outcomes differ.
//! On the oriented 8-ring the pairs `(0, 2)` and `(0, 6)` have isomorphic
//! common-port reachability (both preserve their node-difference, both have
//! `Shrink = 2`), yet a clockwise-walking program meets at delay 2 from
//! `(0, 2)` and never from `(0, 6)` — the two agents run *time-shifted*
//! executions, not port-lockstep ones.  The automorphism orbits used here
//! are a refinement of pair-view equivalence and are therefore always sound;
//! the counterexample is pinned by a test in [`orbits`].
//!
//! ## The planning layer
//!
//! * [`PairOrbits`] — the orbit partition of ordered pairs with O(1)
//!   `class_of`, per-class representative/members, and the canonical maps;
//! * [`SweepPlan`] — a `(graph, δ-grid, horizon)` workload reduced to one
//!   representative STIC per `(pair class, δ)` plus the expansion map;
//! * [`PlannedSweep`] — the façade in front of
//!   [`anonrv_sim::SweepEngine`]: executes representative queries only
//!   (rayon over classes), broadcasts outcomes (including meeting nodes)
//!   back to member pairs, and offers a sampling [`ValidationReport`] mode
//!   that re-runs non-representatives through the batch engine and checks
//!   bit-identity.
//!
//! On vertex-transitive families the compression equals the group order:
//! `oriented_torus(16, 16)` collapses 65 536 ordered pairs to 256 classes,
//! so an all-pairs × δ-grid sweep executes 256× fewer merges on top of the
//! trajectory-memoized batch engine.
//!
//! ## Implicit groups and streaming (million-node graphs)
//!
//! On the stamped structured families (ring, circulant, torus, hypercube)
//! [`PairOrbits`] runs in **implicit mode**: the closed-form
//! [`SymmetryGroup`] from `anonrv-graph` answers `class_of`, the canonical
//! maps and the witnessing automorphism in O(1) arithmetic, so nothing
//! `n`- or `n²`-sized is ever allocated — under a free transitive group
//! every ordered pair is equivalent to exactly one `(0, d)` and the class
//! *is* the difference `d`.  [`PlannedSweep::run_streamed`] then walks the
//! `(class, δ)` work-list in bounded chunks, folding meeting counts and a
//! running table fingerprint instead of materialising the outcome table:
//! the all-pairs sweep on `oriented_torus(1024, 1024)` — 2²⁰ classes,
//! 2.2 × 10¹² member STICs — completes in seconds inside a 2 GiB cap.
//! Unstamped graphs keep the explicit BFS path unchanged; the two modes
//! are pinned pointwise-equal and bit-identical in execution by
//! `tests/property_implicit_orbits.rs`.
//!
//! ## Beyond one process
//!
//! A plan's `(class, δ)` work-list is embarrassingly parallel and every
//! planning artifact is a deterministic function of the graph, so the layer
//! above this one (`anonrv-store`) persists groups/orbits/outcomes in a
//! content-addressed on-disk cache and shards
//! [`PlannedSweep::run_classes`] slices across processes, merging the
//! partial tables back bit-identically.  The hooks it builds on live here:
//! [`Automorphisms::from_permutations`] (verified deserialisation),
//! [`PlannedOutcomes::from_table`] / [`PlannedOutcomes::table`], and
//! [`PlannedSweep::from_orbits`].
//!
//! [`Automorphisms::from_permutations`]: orbits::Automorphisms::from_permutations
//! [`PlannedOutcomes::from_table`]: sweep::PlannedOutcomes::from_table
//! [`PlannedOutcomes::table`]: sweep::PlannedOutcomes::table
//! [`PlannedSweep::run_classes`]: sweep::PlannedSweep::run_classes
//! [`PlannedSweep::run_streamed`]: sweep::PlannedSweep::run_streamed
//! [`PlannedSweep::from_orbits`]: sweep::PlannedSweep::from_orbits

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod orbits;
pub mod sweep;

pub use orbits::{Automorphisms, PairOrbits, SymmetryGroup};
pub use sweep::{
    ExecStats, PlannedOutcomes, PlannedSweep, StreamStats, SweepPlan, ValidationReport,
};
