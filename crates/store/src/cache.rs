//! The content-addressed on-disk plan cache.
//!
//! A [`Store`] is a directory of checksummed artifacts keyed by the
//! [`canonical hash`](anonrv_graph::fingerprint) of the graph they were
//! derived from (plus, where relevant, the *program key* of the recording).
//! Three artifact families cover everything a planned sweep computes:
//!
//! | artifact | key | skips on a warm hit |
//! |---|---|---|
//! | automorphism group / pair orbits | graph | planning (group search) |
//! | trajectory timelines | graph + program key | every program execution |
//! | plan outcome tables | graph + program key + δ-grid | the whole sweep |
//!
//! ## Horizon-generic keying
//!
//! Horizons are deliberately **not** part of any artifact key: they are
//! recorded *inside* the frame (per timeline entry, and once per outcome
//! table).  Programs propagate `Stop`, so a horizon-`h` run is an exact
//! prefix of a horizon-`H >= h` run — which makes one recording at the
//! largest horizon ever requested serve every smaller one, bit-identically,
//! by prefix truncation ([`Timeline::truncate`],
//! [`anonrv_plan::PlannedOutcomes::truncate`]).  Lookups therefore hit
//! whenever `recorded >= needed`; writes supersede shorter recordings in
//! place (a longer recording replaces a shorter one, never the reverse); and
//! [`Store::gc`] garbage-collects frames that can no longer serve anything
//! (corrupt, version-stale, or shard partials superseded by a merged table).
//!
//! ## Flat v3 payloads
//!
//! Since format version 3 the heavy payloads are stored the way the batch
//! engine consumes them.  A timeline entry is the *assembled*
//! struct-of-arrays representation of [`Timeline`] — segment boundaries,
//! segment nodes and the per-node occupancy CSR index — written as
//! 16-aligned flat arrays, so a load is one `fs::read` plus one bulk copy
//! per array straight into [`Timeline::from_parts`]: no per-segment decode
//! loop and **no re-indexing** (the occupancy index that used to be rebuilt
//! by a counting sort on every open ships inside the frame and is only
//! shape-validated).  Outcome tables likewise store one flat column per
//! [`SimOutcome`] field.  Serving a shorter horizon no longer copies
//! either: [`Store::warm_engine`] installs the longer recording as-is and
//! the merge kernels clip at query time, which is exact because truncated
//! runs are prefixes.  Timeline payloads also lead with a summary of their
//! distinct recorded horizons, so [`Store::stats`] and [`Store::gc`] can
//! survey a directory from bounded prefix reads (64 KiB per file) instead
//! of pulling every payload off disk; a file small enough to fit in the
//! prefix is still fully checksum-verified, a larger one is header- and
//! identity-gated and left for its load path to verify.
//!
//! Every load path is **fallible by design**: a missing file, a truncated
//! file, a corrupted payload, a format-version mismatch or an identity
//! mismatch (hash collision, renamed file) all surface as a plain cache
//! miss, and the caller recomputes and overwrites.  The cache can therefore
//! be deleted, copied between machines, or shared by concurrent shard
//! processes (files are written atomically via rename) without any
//! correctness risk — it only ever changes *when* work happens, never what
//! the results are.
//!
//! ## Program keys
//!
//! Timelines and outcomes depend on the agent program, which Rust cannot
//! introspect.  Callers pass a **program key** — a string that must uniquely
//! identify the program *including its parameters* (e.g. `"walker-5eed"`,
//! `"symm-rv-n12-d2-delta4"`).  Two different programs sharing a key is the
//! one way to poison this cache; key discipline is the caller's contract,
//! everything else is verified.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use anonrv_graph::{NodeId, PortGraph, SymmetryHint};
use anonrv_obs as obs;
use anonrv_plan::{Automorphisms, PairOrbits, SweepPlan, SymmetryGroup};
use anonrv_sim::{
    Meeting, Round, SimOutcome, SweepEngine, SymbolicTail, SymbolicTimeline, Timeline,
    TimelineParts,
};

use crate::codec::{fnv64, peek_frame, unframe, unframe_checked, Dec, Enc, FrameFailure, Kind};
use crate::fault;

/// Process-local monotonic counter distinguishing this process's transient
/// files (atomic-write temps, lock takeovers) from each other *and* from a
/// previous incarnation's: container restarts recycle PIDs on a shared
/// cache directory, so a bare-PID suffix can collide with debris left by a
/// dead process.
static TRANSIENT_COUNTER: AtomicU64 = AtomicU64::new(0);

fn transient_suffix() -> String {
    format!("{}-{}", std::process::id(), TRANSIENT_COUNTER.fetch_add(1, Ordering::Relaxed))
}

/// Where a value came from: loaded warm from the store, or computed cold
/// (and then saved back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Served from a valid cache artifact; the computation was skipped.
    Warm,
    /// Recomputed (no artifact, or an artifact that failed an integrity or
    /// identity gate) and written back to the store.
    Cold,
}

impl Provenance {
    /// `true` iff the value was served from the cache.
    pub fn is_warm(&self) -> bool {
        matches!(self, Provenance::Warm)
    }
}

impl std::fmt::Display for Provenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Provenance::Warm => "warm",
            Provenance::Cold => "cold",
        })
    }
}

/// How many timelines a [`Store::warm_engine`] call installed, and how many
/// of those were served by prefix truncation of a longer recording.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WarmedTimelines {
    /// Timelines installed into the engine's trajectory cache.
    pub installed: usize,
    /// The subset recorded at a horizon strictly above the engine's,
    /// installed as-is and clipped per query by the merge kernels
    /// (exact-horizon hits are `installed - prefix`).
    pub prefix: usize,
    /// Symbolic (prefix + cycle) timelines installed into the engine's
    /// trajectory cache.  A symbolic timeline is horizon-free, so it serves
    /// every query horizon; on the explicit merge path (engine horizons
    /// within the unroll cap) the trajectory cache materialises its
    /// engine-horizon prefix lazily on the node's first query — never
    /// counted in `installed`, which only covers explicit frames.
    pub symbolic: usize,
}

/// A content-addressed directory of planning artifacts.  See the module
/// docs for the layout and the integrity model.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

impl Store {
    /// Open (creating if needed) the cache directory.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Store { root })
    }

    /// The cache directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Write `bytes` to `path` atomically *and* crash-consistently: temp
    /// file, `sync_all`, rename, with the parent directory fsynced around
    /// the rename.  A concurrent reader — another shard process — never
    /// observes a partial artifact, and a `kill -9` (or power loss) at any
    /// point leaves either the old artifact or the new one, never a torn
    /// frame under the artifact's name; the worst debris is an orphaned
    /// temp file, which [`Store::gc`] reclaims.
    ///
    /// Failpoints: `store.write_tmp` (the temp-file write; supports
    /// torn-write) and `store.rename` (the publishing rename).
    pub(crate) fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let _write_span = obs::span("store.write");
        obs::counter_add("store.write.count", 1);
        obs::observe("store.write.bytes", bytes.len() as u64);
        let tmp = path.with_extension(format!("tmp{}", transient_suffix()));
        let mut f = fs::File::create(&tmp)?;
        match fault::check("store.write_tmp") {
            None => f.write_all(bytes)?,
            Some(fault::Action::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                f.write_all(bytes)?;
            }
            Some(fault::Action::IoError) => {
                return Err(io::Error::other("injected fault at store.write_tmp"));
            }
            Some(fault::Action::TornWrite(n)) => {
                // the crash made it to disk partially: persist the torn
                // prefix, then fail as the dying process would
                f.write_all(&bytes[..n.min(bytes.len())])?;
                let _ = f.sync_all();
                return Err(io::Error::other("injected torn write at store.write_tmp"));
            }
            Some(fault::Action::Abort) => {
                let _ = f.write_all(&bytes[..bytes.len() / 2]);
                let _ = f.sync_all();
                std::process::abort();
            }
        }
        f.sync_all()?;
        sync_dir(&self.root);
        fault::hit_io("store.rename")?;
        fs::rename(&tmp, path)?;
        sync_dir(&self.root);
        Ok(())
    }

    /// Run `f` under an exclusive advisory lock (a `create_new` lock file
    /// next to the artifact), serialising read-merge-write sequences like
    /// [`Store::persist_engine`] across processes so concurrent shards
    /// cannot drop each other's contributions.
    ///
    /// Best-effort by design: a lock older than 60 s is treated as left
    /// behind by a dead process and broken (via a single-winner atomic
    /// takeover — see below), and after ~5 s of waiting the closure runs
    /// anyway — the artifact write itself stays atomic, so the worst
    /// degradation is the pre-lock behaviour (a lost merge), never a
    /// corrupt artifact or a deadlocked fleet.
    ///
    /// Failpoint: `lock.acquire` (fires after the lock file is created; an
    /// injected error releases the lock before propagating, an abort leaves
    /// it behind as the stale-lock debris a dead holder would).
    fn with_lock<T>(&self, artifact: &Path, f: impl FnOnce() -> io::Result<T>) -> io::Result<T> {
        let lock = artifact.with_extension("lock");
        let wait_start = obs::enabled().then(std::time::Instant::now);
        let mut attempts = 0;
        let acquired = loop {
            match fs::OpenOptions::new().write(true).create_new(true).open(&lock) {
                Ok(mut file) => {
                    // identify the holder, so a stale lock names its dead
                    // owner in post-mortems instead of being an empty file
                    use std::io::Write;
                    let _ = write!(file, "pid {} at unix {}", std::process::id(), unix_now());
                    if let Err(e) = fault::hit_io("lock.acquire") {
                        let _ = fs::remove_file(&lock);
                        return Err(e);
                    }
                    break true;
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&lock)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age.as_secs() >= 60);
                    if stale {
                        // Takeover must be single-winner.  Deleting the
                        // stale lock directly lets two waiters both
                        // "succeed": B's remove can land *after* A has
                        // already removed the stale lock and created a
                        // fresh one, silently admitting B alongside A.  A
                        // rename is atomic — exactly one waiter moves the
                        // carcass aside and deletes it, every loser's
                        // rename fails, and all of them re-race through
                        // `create_new` above, which admits exactly one.
                        let takeover =
                            lock.with_extension(format!("takeover-{}.lock", transient_suffix()));
                        if fs::rename(&lock, &takeover).is_ok() {
                            let _ = fs::remove_file(&takeover);
                            obs::counter_add("store.lock.takeover", 1);
                        }
                        continue;
                    }
                    attempts += 1;
                    if attempts >= 50 {
                        break false; // proceed unlocked rather than hang
                    }
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
                Err(_) => break false, // unlockable filesystem: proceed
            }
        };
        if let Some(t0) = wait_start {
            obs::observe(
                "store.lock.wait.us",
                t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            );
        }
        obs::counter_add(
            if acquired { "store.lock.acquired" } else { "store.lock.unlocked_proceed" },
            1,
        );
        let result = f();
        if acquired {
            let _ = fs::remove_file(&lock);
        }
        result
    }

    // -- reading and quarantine --------------------------------------------

    /// The `quarantine/` subdirectory corrupt frames are moved into.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// Read an artifact's bytes, or `None` when absent (or an injected read
    /// fault fires — an I/O error on read is a miss like any other).
    ///
    /// Failpoint: `store.read_frame`.
    pub(crate) fn read_artifact(&self, path: &Path) -> Option<Vec<u8>> {
        match fault::check("store.read_frame") {
            None => {}
            Some(fault::Action::Delay(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms))
            }
            Some(fault::Action::Abort) => std::process::abort(),
            Some(fault::Action::IoError) | Some(fault::Action::TornWrite(_)) => return None,
        }
        let bytes = fs::read(path).ok();
        if obs::enabled() {
            obs::counter_add("store.read.count", 1);
            if let Some(bytes) = &bytes {
                obs::observe("store.read.bytes", bytes.len() as u64);
            }
        }
        bytes
    }

    /// Frame-gate freshly read artifact bytes.  A **corruption-class**
    /// failure (bad magic, wrong kind, truncation, checksum mismatch) moves
    /// the file into [`Store::quarantine_dir`] with a reason sidecar —
    /// visible in `cache stats` / `fsck` instead of being silently
    /// overwritten by the recompute, so *recurring* corruption (a failing
    /// disk, a hostile writer) surfaces.  A version-stale frame is left in
    /// place: that is the expected after-image of a format bump, and the
    /// recompute supersedes it under the same name.  Either way the caller
    /// sees a plain miss.
    pub(crate) fn gate_frame<'b>(
        &self,
        path: &Path,
        kind: Kind,
        bytes: &'b [u8],
    ) -> Option<Dec<'b>> {
        match unframe_checked(kind, bytes) {
            Ok(d) => Some(d),
            Err(failure) => {
                if failure.is_corruption() {
                    let _ = self.quarantine(path, failure.label());
                }
                None
            }
        }
    }

    /// Move a damaged artifact into `quarantine/`, writing a `.reason`
    /// sidecar naming the failure, the original path and when it was
    /// caught.  Name collisions (the same artifact corrupted repeatedly)
    /// get a numeric suffix rather than overwriting older evidence.
    pub(crate) fn quarantine(&self, path: &Path, reason: &str) -> io::Result<PathBuf> {
        let qdir = self.quarantine_dir();
        fs::create_dir_all(&qdir)?;
        let name = path
            .file_name()
            .ok_or_else(|| io::Error::other("quarantine of a pathless file"))?
            .to_string_lossy()
            .into_owned();
        let mut dest = qdir.join(&name);
        let mut n = 1;
        while dest.exists() {
            dest = qdir.join(format!("{name}.{n}"));
            n += 1;
        }
        fs::rename(path, &dest)?;
        if obs::enabled() {
            obs::counter_add("store.quarantine.count", 1);
            obs::event(
                "store.quarantine",
                &[("file", obs::Field::from(name.as_str())), ("reason", obs::Field::from(reason))],
            );
        }
        let sidecar = PathBuf::from(format!("{}.reason", dest.display()));
        let _ = fs::write(
            &sidecar,
            format!(
                "reason: {reason}\noriginal: {}\nquarantined-at-unix: {}\n",
                path.display(),
                unix_now()
            ),
        );
        Ok(dest)
    }

    // -- orbits ------------------------------------------------------------

    fn orbits_path(&self, g: &PortGraph) -> PathBuf {
        self.root.join(format!("orbits-{:032x}.anrv", g.canonical_hash()))
    }

    fn group_path(&self, g: &PortGraph) -> PathBuf {
        self.root.join(format!("group-{:032x}.anrv", g.canonical_hash()))
    }

    /// Load the pair-orbit partition of `g`, or `None` on any miss
    /// (absent / corrupt / stale / foreign file).  An implicit
    /// `group-` descriptor frame is preferred (O(1) bytes, streamable
    /// partition); an explicit `orbits-` permutation frame is the fallback.
    /// Either way the loaded group is fully re-verified against `g` before
    /// it is trusted: descriptors through the generator checks of
    /// [`SymmetryGroup::from_hint`], permutations through
    /// [`Automorphisms::from_permutations`].
    pub fn load_orbits(&self, g: &PortGraph) -> Option<PairOrbits> {
        self.load_implicit_orbits(g).or_else(|| self.load_explicit_orbits(g))
    }

    /// The implicit branch of [`Store::load_orbits`]: a closed-form group
    /// descriptor, a few dozen bytes regardless of `n`.
    fn load_implicit_orbits(&self, g: &PortGraph) -> Option<PairOrbits> {
        let path = self.group_path(g);
        let bytes = self.read_artifact(&path)?;
        let mut d = self.gate_frame(&path, Kind::ImplicitOrbits, &bytes)?;
        if d.u128()? != g.canonical_hash() {
            return None;
        }
        if d.usize()? != g.num_nodes() {
            return None;
        }
        let hint = decode_symmetry_hint(&mut d)?;
        if !d.exhausted() {
            return None;
        }
        // re-verify the descriptor against the graph, generator by
        // generator — a forged or misfiled descriptor degrades to a miss
        let group = SymmetryGroup::from_hint(g, hint)?;
        Some(PairOrbits::from_group(group))
    }

    /// The explicit branch of [`Store::load_orbits`]: verified permutation
    /// tables (the only representation for graphs without a closed-form
    /// group, and the format every pre-v5 cache holds).
    fn load_explicit_orbits(&self, g: &PortGraph) -> Option<PairOrbits> {
        let path = self.orbits_path(g);
        let bytes = self.read_artifact(&path)?;
        let mut d = self.gate_frame(&path, Kind::Orbits, &bytes)?;
        if d.u128()? != g.canonical_hash() {
            return None;
        }
        let n = d.usize()?;
        if n != g.num_nodes() {
            return None;
        }
        let k = d.usize()?;
        let mut perms = Vec::with_capacity(k);
        for _ in 0..k {
            let mut p = Vec::with_capacity(n);
            for _ in 0..n {
                p.push(u32::try_from(d.u64()?).ok()?);
            }
            perms.push(p);
        }
        if !d.exhausted() {
            return None;
        }
        let autos = Automorphisms::from_permutations(g, perms).ok()?;
        Some(PairOrbits::from_automorphisms(autos))
    }

    /// Persist the pair-orbit partition of `g`.  An implicit partition
    /// writes its closed-form descriptor into a `group-` frame (O(1) bytes
    /// — this is what lets a million-node torus persist its group at all);
    /// an explicit partition writes its automorphism permutations into an
    /// `orbits-` frame.  The partition itself is a deterministic function
    /// of the group, rebuilt on load.  Returns the artifact path.
    pub fn save_orbits(&self, g: &PortGraph, orbits: &PairOrbits) -> io::Result<PathBuf> {
        let Some(autos) = orbits.automorphisms() else {
            let hint =
                orbits.group().descriptor().expect("an implicit group always has a descriptor");
            let mut e = Enc::new();
            e.u128(g.canonical_hash());
            e.usize(g.num_nodes());
            encode_symmetry_hint(&mut e, hint);
            let path = self.group_path(g);
            self.write_atomic(&path, &e.into_frame(Kind::ImplicitOrbits))?;
            return Ok(path);
        };
        let mut e = Enc::new();
        e.u128(g.canonical_hash());
        e.usize(g.num_nodes());
        e.usize(orbits.group_order());
        for p in autos.permutations() {
            for &img in p {
                e.u64(img as u64);
            }
        }
        let path = self.orbits_path(g);
        self.write_atomic(&path, &e.into_frame(Kind::Orbits))?;
        Ok(path)
    }

    /// The pair-orbit partition of `g`: warm from the store when a valid
    /// artifact exists, otherwise computed and saved back.
    pub fn orbits(&self, g: &PortGraph) -> (PairOrbits, Provenance) {
        if let Some(orbits) = self.load_orbits(g) {
            return (orbits, Provenance::Warm);
        }
        let orbits = PairOrbits::compute(g);
        // a failed save leaves the cache cold but the result correct
        let _ = self.save_orbits(g, &orbits);
        (orbits, Provenance::Cold)
    }

    // -- timelines ---------------------------------------------------------

    fn timelines_path(&self, g: &PortGraph, program_key: &str) -> PathBuf {
        self.root.join(format!(
            "timelines-{:032x}-{:016x}.anrv",
            g.canonical_hash(),
            fnv64(program_key.as_bytes())
        ))
    }

    /// Load every recorded timeline of `(g, program_key)` — each carrying
    /// its **own** recorded horizon — or `None` on any miss.  The v3 layout
    /// stores each entry as the engine's assembled flat arrays, so decoding
    /// is one bulk copy per array into [`Timeline::from_parts`], which
    /// shape-validates the shipped occupancy index instead of rebuilding
    /// it; one bad entry rejects the whole file.
    pub fn load_timelines(
        &self,
        g: &PortGraph,
        program_key: &str,
    ) -> Option<Vec<(NodeId, Timeline)>> {
        let path = self.timelines_path(g, program_key);
        let bytes = self.read_artifact(&path)?;
        let mut d = self.gate_frame(&path, Kind::Timelines, &bytes)?;
        if d.u128()? != g.canonical_hash() {
            return None;
        }
        let n = d.usize()?;
        if n != g.num_nodes() {
            return None;
        }
        if d.str()? != program_key {
            return None;
        }
        let count = d.usize()?;
        let num_horizons = d.usize()?;
        let summary = d.u128_vec(num_horizons)?;
        let mut seen = vec![false; n];
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let start = usize::try_from(d.u64()?).ok()?;
            if start >= n || seen[start] {
                return None;
            }
            seen[start] = true;
            let horizon = d.u128()?;
            let nsegs = d.usize()?;
            let parts = TimelineParts {
                starts: d.u128_vec(nsegs.checked_add(1)?)?,
                nodes: d.u32_vec(nsegs)?,
                occ_starts: d.u32_vec(n.checked_add(1)?)?,
                occ_start: d.u128_vec(nsegs)?,
                occ_end: d.u128_vec(nsegs)?,
                occ_seg: d.u32_vec(nsegs)?,
            };
            out.push((start, Timeline::from_parts(n, horizon, parts).ok()?));
        }
        // the up-front horizon summary (what bounded-prefix stats report)
        // must agree with the entries themselves
        if summary != distinct_horizons(out.iter().map(|(_, t)| t.recorded_horizon())) {
            return None;
        }
        d.exhausted().then_some(out)
    }

    /// Persist a set of recorded timelines, each at its own recorded
    /// horizon, as flat v3 struct-of-arrays entries.  Returns the artifact
    /// path.
    pub fn save_timelines(
        &self,
        g: &PortGraph,
        program_key: &str,
        timelines: &[(NodeId, &Timeline)],
    ) -> io::Result<PathBuf> {
        let mut e = Enc::new();
        e.u128(g.canonical_hash());
        e.usize(g.num_nodes());
        e.str(program_key);
        e.usize(timelines.len());
        let summary = distinct_horizons(timelines.iter().map(|(_, t)| t.recorded_horizon()));
        e.usize(summary.len());
        e.u128_slice(&summary);
        for (start, t) in timelines {
            e.u64(*start as u64);
            e.u128(t.recorded_horizon());
            e.usize(t.num_segments());
            e.u128_slice(t.starts());
            e.u32_slice(t.seg_nodes());
            e.u32_slice(t.occ_starts());
            e.u128_slice(t.occ_interval_starts());
            e.u128_slice(t.occ_interval_ends());
            e.u32_slice(t.occ_segs());
        }
        let path = self.timelines_path(g, program_key);
        self.write_atomic(&path, &e.into_frame(Kind::Timelines))?;
        Ok(path)
    }

    /// Preload a sweep engine's trajectory cache from the store.  Every
    /// stored timeline whose recorded horizon covers the engine's is
    /// installed **as-is** — a recording longer than the engine horizon is
    /// not copied down, because the merge kernels clip every query at its
    /// own horizon, which is exact (and bit-identical to a cold recording
    /// at that horizon) because truncated runs are prefixes.  Queries on
    /// installed start nodes skip program execution entirely.
    pub fn warm_engine(&self, engine: &SweepEngine<'_>, program_key: &str) -> WarmedTimelines {
        let cache = engine.cache();
        let horizon = cache.horizon();
        let mut warmed = WarmedTimelines::default();
        if let Some(timelines) = self.load_timelines(cache.graph(), program_key) {
            for (u, t) in timelines {
                if t.recorded_horizon() < horizon {
                    continue; // too short to stand in for a fresh recording
                }
                let prefix = t.recorded_horizon() > horizon;
                if cache.preload(u, t) {
                    warmed.installed += 1;
                    warmed.prefix += usize::from(prefix);
                }
            }
        }
        // Symbolic timelines are horizon-free, so they warm *every* engine:
        // beyond the unroll cap the queries route through the closed-form
        // cycle merge directly; within it the symbolic artifact supersedes
        // an absent (or too-short) explicit recording — the trajectory
        // cache materialises the engine-horizon prefix **lazily, on the
        // first explicit-path query of the node** (exact, and free of
        // program execution; see `TrajectoryCache::timeline`).  Warm time
        // therefore stays proportional to the artifact, not to
        // `nodes × horizon` of unrolled segments nobody may ever query.
        if let Some(symbolics) = self.load_symbolic_timelines(cache.graph(), program_key) {
            for (u, s) in symbolics {
                if cache.preload_symbolic(u, s) {
                    warmed.symbolic += 1;
                }
            }
        }
        warmed
    }

    /// Persist every timeline a sweep engine has recorded so far, merged
    /// with whatever the store already holds for the same key (so shard
    /// processes touching different classes accumulate one shared
    /// artifact).  Per start node the **longer** recording wins — a fresh
    /// recording supersedes a shorter one on disk in place, and a longer
    /// recording on disk is never clobbered by a shorter in-memory one
    /// (both are prefixes of the same run, so nothing is ever lost).  The
    /// read-merge-write sequence runs under an advisory lock so concurrent
    /// shards cannot drop each other's contributions.  Returns the number
    /// of timelines in the written artifact.
    pub fn persist_engine(&self, engine: &SweepEngine<'_>, program_key: &str) -> io::Result<usize> {
        let cache = engine.cache();
        let g = cache.graph();
        if cache.computed_symbolic() > 0 {
            self.persist_symbolic(engine, program_key)?;
        }
        if cache.computed() == 0 {
            // a purely symbolic sweep recorded no explicit timelines; skip
            // the read-merge-write round trip on the explicit artifact
            return Ok(0);
        }
        self.with_lock(&self.timelines_path(g, program_key), || {
            let mut merged: Vec<Option<Timeline>> = vec![None; g.num_nodes()];
            if let Some(existing) = self.load_timelines(g, program_key) {
                for (u, t) in existing {
                    merged[u] = Some(t);
                }
            }
            for (u, t) in cache.computed_timelines() {
                // keep the longer recording; at equal horizons the contents
                // are identical (programs being deterministic)
                let keep_fresh = merged[u]
                    .as_ref()
                    .is_none_or(|old| old.recorded_horizon() <= t.recorded_horizon());
                if keep_fresh {
                    merged[u] = Some(t.clone());
                }
            }
            let owned: Vec<(NodeId, Timeline)> =
                merged.into_iter().enumerate().filter_map(|(u, t)| t.map(|t| (u, t))).collect();
            let borrowed: Vec<(NodeId, &Timeline)> = owned.iter().map(|(u, t)| (*u, t)).collect();
            self.save_timelines(g, program_key, &borrowed)?;
            Ok(borrowed.len())
        })
    }

    // -- symbolic timelines ------------------------------------------------

    fn symbolic_path(&self, g: &PortGraph, program_key: &str) -> PathBuf {
        self.root.join(format!(
            "symbolic-{:032x}-{:016x}.anrv",
            g.canonical_hash(),
            fnv64(program_key.as_bytes())
        ))
    }

    /// Load every symbolic (prefix + cycle) timeline of `(g, program_key)`,
    /// or `None` on any miss.  Each entry is revalidated through
    /// [`SymbolicTimeline::from_raw`] — the same structural gates detection
    /// guarantees — so a corrupted-but-well-framed entry degrades to a
    /// recompute, never to wrong cycle structure being served.
    pub fn load_symbolic_timelines(
        &self,
        g: &PortGraph,
        program_key: &str,
    ) -> Option<Vec<(NodeId, SymbolicTimeline)>> {
        let path = self.symbolic_path(g, program_key);
        let bytes = self.read_artifact(&path)?;
        let mut d = self.gate_frame(&path, Kind::SymbolicTimelines, &bytes)?;
        if d.u128()? != g.canonical_hash() {
            return None;
        }
        let n = d.usize()?;
        if n != g.num_nodes() {
            return None;
        }
        if d.str()? != program_key {
            return None;
        }
        let count = d.usize()?;
        let mut seen = vec![false; n];
        let mut out = Vec::with_capacity(count.min(d.remaining()));
        for _ in 0..count {
            let start = usize::try_from(d.u64()?).ok()?;
            if start >= n || seen[start] {
                return None;
            }
            seen[start] = true;
            let tail = SymbolicTail::from_code(d.u8()?)?;
            let preperiod = d.u128()?;
            let period = d.u128()?;
            let prefix = decode_parts(&mut d, n)?;
            let cycle = decode_parts(&mut d, n)?;
            let s = SymbolicTimeline::from_raw(n, preperiod, period, tail, prefix, cycle).ok()?;
            out.push((start, s));
        }
        d.exhausted().then_some(out)
    }

    /// Persist a set of symbolic timelines as one `SymbolicTimelines`
    /// frame: per entry the tail kind, the `(preperiod, period)` pair and
    /// the prefix and cycle [`TimelineParts`] as v3-style flat-array
    /// blocks.  Returns the artifact path.
    pub fn save_symbolic_timelines(
        &self,
        g: &PortGraph,
        program_key: &str,
        timelines: &[(NodeId, &SymbolicTimeline)],
    ) -> io::Result<PathBuf> {
        let mut e = Enc::new();
        e.u128(g.canonical_hash());
        e.usize(g.num_nodes());
        e.str(program_key);
        e.usize(timelines.len());
        for (start, s) in timelines {
            e.u64(*start as u64);
            e.u8(s.tail().code());
            e.u128(s.preperiod());
            e.u128(s.period());
            encode_parts(&mut e, s.prefix());
            encode_parts(&mut e, s.cycle());
        }
        let path = self.symbolic_path(g, program_key);
        self.write_atomic(&path, &e.into_frame(Kind::SymbolicTimelines))?;
        Ok(path)
    }

    /// Persist every symbolic timeline a sweep engine has detected so far,
    /// merged with whatever the store already holds for the same key.  A
    /// symbolic timeline is horizon-free (it already serves every horizon),
    /// so there is no longest-wins comparison: per start node an existing
    /// on-disk entry is kept as-is (detection being deterministic, a fresh
    /// one is identical) and only absent nodes are added.  Runs under the
    /// same advisory-lock discipline as [`Store::persist_engine`].  Returns
    /// the number of entries in the written artifact.
    pub fn persist_symbolic(
        &self,
        engine: &SweepEngine<'_>,
        program_key: &str,
    ) -> io::Result<usize> {
        let cache = engine.cache();
        let g = cache.graph();
        self.with_lock(&self.symbolic_path(g, program_key), || {
            let mut merged: Vec<Option<SymbolicTimeline>> = vec![None; g.num_nodes()];
            if let Some(existing) = self.load_symbolic_timelines(g, program_key) {
                for (u, s) in existing {
                    merged[u] = Some(s);
                }
            }
            for (u, s) in cache.computed_symbolic_timelines() {
                if merged[u].is_none() {
                    merged[u] = Some(s.clone());
                }
            }
            let owned: Vec<(NodeId, SymbolicTimeline)> =
                merged.into_iter().enumerate().filter_map(|(u, s)| s.map(|s| (u, s))).collect();
            let borrowed: Vec<(NodeId, &SymbolicTimeline)> =
                owned.iter().map(|(u, s)| (*u, s)).collect();
            self.save_symbolic_timelines(g, program_key, &borrowed)?;
            Ok(borrowed.len())
        })
    }

    // -- plan outcome tables -----------------------------------------------

    /// Filename key of one `(program, δ-grid, partition)` sweep family —
    /// horizons deliberately excluded (see the module docs).
    fn outcomes_key(&self, program_key: &str, plan: &SweepPlan) -> u64 {
        let mut key = Vec::from(program_key.as_bytes());
        key.extend_from_slice(&(plan.deltas().len() as u64).to_le_bytes());
        for &d in plan.deltas() {
            key.extend_from_slice(&d.to_le_bytes());
        }
        key.extend_from_slice(&(plan.orbits().num_pair_classes() as u64).to_le_bytes());
        fnv64(&key)
    }

    /// Filename stem shared by the outcome table and the shard partials of
    /// one `(graph, program, δ-grid)` sweep family, so they sort together.
    pub(crate) fn plan_artifact_stem(
        &self,
        g: &PortGraph,
        program_key: &str,
        plan: &SweepPlan,
    ) -> String {
        format!("{:032x}-{:016x}", g.canonical_hash(), self.outcomes_key(program_key, plan))
    }

    fn outcomes_path(&self, g: &PortGraph, program_key: &str, plan: &SweepPlan) -> PathBuf {
        self.root.join(format!("outcomes-{}.anrv", self.plan_artifact_stem(g, program_key, plan)))
    }

    /// Load the representative-outcome table of `(g, program_key, plan)` —
    /// the result of a previous [`anonrv_plan::PlannedSweep::run`] at a
    /// horizon of **at least** `plan.horizon()` — or `None` on any miss.
    /// Returns the table together with the horizon it was recorded at:
    /// equal to `plan.horizon()` on an exact hit, larger on a prefix hit
    /// (truncate it down with [`anonrv_plan::PlannedOutcomes::truncate`]).
    pub fn load_plan_outcomes(
        &self,
        g: &PortGraph,
        program_key: &str,
        plan: &SweepPlan,
    ) -> Option<(Vec<SimOutcome>, Round)> {
        let (table, recorded) = self.load_plan_outcomes_any(g, program_key, plan)?;
        (recorded >= plan.horizon()).then_some((table, recorded))
    }

    /// Like [`Store::load_plan_outcomes`], but **without** the
    /// `recorded >= plan.horizon()` gate: a table recorded at a *shorter*
    /// horizon is returned too.  This is what the warm-extend path feeds to
    /// [`anonrv_sim::SweepEngine::simulate_extend`] — a shorter recording
    /// is not a miss, it is a resumable prefix of the requested sweep.
    pub fn load_plan_outcomes_any(
        &self,
        g: &PortGraph,
        program_key: &str,
        plan: &SweepPlan,
    ) -> Option<(Vec<SimOutcome>, Round)> {
        let path = self.outcomes_path(g, program_key, plan);
        let bytes = self.read_artifact(&path)?;
        let d = self.gate_frame(&path, Kind::Outcomes, &bytes)?;
        decode_outcomes_body(d, g, program_key, plan)
    }

    /// Persist an executed plan's representative-outcome table
    /// (class-major, δ-minor, as produced by
    /// [`anonrv_plan::PlannedSweep::run`]), recorded at `plan.horizon()`.
    /// A table already on disk at a **longer** horizon is left in place (it
    /// serves this plan by prefix truncation); a shorter one is superseded.
    /// Returns the artifact path.
    pub fn save_plan_outcomes(
        &self,
        g: &PortGraph,
        program_key: &str,
        plan: &SweepPlan,
        table: &[SimOutcome],
    ) -> io::Result<PathBuf> {
        assert_eq!(
            table.len(),
            plan.num_representative_queries(),
            "outcome table does not match the plan"
        );
        let path = self.outcomes_path(g, program_key, plan);
        self.with_lock(&path, || {
            if let Ok(bytes) = fs::read(&path) {
                if let Some((_, recorded)) = decode_outcomes_payload(&bytes, g, program_key, plan) {
                    if recorded >= plan.horizon() {
                        return Ok(()); // the disk already serves this horizon
                    }
                }
            }
            let mut e = Enc::new();
            encode_plan_identity(&mut e, g, program_key, plan);
            e.u128(plan.horizon());
            encode_outcome_table(&mut e, table);
            self.write_atomic(&path, &e.into_frame(Kind::Outcomes))
        })?;
        Ok(path)
    }

    // -- stats and compaction ----------------------------------------------

    /// Aggregate statistics of the cache directory: artifact counts and
    /// bytes per kind, plus every recorded horizon found inside the frames
    /// (what `anonrv cache stats` prints).
    pub fn stats(&self) -> io::Result<CacheStats> {
        let mut stats = CacheStats::default();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = entry.metadata()?.len();
            let Some(kind) = kind_of_filename(&name) else {
                stats.other.add(bytes);
                continue;
            };
            let (prefix, file_len) = read_prefix(&entry.path(), PEEK_PREFIX).unwrap_or_default();
            let Some(mut d) = peek_prefix_frame(kind, &prefix, file_len) else {
                stats.invalid.add(bytes);
                continue;
            };
            match kind {
                Kind::Orbits | Kind::ImplicitOrbits => stats.orbits.add(bytes),
                Kind::Timelines => {
                    stats.timelines.add(bytes);
                    if let Some((count, horizons)) = peek_timeline_horizons(&mut d) {
                        stats.timeline_entries += count;
                        stats.recorded_horizons.extend(horizons);
                    }
                }
                Kind::Outcomes => {
                    stats.outcomes.add(bytes);
                    if let Some((_, recorded)) = peek_table_identity(&mut d) {
                        stats.recorded_horizons.push(recorded);
                    }
                }
                Kind::Shard => {
                    stats.shards.add(bytes);
                    if let Some((_, horizon)) = peek_table_identity(&mut d) {
                        stats.recorded_horizons.push(horizon);
                    }
                }
                Kind::SymbolicTimelines => {
                    stats.symbolic.add(bytes);
                    if let Some(count) = peek_symbolic_count(&mut d) {
                        stats.symbolic_entries += count;
                    }
                }
            }
        }
        // quarantined frames live one level down, next to their `.reason`
        // sidecars (which are bookkeeping, not counted)
        if let Ok(entries) = fs::read_dir(self.quarantine_dir()) {
            for entry in entries {
                let entry = entry?;
                let name = entry.file_name().to_string_lossy().into_owned();
                if entry.file_type()?.is_file() && !name.ends_with(".reason") {
                    stats.quarantined.add(entry.metadata()?.len());
                }
            }
        }
        stats.recorded_horizons.sort_unstable();
        stats.recorded_horizons.dedup();
        Ok(stats)
    }

    /// Compact the cache directory: delete frames that can no longer serve
    /// anything — corrupt or format-stale artifacts, orphaned temp files,
    /// stale lock files, and shard partials superseded by a merged outcome
    /// table recorded at a horizon covering theirs.  Returns what was
    /// reclaimed.  The survey works from bounded prefix reads: a file
    /// small enough to fit in the prefix is fully checksum-verified, a
    /// larger one is gated on its header and identity only (deep payload
    /// corruption in a big artifact is caught — and overwritten — by its
    /// load path, so leaving it to that is safe).  Valid artifacts and foreign files (anything the store
    /// did not name itself) are never touched, so `gc` is always safe to
    /// run, including next to live shard processes (in-flight temp and
    /// lock files younger than 60 s are left alone).
    pub fn gc(&self) -> io::Result<GcReport> {
        self.gc_with_min_age(std::time::Duration::from_secs(60))
    }

    /// [`Store::gc`] with an explicit staleness threshold for temp and lock
    /// files (tests shrink it to zero; operators want the 60 s default so a
    /// live writer's in-flight files survive).
    pub fn gc_with_min_age(&self, min_age: std::time::Duration) -> io::Result<GcReport> {
        let mut report = GcReport::default();
        let mut shards: Vec<(PathBuf, u64, PlanIdentity, Round)> = Vec::new();
        let mut merged: Vec<(PlanIdentity, Round)> = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let path = entry.path();
            let name = entry.file_name().to_string_lossy().into_owned();
            let bytes = entry.metadata()?.len();
            // only the store's OWN side files are eligible: the advisory
            // locks and atomic-write temps it derives from its artifact
            // names.  Anything else — an operator's notes, another tool's
            // staging files — is foreign and left alone, exactly like
            // unrecognised `.anrv`-less files below.
            let own_prefix =
                ["orbits-", "group-", "timelines-", "outcomes-", "shard-", "symbolic-"]
                    .iter()
                    .any(|p| name.starts_with(p));
            if own_prefix && (name.ends_with(".lock") || name.contains(".tmp")) {
                let old_enough = entry
                    .metadata()
                    .and_then(|m| m.modified())
                    .ok()
                    .and_then(|t| t.elapsed().ok())
                    .is_some_and(|age| age >= min_age);
                if old_enough {
                    let class = if name.ends_with(".lock") { GcClass::Lock } else { GcClass::Temp };
                    report.remove(&path, bytes, class);
                }
                continue;
            }
            let Some(kind) = kind_of_filename(&name) else {
                continue; // not one of ours: leave it alone
            };
            let (prefix, file_len) = read_prefix(&path, PEEK_PREFIX).unwrap_or_default();
            let Some(mut d) = peek_prefix_frame(kind, &prefix, file_len) else {
                report.remove(&path, bytes, GcClass::Corrupt);
                continue;
            };
            match kind {
                Kind::Outcomes => {
                    if let Some(identity) = peek_table_identity(&mut d) {
                        merged.push(identity);
                    }
                }
                Kind::Shard => match peek_table_identity(&mut d) {
                    Some((identity, horizon)) => shards.push((path, bytes, identity, horizon)),
                    None => report.remove(&path, bytes, GcClass::Corrupt),
                },
                Kind::Orbits | Kind::ImplicitOrbits | Kind::Timelines | Kind::SymbolicTimelines => {
                }
            }
        }
        // a shard partial is superseded once a merged table of the same
        // identity covers its horizon
        for (path, bytes, identity, horizon) in shards {
            if merged.iter().any(|(id, recorded)| *id == identity && *recorded >= horizon) {
                report.remove(&path, bytes, GcClass::Superseded);
            }
        }
        if obs::enabled() {
            obs::counter_add("store.gc.runs", 1);
            obs::counter_add("store.gc.removed_files", report.removed_files as u64);
            obs::counter_add("store.gc.reclaimed_bytes", report.reclaimed_bytes);
        }
        Ok(report)
    }

    /// Full-depth integrity scan: every artifact is read **in full**,
    /// checksum-verified end to end, and its payload structurally decoded —
    /// unlike the bounded 64 KiB prefix surveys of [`Store::stats`] /
    /// [`Store::gc`], which trust the load paths to catch deep payload
    /// damage lazily.  `fsck` finds it eagerly, before anything is served.
    ///
    /// Per artifact the verdict is [`FsckVerdict::Valid`] (frame and
    /// payload sound), [`FsckVerdict::Stale`] (a well-formed frame of
    /// another format version — a plain miss that the next write
    /// supersedes, and that [`Store::gc`] reclaims) or
    /// [`FsckVerdict::Corrupt`] (damaged bytes).  With `repair`, corrupt
    /// frames move into `quarantine/` with a reason sidecar; stale frames
    /// are left for gc — they are an expected after-image of a format bump,
    /// not evidence of damage.  Structural verification is identity-free
    /// (no graph needed): permutations must be bijections, timeline entries
    /// must reassemble through the same shape validation the loader uses,
    /// tables must match their declared class/δ geometry.
    pub fn fsck(&self, repair: bool) -> io::Result<FsckReport> {
        let mut report = FsckReport::default();
        let mut found: Vec<(PathBuf, String, u64, Kind)> = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(kind) = kind_of_filename(&name) else {
                continue;
            };
            found.push((entry.path(), name, entry.metadata()?.len(), kind));
        }
        found.sort_by(|a, b| a.1.cmp(&b.1));
        for (path, name, bytes, kind) in found {
            let verdict = match fs::read(&path) {
                Err(e) => FsckVerdict::Corrupt(format!("unreadable: {e}")),
                Ok(data) => match unframe_checked(kind, &data) {
                    Err(FrameFailure::Version) => FsckVerdict::Stale,
                    Err(failure) => FsckVerdict::Corrupt(failure.label().to_string()),
                    Ok(mut d) => match verify_payload(kind, &mut d) {
                        Ok(()) => FsckVerdict::Valid,
                        Err(reason) => FsckVerdict::Corrupt(reason),
                    },
                },
            };
            let mut quarantined = false;
            match &verdict {
                FsckVerdict::Valid => report.valid += 1,
                FsckVerdict::Stale => report.stale += 1,
                FsckVerdict::Corrupt(reason) => {
                    report.corrupt += 1;
                    if repair && self.quarantine(&path, reason).is_ok() {
                        quarantined = true;
                        report.quarantined += 1;
                    }
                }
            }
            report.entries.push(FsckEntry { name, bytes, verdict, quarantined });
        }
        if obs::enabled() {
            obs::counter_add("store.fsck.runs", 1);
            obs::counter_add("store.fsck.corrupt", report.corrupt as u64);
        }
        Ok(report)
    }
}

/// Per-kind artifact tally of [`Store::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KindStats {
    /// Number of files.
    pub files: usize,
    /// Total size in bytes.
    pub bytes: u64,
}

impl KindStats {
    fn add(&mut self, bytes: u64) {
        self.files += 1;
        self.bytes += bytes;
    }
}

/// What [`Store::stats`] reports about a cache directory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Automorphism-group / pair-orbit artifacts.
    pub orbits: KindStats,
    /// Trajectory-timeline artifacts.
    pub timelines: KindStats,
    /// Symbolic (prefix + cycle) timeline artifacts.
    pub symbolic: KindStats,
    /// Merged representative-outcome tables.
    pub outcomes: KindStats,
    /// Shard partial tables.
    pub shards: KindStats,
    /// Artifacts whose frame failed an integrity gate (corrupt / stale).
    pub invalid: KindStats,
    /// Files in the directory that are not store artifacts (locks, temps,
    /// anything foreign).
    pub other: KindStats,
    /// Frames the read path (or `fsck --repair`) moved into `quarantine/`
    /// after a corruption-class integrity failure.  A non-zero count that
    /// keeps growing means something is damaging artifacts *recurringly* —
    /// a failing disk, a hostile writer — rather than a one-off glitch.
    pub quarantined: KindStats,
    /// Total timelines recorded across all timeline artifacts.
    pub timeline_entries: usize,
    /// Total symbolic timelines across all symbolic artifacts.
    pub symbolic_entries: usize,
    /// Every distinct recorded horizon found inside valid frames, sorted.
    pub recorded_horizons: Vec<Round>,
}

impl CacheStats {
    /// Total bytes across every file the scan saw.
    pub fn total_bytes(&self) -> u64 {
        self.orbits.bytes
            + self.timelines.bytes
            + self.symbolic.bytes
            + self.outcomes.bytes
            + self.shards.bytes
            + self.invalid.bytes
            + self.other.bytes
            + self.quarantined.bytes
    }
}

/// What a [`Store::gc`] pass reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GcReport {
    /// Files deleted.
    pub removed_files: usize,
    /// Bytes reclaimed.
    pub reclaimed_bytes: u64,
    /// Corrupt or format-stale artifacts removed.
    pub corrupt: usize,
    /// Shard partials superseded by a merged outcome table.
    pub superseded: usize,
    /// Orphaned temp files removed.
    pub temp: usize,
    /// Stale lock files removed.
    pub locks: usize,
}

/// Why [`Store::gc`] removed a file.
enum GcClass {
    Corrupt,
    Superseded,
    Temp,
    Lock,
}

impl GcReport {
    fn remove(&mut self, path: &Path, bytes: u64, class: GcClass) {
        if fs::remove_file(path).is_ok() {
            self.removed_files += 1;
            self.reclaimed_bytes += bytes;
            match class {
                GcClass::Corrupt => self.corrupt += 1,
                GcClass::Superseded => self.superseded += 1,
                GcClass::Temp => self.temp += 1,
                GcClass::Lock => self.locks += 1,
            }
        }
    }
}

/// One artifact's verdict in a [`Store::fsck`] scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckVerdict {
    /// Frame and payload fully verified.
    Valid,
    /// A well-formed frame of a different format version: serves nothing,
    /// damages nothing — superseded by the next write, reclaimed by gc.
    Stale,
    /// Damaged bytes; the string names the first gate that failed.
    Corrupt(String),
}

impl std::fmt::Display for FsckVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsckVerdict::Valid => f.write_str("valid"),
            FsckVerdict::Stale => f.write_str("stale"),
            FsckVerdict::Corrupt(reason) => write!(f, "CORRUPT ({reason})"),
        }
    }
}

/// One artifact's line in a [`FsckReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckEntry {
    /// The artifact's filename.
    pub name: String,
    /// Its size in bytes.
    pub bytes: u64,
    /// What the full-depth verification concluded.
    pub verdict: FsckVerdict,
    /// `true` when a `--repair` pass moved it into `quarantine/`.
    pub quarantined: bool,
}

/// What a [`Store::fsck`] scan found (and, with repair, did).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FsckReport {
    /// Per-artifact verdicts, sorted by filename.
    pub entries: Vec<FsckEntry>,
    /// Artifacts that verified end to end.
    pub valid: usize,
    /// Version-stale artifacts (left in place; gc's job).
    pub stale: usize,
    /// Damaged artifacts found.
    pub corrupt: usize,
    /// Damaged artifacts moved into `quarantine/` (repair mode only).
    pub quarantined: usize,
}

/// Structural full-depth verification of one payload, identity-free —
/// [`Store::fsck`] runs without knowing which graph produced an artifact,
/// so it checks everything internal: geometry, bijectivity, shape
/// invariants, exact payload consumption.
fn verify_payload(kind: Kind, d: &mut Dec<'_>) -> Result<(), String> {
    let truncated = || "payload-truncated".to_string();
    match kind {
        Kind::Orbits => {
            d.u128().ok_or_else(truncated)?;
            let n = d.usize().ok_or_else(truncated)?;
            let k = d.usize().ok_or_else(truncated)?;
            // a forged count must not drive allocations below
            if k > 0 && n > d.remaining() / 8 {
                return Err("orbit-count-overruns-payload".into());
            }
            for _ in 0..k {
                let mut seen = vec![false; n];
                for _ in 0..n {
                    let img = d.u64().ok_or_else(truncated)?;
                    let img = usize::try_from(img).ok().filter(|&i| i < n && !seen[i]);
                    match img {
                        Some(i) => seen[i] = true,
                        None => return Err("orbit-permutation-not-a-bijection".into()),
                    }
                }
            }
        }
        Kind::ImplicitOrbits => {
            d.u128().ok_or_else(truncated)?;
            let n = d.usize().ok_or_else(truncated)?;
            // identity-free shape checks: the family's parameters must
            // describe exactly n nodes (graph verification happens on load)
            match decode_symmetry_hint(d).ok_or_else(|| "group-descriptor-malformed".to_string())? {
                SymmetryHint::Cyclic => {}
                SymmetryHint::Torus { rows, cols } => {
                    if rows.checked_mul(cols) != Some(n) {
                        return Err("group-torus-shape-mismatch".into());
                    }
                }
                SymmetryHint::Hypercube { dim } => {
                    if dim >= usize::BITS || 1usize << dim != n {
                        return Err("group-hypercube-shape-mismatch".into());
                    }
                }
            }
        }
        Kind::Timelines => {
            d.u128().ok_or_else(truncated)?;
            let n = d.usize().ok_or_else(truncated)?;
            d.str().ok_or_else(|| "program-key-malformed".to_string())?;
            let count = d.usize().ok_or_else(truncated)?;
            let num_horizons = d.usize().ok_or_else(truncated)?;
            let summary = d.u128_vec(num_horizons).ok_or_else(truncated)?;
            if count > 0 && n.checked_mul(4).is_none_or(|b| b > d.remaining()) {
                return Err("node-count-overruns-payload".into());
            }
            let mut seen = vec![false; if count > 0 { n } else { 0 }];
            let mut horizons = Vec::with_capacity(count.min(d.remaining()));
            for _ in 0..count {
                let start = d.u64().ok_or_else(truncated)?;
                match usize::try_from(start).ok().filter(|&u| u < n && !seen[u]) {
                    Some(u) => seen[u] = true,
                    None => return Err("timeline-start-node-invalid".into()),
                }
                let horizon = d.u128().ok_or_else(truncated)?;
                let nsegs = d.usize().ok_or_else(truncated)?;
                let parts = TimelineParts {
                    starts: d
                        .u128_vec(nsegs.checked_add(1).ok_or_else(truncated)?)
                        .ok_or_else(truncated)?,
                    nodes: d.u32_vec(nsegs).ok_or_else(truncated)?,
                    occ_starts: d
                        .u32_vec(n.checked_add(1).ok_or_else(truncated)?)
                        .ok_or_else(truncated)?,
                    occ_start: d.u128_vec(nsegs).ok_or_else(truncated)?,
                    occ_end: d.u128_vec(nsegs).ok_or_else(truncated)?,
                    occ_seg: d.u32_vec(nsegs).ok_or_else(truncated)?,
                };
                Timeline::from_parts(n, horizon, parts)
                    .map_err(|e| format!("timeline-shape-invalid: {e}"))?;
                horizons.push(horizon);
            }
            if summary != distinct_horizons(horizons.into_iter()) {
                return Err("horizon-summary-disagrees-with-entries".into());
            }
        }
        Kind::SymbolicTimelines => {
            d.u128().ok_or_else(truncated)?;
            let n = d.usize().ok_or_else(truncated)?;
            d.str().ok_or_else(|| "program-key-malformed".to_string())?;
            let count = d.usize().ok_or_else(truncated)?;
            if count > 0 && n.checked_mul(4).is_none_or(|b| b > d.remaining()) {
                return Err("node-count-overruns-payload".into());
            }
            let mut seen = vec![false; if count > 0 { n } else { 0 }];
            for _ in 0..count {
                let start = d.u64().ok_or_else(truncated)?;
                match usize::try_from(start).ok().filter(|&u| u < n && !seen[u]) {
                    Some(u) => seen[u] = true,
                    None => return Err("symbolic-start-node-invalid".into()),
                }
                let tail = SymbolicTail::from_code(d.u8().ok_or_else(truncated)?)
                    .ok_or_else(|| "symbolic-tail-code-invalid".to_string())?;
                let preperiod = d.u128().ok_or_else(truncated)?;
                let period = d.u128().ok_or_else(truncated)?;
                let prefix = decode_parts(d, n).ok_or_else(truncated)?;
                let cycle = decode_parts(d, n).ok_or_else(truncated)?;
                SymbolicTimeline::from_raw(n, preperiod, period, tail, prefix, cycle)
                    .map_err(|e| format!("symbolic-shape-invalid: {e}"))?;
            }
        }
        Kind::Outcomes => {
            let identity =
                decode_plan_identity_raw(d).ok_or_else(|| "plan-identity-malformed".to_string())?;
            d.u128().ok_or_else(truncated)?;
            let table =
                decode_outcome_table(d).ok_or_else(|| "outcome-table-malformed".to_string())?;
            if table.len() != identity.num_classes * identity.deltas.len() {
                return Err("outcome-table-geometry-mismatch".into());
            }
        }
        Kind::Shard => {
            let identity =
                decode_plan_identity_raw(d).ok_or_else(|| "plan-identity-malformed".to_string())?;
            d.u128().ok_or_else(truncated)?;
            let shards = d.usize().ok_or_else(truncated)?;
            let index = d.usize().ok_or_else(truncated)?;
            if shards == 0 || index >= shards {
                return Err("shard-spec-invalid".into());
            }
            let count = d.usize().ok_or_else(truncated)?;
            if count > d.remaining() / 8 {
                return Err("class-count-overruns-payload".into());
            }
            for _ in 0..count {
                let c = d.usize().ok_or_else(truncated)?;
                if c >= identity.num_classes {
                    return Err("shard-class-out-of-range".into());
                }
            }
            let table =
                decode_outcome_table(d).ok_or_else(|| "outcome-table-malformed".to_string())?;
            if table.len() != count * identity.deltas.len() {
                return Err("shard-table-geometry-mismatch".into());
            }
        }
    }
    if !d.exhausted() {
        return Err("payload-trailing-garbage".into());
    }
    Ok(())
}

/// Implicit-group family tags inside `group-` descriptor payloads.
const GROUP_TAG_CYCLIC: u8 = 1;
const GROUP_TAG_TORUS: u8 = 2;
const GROUP_TAG_HYPERCUBE: u8 = 3;

/// Encode a closed-form group descriptor: one family tag byte plus the
/// family's shape parameters.  `n` itself is framed by the caller.
fn encode_symmetry_hint(e: &mut Enc, hint: SymmetryHint) {
    match hint {
        SymmetryHint::Cyclic => e.u8(GROUP_TAG_CYCLIC),
        SymmetryHint::Torus { rows, cols } => {
            e.u8(GROUP_TAG_TORUS);
            e.usize(rows);
            e.usize(cols);
        }
        SymmetryHint::Hypercube { dim } => {
            e.u8(GROUP_TAG_HYPERCUBE);
            e.u64(u64::from(dim));
        }
    }
}

/// Decode a closed-form group descriptor; `None` on an unknown tag or a
/// truncated payload.
fn decode_symmetry_hint(d: &mut Dec<'_>) -> Option<SymmetryHint> {
    match d.u8()? {
        GROUP_TAG_CYCLIC => Some(SymmetryHint::Cyclic),
        GROUP_TAG_TORUS => Some(SymmetryHint::Torus { rows: d.usize()?, cols: d.usize()? }),
        GROUP_TAG_HYPERCUBE => Some(SymmetryHint::Hypercube { dim: u32::try_from(d.u64()?).ok()? }),
        _ => None,
    }
}

/// The artifact kind a store filename claims to be.
fn kind_of_filename(name: &str) -> Option<Kind> {
    if !name.ends_with(".anrv") {
        return None;
    }
    if name.starts_with("orbits-") {
        Some(Kind::Orbits)
    } else if name.starts_with("group-") {
        Some(Kind::ImplicitOrbits)
    } else if name.starts_with("timelines-") {
        Some(Kind::Timelines)
    } else if name.starts_with("outcomes-") {
        Some(Kind::Outcomes)
    } else if name.starts_with("shard-") {
        Some(Kind::Shard)
    } else if name.starts_with("symbolic-") {
        Some(Kind::SymbolicTimelines)
    } else {
        None
    }
}

/// How much of each file the [`Store::stats`] / [`Store::gc`] surveys pull
/// off disk.  Every peek they need — the frame header, the artifact
/// identity, the timelines horizon summary, the table horizon — lives
/// within the first few hundred bytes of a payload, so 64 KiB is generous.
const PEEK_PREFIX: usize = 64 * 1024;

/// Fsync a directory, so the entries a preceding rename/create published
/// survive a crash.  Best-effort: some filesystems refuse directory
/// handles, and an unsyncable directory must not fail the write that the
/// artifact-file `sync_all` already hardened.
fn sync_dir(dir: &Path) {
    if let Ok(f) = fs::File::open(dir) {
        let _ = f.sync_all();
    }
}

/// Seconds since the Unix epoch (lock-holder stamps, quarantine sidecars).
fn unix_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Read up to `max` bytes of `path`, plus the file's total length.
fn read_prefix(path: &Path, max: usize) -> io::Result<(Vec<u8>, u64)> {
    use std::io::Read;
    let f = fs::File::open(path)?;
    let len = f.metadata()?.len();
    let mut buf = Vec::with_capacity(usize::try_from(len).unwrap_or(max).min(max));
    f.take(max as u64).read_to_end(&mut buf)?;
    Ok((buf, len))
}

/// Survey gate shared by stats and gc: frame-validate what a bounded
/// prefix read saw.  A file that fit entirely in the prefix goes through
/// [`unframe`] — full checksum verification for free; a larger one is
/// gated on its header and declared length only, handing back a decoder
/// over the payload prefix (peeks past it degrade to `None`, and deep
/// payload corruption is left for the load path's checksum to catch).
fn peek_prefix_frame(kind: Kind, prefix: &[u8], file_len: u64) -> Option<Dec<'_>> {
    if prefix.len() as u64 == file_len {
        unframe(kind, prefix)
    } else {
        peek_frame(kind, prefix, file_len)
    }
}

/// The entry count and distinct-horizon summary a v3 timelines payload
/// leads with.
fn peek_timeline_horizons(d: &mut Dec<'_>) -> Option<(usize, Vec<Round>)> {
    let _hash = d.u128()?;
    let _n = d.usize()?;
    let _key = d.str()?;
    let count = d.usize()?;
    let num_horizons = d.usize()?;
    let horizons = d.u128_vec(num_horizons)?;
    Some((count, horizons))
}

/// The entry count a symbolic-timelines payload leads with (after its
/// graph/program identity), for the bounded-prefix stats survey.
fn peek_symbolic_count(d: &mut Dec<'_>) -> Option<usize> {
    let _hash = d.u128()?;
    let _n = d.usize()?;
    let _key = d.str()?;
    d.usize()
}

/// The plan identity and recorded horizon of an outcomes or shard payload
/// (both lead with the identity followed by the horizon).
fn peek_table_identity(d: &mut Dec<'_>) -> Option<(PlanIdentity, Round)> {
    let identity = decode_plan_identity_raw(d)?;
    let horizon = d.u128()?;
    Some((identity, horizon))
}

/// Decode and identity-check a full outcomes payload against a query;
/// `None` on any gate failure.  Returns the table and its recorded horizon
/// (the `recorded >= needed` comparison is the caller's).
fn decode_outcomes_payload(
    bytes: &[u8],
    g: &PortGraph,
    program_key: &str,
    plan: &SweepPlan,
) -> Option<(Vec<SimOutcome>, Round)> {
    let d = unframe(Kind::Outcomes, bytes)?;
    decode_outcomes_body(d, g, program_key, plan)
}

/// The payload half of [`decode_outcomes_payload`], over an already
/// frame-gated decoder (the load path gates — and quarantines — first).
fn decode_outcomes_body(
    mut d: Dec<'_>,
    g: &PortGraph,
    program_key: &str,
    plan: &SweepPlan,
) -> Option<(Vec<SimOutcome>, Round)> {
    decode_plan_identity(&mut d, g, program_key, plan)?;
    let recorded = d.u128()?;
    let table = decode_outcome_table(&mut d)?;
    if table.len() != plan.num_representative_queries() {
        return None;
    }
    d.exhausted().then_some((table, recorded))
}

/// The sorted distinct horizons of a timeline set — the up-front summary a
/// timelines payload leads with, so `stats` can survey horizons from a
/// bounded prefix read.
fn distinct_horizons(horizons: impl Iterator<Item = Round>) -> Vec<Round> {
    let mut hs: Vec<Round> = horizons.collect();
    hs.sort_unstable();
    hs.dedup();
    hs
}

// -- shared payload pieces (also used by the shard files) -------------------

/// The horizon-free identity of a `(graph, program, δ-grid, partition)`
/// sweep family, as embedded in outcome and shard payloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PlanIdentity {
    hash: u128,
    n: usize,
    program_key: String,
    deltas: Vec<Round>,
    num_classes: usize,
}

/// Encode the identity of a `(graph, program, plan)` triple: what a loader
/// verifies before trusting any cached outcome.  The plan's horizon is
/// **not** part of the identity — it is recorded separately, so longer
/// recordings can serve shorter queries by prefix truncation.
pub(crate) fn encode_plan_identity(
    e: &mut Enc,
    g: &PortGraph,
    program_key: &str,
    plan: &SweepPlan,
) {
    e.u128(g.canonical_hash());
    e.usize(g.num_nodes());
    e.str(program_key);
    e.usize(plan.deltas().len());
    for &d in plan.deltas() {
        e.u128(d);
    }
    e.usize(plan.orbits().num_pair_classes());
}

/// Decode an encoded plan identity without a query to compare against
/// (stats / gc); `None` on malformed input.
pub(crate) fn decode_plan_identity_raw(d: &mut Dec<'_>) -> Option<PlanIdentity> {
    let hash = d.u128()?;
    let n = d.usize()?;
    let program_key = d.str()?;
    let ndeltas = d.usize()?;
    // a forged count must not drive the allocation below
    if ndeltas > d.remaining() / 16 {
        return None;
    }
    let mut deltas = Vec::with_capacity(ndeltas);
    for _ in 0..ndeltas {
        deltas.push(d.u128()?);
    }
    let num_classes = d.usize()?;
    Some(PlanIdentity { hash, n, program_key, deltas, num_classes })
}

/// Verify an encoded plan identity against the query; `None` on mismatch.
pub(crate) fn decode_plan_identity(
    d: &mut Dec<'_>,
    g: &PortGraph,
    program_key: &str,
    plan: &SweepPlan,
) -> Option<()> {
    let identity = decode_plan_identity_raw(d)?;
    (identity.hash == g.canonical_hash()
        && identity.n == g.num_nodes()
        && identity.program_key == program_key
        && identity.deltas == plan.deltas()
        && identity.num_classes == plan.orbits().num_pair_classes())
    .then_some(())
}

/// Encode one [`TimelineParts`] block (prefix or cycle half of a symbolic
/// entry) as v3-style aligned flat arrays: a segment count, then the six
/// columns in the same order the explicit timeline entries use.
pub(crate) fn encode_parts(e: &mut Enc, parts: &TimelineParts) {
    e.usize(parts.nodes.len());
    e.u128_slice(&parts.starts);
    e.u32_slice(&parts.nodes);
    e.u32_slice(&parts.occ_starts);
    e.u128_slice(&parts.occ_start);
    e.u128_slice(&parts.occ_end);
    e.u32_slice(&parts.occ_seg);
}

/// Decode an [`encode_parts`] block for an `n`-node graph; `None` on
/// malformed input.  Shape and occupancy validation is the caller's
/// ([`SymbolicTimeline::from_raw`]).
pub(crate) fn decode_parts(d: &mut Dec<'_>, n: usize) -> Option<TimelineParts> {
    let nsegs = d.usize()?;
    Some(TimelineParts {
        starts: d.u128_vec(nsegs.checked_add(1)?)?,
        nodes: d.u32_vec(nsegs)?,
        occ_starts: d.u32_vec(n.checked_add(1)?)?,
        occ_start: d.u128_vec(nsegs)?,
        occ_end: d.u128_vec(nsegs)?,
        occ_seg: d.u32_vec(nsegs)?,
    })
}

/// Encode one [`SimOutcome`] exactly (every field, `u128`s included).
pub(crate) fn encode_outcome(e: &mut Enc, o: &SimOutcome) {
    let flags = u8::from(o.meeting.is_some())
        | (u8::from(o.earlier_terminated) << 1)
        | (u8::from(o.later_terminated) << 2);
    e.u8(flags);
    if let Some(m) = &o.meeting {
        e.u128(m.global_round);
        e.u128(m.later_round);
        e.usize(m.node);
    }
    e.u64(o.earlier_moves);
    e.u64(o.later_moves);
    e.u128(o.horizon);
}

/// Decode one [`SimOutcome`]; `None` on malformed input.  The inverse of
/// [`encode_outcome`], kept as a round-trip oracle for the fingerprint
/// encoding (on-disk tables decode through [`decode_outcome_table`]).
#[cfg(test)]
pub(crate) fn decode_outcome(d: &mut Dec<'_>) -> Option<SimOutcome> {
    let flags = d.u8()?;
    if flags & !0b111 != 0 {
        return None;
    }
    let meeting = if flags & 1 != 0 {
        Some(Meeting { global_round: d.u128()?, later_round: d.u128()?, node: d.usize()? })
    } else {
        None
    };
    Some(SimOutcome {
        meeting,
        earlier_moves: d.u64()?,
        later_moves: d.u64()?,
        earlier_terminated: flags & 0b10 != 0,
        later_terminated: flags & 0b100 != 0,
        horizon: d.u128()?,
    })
}

/// Encode a whole outcome table as flat v3 struct-of-arrays columns: a
/// length, then one aligned array per [`SimOutcome`] field (meeting fields
/// zero-filled where the flag bit is off, so every table has exactly one
/// encoding).  Shared by the merged-table and shard-partial payloads.
pub(crate) fn encode_outcome_table(e: &mut Enc, table: &[SimOutcome]) {
    let len = table.len();
    e.usize(len);
    let mut flags = Vec::with_capacity(len);
    let mut global_round = Vec::with_capacity(len);
    let mut later_round = Vec::with_capacity(len);
    let mut node = Vec::with_capacity(len);
    let mut earlier_moves = Vec::with_capacity(len);
    let mut later_moves = Vec::with_capacity(len);
    let mut horizon = Vec::with_capacity(len);
    for o in table {
        flags.push(
            u8::from(o.meeting.is_some())
                | (u8::from(o.earlier_terminated) << 1)
                | (u8::from(o.later_terminated) << 2),
        );
        let m = o.meeting.as_ref();
        global_round.push(m.map_or(0, |m| m.global_round));
        later_round.push(m.map_or(0, |m| m.later_round));
        node.push(m.map_or(0, |m| m.node as u64));
        earlier_moves.push(o.earlier_moves);
        later_moves.push(o.later_moves);
        horizon.push(o.horizon);
    }
    e.u8_slice(&flags);
    e.u128_slice(&global_round);
    e.u128_slice(&later_round);
    e.u64_slice(&node);
    e.u64_slice(&earlier_moves);
    e.u64_slice(&later_moves);
    e.u128_slice(&horizon);
}

/// Decode a [`encode_outcome_table`] column block; `None` on malformed
/// input (bad flag bits, or meeting fields not zero-filled where the flag
/// is off).
pub(crate) fn decode_outcome_table(d: &mut Dec<'_>) -> Option<Vec<SimOutcome>> {
    let len = d.usize()?;
    let flags = d.u8_vec(len)?;
    let global_round = d.u128_vec(len)?;
    let later_round = d.u128_vec(len)?;
    let node = d.u64_vec(len)?;
    let earlier_moves = d.u64_vec(len)?;
    let later_moves = d.u64_vec(len)?;
    let horizon = d.u128_vec(len)?;
    let mut table = Vec::with_capacity(len);
    for i in 0..len {
        if flags[i] & !0b111 != 0 {
            return None;
        }
        let meeting = if flags[i] & 1 != 0 {
            Some(Meeting {
                global_round: global_round[i],
                later_round: later_round[i],
                node: usize::try_from(node[i]).ok()?,
            })
        } else {
            if global_round[i] != 0 || later_round[i] != 0 || node[i] != 0 {
                return None;
            }
            None
        };
        table.push(SimOutcome {
            meeting,
            earlier_moves: earlier_moves[i],
            later_moves: later_moves[i],
            earlier_terminated: flags[i] & 0b10 != 0,
            later_terminated: flags[i] & 0b100 != 0,
            horizon: horizon[i],
        });
    }
    Some(table)
}

/// FNV-1a-64 fingerprint of an outcome table under a canonical per-entry
/// encoding — the cheap bit-identity check the CLI prints and CI diffs
/// (two tables share a fingerprint iff their encodings are byte-identical).
/// Deliberately **not** the on-disk column layout, so fingerprints stay
/// comparable across format versions.
pub fn table_fingerprint(table: &[SimOutcome]) -> u64 {
    let mut e = Enc::new();
    e.usize(table.len());
    for o in table {
        encode_outcome(&mut e, o);
    }
    fnv64(e.payload())
}

/// Streaming [`table_fingerprint`]: feed outcome chunks as they are
/// produced and never hold the table.  Seeded with the total entry count up
/// front (the count is the encoding's length prefix, and a streamed sweep
/// knows it before the first chunk: `classes × |δ|`), then fed each entry's
/// canonical encoding in slot order — [`TableFingerprinter::finish`] equals
/// `table_fingerprint(&concatenated_chunks)` exactly, which is what lets a
/// million-node streamed sweep print the same fingerprint a materialised
/// run would.
#[derive(Debug, Clone)]
pub struct TableFingerprinter {
    hash: u64,
    declared: usize,
    fed: usize,
}

impl TableFingerprinter {
    /// Start a fingerprint over exactly `len` upcoming entries.
    pub fn new(len: usize) -> Self {
        let mut f = TableFingerprinter { hash: 0xcbf29ce484222325, declared: len, fed: 0 };
        f.feed(&(len as u64).to_le_bytes());
        f
    }

    fn feed(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash ^= b as u64;
            self.hash = self.hash.wrapping_mul(0x100000001b3);
        }
    }

    /// Absorb the next chunk of outcomes, in slot order.
    pub fn extend(&mut self, outcomes: &[SimOutcome]) {
        let mut e = Enc::new();
        for o in outcomes {
            encode_outcome(&mut e, o);
        }
        self.feed(e.payload());
        self.fed += outcomes.len();
    }

    /// The fingerprint.  Panics if the fed entry count disagrees with the
    /// declared one — a miscounted stream would otherwise fingerprint a
    /// table nobody computed.
    pub fn finish(self) -> u64 {
        assert_eq!(
            self.fed, self.declared,
            "fingerprinted {} outcomes but {} were declared",
            self.fed, self.declared
        );
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{TempDir, Walker};
    use anonrv_graph::generators::{oriented_ring, oriented_torus};
    use anonrv_plan::PlannedSweep;
    use anonrv_sim::{EngineConfig, Stic};

    fn store_in(dir: &TempDir) -> Store {
        Store::open(&dir.0).unwrap()
    }

    #[test]
    fn orbits_round_trip_warm_after_cold() {
        let dir = TempDir::new("orbits");
        let store = store_in(&dir);
        let g = oriented_torus(3, 4).unwrap();
        let (cold, prov) = store.orbits(&g);
        assert_eq!(prov, Provenance::Cold);
        let (warm, prov) = store.orbits(&g);
        assert_eq!(prov, Provenance::Warm);
        assert_eq!(warm, cold);
        // a different graph never sees the artifact
        let other = oriented_ring(12).unwrap();
        assert!(store.load_orbits(&other).is_none());
    }

    #[test]
    fn corrupted_truncated_or_stale_orbit_files_fall_back_to_recompute() {
        let dir = TempDir::new("orbit-corruption");
        let store = store_in(&dir);
        let g = oriented_torus(3, 3).unwrap();
        let path = store.save_orbits(&g, &PairOrbits::compute(&g)).unwrap();
        let good = fs::read(&path).unwrap();
        assert!(store.load_orbits(&g).is_some());

        // flip one payload byte: checksum gate
        let mut corrupt = good.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x10;
        fs::write(&path, &corrupt).unwrap();
        assert!(store.load_orbits(&g).is_none());

        // truncate: length gate
        fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(store.load_orbits(&g).is_none());

        // bump the format version: version gate
        let mut stale = good.clone();
        stale[8] = stale[8].wrapping_add(1);
        fs::write(&path, &stale).unwrap();
        assert!(store.load_orbits(&g).is_none());

        // in every case `orbits` recovers by recomputing and rewriting
        let (recovered, prov) = store.orbits(&g);
        assert_eq!(prov, Provenance::Cold);
        assert_eq!(recovered, PairOrbits::compute(&g));
        assert_eq!(store.orbits(&g).1, Provenance::Warm);
    }

    #[test]
    fn forged_but_well_framed_permutations_are_rejected_by_validation() {
        let dir = TempDir::new("orbit-forgery");
        let store = store_in(&dir);
        let g = oriented_torus(3, 3).unwrap();
        // hand-craft a frame whose payload passes every codec gate but whose
        // permutations are not automorphisms of g
        let mut e = Enc::new();
        e.u128(g.canonical_hash());
        e.usize(g.num_nodes());
        e.usize(2);
        for v in 0..g.num_nodes() {
            e.u64(v as u64); // identity
        }
        for v in 0..g.num_nodes() {
            e.u64(((v + 1) % g.num_nodes()) as u64); // index shift: not an automorphism
        }
        let path = dir.0.join(format!("orbits-{:032x}.anrv", g.canonical_hash()));
        fs::write(&path, e.into_frame(Kind::Orbits)).unwrap();
        assert!(store.load_orbits(&g).is_none());
    }

    #[test]
    fn implicit_orbits_persist_as_a_constant_size_descriptor() {
        let dir = TempDir::new("implicit-orbits");
        let store = store_in(&dir);
        let g = oriented_torus(4, 5).unwrap();
        let orbits = PairOrbits::compute(&g);
        assert!(orbits.is_implicit());
        let path = store.save_orbits(&g, &orbits).unwrap();
        // the descriptor frame, not a permutation table: a fixed few dozen
        // bytes where 20 permutations × 20 nodes × 8 bytes would be 3.2 KB
        assert!(path.file_name().unwrap().to_string_lossy().starts_with("group-"));
        assert!(fs::read(&path).unwrap().len() < 128, "descriptor should be O(1) bytes");
        let warm = store.load_orbits(&g).expect("descriptor loads");
        assert!(warm.is_implicit());
        assert_eq!(warm, orbits);
    }

    #[test]
    fn forged_group_descriptors_are_rejected_by_generator_verification() {
        let dir = TempDir::new("group-forgery");
        let store = store_in(&dir);
        let g = oriented_torus(3, 3).unwrap();
        // well-framed, matching hash and n — but the claimed family is
        // cyclic, whose generator (+1 rotation) is not an automorphism of
        // the torus port labelling, so load-time verification must refuse
        let mut e = Enc::new();
        e.u128(g.canonical_hash());
        e.usize(g.num_nodes());
        e.u8(GROUP_TAG_CYCLIC);
        let path = dir.0.join(format!("group-{:032x}.anrv", g.canonical_hash()));
        fs::write(&path, e.into_frame(Kind::ImplicitOrbits)).unwrap();
        assert!(store.load_implicit_orbits(&g).is_none());
        // the full load path falls back to recompute, not to wrong data
        let (recovered, prov) = store.orbits(&g);
        assert_eq!(prov, Provenance::Cold);
        assert_eq!(recovered, PairOrbits::compute(&g));
    }

    #[test]
    fn legacy_explicit_orbit_frames_still_serve_stamped_graphs() {
        let dir = TempDir::new("legacy-orbits");
        let store = store_in(&dir);
        let g = oriented_ring(9).unwrap();
        // a pre-v5 cache holds only the explicit permutation frame
        let explicit = PairOrbits::compute_explicit(&g);
        let path = store.save_orbits(&g, &explicit).unwrap();
        assert!(path.file_name().unwrap().to_string_lossy().starts_with("orbits-"));
        let warm = store.load_orbits(&g).expect("explicit frame loads");
        assert!(!warm.is_implicit());
        assert_eq!(warm, explicit);
        // once an implicit descriptor lands next to it, the descriptor wins
        let implicit = PairOrbits::compute(&g);
        store.save_orbits(&g, &implicit).unwrap();
        assert!(store.load_orbits(&g).expect("descriptor loads").is_implicit());
    }

    #[test]
    fn streaming_fingerprinter_matches_the_one_shot_table_fingerprint() {
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 0x5EED };
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(64));
        let plan =
            anonrv_plan::SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1, 2, 5], 64);
        let table = planned.run(&plan).table().to_vec();
        let expect = table_fingerprint(&table);
        for chunk in [1usize, 3, 7, table.len()] {
            let mut f = TableFingerprinter::new(table.len());
            for block in table.chunks(chunk) {
                f.extend(block);
            }
            assert_eq!(f.finish(), expect, "chunk size {chunk} diverged");
        }
        // the empty table fingerprints consistently too
        assert_eq!(TableFingerprinter::new(0).finish(), table_fingerprint(&[]));
    }

    #[test]
    fn timelines_round_trip_and_warm_engines_answer_bit_identically() {
        let dir = TempDir::new("timelines");
        let store = store_in(&dir);
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 0x5EED };
        let key = "test-walker-5eed";

        // cold engine: run a few queries, then persist what was recorded
        let cold = SweepEngine::new(&g, &program, EngineConfig::batch(64));
        let queries: Vec<Stic> =
            vec![Stic::new(0, 5, 0), Stic::new(0, 5, 3), Stic::new(7, 2, 1), Stic::new(11, 3, 4)];
        let cold_outcomes: Vec<SimOutcome> = queries.iter().map(|s| cold.simulate(s)).collect();
        let persisted = store.persist_engine(&cold, key).unwrap();
        assert_eq!(persisted, cold.cache().computed());
        assert!(persisted > 0);

        // warm engine at the same horizon: every timeline is an exact hit
        let warm = SweepEngine::new(&g, &program, EngineConfig::batch(64));
        let warmed = store.warm_engine(&warm, key);
        assert_eq!((warmed.installed, warmed.prefix), (persisted, 0));
        let before = warm.cache().computed();
        let warm_outcomes: Vec<SimOutcome> = queries.iter().map(|s| warm.simulate(s)).collect();
        assert_eq!(warm_outcomes, cold_outcomes);
        assert_eq!(warm.cache().computed(), before, "warm queries recorded nothing new");

        // a *smaller* horizon is a prefix hit on every stored timeline ...
        let shorter = SweepEngine::new(&g, &program, EngineConfig::batch(20));
        let warmed = store.warm_engine(&shorter, key);
        assert_eq!((warmed.installed, warmed.prefix), (persisted, persisted));
        for stic in &queries {
            let direct = SweepEngine::new(&g, &program, EngineConfig::batch(20)).simulate(stic);
            assert_eq!(shorter.simulate(stic), direct, "prefix-served {stic} diverged");
        }
        // ... while a larger horizon and a different program key are misses
        let longer = SweepEngine::new(&g, &program, EngineConfig::batch(65));
        assert_eq!(store.warm_engine(&longer, key), WarmedTimelines::default());
        let other = SweepEngine::new(&g, &program, EngineConfig::batch(64));
        assert_eq!(store.warm_engine(&other, "different-key"), WarmedTimelines::default());

        // persisting again unions with what is on disk (here: no change)
        let repersisted = store.persist_engine(&warm, key).unwrap();
        assert_eq!(repersisted, persisted);
    }

    #[test]
    fn longer_recordings_supersede_shorter_ones_in_place_and_never_vice_versa() {
        let dir = TempDir::new("timeline-supersede");
        let store = store_in(&dir);
        let g = oriented_ring(8).unwrap();
        let program = Walker { seed: 7 };
        let key = "test-walker-7";

        // a short recording of node 0 lands on disk
        let short = SweepEngine::new(&g, &program, EngineConfig::batch(10));
        short.simulate(&Stic::new(0, 1, 0));
        store.persist_engine(&short, key).unwrap();
        let horizon_of = |u: NodeId| {
            store
                .load_timelines(&g, key)
                .unwrap()
                .into_iter()
                .find(|(node, _)| *node == u)
                .map(|(_, t)| t.recorded_horizon())
        };
        assert_eq!(horizon_of(0), Some(10));

        // a longer recording supersedes it in place (same artifact file)
        let long = SweepEngine::new(&g, &program, EngineConfig::batch(100));
        long.simulate(&Stic::new(0, 2, 1));
        store.persist_engine(&long, key).unwrap();
        assert_eq!(horizon_of(0), Some(100));
        assert_eq!(horizon_of(2), Some(100));

        // re-persisting the short engine does NOT claw the horizon back
        store.persist_engine(&short, key).unwrap();
        assert_eq!(horizon_of(0), Some(100), "a shorter recording must never supersede");
        assert_eq!(horizon_of(1), Some(10), "nodes only the short engine touched persist");
    }

    #[test]
    fn concurrent_persists_union_instead_of_last_writer_wins() {
        let dir = TempDir::new("concurrent-persist");
        let store = store_in(&dir);
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 3 };
        let key = "test-walker-3";
        // two "shard processes" record disjoint start nodes ...
        let a = SweepEngine::new(&g, &program, EngineConfig::batch(64));
        let b = SweepEngine::new(&g, &program, EngineConfig::batch(64));
        a.simulate(&Stic::new(0, 1, 0));
        b.simulate(&Stic::new(5, 6, 0));
        // ... and persist concurrently: the lock serialises the merges, so
        // both contributions survive in the shared artifact
        std::thread::scope(|scope| {
            let (store_a, store_b) = (&store, &store);
            let ta = scope.spawn(move || store_a.persist_engine(&a, key).unwrap());
            let tb = scope.spawn(move || store_b.persist_engine(&b, key).unwrap());
            ta.join().unwrap();
            tb.join().unwrap();
        });
        let persisted = store.load_timelines(&g, key).expect("artifact readable");
        let mut nodes: Vec<_> = persisted.iter().map(|(u, _)| *u).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 5, 6], "both shards' timelines must survive");
        // the lock file is cleaned up after both persists
        let leftovers: Vec<_> = fs::read_dir(&dir.0)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|name| name.ends_with(".lock"))
            .collect();
        assert!(leftovers.is_empty(), "stale lock files: {leftovers:?}");
    }

    #[test]
    fn older_format_versions_miss_and_a_fresh_write_supersedes_them() {
        let dir = TempDir::new("format-version");
        let store = store_in(&dir);
        let g = oriented_ring(6).unwrap();
        let program = Walker { seed: 9 };
        let key = "test-walker-9";
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(50));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1], 50);
        let outcomes = planned.run(&plan);
        store.save_plan_outcomes(&g, key, &plan, outcomes.table()).unwrap();
        store.persist_engine(planned.engine(), key).unwrap();

        // rewrite every artifact as a **checksum-valid older version**: the
        // version gate alone must turn them into misses (a v2 payload laid
        // out under v3 rules would decode garbage)
        for entry in fs::read_dir(&dir.0).unwrap() {
            let path = entry.unwrap().path();
            let mut bytes = fs::read(&path).unwrap();
            bytes[8..12].copy_from_slice(&2u32.to_le_bytes());
            let body = bytes.len() - 8;
            let sum = fnv64(&bytes[..body]).to_le_bytes();
            bytes[body..].copy_from_slice(&sum);
            fs::write(&path, bytes).unwrap();
        }
        assert!(store.load_plan_outcomes(&g, key, &plan).is_none());
        let served = SweepEngine::new(&g, &program, EngineConfig::batch(50));
        assert_eq!(store.warm_engine(&served, key).installed, 0);
        // the survey classifies them as invalid rather than refusing to run
        assert_eq!(store.stats().unwrap().invalid.files, 2);

        // the recompute path supersedes the stale files in place
        store.save_plan_outcomes(&g, key, &plan, outcomes.table()).unwrap();
        store.persist_engine(planned.engine(), key).unwrap();
        assert_eq!(store.load_plan_outcomes(&g, key, &plan), Some((outcomes.table().to_vec(), 50)));
        assert!(store.load_timelines(&g, key).is_some());
    }

    #[test]
    fn plan_outcome_tables_round_trip_prefix_serve_and_miss_on_plan_changes() {
        let dir = TempDir::new("outcomes");
        let store = store_in(&dir);
        let g = oriented_ring(8).unwrap();
        let program = Walker { seed: 7 };
        let key = "test-walker-7";
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(100));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 2, 5], 100);
        let outcomes = planned.run(&plan);
        store.save_plan_outcomes(&g, key, &plan, outcomes.table()).unwrap();
        assert_eq!(
            store.load_plan_outcomes(&g, key, &plan),
            Some((outcomes.table().to_vec(), 100))
        );
        // a *smaller* horizon is served by the same artifact (prefix hit)
        let shorter = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 2, 5], 40);
        assert_eq!(
            store.load_plan_outcomes(&g, key, &shorter),
            Some((outcomes.table().to_vec(), 100))
        );
        // saving the shorter table leaves the longer recording in place
        let shorter_outcomes = planned.run(&shorter);
        store.save_plan_outcomes(&g, key, &shorter, shorter_outcomes.table()).unwrap();
        assert_eq!(
            store.load_plan_outcomes(&g, key, &plan),
            Some((outcomes.table().to_vec(), 100)),
            "a shorter write must not supersede a longer recording"
        );
        // while a longer one supersedes in place
        let longer = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 2, 5], 100);
        let longer_outcomes = planned.run(&longer);
        store.save_plan_outcomes(&g, key, &longer, longer_outcomes.table()).unwrap();
        // a larger horizon than anything recorded, a different delta grid
        // and a different program key all miss
        let beyond = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 2, 5], 101);
        assert!(store.load_plan_outcomes(&g, key, &beyond).is_none());
        let other = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 2, 6], 100);
        assert!(store.load_plan_outcomes(&g, key, &other).is_none());
        assert!(store.load_plan_outcomes(&g, "other-key", &plan).is_none());
    }

    #[test]
    fn stats_and_gc_survey_and_compact_a_populated_cache() {
        let dir = TempDir::new("stats-gc");
        let store = store_in(&dir);
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 0x5EED };
        let key = "test-walker-5eed";
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(64));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1], 64);

        // populate: orbits, timelines, two shard partials, the merged table
        store.save_orbits(&g, planned.orbits()).unwrap();
        for index in 0..2 {
            let spec = crate::ShardSpec::new(2, index).unwrap();
            let classes = spec.classes(plan.orbits().num_pair_classes());
            let table = planned.run_classes(&plan, &classes);
            let part = crate::ShardOutcomes { spec, classes, table };
            store.save_shard(&g, key, &plan, &part).unwrap();
        }
        store.persist_engine(planned.engine(), key).unwrap();
        let merged = store.merge_shards(&g, key, &plan, 2).unwrap();
        store.save_plan_outcomes(&g, key, &plan, &merged).unwrap();
        // plus: a corrupt artifact, an orphan temp file, a stale lock — and
        // two FOREIGN files that merely look temp/lock-like, which gc must
        // never touch (an operator's notes, another tool's staging)
        let corrupt_path = dir.0.join("outcomes-feedfeedfeedfeed.anrv");
        fs::write(&corrupt_path, b"not a frame").unwrap();
        fs::write(dir.0.join("orbits-dead.anrv.tmp42"), b"leftover").unwrap();
        fs::write(dir.0.join("outcomes-beef.anrv.lock"), b"").unwrap();
        fs::write(dir.0.join("notes.tmp"), b"operator notes").unwrap();
        fs::write(dir.0.join("rsync-staging.lock"), b"").unwrap();

        let stats = store.stats().unwrap();
        assert_eq!(stats.orbits.files, 1);
        assert_eq!(stats.timelines.files, 1);
        assert_eq!(stats.outcomes.files, 1);
        assert_eq!(stats.shards.files, 2);
        assert_eq!(stats.invalid.files, 1);
        assert_eq!(stats.other.files, 4, "temp + lock + foreign files are surveyed as other");
        assert_eq!(stats.timeline_entries, planned.engine().cache().computed());
        assert_eq!(stats.recorded_horizons, vec![64]);
        assert!(stats.total_bytes() > 0);

        // gc: corrupt + superseded shards + own temp/lock go; valid artifacts
        // and foreign files stay
        let report = store.gc_with_min_age(std::time::Duration::ZERO).unwrap();
        assert_eq!(report.corrupt, 1);
        assert_eq!(report.superseded, 2, "merged table supersedes both partials");
        assert_eq!(report.temp, 1);
        assert_eq!(report.locks, 1);
        assert_eq!(report.removed_files, 5);
        assert!(report.reclaimed_bytes > 0);
        let after = store.stats().unwrap();
        assert_eq!(after.shards.files, 0);
        assert_eq!(after.invalid.files, 0);
        assert_eq!(after.other.files, 2, "foreign temp/lock-like files must survive gc");
        assert!(dir.0.join("notes.tmp").exists());
        assert!(dir.0.join("rsync-staging.lock").exists());
        assert_eq!(after.orbits.files + after.timelines.files + after.outcomes.files, 3);
        // the surviving artifacts still serve
        assert!(store.load_orbits(&g).is_some());
        assert_eq!(store.load_plan_outcomes(&g, key, &plan), Some((merged, 64)));
        // a second pass finds nothing to do
        assert_eq!(store.gc_with_min_age(std::time::Duration::ZERO).unwrap().removed_files, 0);
    }

    #[test]
    fn gc_keeps_shards_that_no_merged_table_covers() {
        let dir = TempDir::new("gc-live-shards");
        let store = store_in(&dir);
        let g = oriented_torus(3, 3).unwrap();
        let program = Walker { seed: 1 };
        let key = "test-walker-1";
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(32));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1], 32);
        let spec = crate::ShardSpec::new(2, 0).unwrap();
        let classes = spec.classes(plan.orbits().num_pair_classes());
        let table = planned.run_classes(&plan, &classes);
        store.save_shard(&g, key, &plan, &crate::ShardOutcomes { spec, classes, table }).unwrap();
        // no merged table yet: the partial is live work, not garbage
        assert_eq!(store.gc_with_min_age(std::time::Duration::ZERO).unwrap().removed_files, 0);
        assert!(store.load_shard(&g, key, &plan, spec).is_some());
        // a merged table at a *shorter* horizon does not cover it either
        let shorter = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1], 16);
        let shorter_table = planned.run(&shorter);
        store.save_plan_outcomes(&g, key, &shorter, shorter_table.table()).unwrap();
        assert_eq!(store.gc_with_min_age(std::time::Duration::ZERO).unwrap().superseded, 0);
        // one at the same horizon does
        let full = planned.run(&plan);
        store.save_plan_outcomes(&g, key, &plan, full.table()).unwrap();
        assert_eq!(store.gc_with_min_age(std::time::Duration::ZERO).unwrap().superseded, 1);
    }

    #[test]
    fn corruption_quarantines_with_a_reason_while_version_stale_stays_put() {
        let dir = TempDir::new("quarantine");
        let store = store_in(&dir);
        let g = oriented_torus(3, 3).unwrap();
        let path = store.save_orbits(&g, &PairOrbits::compute(&g)).unwrap();
        let good = fs::read(&path).unwrap();

        // corruption: the load degrades to a miss and the frame moves aside
        let mut corrupt = good.clone();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x10;
        fs::write(&path, &corrupt).unwrap();
        assert!(store.load_orbits(&g).is_none());
        assert!(!path.exists(), "the corrupt frame must move to quarantine/");
        let moved: Vec<PathBuf> = fs::read_dir(store.quarantine_dir())
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        let frame = moved
            .iter()
            .find(|p| p.extension().is_some_and(|x| x == "anrv"))
            .expect("quarantined frame");
        assert_eq!(fs::read(frame).unwrap(), corrupt, "quarantine must preserve the evidence");
        let sidecar = moved
            .iter()
            .find(|p| p.to_string_lossy().ends_with(".reason"))
            .expect("reason sidecar");
        let reason = fs::read_to_string(sidecar).unwrap();
        assert!(reason.contains("checksum-mismatch"), "{reason}");
        assert_eq!(store.stats().unwrap().quarantined.files, 1);

        // recompute-and-overwrite heals the cache
        let (recovered, prov) = store.orbits(&g);
        assert_eq!(prov, Provenance::Cold);
        assert_eq!(recovered, PairOrbits::compute(&g));

        // version-stale: superseded in place, never quarantined
        let mut stale = fs::read(&path).unwrap();
        stale[8] = stale[8].wrapping_add(1);
        fs::write(&path, &stale).unwrap();
        assert!(store.load_orbits(&g).is_none());
        assert!(path.exists(), "a version-stale frame is not corruption");
        assert_eq!(store.stats().unwrap().quarantined.files, 1, "still just the one");
    }

    #[test]
    fn stale_lock_takeover_admits_exactly_one_winner() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = TempDir::new("lock-race");
        let store = store_in(&dir);
        let artifact = dir.0.join("timelines-cafe.anrv");
        let lock = artifact.with_extension("lock");
        // plant the lock a long-dead process left behind
        fs::write(&lock, b"pid 999999 at unix 0").unwrap();
        let old = std::time::SystemTime::now() - std::time::Duration::from_secs(120);
        fs::File::options().write(true).open(&lock).unwrap().set_modified(old).unwrap();

        let inside = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let entered = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    store
                        .with_lock(&artifact, || {
                            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
                            peak.fetch_max(now, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            inside.fetch_sub(1, Ordering::SeqCst);
                            entered.fetch_add(1, Ordering::SeqCst);
                            Ok(())
                        })
                        .unwrap();
                });
            }
        });
        assert_eq!(entered.load(Ordering::SeqCst), 8, "every waiter eventually runs");
        assert_eq!(
            peak.load(Ordering::SeqCst),
            1,
            "two holders overlapped: the takeover double-admitted"
        );
        assert!(!lock.exists(), "the last holder cleans up");
        let leftovers: Vec<String> = fs::read_dir(&dir.0)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.contains("takeover"))
            .collect();
        assert!(leftovers.is_empty(), "takeover debris survived: {leftovers:?}");
    }

    #[test]
    fn fsck_verdicts_cover_valid_stale_and_corrupt_and_repair_quarantines() {
        let dir = TempDir::new("fsck");
        let store = store_in(&dir);
        let g = oriented_torus(3, 4).unwrap();
        let program = Walker { seed: 0x5EED };
        let key = "test-walker-5eed";
        let planned = PlannedSweep::new(&g, &program, EngineConfig::batch(32));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 1], 32);
        let orbits_path = store.save_orbits(&g, planned.orbits()).unwrap();
        let outcomes = planned.run(&plan);
        store.persist_engine(planned.engine(), key).unwrap();
        let outcomes_path = store.save_plan_outcomes(&g, key, &plan, outcomes.table()).unwrap();

        // pristine: every artifact checks out, nothing moves
        let clean = store.fsck(false).unwrap();
        assert_eq!((clean.valid, clean.stale, clean.corrupt, clean.quarantined), (3, 0, 0, 0));
        assert!(clean.entries.iter().all(|e| e.verdict == FsckVerdict::Valid));

        // flip one byte deep in the outcomes payload, bump the version byte
        // of the orbits frame: one corrupt, one stale
        let mut bytes = fs::read(&outcomes_path).unwrap();
        let at = bytes.len() - 20;
        bytes[at] ^= 0x01;
        fs::write(&outcomes_path, &bytes).unwrap();
        let mut stale = fs::read(&orbits_path).unwrap();
        stale[8] = stale[8].wrapping_add(1);
        fs::write(&orbits_path, &stale).unwrap();

        let found = store.fsck(false).unwrap();
        assert_eq!((found.valid, found.stale, found.corrupt, found.quarantined), (1, 1, 1, 0));
        assert!(outcomes_path.exists(), "a plain fsck must not move files");
        let corrupt_entry =
            found.entries.iter().find(|e| matches!(e.verdict, FsckVerdict::Corrupt(_))).unwrap();
        assert!(!corrupt_entry.quarantined);

        // --repair: the corrupt frame moves aside, the stale one stays for
        // gc (it is the expected after-image of a format bump, not damage)
        let repaired = store.fsck(true).unwrap();
        assert_eq!((repaired.corrupt, repaired.quarantined), (1, 1));
        assert!(!outcomes_path.exists(), "repair quarantines corruption");
        assert!(orbits_path.exists(), "repair leaves version-stale frames in place");
        assert_eq!(store.stats().unwrap().quarantined.files, 1);

        // a forged frame — well-framed but with trailing garbage — is
        // structural corruption only a full-depth verify catches
        let mut e = Enc::new();
        e.u128(g.canonical_hash());
        e.usize(g.num_nodes());
        e.usize(0);
        e.u64(0xDEAD); // trailing garbage after a valid empty group
        fs::write(
            dir.0.join("orbits-0000000000000000000000000000feed.anrv"),
            e.into_frame(Kind::Orbits),
        )
        .unwrap();
        let forged = store.fsck(false).unwrap();
        assert!(
            forged.entries.iter().any(|e| match &e.verdict {
                FsckVerdict::Corrupt(reason) => reason.contains("trailing-garbage"),
                _ => false,
            }),
            "{:?}",
            forged.entries
        );
    }

    #[test]
    fn outcome_codec_round_trips_every_field_shape_and_fingerprints_differ() {
        let samples = [
            SimOutcome {
                meeting: Some(Meeting { global_round: u128::MAX - 3, later_round: 7, node: 11 }),
                earlier_moves: 5,
                later_moves: u64::MAX,
                earlier_terminated: true,
                later_terminated: false,
                horizon: u128::MAX,
            },
            SimOutcome {
                meeting: None,
                earlier_moves: 0,
                later_moves: 0,
                earlier_terminated: false,
                later_terminated: true,
                horizon: 64,
            },
        ];
        for o in samples {
            let mut e = Enc::new();
            encode_outcome(&mut e, &o);
            let bytes = e.into_frame(Kind::Outcomes);
            let mut d = unframe(Kind::Outcomes, &bytes).unwrap();
            assert_eq!(decode_outcome(&mut d), Some(o));
            assert!(d.exhausted());
        }
        assert_eq!(table_fingerprint(&samples), table_fingerprint(samples.as_ref()));
        assert_ne!(table_fingerprint(&samples), table_fingerprint(&samples[..1]));
        assert_ne!(table_fingerprint(&samples[..1]), table_fingerprint(&samples[1..]));
    }
}
