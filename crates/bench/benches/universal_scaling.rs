//! EXP-P41 bench: full `UniversalRV` runs at increasing (n, delta) — the
//! Proposition 4.1 growth curve, timed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use anonrv_bench::{expect_met, run_universal};
use anonrv_graph::generators::oriented_ring;
use anonrv_sim::Stic;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("universal_scaling");
    group.sample_size(10);
    for n in [4usize, 5, 6] {
        let ring = oriented_ring(n).unwrap();
        group.bench_with_input(BenchmarkId::new("ring adjacent pair, delta=1", n), &n, |b, _| {
            b.iter(|| expect_met(&run_universal(black_box(&ring), Stic::new(0, 1, 1), 1, 1)))
        });
    }
    let ring4 = oriented_ring(4).unwrap();
    for delta in [1u128, 2, 3] {
        group.bench_with_input(
            BenchmarkId::new("ring-4 adjacent pair, growing delta", delta as u64),
            &delta,
            |b, &delta| {
                b.iter(|| {
                    expect_met(&run_universal(black_box(&ring4), Stic::new(0, 1, delta), 1, delta))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
