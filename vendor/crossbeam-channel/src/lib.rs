//! Offline stand-in for `crossbeam-channel` (see `vendor/README.md`),
//! backed by [`std::sync::mpsc::sync_channel`].  Provides exactly the
//! bounded-channel subset the simulation engine uses: blocking `send`,
//! blocking `recv`, clonable senders, and disconnect errors when the other
//! side is dropped.

use std::sync::mpsc;

/// Sending half of a bounded channel.
pub struct Sender<T>(mpsc::SyncSender<T>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender(self.0.clone())
    }
}

/// Receiving half of a bounded channel.
pub struct Receiver<T>(mpsc::Receiver<T>);

/// The channel is disconnected (all receivers dropped); returns the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The channel is disconnected (all senders dropped) and empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Create a bounded channel with capacity `cap` (0 = rendezvous channel).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (Sender(tx), Receiver(rx))
}

impl<T> Sender<T> {
    /// Block until the message is enqueued; error if the receiver is gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives; error once the channel is empty and
    /// every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.0.recv().map_err(|_| RecvError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_capacity() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn disconnects_are_reported() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
        let (tx2, rx2) = bounded::<u32>(1);
        tx2.send(5).unwrap();
        drop(tx2);
        assert_eq!(rx2.recv(), Ok(5));
        assert_eq!(rx2.recv(), Err(RecvError));
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = bounded::<usize>(4);
        std::thread::scope(|scope| {
            let tx2 = tx.clone();
            scope.spawn(move || {
                for i in 0..100 {
                    tx2.send(i).unwrap();
                }
            });
            drop(tx);
            let mut sum = 0;
            while let Ok(v) = rx.recv() {
                sum += v;
            }
            assert_eq!(sum, 4950);
        });
    }
}
