//! The on-disk frame and the primitive binary codec every store artifact
//! shares.
//!
//! Each cache file is one *frame*:
//!
//! ```text
//! magic "ANRVSTOR" (8) | format version u32 | kind u8 | payload length u64
//! | payload bytes | FNV-1a-64 checksum of everything before it (u64)
//! ```
//!
//! All integers are little-endian.  The frame gives every artifact the same
//! three integrity gates, checked in order on load:
//!
//! 1. **magic + version** — a file written by a different format revision is
//!    *invalidated* (treated as a miss, then overwritten by the recompute),
//!    never partially interpreted;
//! 2. **length** — a truncated or padded file can never cause a read past
//!    the payload;
//! 3. **checksum** — random corruption inside the payload is caught before
//!    any value is decoded.
//!
//! Beyond the frame, every payload embeds the *identity* of what it caches
//! (graph hash, program key, horizon, ...) and the loader verifies that
//! identity against the query — a filename-hash collision therefore degrades
//! to a miss, never to wrong data being served.  The codec is deliberately
//! hand-rolled: the store's value types live in `anonrv-sim` / `anonrv-plan`
//! (which stay serde-free), `u128` round counters need exact framing, and
//! the whole format fits in this one auditable module.

/// File magic: identifies an anonrv store artifact.
pub(crate) const MAGIC: [u8; 8] = *b"ANRVSTOR";

/// Current format version.  Bump on any layout change: old files then fail
/// the version gate and are transparently recomputed and rewritten.
/// Version 2: horizon-generic keying — timelines carry a per-entry recorded
/// horizon, outcome/shard payloads embed theirs after the (horizon-free)
/// plan identity.
pub(crate) const FORMAT_VERSION: u32 = 2;

/// Artifact kind tags (one per payload layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    /// Automorphism permutations (a [`anonrv_plan::PairOrbits`] seed).
    Orbits = 1,
    /// Recorded trajectory timelines of one `(graph, program, horizon)`.
    Timelines = 2,
    /// A full representative-outcome table of one executed sweep plan.
    Outcomes = 3,
    /// A partial outcome table produced by one shard of a sweep plan.
    Shard = 4,
}

/// 64-bit FNV-1a over a byte slice (the frame checksum and the filename
/// key hash).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Append-only payload encoder.
pub(crate) struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    pub(crate) fn new() -> Self {
        Enc { buf: Vec::new() }
    }

    pub(crate) fn u8(&mut self, x: u8) {
        self.buf.push(x);
    }

    pub(crate) fn u64(&mut self, x: u64) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub(crate) fn u128(&mut self, x: u128) {
        self.buf.extend_from_slice(&x.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, x: usize) {
        self.u64(x as u64);
    }

    pub(crate) fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// The raw payload accumulated so far (fingerprinting without framing).
    pub(crate) fn payload(&self) -> &[u8] {
        &self.buf
    }

    /// Wrap the accumulated payload in a checksummed frame.
    pub(crate) fn into_frame(self, kind: Kind) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len() + 29);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.push(kind as u8);
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.buf);
        let checksum = fnv64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
}

/// Bounds-checked payload decoder.  Every read returns `None` past the end,
/// so a malformed payload can never panic the loader.
pub(crate) struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decode over a bare (already unframed) payload slice.
    pub(crate) fn over(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }

    /// The full payload this decoder reads (hand-off between the framing
    /// gate and payload-peeking helpers).
    pub(crate) fn into_payload(self) -> &'a [u8] {
        self.data
    }

    fn take(&mut self, len: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(len)?;
        let slice = self.data.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    pub(crate) fn u128(&mut self) -> Option<u128> {
        self.take(16).map(|s| u128::from_le_bytes(s.try_into().expect("16 bytes")))
    }

    pub(crate) fn usize(&mut self) -> Option<usize> {
        self.u64().and_then(|x| usize::try_from(x).ok())
    }

    /// A length-prefixed UTF-8 string.
    pub(crate) fn str(&mut self) -> Option<String> {
        let len = self.usize()?;
        // lengths beyond the remaining payload are malformed, not huge
        if len > self.data.len() - self.pos {
            return None;
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// `true` iff the whole payload was consumed (trailing garbage is
    /// rejected by loaders that call this).
    pub(crate) fn exhausted(&self) -> bool {
        self.pos == self.data.len()
    }
}

/// Validate a frame of the expected `kind` and hand back its payload, or
/// `None` when any integrity gate fails (magic, version, kind, length,
/// checksum).
pub(crate) fn unframe(kind: Kind, bytes: &[u8]) -> Option<Dec<'_>> {
    // magic(8) + version(4) + kind(1) + len(8) .. payload .. checksum(8)
    const HEADER: usize = 8 + 4 + 1 + 8;
    if bytes.len() < HEADER + 8 {
        return None;
    }
    if bytes[..8] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return None;
    }
    if bytes[12] != kind as u8 {
        return None;
    }
    let payload_len = u64::from_le_bytes(bytes[13..21].try_into().expect("8 bytes")) as usize;
    if bytes.len() != HEADER + payload_len + 8 {
        return None;
    }
    let body = &bytes[..HEADER + payload_len];
    let stored = u64::from_le_bytes(bytes[HEADER + payload_len..].try_into().expect("8 bytes"));
    if fnv64(body) != stored {
        return None;
    }
    Some(Dec { data: &bytes[HEADER..HEADER + payload_len], pos: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Vec<u8> {
        let mut e = Enc::new();
        e.u8(7);
        e.u64(42);
        e.u128(u128::MAX - 1);
        e.str("walker-0x5eed");
        e.into_frame(Kind::Orbits)
    }

    #[test]
    fn frames_round_trip() {
        let bytes = sample_frame();
        let mut d = unframe(Kind::Orbits, &bytes).expect("valid frame");
        assert_eq!(d.u8(), Some(7));
        assert_eq!(d.u64(), Some(42));
        assert_eq!(d.u128(), Some(u128::MAX - 1));
        assert_eq!(d.str().as_deref(), Some("walker-0x5eed"));
        assert!(d.exhausted());
    }

    #[test]
    fn every_integrity_gate_rejects() {
        let good = sample_frame();
        // wrong kind
        assert!(unframe(Kind::Timelines, &good).is_none());
        // bad magic
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(unframe(Kind::Orbits, &bad).is_none());
        // version mismatch
        let mut bad = good.clone();
        bad[8] = bad[8].wrapping_add(1);
        assert!(unframe(Kind::Orbits, &bad).is_none());
        // truncation (any prefix)
        for cut in 0..good.len() {
            assert!(unframe(Kind::Orbits, &good[..cut]).is_none(), "prefix {cut} accepted");
        }
        // trailing garbage
        let mut bad = good.clone();
        bad.push(0);
        assert!(unframe(Kind::Orbits, &bad).is_none());
        // single-byte corruption anywhere in the payload or checksum
        for i in 21..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(unframe(Kind::Orbits, &bad).is_none(), "corrupt byte {i} accepted");
        }
    }

    #[test]
    fn decoder_reads_never_run_past_the_payload() {
        let mut e = Enc::new();
        e.u64(1);
        let bytes = e.into_frame(Kind::Shard);
        let mut d = unframe(Kind::Shard, &bytes).unwrap();
        assert_eq!(d.u64(), Some(1));
        assert_eq!(d.u64(), None);
        assert_eq!(d.u8(), None);
        assert_eq!(d.u128(), None);
        assert!(d.str().is_none());
        // a declared string length far beyond the payload is malformed
        let mut e = Enc::new();
        e.u64(u64::MAX);
        let bytes = e.into_frame(Kind::Shard);
        let mut d = unframe(Kind::Shard, &bytes).unwrap();
        assert!(d.str().is_none());
    }
}
