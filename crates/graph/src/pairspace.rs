//! Flat product-space (“pair graph”) engine behind `Shrink`.
//!
//! The pair graph of a port-labelled graph `G` with `n` nodes has one state
//! per **ordered pair** `(a, b)` of nodes (indexed flat as `a·n + b`), and a
//! transition `(a, b) → (succ(a, p), succ(b, p))` for every port
//! `p < min(deg a, deg b)` — the moves available to two agents blindly
//! copying each other, which is exactly the situation of identical
//! deterministic agents started on symmetric nodes.  `Shrink(u, v)`
//! (Definition 3.1) is the minimum of `dist(a, b)` over the pair states
//! reachable from `(u, v)`.
//!
//! This module replaces the per-pair `HashMap`-backed BFS previously used by
//! [`crate::shrink`] with dense flat tables:
//!
//! * [`ShrinkEngine::new`] precomputes the full `n × n` distance matrix as a
//!   flat `Vec<u32>` plus a CSR copy of the successor tables —
//!   `O(n·(n + m))` time, `O(n²)` memory — shared by every subsequent query;
//! * [`ShrinkEngine::shrink`] / [`ShrinkEngine::shrink_detailed`] answer a
//!   single-pair query with a flat-array BFS over the reachable pair states
//!   (`O(n²·Δ)` worst case, allocation-light, with witness reconstruction);
//! * [`ShrinkEngine::all_pairs`] computes `Shrink` for **all n² ordered
//!   pairs in one pass**: pair states are bucketed by `dist(a, b)` and the
//!   buckets are swept in ascending order, propagating each value backwards
//!   over the *reversed* product edges.  A state is finalised the first time
//!   the sweep reaches it, so every product edge is relaxed exactly once and
//!   the whole computation is `O(n²·Δ)` — the same asymptotic cost the old
//!   code paid for a *single* unlucky pair, and `n²/2` times cheaper than
//!   the old all-pairs path.
//!
//! Correctness of the sweep: let `S(x) = min { dist(y) : y reachable from
//! x }` (so `Shrink(u, v) = S(u·n + v)`).  Sweeping values `t = 0, 1, ...`
//! in order, the reverse-BFS started from the (still unfinalised) states
//! with `dist = t` reaches exactly the unfinalised states that can reach a
//! `dist = t` state; any state with a smaller reachable value was finalised
//! in an earlier bucket, so the first value that reaches a state is its
//! minimum.

use std::collections::VecDeque;

use crate::distance::bfs_distances;
use crate::graph::{NodeId, PortGraph};
use crate::shrink::ShrinkResult;

/// Sentinel for “not yet reached” in the flat tables.
const UNSET: u32 = u32::MAX;

/// `Shrink(u, v)` for every ordered pair of a graph, as a flat matrix.
///
/// Produced by [`ShrinkEngine::all_pairs`]; `get` is O(1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllPairsShrink {
    n: usize,
    values: Vec<u32>,
}

impl AllPairsShrink {
    /// Number of nodes of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// `Shrink(u, v)`.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range.
    #[inline]
    pub fn get(&self, u: NodeId, v: NodeId) -> usize {
        assert!(u < self.n && v < self.n, "node out of range");
        self.values[u * self.n + v] as usize
    }
}

/// Batch `Shrink` solver over a dense copy of one graph.
///
/// Construction cost is `O(n·(n + m))` (one BFS per node for the distance
/// matrix); it is repaid as soon as more than one pair is queried, and the
/// one-pass [`ShrinkEngine::all_pairs`] sweep amortises it over all `n²`
/// pairs at once.
pub struct ShrinkEngine {
    n: usize,
    /// Flat distance matrix: `dist[a·n + b] = dist(a, b)`.
    dist: Vec<u32>,
    /// CSR successor tables: the neighbours of `v` (by port order) are
    /// `succ[deg_offset[v] .. deg_offset[v + 1]]`.
    deg_offset: Vec<u32>,
    succ: Vec<u32>,
}

impl ShrinkEngine {
    /// Build the engine for `g`.
    ///
    /// Node counts are limited to `u32` index space (`n ≤ 65535` keeps the
    /// `n²` pair index within `u32`), far beyond the sizes a quadratic
    /// distance matrix is sensible for anyway.
    pub fn new(g: &PortGraph) -> Self {
        let n = g.num_nodes();
        assert!(n <= u16::MAX as usize, "pair-space engine supports up to 65535 nodes");
        let mut dist = Vec::with_capacity(n * n);
        for v in 0..n {
            let row = bfs_distances(g, v);
            dist.extend(row.into_iter().map(|d| d as u32));
        }
        let mut deg_offset = Vec::with_capacity(n + 1);
        let mut succ = Vec::new();
        deg_offset.push(0u32);
        for v in 0..n {
            for p in 0..g.degree(v) {
                succ.push(g.succ(v, p).0 as u32);
            }
            deg_offset.push(succ.len() as u32);
        }
        ShrinkEngine { n, dist, deg_offset, succ }
    }

    /// Number of nodes of the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Graph distance `dist(a, b)` from the precomputed flat matrix.
    #[inline]
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.dist[a * self.n + b] as usize
    }

    #[inline]
    fn degree(&self, v: usize) -> usize {
        (self.deg_offset[v + 1] - self.deg_offset[v]) as usize
    }

    /// Successors of pair state `(a, b)`: the common-port transitions.
    #[inline]
    fn pair_successors(&self, a: usize, b: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let ports = self.degree(a).min(self.degree(b));
        let oa = self.deg_offset[a] as usize;
        let ob = self.deg_offset[b] as usize;
        (0..ports).map(move |p| (self.succ[oa + p] as usize, self.succ[ob + p] as usize))
    }

    /// Total number of product-graph edges, `Σ_{a,b} min(deg a, deg b)`,
    /// computed from the sorted degree sequence (each sorted position `i` is
    /// the minimum for the `2·(n−1−i) + 1` ordered pairs whose other
    /// coordinate sorts at or after it).
    fn num_product_edges(&self) -> u128 {
        let mut degs: Vec<u128> = (0..self.n).map(|v| self.degree(v) as u128).collect();
        degs.sort_unstable();
        let n = self.n as u128;
        degs.iter().enumerate().map(|(i, &d)| d * (2 * (n - 1 - i as u128) + 1)).sum()
    }

    /// `Shrink(u, v)` for **every ordered pair** in one `O(n²·Δ)` sweep.
    ///
    /// # Panics
    /// Panics if the product graph has more than `u32::MAX` edges (only
    /// reachable far beyond the sizes the quadratic distance matrix is
    /// practical for) — the CSR offsets are kept in `u32` to halve the
    /// sweep's memory traffic, and overflowing them must be loud, not a
    /// silently corrupt table.
    pub fn all_pairs(&self) -> AllPairsShrink {
        let n = self.n;
        let nn = n * n;
        assert!(
            self.num_product_edges() <= u32::MAX as u128,
            "product graph exceeds u32 edge index space"
        );

        // Reversed product edges in CSR form.  Pass 1 counts the in-degree of
        // every pair state, pass 2 fills the predecessor lists.
        let mut rev_offset = vec![0u32; nn + 1];
        for a in 0..n {
            for b in 0..n {
                for (a2, b2) in self.pair_successors(a, b) {
                    rev_offset[a2 * n + b2 + 1] += 1;
                }
            }
        }
        for i in 0..nn {
            rev_offset[i + 1] += rev_offset[i];
        }
        let mut rev_edges = vec![0u32; rev_offset[nn] as usize];
        let mut cursor: Vec<u32> = rev_offset[..nn].to_vec();
        for a in 0..n {
            for b in 0..n {
                let k = (a * n + b) as u32;
                for (a2, b2) in self.pair_successors(a, b) {
                    let slot = &mut cursor[a2 * n + b2];
                    rev_edges[*slot as usize] = k;
                    *slot += 1;
                }
            }
        }

        // Bucket pair states by dist(a, b) (counting sort).
        let max_d = self.dist.iter().copied().max().unwrap_or(0) as usize;
        let mut bucket_offset = vec![0u32; max_d + 2];
        for &d in &self.dist {
            bucket_offset[d as usize + 1] += 1;
        }
        for t in 0..=max_d {
            bucket_offset[t + 1] += bucket_offset[t];
        }
        let mut buckets = vec![0u32; nn];
        let mut bcursor: Vec<u32> = bucket_offset[..=max_d].to_vec();
        for (k, &d) in self.dist.iter().enumerate() {
            let slot = &mut bcursor[d as usize];
            buckets[*slot as usize] = k as u32;
            *slot += 1;
        }

        // Ascending-value sweep with reverse propagation.
        let mut values = vec![UNSET; nn];
        let mut stack: Vec<u32> = Vec::new();
        for t in 0..=max_d {
            let lo = bucket_offset[t] as usize;
            let hi = bucket_offset[t + 1] as usize;
            for &k in &buckets[lo..hi] {
                if values[k as usize] == UNSET {
                    values[k as usize] = t as u32;
                    stack.push(k);
                }
            }
            while let Some(x) = stack.pop() {
                let lo = rev_offset[x as usize] as usize;
                let hi = rev_offset[x as usize + 1] as usize;
                for &y in &rev_edges[lo..hi] {
                    if values[y as usize] == UNSET {
                        values[y as usize] = t as u32;
                        stack.push(y);
                    }
                }
            }
        }
        debug_assert!(values.iter().all(|&v| v != UNSET), "every pair state has a distance");

        AllPairsShrink { n, values }
    }

    /// Single-pair `Shrink(u, v)` (forward flat BFS, stopping early when the
    /// global minimum `0` is reached).
    pub fn shrink(&self, u: NodeId, v: NodeId) -> usize {
        self.search(u, v, usize::MAX, false).expect("unbounded search always completes").shrink
    }

    /// Single-pair query with an exploration budget: gives up (returning
    /// `None`) after more than `max_pairs` pair states have been expanded.
    pub fn shrink_bounded(&self, u: NodeId, v: NodeId, max_pairs: usize) -> Option<usize> {
        self.search(u, v, max_pairs, false).map(|r| r.shrink)
    }

    /// Full single-pair computation with a witness port sequence realising
    /// the minimum.  `None` only when the `max_pairs` budget is exhausted.
    pub fn shrink_detailed(&self, u: NodeId, v: NodeId, max_pairs: usize) -> Option<ShrinkResult> {
        self.search(u, v, max_pairs, true)
    }

    fn search(
        &self,
        u: NodeId,
        v: NodeId,
        max_pairs: usize,
        want_witness: bool,
    ) -> Option<ShrinkResult> {
        let n = self.n;
        assert!(u < n && v < n, "node out of range");
        if u == v {
            return Some(ShrinkResult {
                shrink: 0,
                witness: Vec::new(),
                closest_pair: (u, u),
                explored_pairs: 1,
            });
        }
        let start = (u * n + v) as u32;
        // `parent[k]` doubles as the visited marker; for the start state it
        // holds itself (the reconstruction loop stops there).
        let mut parent = vec![UNSET; n * n];
        let mut port_used = if want_witness { vec![0u32; n * n] } else { Vec::new() };
        parent[start as usize] = start;
        let mut queue = VecDeque::new();
        queue.push_back(start);

        let mut best = self.dist[start as usize];
        let mut best_key = start;
        let mut explored = 0usize;

        'bfs: while let Some(k) = queue.pop_front() {
            explored += 1;
            if best == 0 {
                break;
            }
            if explored > max_pairs {
                return None;
            }
            let (a, b) = ((k as usize) / n, (k as usize) % n);
            for (p, (a2, b2)) in self.pair_successors(a, b).enumerate() {
                let k2 = (a2 * n + b2) as u32;
                if parent[k2 as usize] == UNSET {
                    parent[k2 as usize] = k;
                    if want_witness {
                        port_used[k2 as usize] = p as u32;
                    }
                    let d = self.dist[k2 as usize];
                    if d < best {
                        best = d;
                        best_key = k2;
                        if best == 0 {
                            // the global minimum; stop expanding immediately
                            break 'bfs;
                        }
                    }
                    queue.push_back(k2);
                }
            }
        }

        let mut witness = Vec::new();
        if want_witness {
            let mut cur = best_key;
            while cur != start {
                witness.push(port_used[cur as usize] as usize);
                cur = parent[cur as usize];
            }
            witness.reverse();
        }
        let closest = best_key as usize;
        Some(ShrinkResult {
            shrink: best as usize,
            witness,
            closest_pair: (closest / n, closest % n),
            explored_pairs: explored,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::distance;
    use crate::generators::{
        hypercube, lollipop, oriented_ring, oriented_torus, path, random_connected,
        symmetric_double_tree,
    };
    use crate::shrink::{shrink_brute_force, shrink_reference_bfs};

    fn engine_matches_reference(g: &PortGraph) {
        let engine = ShrinkEngine::new(g);
        let all = engine.all_pairs();
        for u in g.nodes() {
            for v in g.nodes() {
                let reference = shrink_reference_bfs(g, u, v);
                assert_eq!(all.get(u, v), reference, "all_pairs vs reference on ({u},{v})");
                assert_eq!(engine.shrink(u, v), reference, "single-pair vs reference on ({u},{v})");
            }
        }
    }

    #[test]
    fn all_pairs_matches_the_reference_bfs_on_every_family() {
        for g in [
            oriented_ring(7).unwrap(),
            oriented_torus(3, 4).unwrap(),
            hypercube(3).unwrap(),
            path(6).unwrap(),
            lollipop(4, 3).unwrap(),
            symmetric_double_tree(2, 3).unwrap().0,
            random_connected(9, 5, 11).unwrap(),
            random_connected(10, 0, 3).unwrap(),
        ] {
            engine_matches_reference(&g);
        }
    }

    #[test]
    fn all_pairs_is_symmetric_and_zero_exactly_on_the_diagonal_of_symmetric_families() {
        let g = oriented_torus(4, 4).unwrap();
        let all = ShrinkEngine::new(&g).all_pairs();
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(all.get(u, v), all.get(v, u));
                assert_eq!(all.get(u, v) == 0, u == v);
                assert!(all.get(u, v) <= distance(&g, u, v));
            }
        }
    }

    #[test]
    fn brute_force_agrees_where_its_horizon_suffices() {
        for g in [oriented_ring(5).unwrap(), path(5).unwrap(), hypercube(3).unwrap()] {
            let engine = ShrinkEngine::new(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    let detailed = engine.shrink_detailed(u, v, usize::MAX).unwrap();
                    if detailed.witness.len() <= 6 {
                        assert_eq!(detailed.shrink, shrink_brute_force(&g, u, v, 6), "({u},{v})");
                    }
                }
            }
        }
    }

    #[test]
    fn witnesses_realise_the_reported_value() {
        use crate::traversal::apply_ports_end;
        let (g, mirror) = symmetric_double_tree(2, 3).unwrap();
        let engine = ShrinkEngine::new(&g);
        for v in g.nodes() {
            let m = mirror[v];
            if m == v {
                continue;
            }
            let r = engine.shrink_detailed(v, m, usize::MAX).unwrap();
            let a = apply_ports_end(&g, v, &r.witness).unwrap();
            let b = apply_ports_end(&g, m, &r.witness).unwrap();
            assert_eq!(distance(&g, a, b), r.shrink);
            assert_eq!((a, b), r.closest_pair);
        }
    }

    #[test]
    fn bounded_search_budget_is_respected() {
        let g = oriented_torus(5, 5).unwrap();
        let engine = ShrinkEngine::new(&g);
        assert_eq!(engine.shrink_bounded(0, 12, 1), None);
        assert!(engine.shrink_bounded(0, 12, 100_000).is_some());
    }

    #[test]
    fn merging_pairs_shrink_to_zero() {
        // On a path, port 0 from both endpoints of a length-2 segment merges
        // the two agents: Shrink can genuinely reach 0 for distinct
        // (nonsymmetric) nodes, and the engine must report it.
        let g = path(3).unwrap();
        let engine = ShrinkEngine::new(&g);
        assert_eq!(engine.shrink(0, 2), 0);
        assert_eq!(engine.all_pairs().get(0, 2), 0);
    }

    #[test]
    fn product_edge_count_matches_the_direct_double_loop() {
        for g in [lollipop(4, 3).unwrap(), path(5).unwrap(), oriented_torus(3, 4).unwrap()] {
            let engine = ShrinkEngine::new(&g);
            let mut direct = 0u128;
            for a in g.nodes() {
                for b in g.nodes() {
                    direct += g.degree(a).min(g.degree(b)) as u128;
                }
            }
            assert_eq!(engine.num_product_edges(), direct);
        }
    }

    #[test]
    fn distance_matrix_is_exposed_flat() {
        let g = oriented_ring(6).unwrap();
        let engine = ShrinkEngine::new(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(engine.distance(u, v), distance(&g, u, v));
            }
        }
    }
}
