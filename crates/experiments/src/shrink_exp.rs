//! EXP-SHRINK — the Section 3 examples around `Shrink(u, v)`
//! (Definition 3.1).
//!
//! The paper illustrates the definition with two extreme families:
//!
//! * in an **oriented torus** (and, likewise, an oriented ring) every pair of
//!   nodes is symmetric and `Shrink(u, v)` *equals* the distance between `u`
//!   and `v` — applying a common port sequence translates both agents rigidly;
//! * in a **symmetric double tree** (two port-preserving isomorphic trees
//!   joined by a central edge) `Shrink(u, v) = 1` for every symmetric pair,
//!   however far apart the nodes are — `Shrink` can really shrink the
//!   distance.
//!
//! The experiment sweeps the symmetric workloads, computes `Shrink` for a
//! selection of symmetric pairs of each instance and reports how it compares
//! to the graph distance.

use crate::report::{fmt_ratio, Table};
use crate::suite::{symmetric_pairs, symmetric_workloads, Scale, SymmetricPair};

/// Configuration of the Shrink experiment.
#[derive(Debug, Clone)]
pub struct ShrinkConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Maximum number of symmetric pairs evaluated per instance.
    pub max_pairs: usize,
}

impl Default for ShrinkConfig {
    fn default() -> Self {
        ShrinkConfig { scale: Scale::Quick, max_pairs: 16 }
    }
}

impl ShrinkConfig {
    /// The configuration used for EXPERIMENTS.md.
    pub fn full() -> Self {
        ShrinkConfig { scale: Scale::Full, max_pairs: 64 }
    }
}

/// Per-instance summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkRow {
    /// Family name.
    pub family: String,
    /// Instance label.
    pub label: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of pairs evaluated.
    pub pairs: usize,
    /// Maximum distance over the evaluated pairs.
    pub max_distance: usize,
    /// Maximum `Shrink` over the evaluated pairs.
    pub max_shrink: usize,
    /// Number of pairs with `Shrink == distance`.
    pub shrink_equals_distance: usize,
    /// Number of pairs with `Shrink == 1`.
    pub shrink_is_one: usize,
}

impl ShrinkRow {
    fn of(family: &str, label: &str, n: usize, pairs: &[SymmetricPair]) -> Self {
        ShrinkRow {
            family: family.to_string(),
            label: label.to_string(),
            n,
            pairs: pairs.len(),
            max_distance: pairs.iter().map(|p| p.distance).max().unwrap_or(0),
            max_shrink: pairs.iter().map(|p| p.shrink).max().unwrap_or(0),
            shrink_equals_distance: pairs.iter().filter(|p| p.shrink == p.distance).count(),
            shrink_is_one: pairs.iter().filter(|p| p.shrink == 1).count(),
        }
    }
}

/// Run the experiment and collect the per-instance rows.
pub fn collect(config: &ShrinkConfig) -> Vec<ShrinkRow> {
    symmetric_workloads(config.scale)
        .iter()
        .map(|w| {
            let pairs = symmetric_pairs(&w.graph, config.max_pairs);
            ShrinkRow::of(&w.family, &w.label, w.n(), &pairs)
        })
        .collect()
}

/// Run the experiment as a report table.
pub fn run(config: &ShrinkConfig) -> Table {
    let mut table = Table::new(
        "EXP-SHRINK",
        "Shrink(u, v) versus distance on symmetric families (Section 3 examples)",
        &[
            "family",
            "instance",
            "n",
            "pairs",
            "max dist",
            "max Shrink",
            "Shrink = dist",
            "Shrink = 1",
        ],
    );
    for row in collect(config) {
        table.push_row([
            row.family.clone(),
            row.label.clone(),
            row.n.to_string(),
            row.pairs.to_string(),
            row.max_distance.to_string(),
            row.max_shrink.to_string(),
            fmt_ratio(row.shrink_equals_distance as u128, row.pairs as u128),
            fmt_ratio(row.shrink_is_one as u128, row.pairs as u128),
        ]);
    }
    table.push_note(
        "Paper: on oriented tori (and rings) Shrink equals the distance for every pair \
         (ratio 1.000 in column 'Shrink = dist'); on symmetric double trees Shrink is always 1 \
         (ratio 1.000 in column 'Shrink = 1') although the distance can be arbitrarily large.",
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tori_and_rings_have_shrink_equal_to_distance() {
        for row in collect(&ShrinkConfig::default()) {
            if row.family == "oriented-ring" || row.family == "oriented-torus" {
                assert_eq!(
                    row.shrink_equals_distance, row.pairs,
                    "{}: Shrink must equal the distance on every pair",
                    row.label
                );
            }
        }
    }

    #[test]
    fn double_trees_have_shrink_one_everywhere() {
        let rows = collect(&ShrinkConfig::default());
        let mut seen = false;
        for row in rows {
            if row.family == "double-tree" {
                seen = true;
                assert_eq!(row.shrink_is_one, row.pairs, "{}", row.label);
                // ... even though the distance can exceed 1
                assert!(row.max_distance >= 2, "{}", row.label);
            }
        }
        assert!(seen, "the quick suite must include double trees");
    }

    #[test]
    fn the_table_has_one_row_per_workload() {
        let config = ShrinkConfig::default();
        let table = run(&config);
        assert_eq!(table.num_rows(), symmetric_workloads(config.scale).len());
    }
}
