//! EXP-T41: the exponential lower bound on Q̂_h (Theorem 4.1).
//! Pass `--full` for the EXPERIMENTS.md configuration.

use anonrv_experiments::lower_bound_exp;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        lower_bound_exp::LowerBoundConfig::full()
    } else {
        lower_bound_exp::LowerBoundConfig::default()
    };
    println!("{}", lower_bound_exp::run(&config));
}
