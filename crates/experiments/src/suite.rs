//! Workload suites: the graph families and STIC selections every experiment
//! draws from.
//!
//! All suites come in two sizes ([`Scale::Quick`] for tests / CI, and
//! [`Scale::Full`] for the EXPERIMENTS.md runs); both are fully deterministic
//! (fixed seeds).

use anonrv_graph::generators::{
    caterpillar, complete_bipartite, grid, hypercube, kary_tree, lollipop, oriented_ring,
    oriented_torus, path, random_connected, star, symmetric_double_tree,
};
use anonrv_graph::pairspace::ShrinkEngine;
use anonrv_graph::symmetry::OrbitPartition;
use anonrv_graph::{NodeId, PortGraph};

/// How large the generated suite should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small instances: fast enough for unit/integration tests.
    Quick,
    /// The instances recorded in EXPERIMENTS.md.
    Full,
}

/// A named graph instance.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Family name, e.g. `"oriented-ring"`.
    pub family: String,
    /// Short instance label, e.g. `"ring-8"`.
    pub label: String,
    /// The graph.
    pub graph: PortGraph,
}

impl Workload {
    /// Build a workload from a family name and a graph.
    pub fn new(family: &str, label: String, graph: PortGraph) -> Self {
        Workload { family: family.to_string(), label, graph }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.graph.num_nodes()
    }
}

/// A symmetric starting pair together with its `Shrink` value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymmetricPair {
    /// First starting node.
    pub u: NodeId,
    /// Second starting node.
    pub v: NodeId,
    /// `Shrink(u, v)`.
    pub shrink: usize,
    /// Graph distance between `u` and `v`.
    pub distance: usize,
}

/// Fully symmetric graph families (every pair of nodes has equal views):
/// oriented rings, oriented tori, hypercubes, and the paper's symmetric
/// double trees.
pub fn symmetric_workloads(scale: Scale) -> Vec<Workload> {
    let mut out = Vec::new();
    let ring_sizes: &[usize] = match scale {
        Scale::Quick => &[4, 6, 8],
        Scale::Full => &[4, 6, 8, 10, 12, 16],
    };
    for &n in ring_sizes {
        out.push(Workload::new("oriented-ring", format!("ring-{n}"), oriented_ring(n).unwrap()));
    }
    let torus_dims: &[(usize, usize)] = match scale {
        Scale::Quick => &[(3, 3), (3, 4)],
        Scale::Full => &[(3, 3), (3, 4), (4, 4), (4, 6), (6, 6), (8, 8)],
    };
    for &(r, c) in torus_dims {
        out.push(Workload::new(
            "oriented-torus",
            format!("torus-{r}x{c}"),
            oriented_torus(r, c).unwrap(),
        ));
    }
    let cube_dims: &[usize] = match scale {
        Scale::Quick => &[2, 3],
        Scale::Full => &[2, 3, 4],
    };
    for &d in cube_dims {
        out.push(Workload::new("hypercube", format!("hypercube-{d}"), hypercube(d).unwrap()));
    }
    let tree_params: &[(usize, usize)] = match scale {
        Scale::Quick => &[(2, 1), (2, 2)],
        Scale::Full => &[(2, 1), (2, 2), (2, 3), (3, 2), (2, 5)],
    };
    for &(arity, depth) in tree_params {
        let (g, _) = symmetric_double_tree(arity, depth).unwrap();
        out.push(Workload::new("double-tree", format!("double-tree-{arity}-{depth}"), g));
    }
    out
}

/// Graph families with nonsymmetric nodes: lollipops, caterpillars, paths,
/// stars, complete-bipartite graphs and random connected graphs.
pub fn nonsymmetric_workloads(scale: Scale) -> Vec<Workload> {
    let mut out = Vec::new();
    let lollipops: &[(usize, usize)] = match scale {
        Scale::Quick => &[(3, 2), (4, 3)],
        Scale::Full => &[(3, 2), (4, 3), (5, 4), (6, 6), (8, 8)],
    };
    for &(clique, tail) in lollipops {
        out.push(Workload::new(
            "lollipop",
            format!("lollipop-{clique}-{tail}"),
            lollipop(clique, tail).unwrap(),
        ));
    }
    let caterpillars: &[(usize, usize)] = match scale {
        Scale::Quick => &[(3, 1), (4, 2)],
        Scale::Full => &[(3, 1), (4, 2), (5, 2), (6, 3)],
    };
    for &(spine, legs) in caterpillars {
        out.push(Workload::new(
            "caterpillar",
            format!("caterpillar-{spine}-{legs}"),
            caterpillar(spine, legs).unwrap(),
        ));
    }
    let paths: &[usize] = match scale {
        Scale::Quick => &[4, 5],
        Scale::Full => &[4, 5, 7, 9, 12],
    };
    for &n in paths {
        out.push(Workload::new("path", format!("path-{n}"), path(n).unwrap()));
    }
    let stars: &[usize] = match scale {
        Scale::Quick => &[3, 5],
        Scale::Full => &[3, 5, 8, 12],
    };
    for &k in stars {
        out.push(Workload::new("star", format!("star-{k}"), star(k).unwrap()));
    }
    let bipartite: &[(usize, usize)] = match scale {
        Scale::Quick => &[(1, 3)],
        Scale::Full => &[(1, 3), (2, 5), (3, 7)],
    };
    for &(a, b) in bipartite {
        out.push(Workload::new(
            "complete-bipartite",
            format!("k{a}{b}"),
            complete_bipartite(a, b).unwrap(),
        ));
    }
    let trees: &[(usize, usize)] = match scale {
        Scale::Quick => &[(2, 2)],
        Scale::Full => &[(2, 2), (2, 3), (3, 2)],
    };
    for &(arity, depth) in trees {
        out.push(Workload::new(
            "kary-tree",
            format!("tree-{arity}-{depth}"),
            kary_tree(arity, depth).unwrap(),
        ));
    }
    let random: &[(usize, usize, u64)] = match scale {
        Scale::Quick => &[(8, 3, 1), (9, 4, 2)],
        Scale::Full => &[(8, 3, 1), (9, 4, 2), (10, 5, 3), (12, 6, 4), (14, 8, 5), (16, 10, 6)],
    };
    for &(n, extra, seed) in random {
        out.push(Workload::new(
            "random-connected",
            format!("random-{n}-{extra}-s{seed}"),
            random_connected(n, extra, seed).unwrap(),
        ));
    }
    // grids are nonsymmetric (corners vs. interior) and exercise degree
    // heterogeneity
    let grids: &[(usize, usize)] = match scale {
        Scale::Quick => &[(2, 3)],
        Scale::Full => &[(2, 3), (3, 3), (3, 4)],
    };
    for &(r, c) in grids {
        out.push(Workload::new("grid", format!("grid-{r}x{c}"), grid(r, c).unwrap()));
    }
    out
}

/// Every symmetric pair of distinct nodes of `g` (restricted to orbit
/// representatives on the first coordinate to keep the count manageable),
/// with its `Shrink` value and distance.  `max_pairs` truncates the list
/// deterministically.
pub fn symmetric_pairs(g: &PortGraph, max_pairs: usize) -> Vec<SymmetricPair> {
    let partition = OrbitPartition::compute(g);
    // One pair-space engine serves every Shrink and distance lookup below
    // (`all_pairs` would also work, but representative-restricted sweeps
    // rarely touch more than a few sources, so per-pair flat BFS is cheaper).
    let engine = ShrinkEngine::new(g);
    let mut out = Vec::new();
    'outer: for &u in &partition.representatives() {
        for v in g.nodes() {
            if v != u && partition.are_symmetric(u, v) {
                let s = engine.shrink(u, v);
                out.push(SymmetricPair { u, v, shrink: s, distance: engine.distance(u, v) });
                if out.len() >= max_pairs {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// Every symmetric pair of `g`, with **no** `max_pairs` cap: the
/// `--exhaustive` mode of the experiment suites.  The first coordinate is
/// still restricted to orbit representatives — for planner-driven sweeps
/// that restriction is lossless (every `(u, v)` is the automorphic image of
/// a representative pair, and the planner broadcasts bit-identical
/// outcomes), so this *is* the exhaustive all-pairs table, orbit-reduced.
/// The pair-orbit planner is what makes tables of this size affordable;
/// exhaustive (rather than capped) tables are what exposes feasibility
/// boundaries without sampling artifacts.
pub fn all_symmetric_pairs(g: &PortGraph) -> Vec<SymmetricPair> {
    symmetric_pairs(g, usize::MAX)
}

/// Nonsymmetric pairs of `g` (first `max_pairs`, deterministic order).
pub fn nonsymmetric_pairs(g: &PortGraph, max_pairs: usize) -> Vec<(NodeId, NodeId)> {
    let partition = OrbitPartition::compute(g);
    let mut out = Vec::new();
    'outer: for u in g.nodes() {
        for v in g.nodes() {
            if u < v && !partition.are_symmetric(u, v) {
                out.push((u, v));
                if out.len() >= max_pairs {
                    break 'outer;
                }
            }
        }
    }
    out
}

/// Delay values exercised against symmetric pairs (relative to `Shrink = d`):
/// `d`, `d + 1`, `2d`, `d + 7`.
pub fn symmetric_delays(d: usize) -> Vec<u128> {
    let d = d as u128;
    let mut v = vec![d, d + 1, 2 * d, d + 7];
    v.dedup();
    v
}

/// Delay values exercised against nonsymmetric pairs.
pub fn nonsymmetric_delays(scale: Scale) -> Vec<u128> {
    match scale {
        Scale::Quick => vec![0, 1, 5],
        Scale::Full => vec![0, 1, 5, 17],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_workloads_give_every_node_a_symmetric_partner() {
        for w in symmetric_workloads(Scale::Quick) {
            let partition = OrbitPartition::compute(&w.graph);
            // vertex-transitive families collapse to a single orbit; the
            // double trees have one orbit per depth level, but every node
            // still has a symmetric partner (its mirror image)
            if w.family == "double-tree" {
                assert!(
                    partition.classes().iter().all(|class| class.len() >= 2),
                    "{}: every node needs a symmetric partner",
                    w.label
                );
            } else {
                assert!(partition.is_fully_symmetric(), "{} should have a single orbit", w.label);
            }
            assert!(w.graph.is_connected());
            assert!(w.n() >= 2);
        }
    }

    #[test]
    fn nonsymmetric_workloads_have_nonsymmetric_pairs() {
        for w in nonsymmetric_workloads(Scale::Quick) {
            assert!(w.graph.is_connected(), "{} must be connected", w.label);
            assert!(
                !nonsymmetric_pairs(&w.graph, 1).is_empty(),
                "{} should have at least one nonsymmetric pair",
                w.label
            );
        }
    }

    #[test]
    fn quick_scale_is_a_subset_of_full_scale() {
        assert!(symmetric_workloads(Scale::Quick).len() < symmetric_workloads(Scale::Full).len());
        assert!(
            nonsymmetric_workloads(Scale::Quick).len() < nonsymmetric_workloads(Scale::Full).len()
        );
    }

    #[test]
    fn symmetric_pairs_report_shrink_not_larger_than_distance() {
        let g = oriented_torus(3, 4).unwrap();
        let pairs = symmetric_pairs(&g, 64);
        assert!(!pairs.is_empty());
        for p in pairs {
            assert!(p.shrink >= 1);
            assert!(p.shrink <= p.distance, "Shrink can never exceed the distance");
        }
    }

    #[test]
    fn pair_truncation_is_respected() {
        let g = oriented_torus(4, 4).unwrap();
        assert_eq!(symmetric_pairs(&g, 3).len(), 3);
        let lp = lollipop(5, 4).unwrap();
        assert_eq!(nonsymmetric_pairs(&lp, 2).len(), 2);
    }

    #[test]
    fn delay_grids_are_deterministic() {
        assert_eq!(symmetric_delays(1), vec![1, 2, 8]);
        assert_eq!(symmetric_delays(2), vec![2, 3, 4, 9]);
        assert_eq!(nonsymmetric_delays(Scale::Quick), vec![0, 1, 5]);
        assert_eq!(nonsymmetric_delays(Scale::Full), vec![0, 1, 5, 17]);
    }
}
