//! Run-length-encoded position traces of a single agent.

use anonrv_graph::{NodeId, PortGraph};

use crate::navigator::{AgentProgram, Event, EventSink, GraphNavigator, Stop};
use crate::stic::Round;

/// A maximal run of rounds spent at one node: the agent occupies `node` at
/// every local round in `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First local round of the run (inclusive).
    pub start: Round,
    /// One past the last local round of the run.
    pub end: Round,
    /// The node occupied throughout the run.
    pub node: NodeId,
}

impl Segment {
    /// Number of rounds in the run.
    pub fn len(&self) -> Round {
        self.end - self.start
    }

    /// `true` iff the run is empty (never produced by the recorder).
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// Statistics of a recorded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Edge traversals performed.
    pub moves: u64,
    /// Events recorded (moves + coalesced waits).
    pub events: u64,
    /// Local rounds covered by the trace.
    pub rounds: Round,
}

/// The position of one agent at every local round of its execution, with
/// waits run-length encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PositionTrace {
    /// The agent's initial node.
    pub start_node: NodeId,
    /// Contiguous segments starting at local round 0.
    pub segments: Vec<Segment>,
    /// Local rounds covered (`segments.last().end`).
    pub total: Round,
    /// `true` iff the agent program terminated on its own (it then stays at
    /// its final node forever, so the last segment conceptually extends to
    /// infinity).
    pub terminated: bool,
}

impl PositionTrace {
    /// The node occupied at `local_round`, or `None` if the trace does not
    /// cover that round (and the program did not terminate).
    pub fn position_at(&self, local_round: Round) -> Option<NodeId> {
        if local_round >= self.total {
            return if self.terminated { self.segments.last().map(|s| s.node) } else { None };
        }
        // binary search over segment starts
        let idx = self.segments.partition_point(|s| s.end <= local_round);
        self.segments.get(idx).map(|s| s.node)
    }

    /// The agent's final recorded position.
    pub fn final_position(&self) -> NodeId {
        self.segments.last().map(|s| s.node).unwrap_or(self.start_node)
    }

    /// Distinct nodes visited.
    pub fn visited(&self) -> std::collections::HashSet<NodeId> {
        self.segments.iter().map(|s| s.node).collect()
    }
}

/// Event sink that builds a [`PositionTrace`].
pub struct TraceSink {
    start_node: NodeId,
    segments: Vec<Segment>,
    cur_node: NodeId,
    cur_start: Round,
    cur_end: Round,
    max_segments: usize,
    events: u64,
    overflowed: bool,
}

impl TraceSink {
    /// Create a sink for an agent starting at `start_node`; recording aborts
    /// (with [`Stop::Interrupted`]) once `max_segments` segments exist.
    pub fn new(start_node: NodeId, max_segments: usize) -> Self {
        TraceSink {
            start_node,
            segments: Vec::new(),
            cur_node: start_node,
            cur_start: 0,
            cur_end: 1, // position at local round 0 is the start node
            max_segments,
            events: 0,
            overflowed: false,
        }
    }

    /// `true` iff recording was aborted because of the segment limit.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    fn close_current(&mut self) {
        self.segments.push(Segment {
            start: self.cur_start,
            end: self.cur_end,
            node: self.cur_node,
        });
    }

    /// Finalise into a trace; `terminated` records whether the program ended
    /// by itself.
    pub fn into_trace(mut self, terminated: bool) -> (PositionTrace, TraceStats) {
        self.close_current();
        let total = self.cur_end;
        let moves = self.segments.len() as u64 - 1;
        let stats = TraceStats { moves, events: self.events, rounds: total };
        (
            PositionTrace {
                start_node: self.start_node,
                segments: self.segments,
                total,
                terminated,
            },
            stats,
        )
    }
}

impl EventSink for TraceSink {
    fn emit(&mut self, event: Event) -> Result<(), Stop> {
        self.events += 1;
        match event {
            Event::Wait { rounds } => {
                self.cur_end += rounds;
            }
            Event::Move { to, .. } => {
                if self.segments.len() + 1 >= self.max_segments {
                    self.overflowed = true;
                    return Err(Stop::Interrupted);
                }
                self.close_current();
                self.cur_start = self.cur_end;
                self.cur_end += 1;
                self.cur_node = to;
            }
        }
        Ok(())
    }

    fn finish(&mut self) {}
}

/// Record the position trace of a single agent executing `program` from
/// `start`, up to `horizon` local rounds and at most `max_segments` trace
/// segments.
pub fn record_trace(
    g: &PortGraph,
    program: &dyn AgentProgram,
    start: NodeId,
    horizon: Round,
    max_segments: usize,
) -> (PositionTrace, TraceStats) {
    let sink = TraceSink::new(start, max_segments);
    let mut nav = GraphNavigator::new(g, start, horizon, sink);
    let finished = program.run(&mut nav).is_ok();
    let sink = nav.into_sink();
    sink.into_trace(finished)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::navigator::Navigator;
    use anonrv_graph::generators::oriented_ring;

    fn walker(steps: usize, pause: Round) -> impl AgentProgram {
        move |nav: &mut dyn Navigator| -> Result<(), Stop> {
            for _ in 0..steps {
                nav.move_via(0)?;
                nav.wait(pause)?;
            }
            Ok(())
        }
    }

    #[test]
    fn trace_covers_every_round_with_rle_waits() {
        let g = oriented_ring(5).unwrap();
        let (trace, stats) = record_trace(&g, &walker(3, 4), 0, 1_000, 1_000);
        assert!(trace.terminated);
        assert_eq!(stats.moves, 3);
        assert_eq!(stats.rounds, 3 * 5 + 1);
        // round 0 at the start, each move then 4 waiting rounds
        assert_eq!(trace.position_at(0), Some(0));
        assert_eq!(trace.position_at(1), Some(1));
        assert_eq!(trace.position_at(5), Some(1));
        assert_eq!(trace.position_at(6), Some(2));
        assert_eq!(trace.position_at(15), Some(3));
        // beyond the trace the agent stays at its final node (it terminated)
        assert_eq!(trace.position_at(1_000_000), Some(3));
        assert_eq!(trace.final_position(), 3);
        assert_eq!(trace.visited().len(), 4);
    }

    #[test]
    fn horizon_truncates_and_marks_non_termination() {
        let g = oriented_ring(5).unwrap();
        let forever = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            loop {
                nav.move_via(0)?;
            }
        };
        let (trace, stats) = record_trace(&g, &forever, 0, 7, 1_000);
        assert!(!trace.terminated);
        assert_eq!(stats.moves, 7);
        assert_eq!(trace.total, 8);
        assert_eq!(trace.position_at(7), Some(7 % 5));
        assert_eq!(trace.position_at(8), None);
    }

    #[test]
    fn huge_waits_cost_one_segment() {
        let g = oriented_ring(4).unwrap();
        let patient = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            nav.wait(1u128 << 100)?;
            Ok(())
        };
        let (trace, stats) = record_trace(&g, &patient, 2, Round::MAX, 10);
        assert_eq!(trace.segments.len(), 1);
        assert_eq!(stats.rounds, (1u128 << 100) + 1);
        assert_eq!(trace.position_at(1u128 << 99), Some(2));
    }

    #[test]
    fn segment_cap_aborts_recording() {
        let g = oriented_ring(4).unwrap();
        let forever = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            loop {
                nav.move_via(0)?;
            }
        };
        let (trace, _stats) = record_trace(&g, &forever, 0, Round::MAX, 5);
        assert!(!trace.terminated);
        assert!(trace.segments.len() <= 5);
    }

    #[test]
    fn segment_helpers() {
        let s = Segment { start: 3, end: 7, node: 1 };
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
    }
}
