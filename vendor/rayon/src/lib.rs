//! Offline stand-in for `rayon` (see `vendor/README.md`).
//!
//! Implements the data-parallel subset this workspace uses —
//! `par_iter()` / `into_par_iter()` followed by `map(...).collect()` or
//! `for_each(...)` — with genuine multi-core execution: worker threads
//! (one per available core) pull item indices from a shared atomic counter,
//! which load-balances well even when per-item cost varies by orders of
//! magnitude (exactly the case for STIC simulation sweeps).

use std::sync::atomic::{AtomicUsize, Ordering};

/// The usual rayon import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Number of worker threads used for parallel operations.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
}

/// Dynamically load-balanced parallel indexed map: applies `f` to `0..len`
/// and returns the results in index order.
fn par_map_indexed<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if len == 0 {
        return Vec::new();
    }
    let workers = current_num_threads().min(len);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        out.push((i, f(i)));
                    }
                    out
                })
            })
            .collect();
        per_worker =
            handles.into_iter().map(|h| h.join().expect("rayon worker panicked")).collect();
    });
    let mut indexed: Vec<(usize, R)> = per_worker.into_iter().flatten().collect();
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// `par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Borrowed item type.
    type Item: Sync + 'a;
    /// A parallel iterator over `&Self::Item`.
    fn par_iter(&'a self) -> ParSlice<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

/// `into_par_iter()` on owned collections / ranges.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send + Sync> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// Parallel iterator over a borrowed slice.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParSlice<'a, T> {
    /// Parallel map.
    pub fn map<R, F>(self, f: F) -> ParSliceMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParSliceMap { slice: self.slice, f }
    }

    /// Parallel side-effecting traversal.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        par_map_indexed(self.slice.len(), |i| f(&self.slice[i]));
    }
}

/// Mapped parallel iterator over a borrowed slice.
pub struct ParSliceMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParSliceMap<'a, T, F> {
    /// Execute the map in parallel and collect the results in order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map_indexed(self.slice.len(), |i| (self.f)(&self.slice[i])))
    }
}

/// Parallel iterator over an owned vector.
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send + Sync> ParVec<T> {
    /// Parallel map (items are borrowed by the workers, then dropped).
    pub fn map<R, F>(self, f: F) -> ParVecMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        T: Clone,
    {
        ParVecMap { items: self.items, f }
    }
}

/// Mapped parallel iterator over an owned vector.
pub struct ParVecMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send + Sync + Clone, R: Send, F: Fn(T) -> R + Sync> ParVecMap<T, F> {
    /// Execute the map in parallel and collect the results in order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let items = &self.items;
        let f = &self.f;
        C::from(par_map_indexed(items.len(), |i| f(items[i].clone())))
    }
}

/// Parallel iterator over a `usize` range.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParRange {
    /// Parallel map over the range, in order.
    pub fn map<R, F>(self, f: F) -> ParRangeMap<F>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        ParRangeMap { range: self.range, f }
    }
}

/// Mapped parallel iterator over a range.
pub struct ParRangeMap<F> {
    range: std::ops::Range<usize>,
    f: F,
}

impl<R: Send, F: Fn(usize) -> R + Sync> ParRangeMap<F> {
    /// Execute the map in parallel and collect the results in order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        let start = self.range.start;
        let f = &self.f;
        C::from(par_map_indexed(self.range.len(), |i| f(start + i)))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_workloads_are_balanced() {
        let items: Vec<usize> = (0..64).collect();
        let results: Vec<usize> = items
            .par_iter()
            .map(|&x| {
                // items at the front are much more expensive
                let reps = if x < 4 { 100_000 } else { 10 };
                (0..reps).fold(x, |acc, _| std::hint::black_box(acc))
            })
            .collect();
        assert_eq!(results, items);
    }

    #[test]
    fn range_into_par_iter_works() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[7], 49);
        assert_eq!(squares.len(), 100);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: Vec<usize> = Vec::new();
        let out: Vec<usize> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
