//! Cross-crate integration tests for the two dedicated procedures:
//! `SymmRV(n, d, δ)` (Lemmas 3.2/3.3) and the `AsymmRV` substitute
//! (Proposition 3.1).

use anonrv_core::asymm_rv::{AsymmRv, AsymmRvUnknownDelay};
use anonrv_core::bounds::symm_rv_bound;
use anonrv_core::label::{LabelScheme, TrailSignature};
use anonrv_core::symm_rv::SymmRv;
use anonrv_experiments::asymm::{self, AsymmConfig};
use anonrv_experiments::suite::nonsymmetric_pairs;
use anonrv_experiments::symm::{self, SymmConfig};
use anonrv_graph::generators::{lollipop, symmetric_double_tree};
use anonrv_graph::shrink::shrink;
use anonrv_sim::{simulate, Round, Stic};
use anonrv_uxs::{covers_from_all, PseudorandomUxs, UxsProvider};

#[test]
fn symm_rv_quick_suite_meets_within_the_lemma_3_3_bound() {
    let records = symm::collect(&SymmConfig::default());
    assert!(records.len() >= 20, "the quick suite should exercise a meaningful number of STICs");
    for r in &records {
        assert!(r.met, "SymmRV failed on {:?}", r);
        assert!(r.within_bound(), "Lemma 3.3 bound violated on {:?}", r);
    }
}

#[test]
fn asymm_rv_quick_suite_meets_within_its_bound_for_every_delay() {
    let outcome = asymm::collect(&AsymmConfig::default());
    assert!(outcome.records.len() >= 30);
    assert!(outcome.label_collisions.is_empty(), "{:?}", outcome.label_collisions);
    for r in &outcome.records {
        assert!(r.met, "AsymmRV failed on {:?}", r);
        assert!(r.within_bound(), "substitute bound violated on {:?}", r);
    }
}

#[test]
fn symm_rv_meets_on_the_double_tree_regardless_of_which_agent_is_earlier() {
    let (g, mirror) = symmetric_double_tree(2, 2).unwrap();
    let n = g.num_nodes();
    let uxs = PseudorandomUxs::default();
    let leaf = (0..n / 2).find(|&v| g.degree(v) == 1).unwrap();
    let pair = (leaf, mirror[leaf]);
    assert_eq!(shrink(&g, pair.0, pair.1), Some(1));
    let bound = symm_rv_bound(n, 1, 2, uxs.length(n));
    for stic in [Stic::new(pair.0, pair.1, 2), Stic::new(pair.1, pair.0, 2)] {
        let program = SymmRv::new(n, 1, 2, &uxs);
        let outcome = simulate(&g, &program, &stic, bound + 3);
        assert!(outcome.met(), "double-tree SymmRV failed for {stic:?}");
        assert!(outcome.rendezvous_time().unwrap() <= bound);
    }
}

#[test]
fn asymm_rv_meets_with_the_exact_view_label_scheme_too() {
    // the alternative (exponential-round) label scheme of DESIGN.md §4.2
    let g = lollipop(3, 2).unwrap();
    let n = g.num_nodes();
    let scheme = anonrv_core::label::ExactViewLabel;
    let uxs = PseudorandomUxs::default();
    for (u, v) in nonsymmetric_pairs(&g, 3) {
        assert!(scheme.labels_distinct(&g, u, v, n));
        let program = AsymmRv::new(n, 2, &scheme, &uxs);
        let horizon = program.full_duration() + 3;
        let outcome = simulate(&g, &program, &Stic::new(u, v, 2), horizon);
        assert!(outcome.met(), "exact-view AsymmRV failed on ({u}, {v})");
    }
}

#[test]
fn asymm_rv_unknown_delay_wrapper_is_delay_independent() {
    let g = lollipop(4, 2).unwrap();
    let n = g.num_nodes();
    let scheme = TrailSignature::default();
    let uxs = PseudorandomUxs::default();
    assert!(covers_from_all(&g, &uxs.sequence(n)));
    for delay in [0 as Round, 5, 23] {
        let program = AsymmRvUnknownDelay { n, scheme: &scheme, uxs: &uxs, max_rounds: None };
        let outcome = simulate(&g, &program, &Stic::new(0, n - 1, delay), 50_000_000);
        assert!(outcome.met(), "unknown-delay wrapper failed for delay {delay}");
    }
}

#[test]
fn symm_rv_time_grows_with_the_uxs_length() {
    // Lemma 3.3's (M + 2) factor, observed: the same STIC takes longer with a
    // longer exploration sequence whenever the meeting happens midway through
    // the walk.
    let g = anonrv_graph::generators::oriented_ring(8).unwrap();
    let (u, v) = (0usize, 4usize);
    let d = shrink(&g, u, v).unwrap();
    let mut times = Vec::new();
    for len in [64usize, 512] {
        let uxs = PseudorandomUxs::fixed_length(len);
        if !covers_from_all(&g, &uxs.sequence(8)) {
            continue;
        }
        let bound = symm_rv_bound(8, d, d as Round, len);
        let program = SymmRv::new(8, d, d as Round, &uxs);
        let outcome = simulate(&g, &program, &Stic::new(u, v, d as Round), bound + 5);
        assert!(outcome.met());
        times.push(outcome.rendezvous_time().unwrap());
    }
    assert!(times.len() >= 2, "both lengths should cover the ring");
    // Both runs met within their own Lemma 3.3 bounds (asserted via `met`
    // above).  The meeting can legitimately happen as early as the later
    // agent's start round (the earlier agent's first Explore walk may end on
    // the later agent's node exactly when it appears), so no lower bound on
    // the time is asserted here.
}
