//! Differential tests for the **implicit** symmetry groups: on stamped
//! vertex-transitive families (rings, tori, hypercubes, circulants) the
//! closed-form [`SymmetryGroup`](anonrv_plan::SymmetryGroup) must induce
//! *exactly* the partition the BFS-enumerated
//! [`Automorphisms`](anonrv_plan::Automorphisms) table induces — same
//! classes, same representatives, same canonical maps — and every planned
//! sweep built on it (materialised or streamed) must be bit-identical to
//! the explicit one.  Unstamped or asymmetric graphs must fall back to the
//! explicit enumeration unchanged.

use proptest::prelude::*;

use anonrv_graph::generators::{
    circulant, hypercube, lollipop, oriented_ring, oriented_torus, path, qh_hat, random_connected,
};
use anonrv_graph::PortGraph;
use anonrv_plan::{PairOrbits, PlannedSweep, SweepPlan};
use anonrv_sim::{AgentProgram, EngineConfig, Navigator, Round, Stop};
use anonrv_store::table_fingerprint;

/// Deterministic scripted agent (the engine property-test idiom): a seeded
/// LCG decides each round between pseudo-random moves and short waits.
struct ScriptedWalker {
    seed: u64,
    lifetime: Option<u64>,
}

impl AgentProgram for ScriptedWalker {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let mut state = self.seed | 1;
        let mut actions = 0u64;
        loop {
            if let Some(lifetime) = self.lifetime {
                if actions >= lifetime {
                    return Ok(());
                }
            }
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = state >> 33;
            if roll.is_multiple_of(4) {
                nav.wait((roll % 9 + 1) as Round)?;
            } else {
                nav.move_via(roll as usize % nav.degree())?;
            }
            actions += 1;
        }
    }
}

/// The stamped families whose generators carry a closed-form group.
fn stamped_families() -> Vec<(&'static str, PortGraph)> {
    vec![
        ("ring-7", oriented_ring(7).unwrap()),
        ("ring-8", oriented_ring(8).unwrap()),
        ("torus-3x4", oriented_torus(3, 4).unwrap()),
        ("torus-4x4", oriented_torus(4, 4).unwrap()),
        ("hypercube-3", hypercube(3).unwrap()),
        ("hypercube-4", hypercube(4).unwrap()),
        ("circulant-10(1,3)", circulant(10, &[1, 3]).unwrap()),
        ("circulant-12(1,3)", circulant(12, &[1, 3]).unwrap()),
    ]
}

/// Implicit vs explicit partitions must agree **pointwise**: same class id
/// for every ordered pair, same representative per class, and mutually
/// inverse canonical maps.
#[test]
fn implicit_partitions_equal_the_bfs_enumerated_ones_pointwise() {
    for (label, g) in stamped_families() {
        let implicit = PairOrbits::compute(&g);
        let explicit = PairOrbits::compute_explicit(&g);
        assert!(implicit.is_implicit(), "{label}: generator stamp not honoured");
        assert!(!explicit.is_implicit(), "{label}: compute_explicit must enumerate");
        assert_eq!(implicit.group_order(), explicit.group_order(), "{label}");
        assert_eq!(implicit.num_pair_classes(), explicit.num_pair_classes(), "{label}");
        assert_eq!(implicit.class_size(), explicit.class_size(), "{label}");
        let n = g.num_nodes();
        for u in 0..n {
            for v in 0..n {
                assert_eq!(
                    implicit.class_of(u, v),
                    explicit.class_of(u, v),
                    "{label}: class id diverges on ({u}, {v})"
                );
                assert_eq!(
                    implicit.to_canonical(u, v),
                    explicit.to_canonical(u, v),
                    "{label}: canonical map diverges at ({u}, {v})"
                );
                assert_eq!(
                    implicit.from_canonical(u, implicit.to_canonical(u, v)),
                    v,
                    "{label}: canonical maps are not mutually inverse at ({u}, {v})"
                );
            }
        }
        for class in 0..implicit.num_pair_classes() {
            assert_eq!(
                implicit.representative(class),
                explicit.representative(class),
                "{label}: representative of class {class} diverges"
            );
            let mut imp: Vec<_> = implicit.members(class).collect();
            let mut exp: Vec<_> = explicit.members(class).collect();
            imp.sort_unstable();
            exp.sort_unstable();
            assert_eq!(imp, exp, "{label}: member sets of class {class} diverge");
        }
    }
}

/// Planned sweeps over the implicit partition must produce the explicit
/// partition's outcome table bit-for-bit — and the streaming executor must
/// fingerprint that same table without ever materialising it.
#[test]
fn implicit_explicit_and_streamed_sweeps_are_bit_identical() {
    let program = ScriptedWalker { seed: 0xC0FFEE, lifetime: None };
    let deltas: Vec<Round> = vec![0, 1, 2, 5];
    let horizon: Round = 48;
    for (label, g) in stamped_families() {
        let implicit = PlannedSweep::new(&g, &program, EngineConfig::batch(horizon));
        let exp_orbits = PairOrbits::compute_explicit(&g);
        let explicit =
            PlannedSweep::with_orbits(&exp_orbits, &g, &program, EngineConfig::batch(horizon));
        let imp_plan = SweepPlan::from_orbits(implicit.orbits().clone(), deltas.clone(), horizon);
        let exp_plan = SweepPlan::from_orbits(explicit.orbits().clone(), deltas.clone(), horizon);
        let imp_table = implicit.run(&imp_plan);
        let exp_table = explicit.run(&exp_plan);
        assert_eq!(
            imp_table.table(),
            exp_table.table(),
            "{label}: implicit-planned table diverges from the explicit one"
        );
        assert_eq!(imp_table.met_total(), exp_table.met_total(), "{label}");

        // the streamed path: chunk boundaries must not show in the bytes
        let reference = table_fingerprint(imp_table.table());
        for chunk in [1usize, 3, 1024] {
            let mut streamed = Vec::with_capacity(imp_table.table().len());
            let stats = implicit
                .run_streamed(&imp_plan, chunk, |_, outcomes| streamed.extend_from_slice(outcomes))
                .unwrap();
            assert_eq!(streamed.as_slice(), imp_table.table(), "{label}: chunk {chunk}");
            assert_eq!(table_fingerprint(&streamed), reference, "{label}: chunk {chunk}");
            assert_eq!(stats.met_total, imp_table.met_total(), "{label}: chunk {chunk}");
        }
    }
}

/// Graphs without a stamp — rigid, asymmetric or merely unstamped — must
/// fall back to the explicit BFS enumeration, and the fallback must still
/// plan correctly.
#[test]
fn unstamped_graphs_fall_back_to_explicit_enumeration() {
    let fallbacks: Vec<(&str, PortGraph)> = vec![
        ("random-9-4-s2", random_connected(9, 4, 2).unwrap()),
        ("random-11-5-s7", random_connected(11, 5, 7).unwrap()),
        ("lollipop-4-3", lollipop(4, 3).unwrap()),
        ("path-6", path(6).unwrap()),
        ("qhat-2", qh_hat(2).unwrap().graph),
    ];
    let program = ScriptedWalker { seed: 0x5EED, lifetime: None };
    for (label, g) in fallbacks {
        let orbits = PairOrbits::compute(&g);
        assert!(!orbits.is_implicit(), "{label}: no closed-form group exists here");
        assert!(orbits.automorphisms().is_some(), "{label}: fallback keeps the table");
        // the fallback still answers member queries bit-identically
        let planned = PlannedSweep::with_orbits(&orbits, &g, &program, EngineConfig::batch(32));
        let plan = SweepPlan::from_orbits(planned.orbits().clone(), vec![0, 2], 32);
        let outcomes = planned.run(&plan);
        for u in g.nodes() {
            for v in g.nodes() {
                for (di, &delta) in plan.deltas().iter().enumerate() {
                    let direct = planned.engine().simulate(&anonrv_sim::Stic::new(u, v, delta));
                    assert_eq!(
                        outcomes.get(u, v, di),
                        direct,
                        "{label}: fallback planned != direct on ({u}, {v}) delta {delta}"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomised differential: arbitrary programs, delays and horizons on
    /// randomly-shaped stamped families — the implicit group's planned
    /// member answers equal the explicit group's bit-for-bit.
    #[test]
    fn implicit_member_queries_match_explicit_under_random_programs(
        seed in 0u64..1_000_000,
        lifetime_sel in 0u64..31,
        delta in 0u64..20,
        horizon in 1u64..96,
        rows in 3usize..5,
        cols in 3usize..6,
        u in 0usize..30,
        v in 0usize..30,
    ) {
        let lifetime = if lifetime_sel == 0 { None } else { Some(lifetime_sel) };
        let program = ScriptedWalker { seed, lifetime };
        let shapes = [
            oriented_torus(rows, cols).unwrap(),
            oriented_ring(rows * cols).unwrap(),
            hypercube(3).unwrap(),
        ];
        for g in shapes {
            let n = g.num_nodes();
            let stic = anonrv_sim::Stic::new(u % n, v % n, delta as Round);
            let config = EngineConfig::batch(horizon as Round);
            let implicit = PlannedSweep::new(&g, &program, config);
            let exp_orbits = PairOrbits::compute_explicit(&g);
            let explicit = PlannedSweep::with_orbits(&exp_orbits, &g, &program, config);
            prop_assert!(implicit.orbits().is_implicit());
            prop_assert_eq!(implicit.simulate(&stic), explicit.simulate(&stic));
            prop_assert_eq!(implicit.simulate(&stic), implicit.engine().simulate(&stic));
        }
    }
}
