//! Cross-crate integration tests for Algorithm `UniversalRV` (Theorem 3.1)
//! and the exactness of the feasibility characterisation (Corollary 3.1).

use anonrv_core::feasibility::is_feasible;
use anonrv_core::label::TrailSignature;
use anonrv_core::universal_rv::UniversalRv;
use anonrv_experiments::universal::{self, UniversalConfig};
use anonrv_graph::generators::{oriented_ring, two_node_graph};
use anonrv_sim::{record_trace, simulate, Round, Stic};
use anonrv_uxs::{LengthRule, PseudorandomUxs};

fn short_uxs() -> PseudorandomUxs {
    PseudorandomUxs::with_rule(LengthRule::Quadratic { c: 1, min_len: 16 })
}

#[test]
fn universal_rv_agrees_with_the_characterisation_on_the_quick_suite() {
    let records = universal::collect(&UniversalConfig::default());
    assert!(records.len() >= 20, "the quick suite should exercise a meaningful number of STICs");
    let feasible = records.iter().filter(|r| r.feasible).count();
    let infeasible = records.len() - feasible;
    assert!(feasible >= 10, "suite must contain feasible STICs");
    assert!(infeasible >= 3, "suite must contain infeasible STICs");
    for r in &records {
        assert!(r.agrees_with_characterisation(), "Theorem 3.1 / Lemma 3.1 disagreement on {r:?}");
    }
}

#[test]
fn the_introduction_example_two_node_graph_with_delay_three() {
    // "If identical agents start in this graph with delay 3, executing the
    // algorithm 'move at each round', then they will meet 3 rounds after the
    // start of the earlier agent." — UniversalRV has no such dedicated trick
    // but must still solve the STIC, because the two nodes are symmetric and
    // Shrink = 1 <= 3.
    let g = two_node_graph();
    assert!(is_feasible(&g, 0, 1, 3));
    let uxs = short_uxs();
    let scheme = TrailSignature::new(uxs);
    let algo = UniversalRv::new(&uxs, &scheme);
    let horizon = algo.completion_horizon(2, 1, 3);
    let outcome = simulate(&g, &algo, &Stic::new(0, 1, 3), horizon);
    assert!(outcome.met());
}

#[test]
fn universal_rv_lockstep_holds_across_many_phases_and_start_nodes() {
    // The Theorem 3.1 argument needs every phase to cost both agents the same
    // number of rounds so the original delay is preserved; check it over a
    // graph whose nodes have different degrees and over a phase range that
    // includes wrong guesses of n, d and delta.
    let g = anonrv_graph::generators::lollipop(4, 3).unwrap();
    let uxs = short_uxs();
    let scheme = TrailSignature::new(uxs);
    let cap = anonrv_core::pairing::phase_of(5, 2, 3);
    let algo = UniversalRv { uxs: &uxs, scheme: &scheme, max_phases: Some(cap) };
    let mut durations = Vec::new();
    for start in [0usize, 3, 6] {
        let (trace, stats) = record_trace(&g, &algo, start, Round::MAX, 1 << 24);
        assert!(trace.terminated);
        assert_eq!(trace.final_position(), start, "every phase must return to the start");
        durations.push(stats.rounds);
    }
    assert!(durations.windows(2).all(|w| w[0] == w[1]), "durations differ: {durations:?}");
}

#[test]
fn universal_rv_never_meets_on_an_infeasible_ring_stic_even_with_a_generous_horizon() {
    let g = oriented_ring(6).unwrap();
    // Shrink(0, 3) = 3, delay 2 < 3: infeasible
    assert!(!is_feasible(&g, 0, 3, 2));
    let uxs = short_uxs();
    let scheme = TrailSignature::new(uxs);
    let algo = UniversalRv::new(&uxs, &scheme);
    let horizon = algo.completion_horizon(6, 2, 2);
    let outcome = simulate(&g, &algo, &Stic::new(0, 3, 2), horizon);
    assert!(!outcome.met());
}

#[test]
fn universal_rv_meets_faster_or_equal_when_the_delay_guessing_phase_comes_earlier() {
    // sanity on the phase ordering: the same symmetric pair with the minimal
    // feasible delay resolves in a phase no later than with a larger delay,
    // and both meet
    let g = oriented_ring(4).unwrap();
    let uxs = short_uxs();
    let scheme = TrailSignature::new(uxs);
    let mut times = Vec::new();
    for delta in [1u128, 3] {
        let algo = UniversalRv::new(&uxs, &scheme);
        let horizon = algo.completion_horizon(4, 1, delta);
        let outcome = simulate(&g, &algo, &Stic::new(0, 1, delta), horizon);
        assert!(outcome.met(), "delta {delta}");
        times.push(outcome.rendezvous_time().unwrap());
    }
    // both delays are solved; the meeting may legitimately happen at the later
    // agent's very first round, so no lower bound on the times is asserted
    assert_eq!(times.len(), 2);
}
