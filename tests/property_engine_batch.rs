//! Differential property tests for the batch (trajectory-memoized) engine:
//! answering STICs by merging cached per-start-node timelines must return
//! **bit-identical** [`SimOutcome`](anonrv_sim::SimOutcome)s to the lockstep
//! and streaming engines — on random connected graphs, random scripted
//! programs (moving, waiting, terminating), random delays and horizons, with
//! the cache *reused* across many queries (the regime the sweeps run it in)
//! and with queries capped below the cache horizon.

use proptest::prelude::*;

use anonrv_graph::generators::{oriented_torus, random_connected};
use anonrv_sim::{
    simulate_with, AgentProgram, EngineConfig, Navigator, Round, Stic, Stop, SweepEngine,
    TrajectoryCache,
};

/// Deterministic scripted agent: a seeded LCG decides each round between
/// moving through a pseudo-random port and short waits, optionally
/// terminating after a bounded number of actions.
struct ScriptedWalker {
    seed: u64,
    lifetime: Option<u64>,
}

impl AgentProgram for ScriptedWalker {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let mut state = self.seed | 1;
        let mut actions = 0u64;
        loop {
            if let Some(lifetime) = self.lifetime {
                if actions >= lifetime {
                    return Ok(());
                }
            }
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = state >> 33;
            if roll.is_multiple_of(4) {
                nav.wait((roll % 9 + 1) as Round)?;
            } else {
                nav.move_via(roll as usize % nav.degree())?;
            }
            actions += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// One shared cache, many STICs: every query must match both per-call
    /// engines exactly.
    #[test]
    fn batch_lockstep_and_streaming_outcomes_are_identical(
        n in 2usize..12,
        extra in 0usize..6,
        graph_seed in 0u64..200,
        pair_seed in 0usize..1_000,
        delay in 0u64..20,
        horizon in 1u64..220,
        walker_seed in 0u64..1_000,
        lifetime in proptest::option::of(1u64..40),
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, graph_seed).unwrap();
        let program = ScriptedWalker { seed: walker_seed, lifetime };
        let cache = TrajectoryCache::new(&g, &program, horizon as Round);
        for k in 0..6usize {
            let stic = Stic::new(
                (pair_seed * 3 + k) % n,
                (pair_seed * 7 + 2 * k + 1) % n,
                (delay as Round + k as Round) % 20,
            );
            let batch = cache.simulate(&stic);
            let lockstep = simulate_with(
                &g,
                &program,
                &program,
                &stic,
                EngineConfig::lockstep(horizon as Round),
            );
            let streaming = simulate_with(
                &g,
                &program,
                &program,
                &stic,
                EngineConfig::streaming(horizon as Round),
            );
            prop_assert_eq!(
                batch, lockstep,
                "batch vs lockstep on {} horizon {} walker {} lifetime {:?}",
                stic, horizon, walker_seed, lifetime
            );
            prop_assert_eq!(
                lockstep, streaming,
                "lockstep vs streaming on {} horizon {} walker {} lifetime {:?}",
                stic, horizon, walker_seed, lifetime
            );
        }
    }

    /// Capped queries: one cache built at the maximum horizon must answer
    /// every smaller-horizon query exactly as engines run at that horizon —
    /// the mode the heterogeneous-horizon sweeps (universal, infeasible,
    /// scaling) rely on.
    #[test]
    fn capped_cache_queries_match_per_horizon_engines(
        n in 2usize..10,
        graph_seed in 0u64..100,
        a in 0usize..24,
        b in 0usize..24,
        delay in 0u64..12,
        cache_horizon in 40u64..200,
        walker_seed in 0u64..500,
        lifetime in proptest::option::of(1u64..30),
    ) {
        let g = random_connected(n, 1.min(n * (n - 1) / 2 - (n - 1)), graph_seed).unwrap();
        let program = ScriptedWalker { seed: walker_seed, lifetime };
        let cache = TrajectoryCache::new(&g, &program, cache_horizon as Round);
        let stic = Stic::new(a % n, b % n, delay as Round);
        for horizon in [0u64, 1, 7, cache_horizon / 2, cache_horizon] {
            let capped = cache.simulate_capped(&stic, horizon as Round);
            let reference = simulate_with(
                &g,
                &program,
                &program,
                &stic,
                EngineConfig::lockstep(horizon as Round),
            );
            prop_assert_eq!(
                capped, reference,
                "capped query diverged on {} at horizon {} (cache horizon {})",
                stic, horizon, cache_horizon
            );
        }
    }

    /// The single-pass delay sweep (`simulate_deltas`) must return, per
    /// delay, exactly what the per-call engines return for that STIC.
    #[test]
    fn delta_sweep_queries_match_the_per_call_engines(
        n in 2usize..12,
        extra in 0usize..6,
        graph_seed in 0u64..200,
        a in 0usize..24,
        b in 0usize..24,
        base_delay in 0u64..16,
        horizon in 1u64..200,
        walker_seed in 0u64..1_000,
        lifetime in proptest::option::of(1u64..40),
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, graph_seed).unwrap();
        let program = ScriptedWalker { seed: walker_seed, lifetime };
        let engine = SweepEngine::new(&g, &program, EngineConfig::with_horizon(horizon as Round));
        let deltas: Vec<Round> =
            (0..5).map(|k| (base_delay + k * 3) as Round).chain([horizon as Round + 1]).collect();
        let (u, v) = (a % n, b % n);
        let swept = engine.simulate_deltas(u, v, &deltas);
        prop_assert_eq!(swept.len(), deltas.len());
        for (i, &delta) in deltas.iter().enumerate() {
            let stic = Stic::new(u, v, delta);
            let reference = simulate_with(
                &g,
                &program,
                &program,
                &stic,
                EngineConfig::lockstep(horizon as Round),
            );
            prop_assert_eq!(
                swept[i], reference,
                "delta sweep vs lockstep on {} horizon {} walker {} lifetime {:?}",
                stic, horizon, walker_seed, lifetime
            );
        }
    }

    /// `EngineMode::Batch` with different programs per agent must agree with
    /// the other engines too.
    #[test]
    fn batch_mode_agrees_when_the_two_agents_run_different_programs(
        n in 3usize..10,
        graph_seed in 0u64..100,
        delay in 0u64..12,
        horizon in 1u64..160,
        seed_a in 0u64..500,
        seed_b in 0u64..500,
        lifetime_a in proptest::option::of(1u64..30),
    ) {
        let g = random_connected(n, 2.min(n * (n - 1) / 2 - (n - 1)), graph_seed).unwrap();
        let stic = Stic::new(0, n - 1, delay as Round);
        let earlier = ScriptedWalker { seed: seed_a, lifetime: lifetime_a };
        let later = ScriptedWalker { seed: seed_b, lifetime: None };
        let batch =
            simulate_with(&g, &earlier, &later, &stic, EngineConfig::batch(horizon as Round));
        let reference =
            simulate_with(&g, &earlier, &later, &stic, EngineConfig::lockstep(horizon as Round));
        prop_assert_eq!(batch, reference);
    }
}

/// Exhaustive differential check on `oriented_torus(3, 4)`: every ordered
/// `(u, v)` pair × every delay in `{0..4}` × terminating and non-terminating
/// programs, batch (shared engine) vs lockstep vs streaming.
#[test]
fn exhaustive_torus_3x4_sweep_is_bit_identical_across_all_three_engines() {
    let g = oriented_torus(3, 4).unwrap();
    let n = g.num_nodes();
    let horizon: Round = 60;
    let mut compared = 0usize;
    let mut met = 0usize;
    for (walker_seed, lifetime) in [(11u64, None), (42, Some(25u64))] {
        let program = ScriptedWalker { seed: walker_seed, lifetime };
        let engine = SweepEngine::new(&g, &program, EngineConfig::with_horizon(horizon));
        let deltas: Vec<Round> = (0..5).collect();
        for u in 0..n {
            for v in 0..n {
                let swept = engine.simulate_deltas(u, v, &deltas);
                for (delta, swept_outcome) in swept.iter().enumerate() {
                    let stic = Stic::new(u, v, delta as Round);
                    let batch = engine.simulate(&stic);
                    let lockstep = simulate_with(
                        &g,
                        &program,
                        &program,
                        &stic,
                        EngineConfig::lockstep(horizon),
                    );
                    let streaming = simulate_with(
                        &g,
                        &program,
                        &program,
                        &stic,
                        EngineConfig::streaming(horizon),
                    );
                    assert_eq!(batch, lockstep, "batch vs lockstep on {stic}");
                    assert_eq!(batch, streaming, "batch vs streaming on {stic}");
                    assert_eq!(*swept_outcome, batch, "delta sweep vs batch on {stic}");
                    compared += 1;
                    if batch.met() {
                        met += 1;
                    }
                }
            }
        }
        // the cache must have recorded exactly one timeline per start node
        assert_eq!(engine.cache().computed(), n);
    }
    assert_eq!(compared, 2 * n * n * 5);
    assert!(met > 0 && met < compared, "sweep must mix outcomes, met {met}/{compared}");
}
