//! The Section 4 lower-bound environment: the graph Q̂_h in which every node
//! looks identical, every algorithm degenerates to a fixed word over
//! {stay, N, E, S, W}, and meeting all STICs [(root, v), D], v in Z, forces
//! time exponential in D.
//!
//! ```sh
//! cargo run --example lower_bound_tree
//! ```

use anonrv_core::lower_bound::{
    check_schedule_explicit, check_schedule_symbolic, ObliviousSchedule,
};
use anonrv_graph::generators::{qh_hat, z_set};
use anonrv_graph::symmetry::OrbitPartition;

fn main() {
    // The explicit graph for k = 2: h = 4k = 8 would have ~13k nodes, so the
    // figure-scale instance uses h = 4 (k = 1) and the growth sweep uses the
    // symbolic checker (the universal cover), exactly like the proof.
    let k_explicit = 1usize;
    let q = qh_hat(4 * k_explicit).expect("Q̂_4 generation");
    let orbits = OrbitPartition::compute(&q.graph);
    println!(
        "Q̂_{}: {} nodes, {} edges, 4-regular = {}, all nodes symmetric = {}",
        q.h,
        q.graph.num_nodes(),
        q.graph.num_edges(),
        q.graph.is_regular(),
        orbits.is_fully_symmetric()
    );
    let z = z_set(&q, k_explicit).expect("Z set");
    println!("Z set for k = {k_explicit}: {z:?} (|Z| = {})", z.len());

    let schedule = ObliviousSchedule::meeting_sweep(k_explicit);
    let explicit = check_schedule_explicit(&q, k_explicit, &schedule);
    println!(
        "meeting sweep on the explicit graph: met {}/{} STICs, worst time {:?}, threshold {}",
        explicit.times.iter().filter(|t| t.is_some()).count(),
        explicit.times.len(),
        explicit.max_time(),
        explicit.threshold
    );

    println!("\nexponential growth of the worst-case meeting time (symbolic checker):");
    println!("{:>3} {:>8} {:>12} {:>16}", "k", "|Z|", "threshold", "worst time");
    for k in 1..=8usize {
        let report = check_schedule_symbolic(k, &ObliviousSchedule::meeting_sweep(k));
        assert!(report.met_all());
        println!(
            "{:>3} {:>8} {:>12} {:>16}",
            k,
            1usize << k,
            report.threshold,
            report.max_time().unwrap()
        );
    }
    println!(
        "\nTheorem 4.1: no algorithm can do better than 2^(k-1) on some member of the family."
    );
}
