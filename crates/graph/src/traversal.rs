//! Port-sequence application `α(x)`, reverse paths and walk bookkeeping.
//!
//! Section 2 of the paper defines, for a node `x` and a sequence
//! `α = (p1, ..., ps)` of port numbers, the node `α(x)` reached by following
//! the consecutive *outgoing* port numbers `p1, ..., ps` from `x`.  It also
//! defines the *reverse path* `π̄` of a path `π`, obtained by walking back
//! through the *entry* ports in reverse order.

use crate::graph::{NodeId, Port, PortGraph};

/// The full record of applying a port sequence from a start node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Walk {
    /// Visited nodes, `nodes[0]` is the start; `nodes.len() == out_ports.len() + 1`.
    pub nodes: Vec<NodeId>,
    /// Outgoing port taken at step `i` (from `nodes[i]`).
    pub out_ports: Vec<Port>,
    /// Entry port observed at step `i` (the port of the traversed edge at
    /// `nodes[i + 1]`).
    pub in_ports: Vec<Port>,
}

impl Walk {
    /// A walk of length zero anchored at `start`.
    pub fn empty(start: NodeId) -> Self {
        Walk { nodes: vec![start], out_ports: Vec::new(), in_ports: Vec::new() }
    }

    /// Number of edges traversed.
    pub fn len(&self) -> usize {
        self.out_ports.len()
    }

    /// `true` iff no edge was traversed.
    pub fn is_empty(&self) -> bool {
        self.out_ports.is_empty()
    }

    /// Final node of the walk (`α(start)`).
    pub fn end(&self) -> NodeId {
        *self.nodes.last().expect("walk always has at least the start node")
    }

    /// Start node of the walk.
    pub fn start(&self) -> NodeId {
        self.nodes[0]
    }

    /// The port sequence that traverses this walk backwards from its end to
    /// its start: the entry ports in reverse order (the paper's `π̄`).
    pub fn reverse_ports(&self) -> Vec<Port> {
        self.in_ports.iter().rev().copied().collect()
    }
}

/// Apply the port sequence `ports` starting at `start`, i.e. compute the
/// paper's `α(x)` together with the whole visited path.  Returns `None` if
/// some port is out of range at the node where it would be used (the
/// sequence is not *applicable* at `start`).
pub fn apply_ports(g: &PortGraph, start: NodeId, ports: &[Port]) -> Option<Walk> {
    let mut walk = Walk::empty(start);
    let mut cur = start;
    for &p in ports {
        if p >= g.degree(cur) {
            return None;
        }
        let (next, q) = g.succ(cur, p);
        walk.nodes.push(next);
        walk.out_ports.push(p);
        walk.in_ports.push(q);
        cur = next;
    }
    Some(walk)
}

/// The node `α(x)` only (discarding the path), or `None` if not applicable.
pub fn apply_ports_end(g: &PortGraph, start: NodeId, ports: &[Port]) -> Option<NodeId> {
    let mut cur = start;
    for &p in ports {
        if p >= g.degree(cur) {
            return None;
        }
        cur = g.succ(cur, p).0;
    }
    Some(cur)
}

/// `true` iff the port sequence is applicable at `start` (every port exists
/// at the node where it would be used).
pub fn is_applicable(g: &PortGraph, start: NodeId, ports: &[Port]) -> bool {
    apply_ports_end(g, start, ports).is_some()
}

/// Enumerate every applicable port sequence of length exactly `len` from
/// `start`, in lexicographic order, calling `f` with the sequence and the walk
/// it induces.  This is the *analysis-side* counterpart of the agent-side
/// enumeration performed by Procedure `Explore`; it is used by tests and by
/// the `Shrink` verification utilities.
pub fn for_each_walk_of_length<F>(g: &PortGraph, start: NodeId, len: usize, mut f: F)
where
    F: FnMut(&[Port], &Walk),
{
    let mut ports: Vec<Port> = Vec::with_capacity(len);
    let mut walk = Walk::empty(start);
    recurse(g, len, &mut ports, &mut walk, &mut f);

    fn recurse<F>(g: &PortGraph, len: usize, ports: &mut Vec<Port>, walk: &mut Walk, f: &mut F)
    where
        F: FnMut(&[Port], &Walk),
    {
        if ports.len() == len {
            f(ports, walk);
            return;
        }
        let cur = walk.end();
        for p in 0..g.degree(cur) {
            let (next, q) = g.succ(cur, p);
            ports.push(p);
            walk.nodes.push(next);
            walk.out_ports.push(p);
            walk.in_ports.push(q);
            recurse(g, len, ports, walk, f);
            ports.pop();
            walk.nodes.pop();
            walk.out_ports.pop();
            walk.in_ports.pop();
        }
    }
}

/// Count the applicable port sequences of length `len` from `start`.
/// The paper bounds this by `(n - 1)^len`; the true value is
/// `∏ deg(node at step i)` summed over branches.
pub fn count_walks_of_length(g: &PortGraph, start: NodeId, len: usize) -> u128 {
    // Dynamic programming over node occupancy: the number of walks of length
    // `i` ending at each node.
    let n = g.num_nodes();
    let mut cur = vec![0u128; n];
    cur[start] = 1;
    for _ in 0..len {
        let mut next = vec![0u128; n];
        for (v, &count) in cur.iter().enumerate() {
            if count == 0 {
                continue;
            }
            for p in 0..g.degree(v) {
                let (w, _) = g.succ(v, p);
                next[w] += count;
            }
        }
        cur = next;
    }
    cur.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, oriented_ring, path};

    #[test]
    fn apply_ports_follows_the_oriented_ring() {
        let g = oriented_ring(6).unwrap();
        // port 0 is the "clockwise" port at every node
        let w = apply_ports(&g, 0, &[0, 0, 0]).unwrap();
        assert_eq!(w.nodes, vec![0, 1, 2, 3]);
        assert_eq!(w.end(), 3);
        assert_eq!(apply_ports_end(&g, 0, &[0; 6]), Some(0));
    }

    #[test]
    fn apply_ports_rejects_out_of_range_ports() {
        let g = path(3).unwrap();
        // end nodes of the path have degree 1, so port 1 is not applicable
        assert!(apply_ports(&g, 0, &[1]).is_none());
        assert!(!is_applicable(&g, 0, &[0, 0, 1]));
        assert!(is_applicable(&g, 0, &[0, 0]));
    }

    #[test]
    fn reverse_ports_walk_back_to_the_start() {
        let g = complete(5).unwrap();
        let w = apply_ports(&g, 0, &[2, 1, 3]).unwrap();
        let back = apply_ports(&g, w.end(), &w.reverse_ports()).unwrap();
        assert_eq!(back.end(), 0);
    }

    #[test]
    fn empty_walk_has_sane_accessors() {
        let w = Walk::empty(7);
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert_eq!(w.start(), 7);
        assert_eq!(w.end(), 7);
        assert!(w.reverse_ports().is_empty());
    }

    #[test]
    fn enumeration_matches_count() {
        let g = complete(4).unwrap();
        for len in 0..4 {
            let mut seen = 0u128;
            let mut last: Option<Vec<Port>> = None;
            for_each_walk_of_length(&g, 0, len, |ports, walk| {
                seen += 1;
                assert_eq!(walk.len(), len);
                // lexicographic order
                if let Some(prev) = &last {
                    assert!(prev.as_slice() < ports);
                }
                last = Some(ports.to_vec());
            });
            assert_eq!(seen, count_walks_of_length(&g, 0, len));
            assert_eq!(seen, 3u128.pow(len as u32));
        }
    }

    #[test]
    fn count_walks_respects_varying_degrees() {
        let g = path(3).unwrap(); // 0 - 1 - 2
                                  // from the middle node: 2 walks of length 1, each continuing 1 way => 2 of length 2
        assert_eq!(count_walks_of_length(&g, 1, 1), 2);
        assert_eq!(count_walks_of_length(&g, 1, 2), 2);
        // from an end node: 1, then 2, then 2...
        assert_eq!(count_walks_of_length(&g, 0, 1), 1);
        assert_eq!(count_walks_of_length(&g, 0, 2), 2);
    }
}
