//! Differential property test: the lockstep and streaming simulation
//! engines must return **bit-identical** [`SimOutcome`]s on randomized STIC
//! sweeps — random connected graphs, random start pairs, delays, horizons
//! and scripted agent behaviours (moving, waiting, terminating).

use proptest::prelude::*;

use anonrv_graph::generators::random_connected;
use anonrv_sim::{simulate_with, AgentProgram, EngineConfig, Navigator, Round, Stic, Stop};

/// Deterministic scripted agent: a seeded LCG decides each round between
/// moving through a pseudo-random port and short waits, optionally
/// terminating after a bounded number of actions.
struct ScriptedWalker {
    seed: u64,
    lifetime: Option<u64>,
}

impl AgentProgram for ScriptedWalker {
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        let mut state = self.seed | 1;
        let mut actions = 0u64;
        loop {
            if let Some(lifetime) = self.lifetime {
                if actions >= lifetime {
                    return Ok(());
                }
            }
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let roll = state >> 33;
            if roll.is_multiple_of(4) {
                nav.wait((roll % 9 + 1) as Round)?;
            } else {
                nav.move_via(roll as usize % nav.degree())?;
            }
            actions += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lockstep_and_streaming_outcomes_are_identical(
        n in 2usize..12,
        extra in 0usize..6,
        graph_seed in 0u64..200,
        a in 0usize..24,
        b in 0usize..24,
        delay in 0u64..20,
        horizon in 1u64..220,
        walker_seed in 0u64..1_000,
        lifetime in proptest::option::of(1u64..40),
    ) {
        let extra = extra.min(n * (n - 1) / 2 - (n - 1));
        let g = random_connected(n, extra, graph_seed).unwrap();
        let stic = Stic::new(a % n, b % n, delay as Round);
        let program = ScriptedWalker { seed: walker_seed, lifetime };
        let fast = simulate_with(
            &g,
            &program,
            &program,
            &stic,
            EngineConfig::lockstep(horizon as Round),
        );
        let reference = simulate_with(
            &g,
            &program,
            &program,
            &stic,
            EngineConfig::streaming(horizon as Round),
        );
        prop_assert_eq!(
            fast, reference,
            "engines disagree on {} horizon {} walker {} lifetime {:?}",
            stic, horizon, walker_seed, lifetime
        );
    }

    #[test]
    fn engines_agree_when_the_two_agents_run_different_programs(
        n in 3usize..10,
        graph_seed in 0u64..100,
        delay in 0u64..12,
        horizon in 1u64..160,
        seed_a in 0u64..500,
        seed_b in 0u64..500,
        lifetime_a in proptest::option::of(1u64..30),
    ) {
        let g = random_connected(n, 2.min(n * (n - 1) / 2 - (n - 1)), graph_seed).unwrap();
        let stic = Stic::new(0, n - 1, delay as Round);
        let earlier = ScriptedWalker { seed: seed_a, lifetime: lifetime_a };
        let later = ScriptedWalker { seed: seed_b, lifetime: None };
        let fast =
            simulate_with(&g, &earlier, &later, &stic, EngineConfig::lockstep(horizon as Round));
        let reference =
            simulate_with(&g, &earlier, &later, &stic, EngineConfig::streaming(horizon as Round));
        prop_assert_eq!(fast, reference);
    }
}
