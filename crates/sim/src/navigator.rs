//! The restricted agent-side interface and its graph-backed implementation.

use anonrv_graph::{NodeId, Port, PortGraph};

use crate::stic::Round;

/// Why an agent's execution was cut short.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// The simulation horizon was reached.
    Horizon,
    /// The coordinator no longer needs events (rendezvous already detected or
    /// the simulation was abandoned); the agent thread should unwind quietly.
    Interrupted,
}

impl std::fmt::Display for Stop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Stop::Horizon => write!(f, "simulation horizon reached"),
            Stop::Interrupted => write!(f, "execution interrupted by the coordinator"),
        }
    }
}

impl std::error::Error for Stop {}

/// One atomic action of an agent, as seen by the simulation engine.
/// Long waits are a single event, which is what makes the enormous padding
/// waits of `UniversalRV` affordable to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Move through `port`, arriving at `to` by `entry_port`, taking 1 round.
    Move {
        /// Outgoing port used.
        port: Port,
        /// Node reached (coordinator-side bookkeeping only; never exposed to
        /// the agent program).
        to: NodeId,
        /// Entry port observed at the new node.
        entry_port: Port,
    },
    /// Stay at the current node for `rounds` rounds.
    Wait {
        /// Number of rounds spent waiting.
        rounds: Round,
    },
}

/// Where a navigator delivers its events (an in-memory trace, a channel to
/// the streaming engine, ...).
pub trait EventSink {
    /// Deliver one event.  An error tells the agent to stop.
    fn emit(&mut self, event: Event) -> Result<(), Stop>;
    /// Flush buffered events (called when the agent program finishes).
    fn finish(&mut self);
}

/// The only interface an agent algorithm may use: exactly the observations
/// the paper's model grants (degree of the current node, the entry port, the
/// agent's own clock) and the two possible actions (move by a port, stay).
pub trait Navigator {
    /// Degree of the current node.
    fn degree(&self) -> usize;
    /// The port by which the agent entered the current node (`None` at its
    /// initial node, before the first move).
    fn entry_port(&self) -> Option<Port>;
    /// Rounds elapsed since this agent's start (its private clock).
    fn local_time(&self) -> Round;
    /// Move through `port` (one round).  Returns the entry port observed at
    /// the node reached.
    ///
    /// # Panics
    /// Panics if `port` is not a valid port of the current node — that is a
    /// bug in the algorithm, not an adversarial condition.
    fn move_via(&mut self, port: Port) -> Result<Port, Stop>;
    /// Stay at the current node for `rounds` rounds (a no-op when `rounds == 0`).
    fn wait(&mut self, rounds: Round) -> Result<(), Stop>;
}

/// A deterministic agent algorithm.  Both agents execute the *same* program
/// (the agents are identical and anonymous).  Algorithms that never terminate
/// (e.g. `UniversalRV`) simply run until the navigator reports [`Stop`].
pub trait AgentProgram: Sync {
    /// Execute the algorithm through the navigator.  Returning `Ok(())` means
    /// the algorithm terminated by itself; the agent then stays at its final
    /// node forever.
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop>;

    /// A short human-readable name (used in experiment reports).
    fn name(&self) -> &str {
        "agent-program"
    }

    /// The finite-state view of this program, when it has one.  Programs
    /// whose complete decision state fits a `u64` fingerprint (see
    /// [`FiniteStateProgram`]) return `Some(self)` here, which unlocks
    /// cycle detection and symbolic (prefix + cycle) timelines in the batch
    /// engine; everything else inherits the `None` default and is always
    /// simulated explicitly.
    fn finite_state(&self) -> Option<&dyn FiniteStateProgram> {
        None
    }
}

/// One decision of a [`FiniteStateProgram`]: the action to perform plus the
/// successor machine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepDecision {
    /// What the agent does this decision.
    pub action: StepAction,
    /// The machine state after taking the decision.
    pub next: u64,
}

/// The action component of a [`StepDecision`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepAction {
    /// Stay at the current node for the given number of rounds.
    Wait(Round),
    /// Move through the given port (one round).
    Move(Port),
    /// Terminate; the agent stays at its final node forever.
    Halt,
}

/// A deterministic agent program in *explicit machine-state* form: the
/// entire per-decision state is a `u64`, and the next decision is a pure
/// function of `(state, degree, entry port)` — exactly the observations the
/// model grants at a decision boundary.  Note `local_time` is deliberately
/// absent: a finite-state program cannot consult its clock, which is what
/// makes its configuration sequence `(state, node, entry port)` on a finite
/// graph eventually periodic and therefore cycle-detectable (the wait
/// counter of a mid-wait agent is implicitly zero at every decision
/// boundary, so it never enters the configuration).
///
/// Implementors must also implement [`AgentProgram`] by delegating to
/// [`drive_finite_state`], which guarantees the closure-style execution is
/// bit-identical to the state-machine view the symbolic engine analyses.
pub trait FiniteStateProgram: AgentProgram {
    /// The machine state before the first decision.
    fn initial_state(&self) -> u64;

    /// The decision taken in machine state `state` at a node of degree
    /// `degree`, entered by `entry_port` (`None` before the first move).
    fn decide(&self, state: u64, degree: usize, entry_port: Option<Port>) -> StepDecision;
}

/// Execute a [`FiniteStateProgram`] through a navigator by repeatedly
/// applying [`FiniteStateProgram::decide`] — the canonical
/// [`AgentProgram::run`] body for finite-state programs, shared so the
/// closure-style run and the symbolic cycle detector replay the exact same
/// decision sequence.
pub fn drive_finite_state(
    program: &dyn FiniteStateProgram,
    nav: &mut dyn Navigator,
) -> Result<(), Stop> {
    let mut state = program.initial_state();
    loop {
        let decision = program.decide(state, nav.degree(), nav.entry_port());
        match decision.action {
            StepAction::Wait(rounds) => nav.wait(rounds)?,
            StepAction::Move(port) => {
                nav.move_via(port)?;
            }
            StepAction::Halt => return Ok(()),
        }
        state = decision.next;
    }
}

impl<F> AgentProgram for F
where
    F: Fn(&mut dyn Navigator) -> Result<(), Stop> + Sync,
{
    fn run(&self, nav: &mut dyn Navigator) -> Result<(), Stop> {
        self(nav)
    }
}

/// Graph-backed [`Navigator`] implementation used by both engines.
///
/// The navigator knows the graph and the agent's true position, but exposes
/// only the model-allowed observations to the program it drives.
pub struct GraphNavigator<'g, S: EventSink> {
    graph: &'g PortGraph,
    position: NodeId,
    entry_port: Option<Port>,
    local_time: Round,
    /// Maximum local time; actions that would exceed it fail with
    /// [`Stop::Horizon`].
    horizon: Round,
    sink: S,
    moves: u64,
}

impl<'g, S: EventSink> GraphNavigator<'g, S> {
    /// Create a navigator for an agent starting at `start` with the given
    /// local horizon.
    pub fn new(graph: &'g PortGraph, start: NodeId, horizon: Round, sink: S) -> Self {
        assert!(start < graph.num_nodes(), "start node out of range");
        GraphNavigator {
            graph,
            position: start,
            entry_port: None,
            local_time: 0,
            horizon,
            sink,
            moves: 0,
        }
    }

    /// The agent's true position (engine-side only; not reachable through the
    /// `Navigator` trait).
    pub fn position(&self) -> NodeId {
        self.position
    }

    /// Number of edge traversals performed.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Consume the navigator, flushing and returning its sink.
    pub fn into_sink(mut self) -> S {
        self.sink.finish();
        self.sink
    }
}

impl<'g, S: EventSink> Navigator for GraphNavigator<'g, S> {
    fn degree(&self) -> usize {
        self.graph.degree(self.position)
    }

    fn entry_port(&self) -> Option<Port> {
        self.entry_port
    }

    fn local_time(&self) -> Round {
        self.local_time
    }

    fn move_via(&mut self, port: Port) -> Result<Port, Stop> {
        let degree = self.graph.degree(self.position);
        assert!(port < degree, "agent program used port {port} at a node of degree {degree}");
        if self.local_time >= self.horizon {
            return Err(Stop::Horizon);
        }
        let (to, entry) = self.graph.succ(self.position, port);
        self.sink.emit(Event::Move { port, to, entry_port: entry })?;
        self.position = to;
        self.entry_port = Some(entry);
        self.local_time += 1;
        self.moves += 1;
        Ok(entry)
    }

    fn wait(&mut self, rounds: Round) -> Result<(), Stop> {
        if rounds == 0 {
            return Ok(());
        }
        let remaining = self.horizon.saturating_sub(self.local_time);
        if remaining == 0 {
            return Err(Stop::Horizon);
        }
        let actual = rounds.min(remaining);
        self.sink.emit(Event::Wait { rounds: actual })?;
        self.local_time += actual;
        if actual < rounds {
            return Err(Stop::Horizon);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::oriented_ring;

    /// Sink collecting raw events for the tests below.
    #[derive(Default)]
    struct VecSink {
        events: Vec<Event>,
        finished: bool,
    }

    impl EventSink for VecSink {
        fn emit(&mut self, event: Event) -> Result<(), Stop> {
            self.events.push(event);
            Ok(())
        }
        fn finish(&mut self) {
            self.finished = true;
        }
    }

    #[test]
    fn navigator_exposes_only_local_observations() {
        let g = oriented_ring(5).unwrap();
        let mut nav = GraphNavigator::new(&g, 0, 1_000, VecSink::default());
        assert_eq!(nav.degree(), 2);
        assert_eq!(nav.entry_port(), None);
        assert_eq!(nav.local_time(), 0);
        let entry = nav.move_via(0).unwrap();
        assert_eq!(entry, 1);
        assert_eq!(nav.entry_port(), Some(1));
        assert_eq!(nav.local_time(), 1);
        assert_eq!(nav.position(), 1);
        nav.wait(10).unwrap();
        assert_eq!(nav.local_time(), 11);
        assert_eq!(nav.moves(), 1);
        let sink = nav.into_sink();
        assert!(sink.finished);
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[1], Event::Wait { rounds: 10 });
    }

    #[test]
    fn horizon_cuts_moves_and_waits() {
        let g = oriented_ring(4).unwrap();
        let mut nav = GraphNavigator::new(&g, 0, 3, VecSink::default());
        nav.move_via(0).unwrap();
        nav.move_via(0).unwrap();
        // one round left: a 5-round wait is truncated and reports Horizon
        assert_eq!(nav.wait(5), Err(Stop::Horizon));
        assert_eq!(nav.local_time(), 3);
        assert_eq!(nav.move_via(0), Err(Stop::Horizon));
        assert_eq!(nav.wait(1), Err(Stop::Horizon));
    }

    #[test]
    fn zero_wait_is_a_no_op() {
        let g = oriented_ring(4).unwrap();
        let mut nav = GraphNavigator::new(&g, 2, 10, VecSink::default());
        nav.wait(0).unwrap();
        assert_eq!(nav.local_time(), 0);
        assert!(nav.into_sink().events.is_empty());
    }

    #[test]
    #[should_panic(expected = "agent program used port")]
    fn invalid_port_is_a_program_bug() {
        let g = oriented_ring(4).unwrap();
        let mut nav = GraphNavigator::new(&g, 0, 10, VecSink::default());
        let _ = nav.move_via(7);
    }

    #[test]
    fn closures_are_agent_programs() {
        let program = |nav: &mut dyn Navigator| -> Result<(), Stop> {
            nav.move_via(0)?;
            nav.wait(3)?;
            Ok(())
        };
        let g = oriented_ring(4).unwrap();
        let mut nav = GraphNavigator::new(&g, 0, 100, VecSink::default());
        AgentProgram::run(&program, &mut nav).unwrap();
        assert_eq!(nav.local_time(), 4);
        assert_eq!(program.name(), "agent-program");
    }
}
