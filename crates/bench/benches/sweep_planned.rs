//! Perf-tracking bench for the pair-orbit sweep planner: the symm-sweep
//! workload — **all** `(u, v)` ordered pairs × δ ∈ {0..4} on
//! `oriented_torus(16, 16)` (327 680 STICs) — answered by a
//! `PlannedSweep` that collapses the 65 536 ordered pairs onto their 256
//! automorphism-orbit representatives and merges only those, versus the
//! PR 2 batch path, which merges every pair.  The planner's cost includes
//! computing the orbit partition from scratch each iteration (planning is
//! part of the measured pipeline).
//!
//! `scripts/record_planned_bench.sh` measures both paths on the full
//! workload and records the speedup in `BENCH_planned.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use anonrv_bench::{sweep_batch_engine, sweep_planned_engine, SweepWalker};
use anonrv_graph::generators::oriented_torus;
use anonrv_plan::PairOrbits;
use anonrv_sim::Round;

const HORIZON: Round = 256;
const DELTAS: u32 = 5;

fn bench_planned(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_planned");
    group.sample_size(10);
    let torus = oriented_torus(16, 16).unwrap();
    let program = SweepWalker { seed: 0x5EED };

    group.bench_function("planned sweep torus-16x16 (256 orbit classes)", |b| {
        b.iter(|| sweep_planned_engine(black_box(&torus), &program, DELTAS, HORIZON))
    });

    group.bench_function("pair-orbit partition torus-16x16 (planning only)", |b| {
        b.iter(|| PairOrbits::compute(black_box(&torus)))
    });

    group.bench_function("batch engine torus-16x16 (65536 pair merges)", |b| {
        b.iter(|| sweep_batch_engine(black_box(&torus), &program, DELTAS, HORIZON))
    });
    group.finish();
}

criterion_group!(benches, bench_planned);
criterion_main!(benches);
