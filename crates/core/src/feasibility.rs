//! The feasibility characterisation of Corollary 3.1.
//!
//! A STIC `[(u, v), δ]` is feasible (some deterministic algorithm, even one
//! dedicated to this STIC, achieves rendezvous) **iff**
//!
//! * `u` and `v` are nonsymmetric (then every delay works), or
//! * `u` and `v` are symmetric and `δ ≥ Shrink(u, v)`.
//!
//! The forward direction is Theorem 3.1 (our `UniversalRV` is a witness); the
//! reverse direction is Lemma 3.1, whose argument is also made executable
//! here ([`symmetric_trajectories_never_meet`]).

use anonrv_graph::pairspace::{AllPairsShrink, ShrinkEngine};
use anonrv_graph::shrink::shrink;
use anonrv_graph::symmetry::OrbitPartition;
use anonrv_graph::{NodeId, PortGraph};
use anonrv_sim::Round;

/// Classification of a STIC according to Corollary 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SticClass {
    /// The initial positions are nonsymmetric: feasible for every delay.
    Nonsymmetric,
    /// Symmetric positions with `δ ≥ Shrink(u, v)`: feasible.
    SymmetricFeasible {
        /// The value `Shrink(u, v)`.
        shrink: usize,
    },
    /// Symmetric positions with `δ < Shrink(u, v)`: infeasible (Lemma 3.1).
    SymmetricInfeasible {
        /// The value `Shrink(u, v)`.
        shrink: usize,
    },
    /// Degenerate case `u == v` (the "agents" are already together).
    SameNode,
}

impl SticClass {
    /// `true` iff the STIC is feasible.
    pub fn is_feasible(&self) -> bool {
        !matches!(self, SticClass::SymmetricInfeasible { .. })
    }
}

/// Classify the STIC `[(u, v), δ]` in `g`.
pub fn classify(g: &PortGraph, u: NodeId, v: NodeId, delta: Round) -> SticClass {
    if u == v {
        return SticClass::SameNode;
    }
    let partition = OrbitPartition::compute(g);
    if !partition.are_symmetric(u, v) {
        return SticClass::Nonsymmetric;
    }
    let s = shrink(g, u, v).expect("unbounded shrink search always completes");
    if delta >= s as Round {
        SticClass::SymmetricFeasible { shrink: s }
    } else {
        SticClass::SymmetricInfeasible { shrink: s }
    }
}

/// Corollary 3.1 as a predicate.
pub fn is_feasible(g: &PortGraph, u: NodeId, v: NodeId, delta: Round) -> bool {
    classify(g, u, v, delta).is_feasible()
}

/// Precomputed feasibility oracle for one graph: the view-equivalence
/// partition plus the one-pass all-pairs `Shrink` table from
/// [`anonrv_graph::pairspace`].
///
/// [`classify`] recomputes both the orbit partition and a pair-graph search
/// on every call, which is wasteful inside sweeps that evaluate many STICs
/// of the *same* graph.  The oracle pays the `O(n²·Δ)` preparation once and
/// then answers [`FeasibilityOracle::classify`] in O(1), so an all-pairs ×
/// all-delays sweep costs `O(n²·Δ + #queries)` instead of `O(#queries ·
/// n²·Δ)`.
#[derive(Debug, Clone)]
pub struct FeasibilityOracle {
    partition: OrbitPartition,
    all_shrink: AllPairsShrink,
}

impl FeasibilityOracle {
    /// Precompute the oracle for `g`.
    pub fn new(g: &PortGraph) -> Self {
        FeasibilityOracle {
            partition: OrbitPartition::compute(g),
            all_shrink: ShrinkEngine::new(g).all_pairs(),
        }
    }

    /// The view-equivalence partition the oracle classifies with.
    pub fn partition(&self) -> &OrbitPartition {
        &self.partition
    }

    /// `Shrink(u, v)` in O(1).
    pub fn shrink(&self, u: NodeId, v: NodeId) -> usize {
        self.all_shrink.get(u, v)
    }

    /// Classify the STIC `[(u, v), δ]` in O(1).
    pub fn classify(&self, u: NodeId, v: NodeId, delta: Round) -> SticClass {
        if u == v {
            return SticClass::SameNode;
        }
        if !self.partition.are_symmetric(u, v) {
            return SticClass::Nonsymmetric;
        }
        let s = self.all_shrink.get(u, v);
        if delta >= s as Round {
            SticClass::SymmetricFeasible { shrink: s }
        } else {
            SticClass::SymmetricInfeasible { shrink: s }
        }
    }

    /// Corollary 3.1 as an O(1) predicate.
    pub fn is_feasible(&self, u: NodeId, v: NodeId, delta: Round) -> bool {
        self.classify(u, v, delta).is_feasible()
    }
}

/// The executable content of Lemma 3.1's proof: for symmetric starting nodes,
/// any common deterministic algorithm makes the two agents follow the same
/// port sequence, so after the earlier agent has performed `k` moves and the
/// later agent `max(k − δ, 0)` moves, the distance between them is at least
/// `Shrink(u, v) − (moves the earlier agent can still make in the remaining
/// δ rounds)`.  Concretely this helper verifies, for a given common port
/// sequence prefix, that the two trajectories never coincide when
/// `δ < Shrink(u, v)` — the paper's contradiction.
///
/// Returns `true` (i.e. "no meeting possible along this prefix") for every
/// applicable prefix; experiments call it with the port sequences actually
/// produced by our algorithms as an additional consistency check.
pub fn symmetric_trajectories_never_meet(
    g: &PortGraph,
    u: NodeId,
    v: NodeId,
    delta: usize,
    common_ports: &[usize],
) -> bool {
    // positions of the two agents after each number of moves
    let mut pos_u = Vec::with_capacity(common_ports.len() + 1);
    let mut pos_v = Vec::with_capacity(common_ports.len() + 1);
    pos_u.push(u);
    pos_v.push(v);
    let (mut cu, mut cv) = (u, v);
    for &p in common_ports {
        if p >= g.degree(cu) || p >= g.degree(cv) {
            break;
        }
        cu = g.succ(cu, p).0;
        cv = g.succ(cv, p).0;
        pos_u.push(cu);
        pos_v.push(cv);
    }
    // The later agent performs move i in the same round as the earlier agent
    // performs move i + δ (in a synchronous schedule where every round is a
    // move).  Meeting would require pos_u[i + δ] == pos_v[i] for some i.
    for (i, &later_pos) in pos_v.iter().enumerate() {
        if let Some(&earlier_pos) = pos_u.get(i + delta) {
            if earlier_pos == later_pos {
                return false;
            }
        }
    }
    true
}

/// Enumerate all STIC classes of a graph for a fixed delay: one entry per
/// unordered pair of distinct nodes.  Convenience for the experiments.
///
/// One [`FeasibilityOracle`] preparation (`O(n²·Δ)`) answers every pair, so
/// the whole enumeration is `O(n²·Δ)` rather than one pair-graph search per
/// pair.
pub fn classify_all_pairs(g: &PortGraph, delta: Round) -> Vec<((NodeId, NodeId), SticClass)> {
    let oracle = FeasibilityOracle::new(g);
    let mut out = Vec::new();
    for u in g.nodes() {
        for v in g.nodes() {
            if u < v {
                out.push(((u, v), oracle.classify(u, v, delta)));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use anonrv_graph::generators::{
        lollipop, oriented_ring, oriented_torus, symmetric_double_tree,
    };

    #[test]
    fn nonsymmetric_positions_are_always_feasible() {
        let g = lollipop(3, 2).unwrap();
        for delta in [0u128, 1, 5] {
            assert_eq!(classify(&g, 0, 4, delta), SticClass::Nonsymmetric);
            assert!(is_feasible(&g, 0, 4, delta));
        }
    }

    #[test]
    fn symmetric_positions_split_on_the_shrink_threshold() {
        let g = oriented_torus(4, 4).unwrap();
        // distance (= Shrink) between node 0 and node 5 is 2
        assert_eq!(classify(&g, 0, 5, 1), SticClass::SymmetricInfeasible { shrink: 2 });
        assert_eq!(classify(&g, 0, 5, 2), SticClass::SymmetricFeasible { shrink: 2 });
        assert!(!is_feasible(&g, 0, 5, 1));
        assert!(is_feasible(&g, 0, 5, 2));
    }

    #[test]
    fn double_tree_pairs_are_feasible_from_delay_one() {
        let (g, mirror) = symmetric_double_tree(2, 3).unwrap();
        let deep = (0..g.num_nodes() / 2).find(|&v| g.degree(v) == 1).unwrap();
        assert_eq!(
            classify(&g, deep, mirror[deep], 0),
            SticClass::SymmetricInfeasible { shrink: 1 }
        );
        assert_eq!(classify(&g, deep, mirror[deep], 1), SticClass::SymmetricFeasible { shrink: 1 });
    }

    #[test]
    fn same_node_is_its_own_class() {
        let g = oriented_ring(5).unwrap();
        assert_eq!(classify(&g, 2, 2, 0), SticClass::SameNode);
        assert!(classify(&g, 2, 2, 0).is_feasible());
    }

    #[test]
    fn lemma_3_1_trajectory_argument_holds_on_symmetric_pairs() {
        let g = oriented_ring(8).unwrap();
        // Shrink(0, 4) = 4; any delay < 4 cannot meet along any common sequence
        for delta in 0..4usize {
            for ports in [vec![0, 0, 0, 0, 0, 0], vec![0, 1, 0, 1, 0], vec![1, 1, 1, 1, 1, 1, 1]] {
                assert!(
                    symmetric_trajectories_never_meet(&g, 0, 4, delta, &ports),
                    "delta {delta}, ports {ports:?}"
                );
            }
        }
        // with delay = 4 the naive "always clockwise" sequence does meet
        assert!(!symmetric_trajectories_never_meet(&g, 0, 4, 4, &[0; 12]));
    }

    #[test]
    fn oracle_agrees_with_the_one_shot_classifier() {
        for g in [
            oriented_ring(7).unwrap(),
            oriented_torus(3, 4).unwrap(),
            lollipop(4, 3).unwrap(),
            symmetric_double_tree(2, 2).unwrap().0,
        ] {
            let oracle = FeasibilityOracle::new(&g);
            for u in g.nodes() {
                for v in g.nodes() {
                    for delta in [0u128, 1, 2, 5] {
                        assert_eq!(
                            oracle.classify(u, v, delta),
                            classify(&g, u, v, delta),
                            "({u},{v}) delta {delta}"
                        );
                        assert_eq!(oracle.is_feasible(u, v, delta), is_feasible(&g, u, v, delta));
                    }
                }
            }
        }
    }

    #[test]
    fn classify_all_pairs_covers_every_pair_once() {
        let g = oriented_ring(6).unwrap();
        let all = classify_all_pairs(&g, 2);
        assert_eq!(all.len(), 6 * 5 / 2);
        // on the oriented ring, Shrink = distance, so feasibility at delay 2
        // is exactly "distance <= 2"
        for ((u, v), class) in all {
            let dist = anonrv_graph::distance::distance(&g, u, v);
            assert_eq!(class.is_feasible(), dist <= 2, "pair ({u},{v})");
        }
    }
}
